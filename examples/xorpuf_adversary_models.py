"""XOR Arbiter PUFs under the paper's four adversary models (Sections III-IV).

Demonstrates, by running the actual algorithms, that the security of the
same XOR Arbiter PUF family depends on what the adversary model allows:

* uniform examples + LMN: feasible for small k, collapses for large k,
  rescued by correlated chains ([17]'s RocknRoll observation);
* membership queries + LearnPoly: the log(n)-XOR construction falls
  (Corollary 2), even where LMN fails;
* Angluin's reduction: equivalence queries are *not* exotic — they are
  simulated with random examples throughout.

Run with:  python examples/xorpuf_adversary_models.py
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.learning.learn_poly import LearnPoly
from repro.learning.lmn import LMNLearner
from repro.pac import PACParameters, XorArbiterSpec, table1_rows
from repro.pufs.arbiter import parity_transform
from repro.pufs.xor_arbiter import XORArbiterPUF


def features(challenges):
    return parity_transform(challenges)[:, :-1].astype(np.int8)


def main() -> None:
    rng = np.random.default_rng(0)
    n = 12

    # --- analytic: the Table I verdicts over k -------------------------
    params = PACParameters(eps=0.05, delta=0.05)
    table = TableBuilder(
        ["k", "Perceptron [9]", "General VC", "LMN (Cor.1)", "LearnPoly (Cor.2)"],
        title=f"log10(#CRP) bounds for {n}-bit XOR arbiter PUFs",
    )
    for k in (1, 2, 4, 7):
        rows = table1_rows(XorArbiterSpec(n, k), params, junta_size=3)
        table.add_row(k, *[f"{r.crp_bound_log10:.1f}" for r in rows])
    table.print()

    # --- empirical: LMN under uniform examples -------------------------
    print("LMN (degree 3, 25k uniform examples) against simulated devices:")
    for k, corr in [(1, 0.0), (4, 0.0), (7, 0.0), (7, 0.97)]:
        puf = XORArbiterPUF(n, k, np.random.default_rng(10 + k), correlation=corr)
        x = (1 - 2 * rng.integers(0, 2, size=(25_000, n))).astype(np.int8)
        fit = LMNLearner(degree=3).fit_sample(features(x), puf.eval(x))
        xt = (1 - 2 * rng.integers(0, 2, size=(5_000, n))).astype(np.int8)
        acc = np.mean(fit.hypothesis(features(xt)) == puf.eval(xt))
        label = "correlated chains" if corr else "independent chains"
        print(f"  k={k:>2} ({label}): accuracy {acc:.1%}")
    print(
        "  -> feasible at k=O(1), infeasible at k >> sqrt(ln n), unless the\n"
        "     chains are correlated — exactly the reconciliation of [9] vs [17].\n"
    )

    # --- empirical: membership queries (Corollary 2) -------------------
    # Each chain modelled as a small junta (Bourgain), the XOR as a sparse
    # F2 polynomial; LearnPoly recovers it exactly.
    k = 5  # ~ log2(32)
    big_n = 32
    target_rng = np.random.default_rng(7)
    from repro.learning.learn_poly import xor_of_junta_ltfs_target

    target = xor_of_junta_ltfs_target(big_n, k, 3, target_rng)
    result = LearnPoly(eps=0.01, delta=0.05).fit(big_n, target, rng)
    x = target_rng.integers(0, 2, size=(5000, big_n)).astype(np.int8)
    acc = np.mean(result.predict_bits(x) == target(x))
    print(
        f"LearnPoly on a {k}-XOR of junta chains over n={big_n}: "
        f"accuracy {acc:.1%} with {result.membership_queries} membership "
        f"queries and {result.equivalence_queries} simulated EQs"
    )
    print(
        "  -> 'XOR Arbiter PUFs constructed upon the difficulty of learning\n"
        "     O(log n)-XOR LTFs cannot be secure against attackers given\n"
        "     access to membership queries' (Section IV-B)."
    )


if __name__ == "__main__":
    main()

"""The Bistable-Ring PUF representation pitfall (paper Section V).

Walks the exact argument of the paper's Tables II and III on a simulated
BR PUF:

1. estimate Chow parameters from CRPs and build the LTF f' [25];
2. observe that accuracy saturates no matter how many CRPs are spent;
3. run the halfspace tester [28] — the device is far from every LTF;
4. escape the cap with *improper* learning (LMN with degree 2).

Run with:  python examples/brpuf_pitfall.py
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.booleanfuncs.ltf import estimate_chow_parameters, ltf_from_chow_parameters
from repro.learning.lmn import LMNLearner
from repro.learning.perceptron import Perceptron
from repro.property_testing import HalfspaceTester
from repro.pufs import BistableRingPUF, generate_crps


def main() -> None:
    rng = np.random.default_rng(0)
    n = 24
    puf = BistableRingPUF(n, np.random.default_rng(42))
    print(f"device: {puf}\n")

    pool = generate_crps(puf, 60_000, rng)
    test = pool.take(15_000)
    train_x = pool.challenges[15_000:]
    train_y = pool.responses[15_000:]

    # --- 1 & 2: the Table II experiment --------------------------------
    table = TableBuilder(
        ["# CRPs for Chow", "accuracy of f'-trained Perceptron [%]"],
        title="Chow-parameter LTF f' accuracy saturates (Table II effect)",
    )
    for budget in (1000, 2500, 5000, 10000, 20000):
        x, y = train_x[:budget], train_y[:budget]
        f_prime = ltf_from_chow_parameters(estimate_chow_parameters(x, y))
        learned = Perceptron(max_epochs=25).fit(x, f_prime(x), rng)
        acc = np.mean(learned.predict(test.challenges) == test.responses)
        table.add_row(budget, f"{100 * acc:.2f}")
    table.print()
    print(
        "If the BR PUF were an LTF this column would converge to 100%.\n"
        "It does not — the representation, not the data volume, is the limit.\n"
    )

    # --- 3: the Table III experiment -----------------------------------
    tester = HalfspaceTester(eps=0.05, delta=0.01)
    result = tester.test_crps(pool, rng)
    print("halfspace tester:", result.summary())

    # --- 4: improper learning clears the cap ---------------------------
    lmn = LMNLearner(degree=2).fit_sample(train_x[:20000], train_y[:20000])
    acc = np.mean(lmn.predict(test.challenges) == test.responses)
    print(
        f"\nimproper LMN (degree 2) accuracy: {acc:.1%} — above the LTF cap; "
        "'ironically, although being called improper, ML algorithms in this "
        "class are more powerful than proper learners' (Section V-B)."
    )


if __name__ == "__main__":
    main()

"""Quickstart: simulate PUFs, run a modelling attack, assess adversary models.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.learning.logistic import LogisticAttack
from repro.pac import PACParameters, XorArbiterSpec, table1_rows
from repro.pufs import ArbiterPUF, XORArbiterPUF, generate_crps, reliability
from repro.pufs.arbiter import parity_transform


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. A 64-stage arbiter PUF and its CRPs ------------------------
    puf = ArbiterPUF(64, rng, noise_sigma=0.3)
    crps = generate_crps(puf, 6000, rng, noisy=True)
    print(f"device: {puf}")
    print(f"reliability over repeated measurements: {reliability(puf, rng=rng):.3f}")

    # --- 2. The classic modelling attack [8] ---------------------------
    train, test = crps.split(0.8, rng)
    attack = LogisticAttack(feature_map=parity_transform)
    model = attack.fit(train.challenges, train.responses, rng)
    accuracy = np.mean(model.predict(test.challenges) == test.responses)
    print(f"logistic modelling attack accuracy: {accuracy:.1%}")
    print("  -> a single arbiter chain is 'not difficult enough to model' [6]\n")

    # --- 3. The paper's point: the verdict depends on the adversary model
    spec = XorArbiterSpec(n=64, k=6)
    params = PACParameters(eps=0.05, delta=0.05)
    print(f"adversary-model assessment of a {spec.k}-XOR, {spec.n}-bit arbiter PUF:")
    for assessment in table1_rows(spec, params, junta_size=4):
        print("  " + assessment.summary())
    print(
        "\nSame device, four models, conflicting verdicts — quoting only one "
        "row is the pitfall the paper warns about."
    )

    # --- 4. XOR PUF reliability degrades with k (why k can't grow freely)
    for k in (1, 4, 8):
        xpuf = XORArbiterPUF(64, k, np.random.default_rng(1), noise_sigma=0.3)
        print(f"k={k}: XOR PUF reliability {reliability(xpuf, rng=rng):.3f}")


if __name__ == "__main__":
    main()

"""The lockdown authentication protocol [10] and the budget pitfall.

A server authenticates a PUF-bearing token; the token enforces a CRP
exposure budget chosen from a learnability bound.  The demonstration:

* the protocol works for honest parties and locks when the budget runs out;
* a budget justified by the Perceptron-route bound of [9] is blown away by
  an empirical attacker that needs orders of magnitude fewer CRPs —
  budgets are adversary-model-relative (the paper's core message).

Run with:  python examples/lockdown_protocol.py
"""

import numpy as np

from repro.pac.framework import PACParameters
from repro.protocols.lockdown import (
    EavesdroppingAdversary,
    LockdownDevice,
    LockdownServer,
    enroll,
    exposure_budget_from_bound,
    run_authentication_rounds,
)
from repro.pufs import XORArbiterPUF, generate_crps


def main() -> None:
    rng = np.random.default_rng(0)
    n, k = 32, 2
    puf = XORArbiterPUF(n, k, rng, noise_sigma=0.15)
    print(f"token device: {puf}\n")

    # --- budgets from the two analytic routes ---------------------------
    params = PACParameters(eps=0.05, delta=0.05)
    budget_p = exposure_budget_from_bound(n, k, params, "perceptron")
    budget_vc = exposure_budget_from_bound(n, k, params, "vc")
    print(f"budget from the [9]/Perceptron bound: {budget_p:>10,} CRPs")
    print(f"budget from the VC bound:             {budget_vc:>10,} CRPs\n")

    # --- run the protocol with an eavesdropper at a 'safe' exposure -----
    exposure = 4000  # far below budget_p
    db = enroll(puf, exposure, rng)
    server = LockdownServer(db)
    device = LockdownDevice(puf, exposure_budget=exposure, rng=rng)
    adversary = EavesdroppingAdversary(k_guess=k)
    auth = run_authentication_rounds(
        server, device, rounds=exposure, adversary=adversary
    )
    print(
        f"protocol: {auth.rounds_run} rounds, honest acceptance "
        f"{auth.acceptance_rate:.1%}, device locked: {auth.device_locked}"
    )

    model = adversary.attempt_clone(rng)
    test = generate_crps(puf, 4000, rng)
    acc = np.mean(model.predict(test.challenges) == test.responses)
    print(
        f"eavesdropper's clone after {adversary.crps_collected} CRPs "
        f"(<< {budget_p:,} 'safe' by [9]): accuracy {acc:.1%}"
    )

    # --- the lockdown doing its job --------------------------------------
    small_device = LockdownDevice(puf, exposure_budget=100, rng=rng)
    small_server = LockdownServer(enroll(puf, 300, rng))
    small_auth = run_authentication_rounds(small_server, small_device, rounds=300)
    print(
        f"\nwith a conservative budget of 100: device locked after "
        f"{small_auth.rounds_run} rounds (locked={small_auth.device_locked})"
    )
    print(
        "\nThe same protocol is 'secure' or 'broken' depending on which\n"
        "adversary model priced the exposure budget — the paper's pitfall,\n"
        "end to end."
    )


if __name__ == "__main__":
    main()

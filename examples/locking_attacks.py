"""Logic locking under exact and approximate adversaries (Sections II, IV, V).

1. Lock a benchmark circuit with random XOR/XNOR key gates.
2. Run the oracle-guided SAT attack: exact key identification.
3. Run AppSAT: approximate deobfuscation with early termination —
   approximation-resiliency and exact-inference-resiliency are different
   properties (Section IV-A, after Rivest [2]).
4. Sequentially lock an FSM (HARPOON-style) and learn the locked machine
   outright with Angluin's L* (Section V-B).

Run with:  python examples/locking_attacks.py
"""

import numpy as np

from repro.automata.mealy import MealyMachine
from repro.locking import AppSAT, SATAttack, c17, random_circuit, random_lock
from repro.locking.bench_format import write_bench
from repro.locking.sequential import (
    harpoon_lock,
    recover_key_sequence,
    unlock_by_lstar,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. Combinational locking --------------------------------------
    net = c17()
    locked = random_lock(net, key_length=5, rng=rng)
    print("locked c17 (.bench):")
    print(write_bench(locked.locked))

    # --- 2. Exact SAT attack -------------------------------------------
    exact = SATAttack().run(locked)
    print("SAT attack:", exact.summary())
    print(f"  recovered key: {exact.key}  (secret was {locked.correct_key})")
    print(
        f"  functionally correct: {locked.key_is_functionally_correct(exact.key)}\n"
    )

    # --- 3. Approximate attack on a larger circuit ----------------------
    big = random_lock(random_circuit(10, 45, 4, rng), 12, rng)
    approx = AppSAT(error_threshold=0.02).run(big, rng)
    err = big.wrong_key_error_rate(approx.key, rng, m=4096)
    print("AppSAT on a 12-bit-key random circuit:", approx.summary())
    print(f"  measured output error of the approximate key: {err:.2%}")
    print(
        "  -> even when exact recovery were blocked, approximate "
        "deobfuscation may suffice [5].\n"
    )

    # --- 4. Sequential locking and L* -----------------------------------
    fsm = MealyMachine.random(6, (0, 1), ("lo", "hi"), rng)
    key = (1, 0, 1, 1)
    locked_fsm = harpoon_lock(fsm, key, rng)
    print(
        f"sequentially locked FSM: {fsm.num_states} -> "
        f"{locked_fsm.locked.num_states} states, key sequence {key}"
    )
    attack = unlock_by_lstar(locked_fsm, "hi")
    print(
        f"L* learned the locked machine exactly "
        f"({attack.learned_states} DFA states, "
        f"{attack.membership_queries} membership queries)"
    )
    word = recover_key_sequence(locked_fsm)
    print(f"unlocking word recovered from the model: {word}")
    print(
        "  -> 'DFA representation of FSMs can be learned through Angluin's\n"
        "     method, if the number of possible input patterns is not\n"
        "     exponential' (Section V-B)."
    )


if __name__ == "__main__":
    main()

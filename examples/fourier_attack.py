"""A Fourier-analysis-based attack with membership queries (cf. [19]).

Shows the access-model separation from the spectral side:

1. a high-degree parity hidden in a 16-bit function is invisible to the
   LMN algorithm at any affordable degree, and to every statistical-query
   learner — but Kushilevitz-Mansour finds it with membership queries;
2. the junta tester certifies the Corollary-2 precondition (the target
   depends on few coordinates) before LearnPoly is even run;
3. KM profiles where a BR PUF's Fourier weight actually sits — the
   spectral fingerprint of the representation mismatch behind Tables II
   and III.

Run with:  python examples/fourier_attack.py
"""

import numpy as np

from repro.booleanfuncs.function import BooleanFunction
from repro.learning.kushilevitz_mansour import KushilevitzMansour
from repro.learning.lmn import LMNLearner, num_low_degree_subsets
from repro.property_testing.junta_tester import JuntaTester
from repro.pufs import BistableRingPUF


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. hidden high-degree parity -----------------------------------
    secret = (0, 2, 5, 7, 9, 11, 13, 15)
    target = BooleanFunction.parity_on(16, secret)
    print(f"target: chi_S with |S| = {len(secret)} on n = 16")
    print(
        f"LMN at degree {len(secret)} would estimate "
        f"{num_low_degree_subsets(16, len(secret)):,} coefficients from "
        "random examples;"
    )
    low = LMNLearner(degree=3).fit_sample(
        (1 - 2 * rng.integers(0, 2, (20_000, 16))).astype(np.int8),
        target((1 - 2 * rng.integers(0, 2, (20_000, 16))).astype(np.int8)),
    )
    print(
        f"  an affordable degree-3 LMN captures Fourier weight "
        f"{low.captured_weight:.4f} (of 1.0) — nothing."
    )
    km = KushilevitzMansour(theta=0.3, bucket_samples=1024)
    result = km.fit(16, target, rng)
    print(
        f"  KM with membership queries finds {result.heavy_subsets()} "
        f"using {result.membership_queries:,} queries.\n"
    )

    # --- 2. junta certification before LearnPoly -------------------------
    def junta_ltf(x):
        return np.where(
            1.5 * x[:, 1] + 1.0 * x[:, 6] - 0.75 * x[:, 12] >= 0, 1, -1
        ).astype(np.int8)

    tester = JuntaTester(k=3, eps=0.1)
    verdict = tester.test(16, junta_ltf, rng)
    print("junta tester on a 3-junta LTF chain:", verdict.summary())

    # --- 3. spectral profile of a BR PUF ---------------------------------
    puf = BistableRingPUF(16, np.random.default_rng(7))
    km2 = KushilevitzMansour(theta=0.12, bucket_samples=4096)
    profile = km2.fit(16, puf.eval, rng)
    by_degree = {}
    for subset, coeff in profile.spectrum.items():
        by_degree.setdefault(len(subset), 0.0)
        by_degree[len(subset)] += coeff**2
    print("\nBR PUF heavy Fourier weight by degree (theta = 0.12):")
    for degree in sorted(by_degree):
        print(f"  degree {degree}: weight {by_degree[degree]:.3f}")
    print(
        "\nWeight at degrees >= 2 is exactly what no LTF hypothesis can\n"
        "represent — the spectral root of the Table II accuracy cap."
    )


if __name__ == "__main__":
    main()

"""Gate-level sequential locking: synthesis, unrolling, and both attacks.

The full EDA loop behind the paper's Section V-B discussion:

1. synthesize a Mealy machine to a gate-level sequential circuit
   (binary state encoding + two-level next-state logic);
2. lock the combinational core with RLL (key shared across cycles);
3. attack #1 — unroll time frames and run the oracle-guided SAT attack;
4. attack #2 — treat the locked chip as a black box and learn its full
   behaviour with Angluin's L* (no key needed at all).

Run with:  python examples/sequential_gatelevel.py
"""

import numpy as np

from repro.automata.mealy import MealyMachine
from repro.learning.angluin import LStarLearner, exact_equivalence_oracle
from repro.locking.bench_format import write_bench
from repro.locking.sat_attack import SATAttack
from repro.locking.sequential_netlist import synthesize_mealy
from repro.locking.unroll import lock_sequential, unroll


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. behavioural FSM -> gates ------------------------------------
    machine = MealyMachine.random(5, [(0,), (1,)], ("idle", "grant"), rng)
    circuit = synthesize_mealy(machine)
    print(
        f"synthesized {machine.num_states}-state Mealy machine to "
        f"{circuit.core.num_gates} gates "
        f"({circuit.num_state_bits} flip-flops)"
    )
    extracted = circuit.extract_mealy()
    print(f"white-box extraction recovers {extracted.num_states} states\n")

    # --- 2. lock the core ------------------------------------------------
    locked = lock_sequential(circuit, key_length=6, rng=rng)
    print(f"core locked with {locked.correct_key.size} key bits")
    print("locked core (.bench excerpt):")
    print("\n".join(write_bench(locked.locked_core.locked).splitlines()[:8]))
    print("...\n")

    # --- 3. unrolling SAT attack ------------------------------------------
    unrolled = unroll(locked, frames=4)
    print(
        f"unrolled 4 frames: {unrolled.locked.num_gates} gates, "
        f"{unrolled.locked.num_inputs} inputs"
    )
    result = SATAttack().run(unrolled)
    print("SAT attack on the unrolled miter:", result.summary())
    print(f"  recovered {result.key}, secret was {locked.correct_key}")
    words = [np.array([int(rng.integers(0, 2))]) for _ in range(20)]
    _, clean = circuit.run(words)
    _, attacked = locked.run(words, result.key)
    fidelity = all(np.array_equal(a, b) for a, b in zip(clean, attacked))
    print(f"  20-cycle sequential fidelity: {fidelity}\n")

    # --- 4. L* learns the chip outright -----------------------------------
    chip = circuit.extract_mealy()
    # Learn the DFA of 'last output = grant-code' directly from the chip.
    grant_code = sorted(
        {out for table in chip.transitions for (_, out) in table.values()}
    )[-1]
    dfa = chip.to_output_dfa(grant_code)
    lstar = LStarLearner(chip.input_alphabet).fit(
        dfa.accepts, exact_equivalence_oracle(dfa)
    )
    print(
        f"L* learned the chip's behaviour exactly: {lstar.dfa.num_states} "
        f"DFA states from {lstar.membership_queries} membership queries"
    )
    print(
        "\nTwo different adversary models, two successful attacks on the\n"
        "same design — the security claim is only as good as the model it\n"
        "was made in."
    )


if __name__ == "__main__":
    main()

"""E1 — Table I: the four CRP upper bounds for PAC learning XOR Arbiter PUFs.

Paper artifact: Table I (and the feasibility discussion of Sections III-A
and IV-B).  We print the bound value (log10 CRPs) for each adversary model
over a sweep of (n, k), plus the verdict table showing where the models
disagree — the paper's headline pitfall.

Expected shape: the Perceptron bound explodes exponentially in k; the
VC-based bound stays polynomial; the LMN bound is the worst for large k
(crossover with Perceptron around k ~ 4-6 for these n); LearnPoly with
membership queries stays cheap even at k = log n.
"""

import math

from repro.analysis.tables import TableBuilder
from repro.pac import (
    PACParameters,
    XorArbiterSpec,
    table1_rows,
)
from repro.pac.assessment import verdicts_disagree

PARAMS = PACParameters(eps=0.05, delta=0.05)
JUNTA_SIZE = 4  # Bourgain constant instantiated small; see DESIGN.md


def build_table1():
    table = TableBuilder(
        ["n", "k", "[9] Perceptron", "General (VC)", "Cor.1 LMN", "Cor.2 LearnPoly", "verdicts"],
        title=(
            "Table I reproduction: log10(#CRPs) upper bounds, eps=0.05, delta=0.05\n"
            "(columns follow the paper's rows; 'verdicts' flags adversary-model disagreement)"
        ),
    )
    disagreements = 0
    settings = [(n, k) for n in (16, 32, 64, 128) for k in (1, 2, 4, 6, 9)]
    for n, k in settings:
        rows = table1_rows(XorArbiterSpec(n, k), PARAMS, junta_size=JUNTA_SIZE)
        split = verdicts_disagree(rows)
        disagreements += split
        table.add_row(
            n,
            k,
            f"{rows[0].crp_bound_log10:.1f}",
            f"{rows[1].crp_bound_log10:.1f}",
            f"{rows[2].crp_bound_log10:.1f}",
            f"{rows[3].crp_bound_log10:.1f}",
            "SPLIT" if split else "agree",
        )
    return table, disagreements, len(settings)


def test_table1_bounds(benchmark, report):
    table, disagreements, total = benchmark.pedantic(
        build_table1, rounds=1, iterations=1
    )
    report("table1_bounds", table.render())

    rows_64_9 = table1_rows(XorArbiterSpec(64, 9), PARAMS, junta_size=JUNTA_SIZE)
    logs = {r.adversary.name: r.crp_bound_log10 for r in rows_64_9}
    # Shape assertions (the paper's qualitative claims):
    # 1. Perceptron bound is exponential in k — enormous at k=9.
    assert logs["[9] (Perceptron)"] > 15
    # 2. The VC route stays small.
    assert logs["General (VC)"] < 6
    # 3. LMN is the most expensive of all at k >> sqrt(ln n).
    assert logs["Corollary 1 (LMN)"] > logs["[9] (Perceptron)"]
    # 4. Membership queries keep k ~ log n cheap.
    assert logs["Corollary 2 (LearnPoly)"] < 8
    # 5. The pitfall: adversary models disagree on a large part of the sweep.
    assert disagreements >= total // 3

"""E2 — Table II: learning an LTF f' built on Chow parameters of BR PUFs.

Paper protocol (Section V-A, item 1): from N noiseless stable CRPs of a
BR PUF, approximate the Chow parameters and construct the LTF f' [25];
train a Perceptron on challenges labelled *by f'*; test against held-out
stable CRPs of the real device.  If the BR PUF were (close to) an LTF the
accuracy would go to 1 as N grows; the paper's finding — reproduced here —
is that it saturates (~71-94 % on silicon) no matter how many CRPs are
spent on the Chow estimate.

Expected shape: accuracy well below 100 %, roughly flat in N (no
monotone climb to 1), for every ring size.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.booleanfuncs.ltf import estimate_chow_parameters, ltf_from_chow_parameters
from repro.learning.perceptron import Perceptron
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.noise import collect_stable_crps

RING_SIZES = (16, 32, 64)
CRP_BUDGETS = (1000, 2500, 5000, 10000)
TEST_SIZE = 15_000


def run_table2(cache=None):
    """Reproduce Table II; with ``cache`` set, stable-CRP pools are memoised.

    Each ring size owns its own collection seed so a cache hit for one
    size cannot shift the random stream of another — the pools are a
    pure function of ``(n, seed)`` either way.
    """
    accuracies = {}
    for n in RING_SIZES:
        puf = BistableRingPUF(n, np.random.default_rng(n), noise_sigma=0.4)
        pool_size = max(CRP_BUDGETS) + TEST_SIZE

        def collect(n=n, puf=puf, pool_size=pool_size):
            return collect_stable_crps(
                puf,
                pool_size,
                repetitions=7,
                rng=np.random.default_rng(2020 + n),
            )[0]

        if cache is not None:
            pool = cache.get_or_generate(
                puf_spec=f"BistableRingPUF(n={n}, sigma=0.4, stable, reps=7)",
                seed=2020 + n,
                distribution="uniform-stable",
                m=pool_size,
                generate=collect,
            )
        else:
            pool = collect()
        test = pool.take(TEST_SIZE)
        train_all = pool.challenges[TEST_SIZE:], pool.responses[TEST_SIZE:]
        fit_rng = np.random.default_rng(7000 + n)
        for budget in CRP_BUDGETS:
            x = train_all[0][:budget]
            y = train_all[1][:budget]
            chow = estimate_chow_parameters(x, y)
            f_prime = ltf_from_chow_parameters(chow)
            # Perceptron learns f' from f'-labelled challenges (the paper's
            # Weka step), then is evaluated on the device's own CRPs.
            labels = f_prime(x)
            result = Perceptron(max_epochs=25).fit(x, labels, fit_rng)
            acc = float(
                np.mean(result.predict(test.challenges) == test.responses)
            )
            accuracies[(n, budget)] = 100.0 * acc
    return accuracies


def test_table2_chow_brpuf(benchmark, report, crp_cache):
    accuracies = benchmark.pedantic(
        run_table2, args=(crp_cache,), rounds=1, iterations=1
    )

    table = TableBuilder(
        ["# CRPs for Chow params"] + [str(n) for n in RING_SIZES],
        title=(
            "Table II reproduction: accuracy [%] of Perceptron trained on the\n"
            "Chow-parameter LTF f', tested on stable BR PUF CRPs"
        ),
    )
    for budget in CRP_BUDGETS:
        table.add_row(
            budget, *[f"{accuracies[(n, budget)]:.2f}" for n in RING_SIZES]
        )
    report("table2_chow_brpuf", table.render())

    for n in RING_SIZES:
        accs = [accuracies[(n, b)] for b in CRP_BUDGETS]
        # Saturation: even the best accuracy stays clearly below 100 %.
        assert max(accs) < 99.0, f"n={n}: accuracy should cap below 99%"
        # Better than chance: the LTF part of the BR PUF is real.
        assert max(accs) > 60.0, f"n={n}: accuracy should beat chance"
        # No run to 1: going from 1k to 10k CRPs gains little.
        assert accs[-1] - accs[0] < 15.0, f"n={n}: no large monotone climb"

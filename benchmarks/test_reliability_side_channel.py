"""E14 — the reliability side channel: access models include *what* is
measured, not just how much.

Becker's insight: repeated measurements expose per-challenge reliability,
and reliability is a property of individual chains, not of the XOR.  A
response-only adversary fights the composed non-linear function; the
reliability adversary peels off one linear chain at a time.  An adversary
model that only counts CRPs — without stating whether repeated
measurements are allowed — cannot distinguish the two.

Expected shape: on a noisy 2-XOR PUF both adversaries succeed, but the
reliability attack's ES phase demonstrably locks onto a *single chain*
(weight correlation ~1), which is the property that scales to large k
where response-only attacks collapse.  On a noiseless device the side
channel is empty and the attack refuses to run.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.conformance.pytest_plugin import statistical_test
from repro.learning.reliability_attack import ReliabilityAttack
from repro.learning.xor_logistic import XorLogisticAttack
from repro.pufs.arbiter import parity_transform
from repro.pufs.crp import generate_crps
from repro.pufs.xor_arbiter import XORArbiterPUF

N = 32
CRPS = 6000
REPS = 15
TEST_SIZE = 4000


def chain_alignment(result, puf) -> float:
    """Best |cosine| between a recovered chain and a true chain."""
    best = 0.0
    for recovered in (result.chain_a, result.chain_b):
        r = recovered / np.linalg.norm(recovered)
        for chain in puf.chains:
            t = chain.weights / np.linalg.norm(chain.weights)
            best = max(best, abs(float(r @ t)))
    return best


def run_side_channel_study():
    rows = []
    for seed in (1, 2):
        rng = np.random.default_rng(seed)
        puf = XORArbiterPUF(N, 2, np.random.default_rng(50 + seed), noise_sigma=0.4)
        test = generate_crps(puf, TEST_SIZE, rng)

        # Response-only adversary with the same challenge budget (single
        # measurement per challenge, majority-of-1).
        crps = generate_crps(puf, CRPS, rng, noisy=True)
        resp_fit = XorLogisticAttack(2, feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        resp_acc = float(
            np.mean(resp_fit.predict(test.challenges) == test.responses)
        )

        # Reliability adversary: same challenges, repeated measurements.
        rel = ReliabilityAttack(
            crps=CRPS, repetitions=REPS, restarts=6, generations=120
        ).run(puf, rng)
        rel_hits = int(np.sum(rel.predict(test.challenges) == test.responses))
        rows.append(
            {
                "seed": seed,
                "response_only": resp_acc,
                "reliability": rel_hits / TEST_SIZE,
                "reliability_hits": rel_hits,
                "alignment": chain_alignment(rel, puf),
                "correlation": rel.reliability_correlation,
            }
        )
    return rows


@statistical_test(alpha=2e-8)
def test_reliability_side_channel(benchmark, report, stat):
    rows = benchmark.pedantic(run_side_channel_study, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "device",
            "response-only acc [%]",
            "reliability acc [%]",
            "single-chain alignment",
            "rel. correlation",
        ],
        title=(
            f"E14: reliability side channel on noisy 2-XOR {N}-bit PUFs\n"
            f"({CRPS} challenges; reliability adversary measures each {REPS}x)"
        ),
    )
    for row in rows:
        table.add_row(
            f"instance {row['seed']}",
            f"{100 * row['response_only']:.1f}",
            f"{100 * row['reliability']:.1f}",
            f"{row['alignment']:.3f}",
            f"{row['correlation']:.3f}",
        )
    report("reliability_side_channel", table.render())

    # Both adversaries succeed on k=2: the reliability attack's true
    # accuracy clears 0.85 on each instance (calibrated one-sided band
    # at this test's split alpha, not a point-estimate threshold).
    alpha_each = stat.split_alpha(len(rows))
    for row in rows:
        stat.check_at_least(
            row["reliability_hits"],
            TEST_SIZE,
            0.85,
            alpha=alpha_each,
            name=f"reliability_acc[seed={row['seed']}]",
        )
        # ...and the attack provably decomposed the XOR: its ES phase
        # aligned with ONE physical chain.  Alignment and correlation
        # are geometric diagnostics, not Bernoulli rates, so they stay
        # as structural floors far below their observed values.
        assert row["alignment"] > 0.85
        assert row["correlation"] > 0.15

    # Control: a noiseless device has no reliability side channel at all.
    import pytest

    quiet = XORArbiterPUF(N, 2, np.random.default_rng(60), noise_sigma=0.0)
    with pytest.raises(ValueError, match="noisy"):
        ReliabilityAttack(crps=100, repetitions=3, generations=2).run(quiet)
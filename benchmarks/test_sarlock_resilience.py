"""E6b — SARLock: exact-inference resilience without approximation resilience.

The sharpest executable form of Section IV-A's Rivest distinction: a
point-function lock forces the *exact* SAT attack into ~2^|key| DIP rounds
(each distinguishing input eliminates a single wrong key), while the
*approximate* attacker (AppSAT) settles almost immediately on a key whose
output error is only 2^-|key|.

Expected shape: SAT-attack DIP counts scale ~2^|key| on SARLock but stay
tiny on RLL of the same key length; AppSAT stays cheap on both.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.locking.appsat import AppSAT
from repro.locking.circuits import c17
from repro.locking.combinational import random_lock
from repro.locking.sarlock import sarlock
from repro.locking.sat_attack import SATAttack


def run_comparison():
    rows = []
    for scheme, lock in [
        ("RLL k=4", lambda r: random_lock(c17(), 4, r)),
        ("SARLock k=4", lambda r: sarlock(c17(), 4, r)),
        ("RLL k=5", lambda r: random_lock(c17(), 5, r)),
        ("SARLock k=5", lambda r: sarlock(c17(), 5, r)),
    ]:
        rng = np.random.default_rng(hash(scheme) % 2**32)
        locked = lock(rng)
        exact = SATAttack().run(locked)
        approx = AppSAT(
            error_threshold=0.08, queries_per_round=128
        ).run(locked, np.random.default_rng(9))
        rows.append(
            {
                "scheme": scheme,
                "key_len": locked.key_length,
                "sat_dips": exact.iterations,
                "sat_ok": exact.success
                and locked.key_is_functionally_correct(exact.key),
                "app_rounds": approx.iterations,
                "app_err": locked.wrong_key_error_rate(
                    approx.key, np.random.default_rng(10), m=4096
                )
                if approx.key is not None
                else 1.0,
            }
        )
    return rows


def test_sarlock_exact_vs_approximate(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    table = TableBuilder(
        ["scheme", "|key|", "SAT DIPs", "exact ok?", "AppSAT rounds", "AppSAT err [%]"],
        title=(
            "E6b: point-function locking — exact attack cost explodes,\n"
            "approximate attack stays cheap (Section IV-A)"
        ),
    )
    for row in rows:
        table.add_row(
            row["scheme"],
            row["key_len"],
            row["sat_dips"],
            "yes" if row["sat_ok"] else "NO",
            row["app_rounds"],
            f"{100 * row['app_err']:.2f}",
        )
    report("sarlock_resilience", table.render())

    by_scheme = {row["scheme"]: row for row in rows}
    # Exact attack succeeds everywhere (given enough DIPs)...
    assert all(row["sat_ok"] for row in rows)
    # ...but SARLock forces near-exhaustive DIP counts,
    assert by_scheme["SARLock k=4"]["sat_dips"] >= 10  # ~2^4 - 1
    assert by_scheme["SARLock k=5"]["sat_dips"] >= 22  # ~2^5 - 1
    # while RLL of the same key length falls in a handful.
    assert by_scheme["RLL k=5"]["sat_dips"] <= 8
    # AppSAT's key error on SARLock is tiny (the scheme only protects one
    # input pattern per wrong key).
    assert by_scheme["SARLock k=5"]["app_err"] <= 0.10
    assert (
        by_scheme["SARLock k=5"]["app_rounds"]
        < by_scheme["SARLock k=5"]["sat_dips"]
    )

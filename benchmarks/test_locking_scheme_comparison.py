"""E6c — the locking design space: corruption vs SAT-resilience vs AppSAT.

One table over four schemes (RLL, SARLock, Anti-SAT, compound RLL+SARLock)
and three measurements:

* mean output corruption under random wrong keys (design-hiding quality),
* exact SAT-attack DIP count (exact-inference resistance),
* AppSAT rounds + residual key error (approximate-inference resistance).

Expected shape — the trade-off triangle the exact-vs-approximate
discussion (Section IV-A) predicts: high corruption comes with fast exact
breaks (RLL); SAT-resilience comes with negligible corruption (SARLock /
Anti-SAT); compounding inherits SAT-resilience but AppSAT strips it back
to the weak component.  No scheme wins all three columns.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.locking.antisat import antisat
from repro.locking.appsat import AppSAT
from repro.locking.circuits import c17
from repro.locking.combinational import random_lock
from repro.locking.compound import compound_lock
from repro.locking.metrics import corruption_report
from repro.locking.sarlock import sarlock
from repro.locking.sat_attack import SATAttack


def build_schemes():
    return [
        ("RLL", lambda r: random_lock(c17(), 5, r)),
        ("SARLock", lambda r: sarlock(c17(), 5, r)),
        ("Anti-SAT", lambda r: antisat(c17(), 4, r)),
        ("RLL+SARLock", lambda r: compound_lock(c17(), 3, 4, r)),
    ]


def run_comparison():
    rows = []
    for name, make in build_schemes():
        rng = np.random.default_rng(abs(hash(name)) % 2**32)
        locked = make(rng)
        corr = corruption_report(locked, keys_sampled=20, rng=rng)
        exact = SATAttack().run(locked)
        approx = AppSAT(error_threshold=0.05, queries_per_round=128).run(
            locked, np.random.default_rng(1)
        )
        rows.append(
            {
                "name": name,
                "key_len": locked.key_length,
                "corruption": corr.mean_error_rate,
                "sat_dips": exact.iterations,
                "sat_ok": exact.success
                and locked.key_is_functionally_correct(exact.key),
                "app_rounds": approx.iterations,
                "app_err": locked.wrong_key_error_rate(
                    approx.key, np.random.default_rng(2), m=4096
                )
                if approx.key is not None
                else 1.0,
            }
        )
    return rows


def test_locking_design_space(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "scheme",
            "|key|",
            "mean corruption [%]",
            "SAT DIPs",
            "exact ok?",
            "AppSAT rounds",
            "AppSAT err [%]",
        ],
        title="E6c: locking design space on c17 — no scheme wins every column",
    )
    for row in rows:
        table.add_row(
            row["name"],
            row["key_len"],
            f"{100 * row['corruption']:.2f}",
            row["sat_dips"],
            "yes" if row["sat_ok"] else "NO",
            row["app_rounds"],
            f"{100 * row['app_err']:.2f}",
        )
    report("locking_scheme_comparison", table.render())

    by_name = {r["name"]: r for r in rows}
    # All schemes fall to the exact attack eventually.
    assert all(r["sat_ok"] for r in rows)
    # RLL: high corruption, fast exact break.
    assert by_name["RLL"]["corruption"] > 0.1
    assert by_name["RLL"]["sat_dips"] <= 8
    # Point functions: corruption bounded by one input pattern per wrong
    # key (1/2^watched + slack), DIP counts well above RLL's.
    assert by_name["SARLock"]["corruption"] <= 1 / 32 + 0.02
    assert by_name["Anti-SAT"]["corruption"] <= 1 / 16 + 0.02
    for scheme in ("SARLock", "Anti-SAT"):
        assert by_name[scheme]["corruption"] < by_name["RLL"]["corruption"] / 4
        assert by_name[scheme]["sat_dips"] > by_name["RLL"]["sat_dips"]
    # Compound: inherits SAT-resilience from the point-function half...
    assert by_name["RLL+SARLock"]["sat_dips"] > by_name["RLL"]["sat_dips"]
    # ...but AppSAT strips it to an approximate key with tiny error.
    assert by_name["RLL+SARLock"]["app_err"] <= 0.10
    assert (
        by_name["RLL+SARLock"]["app_rounds"]
        < by_name["RLL+SARLock"]["sat_dips"]
    )

"""E13 — composition does not compose: the iPUF splitting attack.

The Interpose PUF was proposed as an ML-resistant *composition* of arbiter
chains after XOR PUFs fell.  The paper's composed-hardware warning applies
verbatim: the security argument addressed a monolithic adversary, and a
structural (divide-and-conquer) adversary model breaks the composition.

Expected shape: the monolithic LTF attack caps well below the splitting
attack at every CRP budget; the splitting attack converges to ~99 %.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.learning.interpose_attack import InterposeSplittingAttack
from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import parity_transform
from repro.pufs.crp import generate_crps
from repro.pufs.interpose import InterposePUF

BUDGETS = (1000, 4000, 12000)
N = 24


def run_splitting_sweep():
    rng = np.random.default_rng(13)
    puf = InterposePUF(N, 1, 1, np.random.default_rng(14))
    test = generate_crps(puf, 5000, rng)
    pool = generate_crps(puf, max(BUDGETS), rng)
    rows = []
    for budget in BUDGETS:
        x, y = pool.challenges[:budget], pool.responses[:budget]
        mono = LogisticAttack(feature_map=parity_transform).fit(x, y, rng)
        split = InterposeSplittingAttack(puf.position).fit(x, y, rng)
        rows.append(
            {
                "budget": budget,
                "monolithic": float(
                    np.mean(mono.predict(test.challenges) == test.responses)
                ),
                "splitting": float(
                    np.mean(split.predict(test.challenges) == test.responses)
                ),
            }
        )
    return rows


def test_interpose_splitting(benchmark, report):
    rows = benchmark.pedantic(run_splitting_sweep, rounds=1, iterations=1)

    table = TableBuilder(
        ["CRPs", "monolithic LTF [%]", "splitting attack [%]"],
        title=(
            f"E13: (1,1)-Interpose PUF (n = {N}) — the structural adversary "
            "breaks the composition"
        ),
    )
    for row in rows:
        table.add_row(
            row["budget"],
            f"{100 * row['monolithic']:.1f}",
            f"{100 * row['splitting']:.1f}",
        )
    report("interpose_splitting", table.render())

    final = rows[-1]
    assert final["splitting"] > 0.95
    assert final["splitting"] > final["monolithic"] + 0.03
    # The splitting curve improves with budget.
    assert rows[-1]["splitting"] >= rows[0]["splitting"] - 0.01
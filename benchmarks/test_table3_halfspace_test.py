"""E3 — Table III: testing how far BR PUFs are from halfspaces.

Paper protocol (Section V-A, item 2): feed the halfspace tester [28]
uniformly chosen noiseless CRPs from BR PUFs of n = 16/32/64 (the paper's
budgets: 100 / 1339 / 63434 CRPs) and report how far the devices are from
every halfspace.

Expected shape: the devices are flagged non-halfspace wherever the CRP
budget gives the tester statistical power, and the certified farness grows
with n / budget (the paper reports 20/40/50 %).  With only 100 CRPs the
coordinate estimator's confidence interval is wide; we report the verdict
at the paper's budget *and* at a power-matched budget for n = 16.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.property_testing import HalfspaceTester
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import generate_crps

SETTINGS = [(16, 100), (32, 1339), (64, 63434)]
POWER_MATCHED_EXTRA = (16, 5000)  # extra row: n=16 with a usable budget


def run_table3():
    tester = HalfspaceTester(eps=0.05, delta=0.01)
    results = []
    for n, m in SETTINGS + [POWER_MATCHED_EXTRA]:
        puf = BistableRingPUF(n, np.random.default_rng(n))
        crps = generate_crps(puf, m, np.random.default_rng(1000 + n + m))
        res = tester.test_crps(crps, np.random.default_rng(7))
        results.append((n, m, res))
    return results


def test_table3_halfspace(benchmark, report):
    results = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    table = TableBuilder(
        ["n", "# CRPs", "verdict", "W1 measured", "W1 halfspace", "farness >= [%]"],
        title=(
            "Table III reproduction: MORS halfspace tester on BR PUF CRPs\n"
            "(paper budgets plus a power-matched n=16 row)"
        ),
    )
    for n, m, res in results:
        table.add_row(
            n,
            m,
            "halfspace?" if res.accepted else "FAR",
            f"{res.degree1_weight:.3f}",
            f"{res.expected_weight:.3f}",
            f"{100 * res.farness_estimate:.0f}",
        )
    report("table3_halfspace", table.render())

    by_setting = {(n, m): res for n, m, res in results}
    # At the paper's larger budgets the devices must be flagged non-halfspace.
    assert not by_setting[(32, 1339)].accepted
    assert not by_setting[(64, 63434)].accepted
    # Certified farness grows with the budget (the paper's 20 -> 40 -> 50 shape).
    assert (
        by_setting[(64, 63434)].farness_estimate
        > by_setting[(32, 1339)].farness_estimate
    )
    # The power-matched n=16 run also rejects.
    assert not by_setting[POWER_MATCHED_EXTRA].accepted


def test_table3_sanity_ltf_accepted(benchmark, report):
    """Control: an interaction-free (pure-LTF) BR PUF passes the tester."""

    def run():
        tester = HalfspaceTester(eps=0.05, delta=0.01)
        puf = BistableRingPUF(
            32, np.random.default_rng(0), interaction_scale=0.0
        )
        crps = generate_crps(puf, 63_434, np.random.default_rng(1))
        return tester.test_crps(crps, np.random.default_rng(2))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    report("table3_control_ltf", res.summary())
    assert res.accepted

"""E9 — the lockdown protocol [10]: exposure budgets are model-relative.

The paper names [10] as a construction that consumed the bound of [9].
This benchmark runs the protocol against a passive eavesdropper and shows
the pitfall end to end:

* the [9]-derived budget (Perceptron route, exponential in k) declares an
  enormous CRP exposure "safe";
* an empirical product-of-margins attacker clones the device with a few
  thousand CRPs — far inside that "safe" budget;
* a budget derived from the algorithm-independent VC bound is the
  conservative one.

Expected shape: attack accuracy vs exposure rises to ~99 % well below the
Perceptron-derived budget; the VC-derived budget sits below the cloning
threshold.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.pac.framework import PACParameters
from repro.protocols.lockdown import (
    EavesdroppingAdversary,
    LockdownDevice,
    LockdownServer,
    enroll,
    exposure_budget_from_bound,
    run_authentication_rounds,
)
from repro.pufs.crp import generate_crps
from repro.pufs.xor_arbiter import XORArbiterPUF

N, K = 32, 2
EXPOSURES = (250, 1000, 4000)


def run_protocol_attack():
    rng = np.random.default_rng(9)
    puf = XORArbiterPUF(N, K, rng, noise_sigma=0.1)
    test = generate_crps(puf, 4000, rng)
    rows = []
    for exposure in EXPOSURES:
        db = enroll(puf, exposure, rng)
        server = LockdownServer(db)
        device = LockdownDevice(puf, exposure_budget=exposure, rng=rng)
        adversary = EavesdroppingAdversary(k_guess=K)
        auth = run_authentication_rounds(
            server, device, rounds=exposure, adversary=adversary
        )
        model = adversary.attempt_clone(rng)
        acc = (
            float(np.mean(model.predict(test.challenges) == test.responses))
            if model is not None
            else 0.5
        )
        rows.append(
            {
                "exposure": exposure,
                "acceptance": auth.acceptance_rate,
                "clone_accuracy": acc,
            }
        )
    params = PACParameters(0.05, 0.05)
    budgets = {
        "perceptron": exposure_budget_from_bound(N, K, params, "perceptron"),
        "vc": exposure_budget_from_bound(N, K, params, "vc"),
    }
    return rows, budgets


def test_lockdown_budgets_are_model_relative(benchmark, report):
    rows, budgets = benchmark.pedantic(run_protocol_attack, rounds=1, iterations=1)

    table = TableBuilder(
        ["CRPs exposed", "honest acceptance [%]", "eavesdropper clone accuracy [%]"],
        title=(
            f"E9: lockdown protocol on a {K}-XOR {N}-bit PUF\n"
            f"'safe' budgets: [9]/Perceptron route = {budgets['perceptron']:,} CRPs, "
            f"VC route = {budgets['vc']:,} CRPs"
        ),
    )
    for row in rows:
        table.add_row(
            row["exposure"],
            f"{100 * row['acceptance']:.1f}",
            f"{100 * row['clone_accuracy']:.1f}",
        )
    report("lockdown_protocol", table.render())

    # The protocol works for honest parties.
    assert all(row["acceptance"] > 0.85 for row in rows)
    # The empirical attacker clones the device at the largest exposure...
    final = rows[-1]
    assert final["clone_accuracy"] > 0.93
    # ...which is far *inside* the Perceptron-derived "safe" budget:
    assert final["exposure"] < budgets["perceptron"] / 10
    # while the VC-derived budget is the conservative one (below or near
    # the cloning threshold).
    assert budgets["vc"] < budgets["perceptron"] / 50
    # Attack accuracy grows with exposure (the sweep is informative).
    accs = [row["clone_accuracy"] for row in rows]
    assert accs[-1] > accs[0]

"""Kernel-vs-naive speedup harness (the perf baseline of the kernels PR).

Times the frozen per-subset loops (``repro.kernels.reference``) against
the blocked-GEMM character kernel at the scales the benchmarks actually
run — the E4 LMN configuration (12-bit XOR Arbiter PUF, degree 3,
25 000 CRPs), wider XOR PUFs, BR-PUF Chow estimation, batched FWHT —
asserts exact equivalence plus the targeted speedups, and writes the
machine-readable ``benchmarks/results/BENCH_kernels.json``.

A second test re-runs the E4 sweep end-to-end through the rewired
learners and pins the published ``benchmarks/results/lmn_xorpuf.txt``
numbers: the kernel must not move a single reported digit.
"""

from pathlib import Path

import pytest

from repro.kernels.bench import (
    default_cases,
    render_table,
    run_kernel_bench,
    write_results,
)

RESULTS_DIR = Path(__file__).parent / "results"

# The E4 sweep as published in benchmarks/results/lmn_xorpuf.txt:
# (k, correlated) -> (captured weight, accuracy %).  Estimates are
# bit-identical to the pre-kernel loops, so the printed digits must not
# move; tolerances are half an ulp of the printed rounding.
PINNED_E4 = {
    (1, False): (0.819, 96.62),
    (2, False): (0.590, 87.48),
    (4, False): (0.153, 66.16),
    (7, False): (0.123, 62.30),
    (7, True): (0.685, 87.32),
}
PINNED_COEFFICIENTS = 299


@pytest.fixture(scope="module")
def payload():
    return run_kernel_bench(default_cases())


def test_kernel_speedup(payload, report):
    report("BENCH_kernels", render_table(payload))
    write_results(payload, RESULTS_DIR / "BENCH_kernels.json")

    by_name = {rec["name"]: rec for rec in payload["cases"]}
    e4 = by_name["lmn_xor12_e4"]

    # Exactness at the acceptance configuration: same spectrum, same
    # predictions, same accuracy — bit for bit.
    assert e4["spectra_identical"]
    assert e4["predictions_identical"]
    assert e4["accuracy_old"] == e4["accuracy_new"]

    # The headline targets: >=5x coefficient estimation at n=12, d=3,
    # m=25k (the acceptance criterion; steady-state is ~8x) and a
    # comfortable multiple on hypothesis evaluation.
    assert e4["fit"]["speedup"] >= 5.0, e4["fit"]
    assert e4["eval"]["speedup"] >= 3.0, e4["eval"]

    # Every case must be exactly equivalent and at least not slower.
    for rec in payload["cases"]:
        assert rec["equivalent"], rec["name"]
        timing = rec.get("fit") or rec.get("transform")
        assert timing["speedup"] >= 1.0, (rec["name"], timing)


def test_e4_regression_pinned():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "lmn_xorpuf_bench", Path(__file__).parent / "test_lmn_xorpuf.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    rows = {
        (row["k"], row["correlation"] > 0): row for row in module.run_lmn_sweep()
    }
    assert set(rows) == set(PINNED_E4)
    for key, (weight, accuracy_pct) in PINNED_E4.items():
        row = rows[key]
        assert row["coefficients"] == PINNED_COEFFICIENTS
        assert row["captured_weight"] == pytest.approx(weight, abs=5e-4), key
        assert 100 * row["accuracy"] == pytest.approx(accuracy_pct, abs=5e-3), key

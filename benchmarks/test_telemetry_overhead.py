"""Telemetry must be (nearly) free: < 5% overhead on the E4 kernel path.

The instrumentation design promises that metering and tracing cost one
context-variable read when off, and one span + a handful of counter
bumps per *call* (never per block) when on.  This benchmark pins that
promise on the acceptance workload — the E4 LMN configuration (12-bit
XOR Arbiter PUF features, degree 3, 25 000 CRPs) driven through the
character kernel — by timing the identical fit + eval sweep with
telemetry fully off and fully on (meter + span recorder + ledger-style
snapshot) and asserting the slowdown stays under 5%.

Best-of-N timing on an interleaved schedule (off, on, off, on, ...)
keeps the comparison robust to thermal/scheduler drift.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.kernels import CharacterBasis
from repro.pufs.arbiter import parity_transform
from repro.pufs.crp import uniform_challenges
from repro.pufs.xor_arbiter import XORArbiterPUF
from repro.telemetry import QueryMeter, SpanRecorder, metered, recording

RESULTS_DIR = Path(__file__).parent / "results"

N, K, DEGREE, M = 12, 2, 3, 25_000
REPEATS = 5
MAX_OVERHEAD = 0.05


def e4_sweep(x, y, basis):
    """The instrumented hot path: coefficient fit + expansion eval."""
    coeffs = basis.estimate_coefficients(x, y)
    return basis.evaluate_expansion(x, coeffs)


def best_of(fn, repeats, setup_cm):
    best = float("inf")
    for _ in range(repeats):
        with setup_cm() as _:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    return best


def test_telemetry_overhead_under_5_percent(report):
    rng = np.random.default_rng(7)
    puf = XORArbiterPUF(N, K, rng)
    challenges = uniform_challenges(M, N, rng)
    x = parity_transform(challenges)[:, :-1].astype(np.int8)
    y = puf.eval(challenges)
    basis = CharacterBasis.low_degree(N, DEGREE)
    e4_sweep(x, y, basis)  # warm caches/allocators before timing

    import contextlib

    @contextlib.contextmanager
    def telemetry_off():
        yield None

    @contextlib.contextmanager
    def telemetry_on():
        meter = QueryMeter()
        spans = SpanRecorder()
        with metered(meter), recording(spans):
            yield meter
        meter.snapshot()  # the per-trial ledger serialisation cost

    # Interleave off/on samples so slow drift hits both arms equally.
    off = float("inf")
    on = float("inf")
    for _ in range(REPEATS):
        off = min(off, best_of(lambda: e4_sweep(x, y, basis), 1, telemetry_off))
        on = min(on, best_of(lambda: e4_sweep(x, y, basis), 1, telemetry_on))

    overhead = on / off - 1.0
    text = "\n".join(
        [
            "telemetry overhead on the E4 kernel sweep "
            f"(n={N}, k={K}, degree={DEGREE}, m={M}, best of {REPEATS}):",
            f"  off: {off * 1e3:.2f} ms",
            f"  on:  {on * 1e3:.2f} ms  (meter + span recorder + snapshot)",
            f"  overhead: {overhead * 100:+.2f}%  (budget {MAX_OVERHEAD * 100:.0f}%)",
        ]
    )
    report("telemetry_overhead", text)
    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% on the E4 kernel sweep"
    )


def test_record_is_cheap_when_uninstalled():
    """The cold path: an uninstalled record() is ~a context-var read."""
    from repro.telemetry import record

    x = np.ones((64, 12), dtype=np.int8)
    iterations = 20_000
    t0 = time.perf_counter()
    for _ in range(iterations):
        record("ex", queries=64, examples=64, challenges=x)
    per_call = (time.perf_counter() - t0) / iterations
    assert per_call < 20e-6  # generous: sub-20us even on loaded CI boxes

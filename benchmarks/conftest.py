"""Shared helpers for the benchmark harness.

Every benchmark prints its reproduced table and also writes it to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.

The conformance plugin is loaded here too, so benchmark assertions on
stochastic rates go through ``@statistical_test`` + ``stat`` calibrated
checks (docs/TESTING.md) instead of bare point-estimate thresholds.
"""

from __future__ import annotations

from pathlib import Path

import pytest

pytest_plugins = ["repro.conformance.pytest_plugin"]

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def crp_cache():
    """A persistent artifact store under ``benchmarks/results/crp_cache``.

    Surviving across runs is the point: the first benchmark invocation
    pays CRP generation, later ones replay the memoised pools.
    """
    from repro.runtime import ArtifactStore

    return ArtifactStore(RESULTS_DIR / "crp_cache")


@pytest.fixture
def report():
    """Write a named report file and echo it to stdout."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _report

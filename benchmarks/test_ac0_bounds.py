"""E12 — Section III's logic-locking bound gap, tabulated.

"for the class AC^0 ... the running time of a non-trivial distribution-
free learning algorithm cannot be better than 2^{n - n^{Omega(1/d)}} [15].
On the contrary, when the uniform variant ... is taken into account, a
polynomial-time algorithm has been devised [16]."

This benchmark evaluates both bounds over (n, depth) — including the
measured depth/size of this repo's own netlists — and shows where the
uniform model's quasi-polynomial cost undercuts the distribution-free
exponential lower bound, i.e. where saying "random examples" instead of
"uniform examples" changes a security verdict.
"""

from repro.analysis.tables import TableBuilder
from repro.locking.circuits import array_multiplier, c17, present_sbox
from repro.pac.circuit_bounds import (
    assess_circuit_learnability,
    assess_netlist_learnability,
)
from repro.pac.framework import PACParameters

PARAMS = PACParameters(0.05, 0.05)


def run_ac0_sweep():
    analytic = []
    for n in (1024, 10_000, 100_000, 1_000_000):
        for depth in (2, 3):
            analytic.append(assess_circuit_learnability(n, depth, size=5000, params=PARAMS))
    concrete = [
        ("c17", assess_netlist_learnability(c17(), PARAMS)),
        ("present_sbox", assess_netlist_learnability(present_sbox(), PARAMS)),
        ("mul4", assess_netlist_learnability(array_multiplier(4), PARAMS)),
    ]
    return analytic, concrete


def test_ac0_bound_gap(benchmark, report):
    analytic, concrete = benchmark.pedantic(run_ac0_sweep, rounds=1, iterations=1)

    table = TableBuilder(
        ["n", "depth", "size", "dist-free >= 10^", "uniform LMN ~ 10^", "cheaper model"],
        title=(
            "E12: AC^0 learnability — distribution-free lower bound vs "
            "uniform LMN (Section III)"
        ),
    )
    for a in analytic:
        table.add_row(
            a.n,
            a.depth,
            a.size,
            f"{a.distribution_free_log10:.0f}",
            f"{a.uniform_lmn_log10:.0f}",
            "uniform" if a.uniform_is_cheaper else "dist-free LB smaller",
        )
    for name, a in concrete:
        table.add_row(
            f"{name} (n={a.n})",
            a.depth,
            a.size,
            f"{a.distribution_free_log10:.1f}",
            f"{a.uniform_lmn_log10:.1f}",
            "uniform" if a.uniform_is_cheaper else "dist-free LB smaller",
        )
    report("ac0_bounds", table.render())

    # The asymptotic separation: at depth 2 the uniform model wins from
    # n = 100k on, and the advantage grows with n.
    depth2 = [a for a in analytic if a.depth == 2]
    big = [a for a in depth2 if a.n >= 100_000]
    assert all(a.uniform_is_cheaper for a in big)
    gaps = [
        a.distribution_free_log10 - a.uniform_lmn_log10 for a in depth2
    ]
    assert gaps[-1] > gaps[0]
    # Exponential vs quasi-poly growth signatures.
    assert depth2[-1].distribution_free_log10 > 10 * depth2[-2].distribution_free_log10 * 0.8
    assert depth2[-1].uniform_lmn_log10 < 2 * depth2[-2].uniform_lmn_log10
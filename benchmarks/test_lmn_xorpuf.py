"""E4 — LMN on XOR Arbiter PUFs (Section III-A and the [9]-vs-[17] story).

Three claims are exercised, all over the uniform distribution with the
parity-feature encoding (each chain is an LTF over phi(c)):

1. For constant k, the LMN algorithm PAC learns the XOR Arbiter PUF
   (Corollary 1 feasible direction).
2. As k grows past sqrt(ln n), the required degree/coefficient budget
   explodes and accuracy at a fixed budget collapses to chance — the
   infeasible direction.
3. Correlated chains (the RocknRoll construction of [17]) remain learnable
   at k where uncorrelated chains are not — this is how the paper
   reconciles [17]'s ~75 % accuracy at k >> ln n with the bound of [9].
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.learning.lmn import LMNLearner, num_low_degree_subsets
from repro.pufs.arbiter import parity_transform
from repro.pufs.xor_arbiter import XORArbiterPUF

N_STAGES = 12
TRAIN = 25_000
TEST = 5_000
DEGREE = 3


def _features(challenges):
    return parity_transform(challenges)[:, :-1].astype(np.int8)


def run_lmn_sweep():
    rows = []
    rng = np.random.default_rng(4)
    for k, correlation in [(1, 0.0), (2, 0.0), (4, 0.0), (7, 0.0), (7, 0.97)]:
        puf = XORArbiterPUF(
            N_STAGES, k, np.random.default_rng(10 + k), correlation=correlation
        )
        x = (1 - 2 * rng.integers(0, 2, size=(TRAIN, N_STAGES))).astype(np.int8)
        y = puf.eval(x)
        learner = LMNLearner(degree=DEGREE)
        result = learner.fit_sample(_features(x), y)
        x_test = (1 - 2 * rng.integers(0, 2, size=(TEST, N_STAGES))).astype(np.int8)
        acc = float(np.mean(result.hypothesis(_features(x_test)) == puf.eval(x_test)))
        rows.append(
            {
                "k": k,
                "correlation": correlation,
                "coefficients": num_low_degree_subsets(N_STAGES, DEGREE),
                "captured_weight": result.captured_weight,
                "accuracy": acc,
            }
        )
    return rows


def test_lmn_xor_arbiter_puf(benchmark, report):
    rows = benchmark.pedantic(run_lmn_sweep, rounds=1, iterations=1)

    table = TableBuilder(
        ["k", "chains", "degree", "#coeffs", "captured W", "accuracy [%]"],
        title=(
            f"E4: LMN (degree {DEGREE}, {TRAIN} uniform CRPs) on {N_STAGES}-bit "
            "XOR Arbiter PUFs\n(last row: correlated chains, cf. [17])"
        ),
    )
    for row in rows:
        table.add_row(
            row["k"],
            "correlated" if row["correlation"] else "independent",
            DEGREE,
            row["coefficients"],
            f"{row['captured_weight']:.3f}",
            f"{100 * row['accuracy']:.2f}",
        )
    report("lmn_xorpuf", table.render())

    by_key = {(r["k"], r["correlation"] > 0): r for r in rows}
    # 1. Constant k: high accuracy.
    assert by_key[(1, False)]["accuracy"] > 0.95
    assert by_key[(2, False)]["accuracy"] > 0.80
    # 2. Accuracy collapses as k grows at fixed degree/budget.
    assert by_key[(4, False)]["accuracy"] < by_key[(2, False)]["accuracy"]
    assert by_key[(7, False)]["accuracy"] < 0.65
    # 3. Correlation rescues large k ([17]'s effect, ~75 % there).
    assert (
        by_key[(7, True)]["accuracy"]
        > by_key[(7, False)]["accuracy"] + 0.10
    )
    # The Fourier-weight capture mirrors the same ordering.
    assert (
        by_key[(1, False)]["captured_weight"]
        > by_key[(7, False)]["captured_weight"]
    )

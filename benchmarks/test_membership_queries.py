"""E5 — Corollary 2: membership queries break log(n)-XOR constructions.

The proof chain of Corollary 2: each chain is (close to) an r-junta
(Bourgain), the XOR of k chains is an O(2^r k)-monomial degree-r polynomial
over F2, and LearnPoly [21] identifies it with poly(n, k, 1/eps,
log(1/delta)) membership queries.

We instantiate the chain exactly: targets are XORs of k junta-LTFs on r
coordinates each (every r-bit function is an F2 polynomial of degree <= r,
so the XOR is a sparse low-degree polynomial).  Expected shape: exact
recovery with query counts that are tiny against 2^n and grow mildly with
n and k — even at k = log2(n).
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.conformance.pytest_plugin import statistical_test
from repro.learning.learn_poly import LearnPoly, xor_of_junta_ltfs_target

JUNTA_SIZE = 3  # r
TEST_SIZE = 5000


def run_membership_sweep():
    rows = []
    for n, k in [(16, 2), (16, 4), (32, 3), (32, 5), (64, 4), (64, 6)]:
        rng = np.random.default_rng(n * 100 + k)
        target = xor_of_junta_ltfs_target(n, k, JUNTA_SIZE, rng)
        learner = LearnPoly(eps=0.01, delta=0.05, subcube_cap=14)
        result = learner.fit(n, target, np.random.default_rng(n + k))
        # Validate on fresh random points.
        x = rng.integers(0, 2, size=(TEST_SIZE, n)).astype(np.int8)
        acc = float(np.mean(result.predict_bits(x) == target(x)))
        rows.append(
            {
                "n": n,
                "k": k,
                "mq": result.membership_queries,
                "eq": result.equivalence_queries,
                "monomials": result.polynomial.sparsity,
                "exact_flag": result.exact,
                "accuracy": acc,
            }
        )
    return rows


@statistical_test(alpha=2e-8)
def test_membership_queries_break_log_n_xor(benchmark, report, stat):
    rows = benchmark.pedantic(run_membership_sweep, rounds=1, iterations=1)

    table = TableBuilder(
        ["n", "k", "MQ used", "EQ rounds", "monomials", "accuracy [%]", "2^n"],
        title=(
            "E5: LearnPoly with membership queries on XOR-of-junta-LTF targets\n"
            f"(junta size r = {JUNTA_SIZE}; Corollary 2 instantiated)"
        ),
    )
    for row in rows:
        table.add_row(
            row["n"],
            row["k"],
            row["mq"],
            row["eq"],
            row["monomials"],
            f"{100 * row['accuracy']:.2f}",
            f"2^{row['n']}",
        )
    report("membership_queries", table.render())

    alpha_each = stat.split_alpha(len(rows))
    for row in rows:
        # Near-exact recovery (simulated EQ guarantees eps-accuracy):
        # a calibrated band on the true rate over the fresh test draw.
        stat.check_at_least(
            int(round(row["accuracy"] * TEST_SIZE)),
            TEST_SIZE,
            0.97,
            alpha=alpha_each,
            name=f"accuracy[n={row['n']},k={row['k']}]",
        )
        # Query counts are minuscule against exhaustive enumeration.
        assert row["mq"] < 2 ** min(row["n"], 20) / 4, row
    # Polynomial growth in n at k ~ log n: 64 costs < 64x the 16-bit run.
    mq16 = next(r["mq"] for r in rows if (r["n"], r["k"]) == (16, 4))
    mq64 = next(r["mq"] for r in rows if (r["n"], r["k"]) == (64, 6))
    assert mq64 < 64 * mq16

"""E8 — the ~95 % accuracy cap of proper LTF learners on BR PUFs ([11],
Section V-A) and the improper-learning escape (Section V-B).

Two sweeps on one simulated BR PUF:

1. Train proper LTF learners (Perceptron, logistic regression) directly on
   growing CRP sets: accuracy rises, then *saturates below 100 %* no
   matter how many CRPs are added — Xu et al.'s observation that motivated
   the paper's representation discussion.
2. Train an improper learner (LMN with degree 2) on the same data: it
   clears the LTF cap, because the hypothesis class now contains the
   pairwise interactions the device actually has.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.learning.lmn import LMNLearner
from repro.learning.logistic import LogisticAttack
from repro.learning.mlp import MLPAttack
from repro.learning.perceptron import Perceptron
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import generate_crps

N = 20
TRAIN_SIZES = (500, 2000, 8000, 20000)
TEST_SIZE = 10_000


def run_cap_sweep():
    rng = np.random.default_rng(8)
    puf = BistableRingPUF(N, np.random.default_rng(88))
    test = generate_crps(puf, TEST_SIZE, rng)
    pool = generate_crps(puf, max(TRAIN_SIZES), rng)
    rows = []
    for m in TRAIN_SIZES:
        x, y = pool.challenges[:m], pool.responses[:m]
        perceptron = Perceptron(max_epochs=30, averaged=True).fit(x, y, rng)
        logistic = LogisticAttack().fit(x, y, rng)
        lmn = LMNLearner(degree=2).fit_sample(x, y)
        mlp = MLPAttack(hidden=48, epochs=30).fit(x, y, rng)
        rows.append(
            {
                "m": m,
                "perceptron": float(
                    np.mean(perceptron.predict(test.challenges) == test.responses)
                ),
                "logistic": float(
                    np.mean(logistic.predict(test.challenges) == test.responses)
                ),
                "lmn2": float(
                    np.mean(lmn.predict(test.challenges) == test.responses)
                ),
                "mlp": float(
                    np.mean(mlp.predict(test.challenges) == test.responses)
                ),
            }
        )
    return rows


def test_brpuf_ltf_cap(benchmark, report):
    rows = benchmark.pedantic(run_cap_sweep, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "# CRPs",
            "Perceptron [%]",
            "Logistic [%]",
            "LMN deg-2 [%] (improper)",
            "MLP [%] (improper)",
        ],
        title=f"E8: proper-LTF accuracy cap on a {N}-bit BR PUF vs improper learners",
    )
    for row in rows:
        table.add_row(
            row["m"],
            f"{100 * row['perceptron']:.2f}",
            f"{100 * row['logistic']:.2f}",
            f"{100 * row['lmn2']:.2f}",
            f"{100 * row['mlp']:.2f}",
        )
    report("brpuf_ltf_cap", table.render())

    final = rows[-1]
    # The proper learners cap strictly below 100 %.
    assert final["logistic"] < 0.99
    assert final["perceptron"] < 0.99
    # More data stopped helping the LTF learners long ago (saturation):
    mid = rows[-2]
    assert abs(final["logistic"] - mid["logistic"]) < 0.03
    # Improper learning clears the cap on the same data.
    assert final["lmn2"] > final["logistic"] + 0.02
    assert final["lmn2"] > final["perceptron"] + 0.02
    assert final["mlp"] > final["logistic"] + 0.05

"""Ablation — Angluin's equivalence-query simulation budget.

Section IV dismisses "equivalence queries are unrealistic for hardware"
by Angluin's reduction: simulate each EQ with random examples.  Two
regimes matter:

1. **Dense behaviour** (an ordinary FSM): the sampled oracle finds
   counterexamples and L* converges, with agreement >= 1 - eps by the PAC
   guarantee and improving as eps shrinks.
2. **Rare behaviour** (a HARPOON-locked FSM, whose interesting outputs
   hide behind the key prefix): random words almost never exercise the
   locked path, the sampled oracle accepts a trivial hypothesis, and the
   agreement is vacuously high while the learned model is useless — the
   reduction's guarantee is *with respect to the sampling distribution*,
   one more instance of the paper's distribution pitfall.  Exact
   equivalence (or directed testing) recovers the full machine.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.automata.mealy import MealyMachine
from repro.learning.angluin import (
    LStarLearner,
    exact_equivalence_oracle,
    sampled_equivalence_oracle,
)
from repro.locking.sequential import harpoon_lock

EPS_VALUES = (0.2, 0.05, 0.01)


def word_agreement(a, b, rng, trials=3000, max_len=14) -> float:
    agree = 0
    for _ in range(trials):
        length = int(rng.integers(0, max_len))
        word = tuple(int(rng.integers(0, 2)) for _ in range(length))
        agree += a.accepts(word) == b.accepts(word)
    return agree / trials


def run_eq_ablation():
    rng = np.random.default_rng(30)
    plain = MealyMachine.random(6, (0, 1), ("lo", "hi"), rng)
    plain_dfa = plain.to_output_dfa("hi").minimized()

    # A long key makes the functional behaviour *rare* under random words
    # (2^-10 per word to enter the functional mode).
    locked = harpoon_lock(plain, (1, 0, 1, 1, 0, 0, 1, 0, 1, 1), rng)
    locked_dfa = locked.locked.to_output_dfa("hi").minimized()

    rows = []
    for label, target in (("plain FSM", plain_dfa), ("locked FSM", locked_dfa)):
        for eps in EPS_VALUES:
            oracle = sampled_equivalence_oracle(
                target.accepts,
                (0, 1),
                eps=eps,
                delta=0.05,
                rng=np.random.default_rng(31),
                max_length=18,
            )
            result = LStarLearner((0, 1)).fit(target.accepts, oracle)
            rows.append(
                {
                    "target": label,
                    "eps": eps,
                    "agreement": word_agreement(
                        result.dfa, target, np.random.default_rng(32)
                    ),
                    "mq": result.membership_queries,
                    "states": result.dfa.num_states,
                    "true_states": target.num_states,
                }
            )
    # Reference: exact EQ recovers the locked machine completely.
    exact = LStarLearner((0, 1)).fit(
        locked_dfa.accepts, exact_equivalence_oracle(locked_dfa)
    )
    return rows, exact.dfa.num_states, locked_dfa.num_states


def test_ablation_eq_simulation(benchmark, report):
    rows, exact_states, true_states = benchmark.pedantic(
        run_eq_ablation, rounds=1, iterations=1
    )

    table = TableBuilder(
        ["target", "eps", "agreement [%]", "membership queries", "learned/true states"],
        title=(
            "Ablation: Angluin EQ-simulation budget vs L* quality\n"
            f"(exact-EQ reference on the locked FSM: {exact_states}/{true_states} states)"
        ),
    )
    for row in rows:
        table.add_row(
            row["target"],
            f"{row['eps']:.2f}",
            f"{100 * row['agreement']:.2f}",
            row["mq"],
            f"{row['states']}/{row['true_states']}",
        )
    report("ablation_eq_simulation", table.render())

    plain_rows = [r for r in rows if r["target"] == "plain FSM"]
    locked_rows = [r for r in rows if r["target"] == "locked FSM"]
    # Dense regime: PAC guarantee holds and the model is non-trivial.
    for row in plain_rows:
        assert row["agreement"] >= 1 - row["eps"] - 0.02, row
    assert plain_rows[-1]["agreement"] > 0.99
    assert plain_rows[-1]["states"] >= plain_rows[-1]["true_states"] - 1
    # Rare-behaviour regime: agreement is vacuously high at every budget...
    assert all(r["agreement"] > 0.95 for r in locked_rows)
    # ...but the loose-eps model misses most of the locked structure,
    assert locked_rows[0]["states"] < locked_rows[0]["true_states"]
    # and tightening eps only (weakly) improves structural recovery.
    assert locked_rows[-1]["states"] >= locked_rows[0]["states"]
    # Exact EQ recovers everything.
    assert exact_states == true_states
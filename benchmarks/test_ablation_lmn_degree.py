"""Ablation — the LMN degree cut-off vs the noise-sensitivity rule.

Corollary 1 derives the degree m = 2.32 k^2/eps^2 from the KOS noise-
sensitivity bound.  This ablation sweeps the cut-off degree on a fixed
2-XOR PUF and shows the mechanism: accuracy climbs as the degree admits
the target's Fourier weight, then flattens — while the coefficient count
(the cost) keeps exploding.  The theory's m is a *sufficient* degree, and
the measured knee sits well below it (upper bounds are conservative; the
same observation as E1's bound magnitudes).
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.booleanfuncs.noise_sensitivity import lmn_degree_for_xor_puf
from repro.learning.lmn import LMNLearner, num_low_degree_subsets
from repro.pufs.arbiter import parity_transform
from repro.pufs.xor_arbiter import XORArbiterPUF

N = 10
K = 2
DEGREES = (1, 2, 3, 4)
TRAIN = 30_000


def run_degree_sweep():
    rng = np.random.default_rng(20)
    puf = XORArbiterPUF(N, K, np.random.default_rng(21))
    x = (1 - 2 * rng.integers(0, 2, size=(TRAIN, N))).astype(np.int8)
    feats = parity_transform(x)[:, :-1].astype(np.int8)
    y = puf.eval(x)
    xt = (1 - 2 * rng.integers(0, 2, size=(5000, N))).astype(np.int8)
    featst = parity_transform(xt)[:, :-1].astype(np.int8)
    yt = puf.eval(xt)
    rows = []
    for degree in DEGREES:
        fit = LMNLearner(degree=degree).fit_sample(feats, y)
        rows.append(
            {
                "degree": degree,
                "coefficients": num_low_degree_subsets(N, degree),
                "captured": fit.captured_weight,
                "accuracy": float(np.mean(fit.hypothesis(featst) == yt)),
            }
        )
    return rows


def test_ablation_lmn_degree(benchmark, report):
    rows = benchmark.pedantic(run_degree_sweep, rounds=1, iterations=1)

    prescribed = lmn_degree_for_xor_puf(K, eps=0.25)
    table = TableBuilder(
        ["degree", "#coefficients", "captured Fourier weight", "accuracy [%]"],
        title=(
            f"Ablation: LMN degree cut-off on a {K}-XOR {N}-bit PUF\n"
            f"(Corollary 1's sufficient degree at eps=0.25 is m = {prescribed})"
        ),
    )
    for row in rows:
        table.add_row(
            row["degree"],
            row["coefficients"],
            f"{row['captured']:.3f}",
            f"{100 * row['accuracy']:.2f}",
        )
    report("ablation_lmn_degree", table.render())

    accs = [row["accuracy"] for row in rows]
    caps = [row["captured"] for row in rows]
    # Accuracy and captured weight are non-decreasing in the degree.
    assert all(b >= a - 0.02 for a, b in zip(accs, accs[1:]))
    assert all(b >= a - 0.02 for a, b in zip(caps, caps[1:]))
    # The knee: degree 3 already performs well...
    assert accs[2] > 0.85
    # ...far below the conservative sufficient degree of the corollary.
    assert prescribed > DEGREES[-1]
    # Cost explodes with degree (the resource the bound is really about).
    assert rows[-1]["coefficients"] > 5 * rows[0]["coefficients"]
"""Ablation — the BR PUF non-linearity knob (DESIGN.md Section 6).

The paper's Table II/III story depends on the BR PUF genuinely not being a
halfspace.  Our simulator exposes that as ``interaction_scale``; this
ablation shows the whole pitfall appears and disappears with it:

* at 0.0 the device *is* an LTF — proper learners reach ~100 % and the
  halfspace tester accepts;
* as the scale grows, LTF accuracy degrades and the tester's farness
  certificate grows.

This separates the paper's representation-mismatch effect from noise or
sample-size artefacts.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.learning.logistic import LogisticAttack
from repro.property_testing import HalfspaceTester
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import generate_crps

N = 24
SCALES = (0.0, 0.25, 0.55, 1.0)


def run_ablation():
    rows = []
    for scale in SCALES:
        puf = BistableRingPUF(
            N, np.random.default_rng(5), interaction_scale=scale
        )
        rng = np.random.default_rng(50)
        train = generate_crps(puf, 15_000, rng)
        test = generate_crps(puf, 8_000, rng)
        fit = LogisticAttack().fit(train.challenges, train.responses, rng)
        acc = float(np.mean(fit.predict(test.challenges) == test.responses))
        tester = HalfspaceTester(eps=0.05, delta=0.01)
        tres = tester.test_crps(
            generate_crps(puf, 40_000, rng), np.random.default_rng(51)
        )
        rows.append(
            {
                "scale": scale,
                "ltf_accuracy": acc,
                "tester_accepts": tres.accepted,
                "gap": tres.gap,
                "farness": tres.farness_estimate,
            }
        )
    return rows


def test_ablation_interaction_scale(benchmark, report):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "interaction_scale",
            "best-LTF accuracy [%]",
            "halfspace tester",
            "W1 gap",
            "farness >= [%]",
        ],
        title=f"Ablation: BR PUF non-linearity knob (n = {N})",
    )
    for row in rows:
        table.add_row(
            f"{row['scale']:.2f}",
            f"{100 * row['ltf_accuracy']:.2f}",
            "accepts" if row["tester_accepts"] else "rejects",
            f"{row['gap']:+.3f}",
            f"{100 * row['farness']:.0f}",
        )
    report("ablation_brpuf", table.render())

    by_scale = {row["scale"]: row for row in rows}
    # Linear device: near-perfect LTF learning and tester acceptance.
    assert by_scale[0.0]["ltf_accuracy"] > 0.98
    assert by_scale[0.0]["tester_accepts"]
    # Non-linear device: accuracy cap and tester rejection.
    assert by_scale[1.0]["ltf_accuracy"] < by_scale[0.0]["ltf_accuracy"] - 0.05
    assert not by_scale[1.0]["tester_accepts"]
    # Monotone trends across the knob.
    accs = [by_scale[s]["ltf_accuracy"] for s in SCALES]
    assert accs[0] >= accs[1] >= accs[2] - 0.02 >= accs[3] - 0.04
    farness = [by_scale[s]["farness"] for s in SCALES]
    assert farness[-1] > farness[0]

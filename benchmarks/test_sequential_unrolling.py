"""E7b — the sequential SAT attack by time-frame unrolling.

Sequential locking (Section II-A) at gate level: the combinational core of
a synthesised FSM is RLL-locked with a key shared across cycles.  The
attack unrolls T time frames into a combinational miter and runs the
standard oracle-guided SAT attack; deeper unrolling constrains the key
against longer behaviours.

Expected shape: the attack recovers behaviour-preserving keys at modest
frame counts; DIP counts stay far below exhaustive key search; deeper
unrolling never hurts the recovered key's sequential fidelity.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.automata.mealy import MealyMachine
from repro.locking.sat_attack import SATAttack
from repro.locking.sequential_netlist import synthesize_mealy
from repro.locking.unroll import lock_sequential, unroll


def sequential_fidelity(circuit, locked, key, rng, words=25, trials=8) -> float:
    """Fraction of random input sequences reproduced exactly under ``key``."""
    good = 0
    for _ in range(trials):
        seq = [np.array([int(rng.integers(0, 2))]) for _ in range(words)]
        _, clean = circuit.run(seq)
        _, attacked = locked.run(seq, key)
        good += all(np.array_equal(a, b) for a, b in zip(clean, attacked))
    return good / trials


def run_unrolling_sweep():
    rows = []
    for states, key_bits, frames in [(4, 5, 2), (4, 5, 4), (6, 6, 4), (6, 6, 6)]:
        rng = np.random.default_rng(states * 100 + frames)
        machine = MealyMachine.random(states, [(0,), (1,)], ("a", "b"), rng)
        circuit = synthesize_mealy(machine)
        locked = lock_sequential(circuit, key_bits, rng)
        unrolled = unroll(locked, frames)
        result = SATAttack().run(unrolled)
        fidelity = (
            sequential_fidelity(circuit, locked, result.key, rng)
            if result.success
            else 0.0
        )
        rows.append(
            {
                "states": states,
                "key_bits": key_bits,
                "frames": frames,
                "dips": result.iterations,
                "success": result.success,
                "fidelity": fidelity,
            }
        )
    return rows


def test_sequential_unrolling_attack(benchmark, report):
    rows = benchmark.pedantic(run_unrolling_sweep, rounds=1, iterations=1)

    table = TableBuilder(
        ["FSM states", "|key|", "frames", "DIPs", "attack ok?", "seq fidelity [%]"],
        title="E7b: SAT attack on RLL-locked sequential cores via unrolling",
    )
    for row in rows:
        table.add_row(
            row["states"],
            row["key_bits"],
            row["frames"],
            row["dips"],
            "yes" if row["success"] else "NO",
            f"{100 * row['fidelity']:.0f}",
        )
    report("sequential_unrolling", table.render())

    assert all(row["success"] for row in rows)
    # DIP counts stay far below exhaustive key search.
    assert all(row["dips"] < 2 ** row["key_bits"] / 2 for row in rows)
    # At >= 4 frames the recovered keys reproduce long behaviours.
    deep = [row for row in rows if row["frames"] >= 4]
    assert all(row["fidelity"] >= 0.99 for row in deep)
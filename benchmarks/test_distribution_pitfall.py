"""E10 — the distribution axis (Section III) measured directly.

An eps-approximator is a statement *relative to a distribution D*: the
hypothesis agrees with the target on all but an eps-mass of D.  When the
target is not realisable by the hypothesis class (a BR PUF modelled by an
LTF — the paper's own Section V example), the residual error concentrates
somewhere, and a different evaluation distribution can magnify it
arbitrarily.  Quoting a uniform-distribution accuracy as if it were
distribution-free is the Section III pitfall.

Expected shape: the uniform-trained LTF model's accuracy collapses under
skewed challenge distributions (biased bits, low-weight challenges), and
retraining under the evaluation distribution recovers — the learner is
fine, the *guarantee* was distribution-bound.

(Control: for a single arbiter PUF, where the LTF-over-features hypothesis
class contains the target, the same shift costs almost nothing — the gap
is a representation x distribution interaction, not a generic ML artefact.)
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import (
    biased_challenges,
    generate_crps,
    low_weight_challenges,
    uniform_challenges,
)

N = 32
TRAIN = 8000
TEST = 6000

EVAL_DISTRIBUTIONS = [
    ("uniform", uniform_challenges),
    ("biased p=0.7", biased_challenges(0.7)),
    ("biased p=0.9", biased_challenges(0.9)),
    ("low-weight <= 4", low_weight_challenges(4)),
]


def run_distribution_sweep():
    rng = np.random.default_rng(10)
    puf = BistableRingPUF(N, np.random.default_rng(11))
    train = generate_crps(puf, TRAIN, rng)
    model = LogisticAttack().fit(train.challenges, train.responses, rng)
    rows = []
    for name, sampler in EVAL_DISTRIBUTIONS:
        test = generate_crps(puf, TEST, rng, sampler=sampler)
        acc_uniform_trained = float(
            np.mean(model.predict(test.challenges) == test.responses)
        )
        retrain = generate_crps(puf, TRAIN, rng, sampler=sampler)
        matched = LogisticAttack().fit(
            retrain.challenges, retrain.responses, rng
        )
        acc_matched = float(
            np.mean(matched.predict(test.challenges) == test.responses)
        )
        rows.append(
            {
                "distribution": name,
                "uniform_trained": acc_uniform_trained,
                "matched_trained": acc_matched,
            }
        )

    # Control: a realisable target barely notices the same shift.
    arbiter = ArbiterPUF(N, np.random.default_rng(12))
    a_train = generate_crps(arbiter, TRAIN, rng)
    a_model = LogisticAttack(feature_map=parity_transform).fit(
        a_train.challenges, a_train.responses, rng
    )
    a_test = generate_crps(arbiter, TEST, rng, sampler=biased_challenges(0.9))
    control_acc = float(
        np.mean(a_model.predict(a_test.challenges) == a_test.responses)
    )
    return rows, control_acc


def test_distribution_dependence(benchmark, report):
    rows, control_acc = benchmark.pedantic(
        run_distribution_sweep, rounds=1, iterations=1
    )

    table = TableBuilder(
        ["evaluation distribution", "uniform-trained acc [%]", "matched-trained acc [%]"],
        title=(
            f"E10: distribution dependence of an LTF model of a {N}-bit BR PUF\n"
            "(control: realisable arbiter-PUF target under p=0.9 bias keeps "
            f"{100 * control_acc:.1f} %)"
        ),
    )
    for row in rows:
        table.add_row(
            row["distribution"],
            f"{100 * row['uniform_trained']:.2f}",
            f"{100 * row['matched_trained']:.2f}",
        )
    report("distribution_pitfall", table.render())

    by_name = {row["distribution"]: row for row in rows}
    base = by_name["uniform"]["uniform_trained"]
    # Reasonable accuracy under the training distribution (the LTF cap).
    assert 0.70 < base < 0.95
    # The skewed distributions break the uniform-trained guarantee...
    assert by_name["biased p=0.9"]["uniform_trained"] < base - 0.10
    # ...while matched training recovers (so the learner is not the issue).
    assert (
        by_name["biased p=0.9"]["matched_trained"]
        > by_name["biased p=0.9"]["uniform_trained"] + 0.15
    )
    assert all(
        row["matched_trained"] >= row["uniform_trained"] - 0.02 for row in rows
    )
    # Control: a realisable target under the same shift barely degrades.
    assert control_acc > 0.95

"""E12 — the parallel experiment runtime, measured.

Two claims are demonstrated on a >= 32-trial learning-curve-shaped
workload:

1. **Determinism**: ``TrialRunner`` produces bit-identical trial results
   for every worker count (serial vs a 4-worker pool).
2. **Memoisation**: a warm :class:`~repro.runtime.CRPCache` makes a
   generation-heavy replay at least 2x faster than the cold run (on any
   hardware — this speedup does not depend on core count, unlike the
   pool speedup, which is also reported but only asserted to exist on
   multi-core machines).
"""

import os
import shutil
import tempfile

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.runtime import TrialRunner
from repro.runtime.workloads import (
    ChowTrialSpec,
    LearningCurveSpec,
    chow_brpuf_trial,
    learning_curve_trial,
)

TRIALS = 32
WORKERS = 4


def run_fanout():
    spec = LearningCurveSpec(n=48, budgets=(100, 400, 1600), test_size=2000)
    serial = TrialRunner(workers=1).run(
        learning_curve_trial, TRIALS, master_seed=7, trial_kwargs={"spec": spec}
    )
    parallel = TrialRunner(workers=WORKERS).run(
        learning_curve_trial, TRIALS, master_seed=7, trial_kwargs={"spec": spec}
    )
    return serial, parallel


def run_cache():
    spec = ChowTrialSpec(n=64, m=20_000)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        kwargs = {"spec": spec, "cache_dir": cache_dir}
        cold = TrialRunner(workers=1).run(
            chow_brpuf_trial, TRIALS, master_seed=3, trial_kwargs=kwargs
        )
        warm = TrialRunner(workers=1).run(
            chow_brpuf_trial, TRIALS, master_seed=3, trial_kwargs=kwargs
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return cold, warm


def test_trial_fanout_speedup(benchmark, report):
    serial, parallel = benchmark.pedantic(run_fanout, rounds=1, iterations=1)

    speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
    table = TableBuilder(
        ["run", "executor", "wall [s]", "sum of trials [s]"],
        title=(
            f"E12a: {TRIALS}-trial learning-curve fan-out "
            f"(speedup {speedup:.2f}x at workers={WORKERS}, "
            f"{os.cpu_count()} cpu(s) visible)"
        ),
    )
    table.add_row(
        "serial", serial.executor, f"{serial.wall_seconds:.2f}",
        f"{serial.total_trial_seconds:.2f}",
    )
    table.add_row(
        "parallel", parallel.executor, f"{parallel.wall_seconds:.2f}",
        f"{parallel.total_trial_seconds:.2f}",
    )
    report("parallel_runtime_fanout", table.render())

    # Bit-identical results regardless of worker count — the hard contract.
    assert len(serial.results) == len(parallel.results) == TRIALS
    assert all(
        np.array_equal(a, b)
        for a, b in zip(serial.values(), parallel.values())
    )
    # The pool can only beat serial when there are cores to spread over;
    # on a single-core container the overhead makes >= 2x unattainable,
    # so the throughput assertion is gated on visible cores.
    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= 2.0, f"expected >= 2x speedup, got {speedup:.2f}x"


def test_crp_cache_speedup(benchmark, report):
    cold, warm = benchmark.pedantic(run_cache, rounds=1, iterations=1)

    speedup = cold.wall_seconds / max(warm.wall_seconds, 1e-9)
    table = TableBuilder(
        ["run", "wall [s]", "mean trial [s]"],
        title=(
            f"E12b: {TRIALS}-trial BR PUF Chow workload, CRP cache cold vs "
            f"warm (speedup {speedup:.2f}x)"
        ),
    )
    table.add_row("cold", f"{cold.wall_seconds:.2f}",
                  f"{np.mean(cold.trial_seconds()):.3f}")
    table.add_row("warm", f"{warm.wall_seconds:.2f}",
                  f"{np.mean(warm.trial_seconds()):.3f}")
    report("parallel_runtime_cache", table.render())

    # Identical Chow estimates with and without regeneration.
    assert all(
        np.array_equal(a, b) for a, b in zip(cold.values(), warm.values())
    )
    # Memoisation must at least halve the wall-clock on replay.
    assert speedup >= 2.0, f"expected >= 2x warm-cache speedup, got {speedup:.2f}x"

"""E11 — learning curves: the empirical face of the sample-complexity bounds.

Two figure-style sweeps (the paper has no figures, but its cited attack
literature [8] reports exactly these curves; they anchor the Table I
bounds to measurements):

1. single arbiter PUF — three learners (logistic regression, Perceptron,
   AdaBoost) over the parity features, accuracy vs CRP budget;
2. 2-XOR arbiter PUF — the *representation* effect on the curve: a plain
   single-LTF learner is stuck near chance at every budget, while the
   product-of-margins model converges.
"""

import os

import numpy as np

from repro.analysis.learning_curves import compare_learners, replicated_learning_curve
from repro.analysis.tables import TableBuilder
from repro.conformance.pytest_plugin import statistical_test
from repro.learning.boosting import AdaBoost
from repro.learning.logistic import LogisticAttack
from repro.learning.perceptron import Perceptron
from repro.learning.xor_logistic import XorLogisticAttack
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.xor_arbiter import XORArbiterPUF

BUDGETS = (100, 400, 1600, 6400)
TEST_SIZE = 5000  # compare_learners' held-out set; converts rates to counts


def _hits(accuracy: float, m: int = TEST_SIZE) -> int:
    """Recover the exact hit count behind a mean-of-±1-matches float."""
    return int(round(accuracy * m))


def arbiter_fitters():
    def logistic(x, y, rng):
        return LogisticAttack(feature_map=parity_transform).fit(x, y, rng).predict

    def perceptron(x, y, rng):
        return Perceptron(max_epochs=40, feature_map=parity_transform).fit(
            x, y, rng
        ).predict

    def adaboost(x, y, rng):
        return AdaBoost(rounds=120, feature_map=parity_transform).fit(x, y).predict

    return {"logistic": logistic, "perceptron": perceptron, "adaboost": adaboost}


def xor_fitters():
    def plain_ltf(x, y, rng):
        return LogisticAttack(feature_map=parity_transform).fit(x, y, rng).predict

    def product_model(x, y, rng):
        return XorLogisticAttack(
            2, feature_map=parity_transform, restarts=6
        ).fit(x, y, rng).predict

    return {"plain LTF": plain_ltf, "product-of-margins": product_model}


def run_curves():
    rng = np.random.default_rng(11)
    arbiter = ArbiterPUF(48, rng)
    arbiter_curves = compare_learners(
        arbiter_fitters(), arbiter, BUDGETS, rng=np.random.default_rng(12)
    )
    xor_puf = XORArbiterPUF(32, 2, rng)
    xor_curves = compare_learners(
        xor_fitters(), xor_puf, BUDGETS, rng=np.random.default_rng(13)
    )
    return arbiter_curves, xor_curves


@statistical_test(alpha=2e-8)
def test_learning_curves(benchmark, report, stat):
    arbiter_curves, xor_curves = benchmark.pedantic(
        run_curves, rounds=1, iterations=1
    )

    table = TableBuilder(
        ["target / learner"] + [f"{b} CRPs" for b in BUDGETS],
        title="E11: attack accuracy [%] vs CRP budget",
    )
    for curve in arbiter_curves:
        table.add_row(
            f"arbiter-48 / {curve.learner}",
            *[f"{100 * a:.1f}" for a in curve.accuracies],
        )
    for curve in xor_curves:
        table.add_row(
            f"2-xor-32 / {curve.learner}",
            *[f"{100 * a:.1f}" for a in curve.accuracies],
        )
    report("learning_curves", table.render())

    by_name = {c.learner: c for c in arbiter_curves}
    xor_by_name = {c.learner: c for c in xor_curves}
    # All arbiter learners converge to a strong model, and the XOR
    # representation effect holds — each as a calibrated band on the
    # *true* rate at a split share of this test's alpha, not a bare
    # point-estimate threshold.
    alpha_each = stat.split_alpha(5)
    for learner, bound in (
        ("logistic", 0.95),
        ("perceptron", 0.93),
        ("adaboost", 0.82),
    ):
        stat.check_at_least(
            _hits(by_name[learner].final_accuracy()),
            TEST_SIZE,
            bound,
            alpha=alpha_each,
            name=f"arbiter_final[{learner}]",
        )
    # Roughly monotone curves.
    assert all(c.is_monotone(slack=0.05) for c in arbiter_curves)
    # Representation effect on the XOR PUF: the wrong hypothesis class
    # stays near chance while the product model converges.
    stat.check_at_most(
        _hits(xor_by_name["plain LTF"].final_accuracy()),
        TEST_SIZE,
        0.78,
        alpha=alpha_each,
        name="xor_final[plain LTF]",
    )
    stat.check_at_least(
        _hits(xor_by_name["product-of-margins"].final_accuracy()),
        TEST_SIZE,
        0.90,
        alpha=alpha_each,
        name="xor_final[product-of-margins]",
    )
    # The knee: the product model needs more data than the single chain.
    arb_knee = by_name["logistic"].budget_to_reach(0.95)
    xor_knee = xor_by_name["product-of-margins"].budget_to_reach(0.95)
    assert arb_knee is not None and xor_knee is not None
    assert xor_knee >= arb_knee


# ----------------------------------------------------------------------
# Replicated (multi-instance) curves through the parallel runtime.
# Factory and fitter are module-level so the process pool can pickle them.

REPLICA_BUDGETS = (100, 400, 1600)


def _arbiter_factory(rng):
    return ArbiterPUF(40, rng)


def _logistic_fitter(x, y, rng):
    return LogisticAttack(feature_map=parity_transform).fit(x, y, rng).predict


def run_replicated(workers):
    serial_curve, serial_report = replicated_learning_curve(
        "logistic",
        _logistic_fitter,
        _arbiter_factory,
        REPLICA_BUDGETS,
        trials=8,
        test_size=1000,
        master_seed=99,
        workers=1,
    )
    parallel_curve, parallel_report = replicated_learning_curve(
        "logistic",
        _logistic_fitter,
        _arbiter_factory,
        REPLICA_BUDGETS,
        trials=8,
        test_size=1000,
        master_seed=99,
        workers=workers,
    )
    return serial_curve, serial_report, parallel_curve, parallel_report


@statistical_test(alpha=2e-8)
def test_replicated_learning_curve(benchmark, report, stat):
    workers = int(os.environ.get("REPRO_WORKERS", "2"))
    serial_curve, serial_report, parallel_curve, parallel_report = (
        benchmark.pedantic(run_replicated, args=(workers,), rounds=1, iterations=1)
    )

    table = TableBuilder(
        ["statistic"] + [f"{b} CRPs" for b in REPLICA_BUDGETS],
        title=(
            "E11b: arbiter-40 logistic curve over 8 fresh instances "
            f"(serial {serial_report.wall_seconds:.2f}s vs "
            f"{workers}-worker {parallel_report.wall_seconds:.2f}s)"
        ),
    )
    table.add_row(
        "mean acc [%]", *[f"{100 * a:.1f}" for a in parallel_curve.mean_accuracies]
    )
    table.add_row(
        "std acc [%]", *[f"{100 * s:.1f}" for s in parallel_curve.std_accuracies]
    )
    report("replicated_learning_curve", table.render())

    # The determinism contract: worker count must not change the numbers.
    assert serial_curve.mean_accuracies == parallel_curve.mean_accuracies
    assert serial_curve.std_accuracies == parallel_curve.std_accuracies
    # The averaged curve behaves like a learning curve should: the
    # pooled final rate over 8 instances x 1000 held-out challenges
    # clears 0.93 as a calibrated band.
    pooled = int(round(parallel_curve.mean_accuracies[-1] * 8 * 1000))
    stat.check_at_least(
        pooled, 8 * 1000, 0.93, name="replicated_final_accuracy"
    )
    assert parallel_curve.as_curve().is_monotone(slack=0.05)

"""E6 — SAT attack and AppSAT on locked circuits (Sections II-A, IV-A, V-A).

The exact-vs-approximate distinction the paper draws from Rivest [2]:

* the SAT attack performs *exact identification* of the key — it terminates
  only when no distinguishing input remains;
* AppSAT performs *approximate inference* — it settles for a key whose
  output error is below a threshold, typically earlier.

Expected shape: both succeed on RLL-locked benchmarks; DIP counts are far
below 2^{key length}; AppSAT never needs more DIP rounds than the exact
attack and its key's error is within the threshold.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.locking.appsat import AppSAT
from repro.locking.circuits import c17, random_circuit, ripple_carry_adder
from repro.locking.combinational import random_lock
from repro.locking.sat_attack import SATAttack


def make_targets():
    rng = np.random.default_rng(6)
    return [
        ("c17", random_lock(c17(), 4, rng)),
        ("rca3", random_lock(ripple_carry_adder(3), 8, rng)),
        ("rand8x30", random_lock(random_circuit(8, 30, 3, rng), 10, rng)),
        ("rand10x45", random_lock(random_circuit(10, 45, 4, rng), 12, rng)),
    ]


def run_attacks():
    rows = []
    for name, locked in make_targets():
        exact = SATAttack().run(locked)
        approx = AppSAT(error_threshold=0.02).run(
            locked, np.random.default_rng(60)
        )
        rows.append(
            {
                "name": name,
                "key_len": locked.key_length,
                "sat_dips": exact.iterations,
                "sat_ok": exact.success
                and locked.key_is_functionally_correct(exact.key),
                "app_dips": approx.iterations,
                "app_err": locked.wrong_key_error_rate(
                    approx.key, np.random.default_rng(61), m=2048
                )
                if approx.key is not None
                else 1.0,
                "app_exact": approx.exact_termination,
            }
        )
    return rows


def test_sat_vs_appsat(benchmark, report):
    rows = benchmark.pedantic(run_attacks, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "circuit",
            "|key|",
            "SAT DIPs",
            "SAT exact?",
            "AppSAT rounds",
            "AppSAT err [%]",
            "2^|key|",
        ],
        title="E6: exact SAT attack vs approximate AppSAT on RLL-locked circuits",
    )
    for row in rows:
        table.add_row(
            row["name"],
            row["key_len"],
            row["sat_dips"],
            "yes" if row["sat_ok"] else "NO",
            row["app_dips"],
            f"{100 * row['app_err']:.2f}",
            2 ** row["key_len"],
        )
    report("sat_appsat", table.render())

    for row in rows:
        # Exact identification always succeeds on RLL.
        assert row["sat_ok"], row["name"]
        # DIP count is tiny against exhaustive key search.
        assert row["sat_dips"] < 2 ** row["key_len"] / 4, row["name"]
        # AppSAT's key error is within (a small multiple of) the threshold.
        assert row["app_err"] <= 0.10, row["name"]

"""E7 — Angluin's L* against sequentially locked FSMs (Section V-B).

The paper's point: an obfuscated sequential circuit is still a DFA/Mealy
machine, and "if the number of possible input patterns to the FSM would
not be exponential", Angluin's method learns it — obfuscation states, key
path and all.  Moreover L* outputs DFAs (improper relative to a gate-level
representation), illustrating the hypothesis-representation axis.

Expected shape: exact behavioural recovery for every locked machine, with
membership-query counts polynomial in the state count, and the unlocking
word recoverable from the learned model.
"""

import numpy as np

from repro.analysis.tables import TableBuilder
from repro.automata.mealy import MealyMachine
from repro.locking.sequential import (
    harpoon_lock,
    recover_key_sequence,
    unlock_by_lstar,
)


def run_lstar_sweep():
    rows = []
    for states, key_len in [(3, 2), (5, 3), (8, 4), (12, 5)]:
        rng = np.random.default_rng(states * 10 + key_len)
        machine = MealyMachine.random(states, (0, 1), ("lo", "hi"), rng)
        key = tuple(int(b) for b in rng.integers(0, 2, size=key_len))
        locked = harpoon_lock(machine, key, rng)
        result = unlock_by_lstar(locked, "hi")
        word = recover_key_sequence(locked)
        rows.append(
            {
                "states": states,
                "key_len": key_len,
                "locked_states": locked.locked.num_states,
                "learned_states": result.learned_states,
                "mq": result.membership_queries,
                "match": result.behaviour_matches,
                "unlock_word": word,
            }
        )
    return rows


def test_lstar_unlocks_fsms(benchmark, report):
    rows = benchmark.pedantic(run_lstar_sweep, rounds=1, iterations=1)

    table = TableBuilder(
        [
            "FSM states",
            "|key|",
            "locked states",
            "learned DFA states",
            "membership queries",
            "exact?",
            "unlock word found",
        ],
        title="E7: L* learning of HARPOON-locked Mealy machines",
    )
    for row in rows:
        table.add_row(
            row["states"],
            row["key_len"],
            row["locked_states"],
            row["learned_states"],
            row["mq"],
            "yes" if row["match"] else "NO",
            "yes" if row["unlock_word"] is not None else "NO",
        )
    report("lstar_fsm", table.render())

    for row in rows:
        assert row["match"], row
        assert row["unlock_word"] is not None, row
        # Polynomial query counts: well under |states|^2 * alphabet * 50.
        assert row["mq"] < 50 * 2 * row["locked_states"] ** 2, row
    # Query counts grow with machine size (sanity on the sweep).
    assert rows[-1]["mq"] > rows[0]["mq"]

"""Satellite regression: ``_aggregate_cache_stats`` vs heterogeneous trials.

A run's results mix provenances: cached trials carry the full
``artifact_store.*`` counter set, uncached ones only part of it, and
records replayed from a pre-store resume ledger can lack counters,
queries, or the entire telemetry dict.  The aggregator must treat every
missing key as 0 — never raise, never skew the totals.
"""

from repro.__main__ import _aggregate_cache_stats
from repro.runtime.runner import TrialResult


def result(telemetry):
    return TrialResult(index=0, value=[1.0], seconds=0.0, telemetry=telemetry)


def counters(**kwargs):
    return {"queries": {"counters": {f"artifact_store.{k}": v for k, v in kwargs.items()}}}


class TestHeterogeneousTelemetry:
    def test_full_counter_sets_sum(self):
        results = [
            result(counters(hits=2, misses=1, evictions=0, corrupt=0,
                            stores=1, bytes_served=100, bytes_stored=50)),
            result(counters(hits=3, misses=0, evictions=1, corrupt=1,
                            stores=0, bytes_served=10, bytes_stored=0)),
        ]
        totals = _aggregate_cache_stats(results)
        assert totals == {
            "hits": 5, "misses": 1, "evictions": 1, "corrupt": 1,
            "stores": 1, "bytes_served": 110, "bytes_stored": 50,
        }

    def test_partial_counter_sets_default_missing_keys_to_zero(self):
        results = [
            result(counters(hits=4)),  # a hit-only trial
            result(counters(misses=2, bytes_stored=64)),  # a miss-only trial
        ]
        totals = _aggregate_cache_stats(results)
        assert totals["hits"] == 4
        assert totals["misses"] == 2
        assert totals["bytes_stored"] == 64
        assert totals["evictions"] == 0

    def test_trials_without_counters_or_telemetry_are_skipped(self):
        results = [
            result(None),  # replayed from a pre-telemetry ledger
            result({}),  # telemetry without queries
            result({"queries": None}),  # queries explicitly null
            result({"queries": {}}),  # queries without counters
            result({"queries": {"counters": None}}),  # counters null
            result({"queries": "not-a-dict"}),  # malformed snapshot
            result(counters(hits=1)),
        ]
        totals = _aggregate_cache_stats(results)
        assert totals["hits"] == 1
        assert sum(totals.values()) == 1

    def test_unrelated_counters_are_ignored(self):
        telemetry = {
            "queries": {
                "counters": {
                    "crp_cache.hits": 7,  # legacy name, not artifact_store.*
                    "artifact_store.hits": 2,
                    "spans.totally_unrelated": 9,
                }
            }
        }
        assert _aggregate_cache_stats([result(telemetry)])["hits"] == 2

    def test_empty_run_is_all_zero(self):
        totals = _aggregate_cache_stats([])
        assert set(totals) == {
            "hits", "misses", "evictions", "corrupt",
            "stores", "bytes_served", "bytes_stored",
        }
        assert all(v == 0 for v in totals.values())

    def test_none_valued_counters_count_as_zero(self):
        telemetry = {"queries": {"counters": {"artifact_store.hits": None}}}
        assert _aggregate_cache_stats([result(telemetry)])["hits"] == 0

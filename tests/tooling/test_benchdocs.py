"""BENCHMARKS.md generation: deterministic render + the CI drift gate."""

import json

from repro.tooling.benchdocs import render_benchmarks_markdown


def test_render_is_deterministic(tmp_path):
    (tmp_path / "BENCH_x.json").write_text(
        json.dumps(
            {
                "generated_by": "cmd",
                "cases": [
                    {"name": "a", "fit": {"old_s": 1.0, "new_s": 0.5, "speedup": 2.0}},
                    {"name": "b", "fit": {"old_s": 2.0, "new_s": 1.0, "speedup": 2.0}},
                ],
            }
        )
    )
    first = render_benchmarks_markdown(tmp_path)
    second = render_benchmarks_markdown(tmp_path)
    assert first == second
    assert "## `BENCH_x.json`" in first
    assert "fit.speedup" in first
    assert "| a |" in first and "| b |" in first


def test_multiple_files_sorted_and_empty_dir_noted(tmp_path):
    (tmp_path / "BENCH_zz.json").write_text(json.dumps({"cases": []}))
    (tmp_path / "BENCH_aa.json").write_text(json.dumps({"cases": []}))
    page = render_benchmarks_markdown(tmp_path)
    assert page.index("BENCH_aa") < page.index("BENCH_zz")
    empty = render_benchmarks_markdown(tmp_path / "nothing-here")
    assert "No `BENCH_*.json` baselines found" in empty


def test_committed_page_matches_committed_baselines():
    """The drift gate CI enforces via `python -m repro docs-bench --check`."""
    from pathlib import Path

    rendered = render_benchmarks_markdown("benchmarks/results")
    committed = Path("docs/BENCHMARKS.md").read_text()
    assert committed == rendered, (
        "docs/BENCHMARKS.md is stale — regenerate with `python -m repro docs-bench`"
    )


def test_cli_check_mode(tmp_path, capsys):
    from repro.__main__ import main

    (tmp_path / "BENCH_x.json").write_text(json.dumps({"cases": [{"name": "a"}]}))
    out = tmp_path / "page.md"
    assert main(["docs-bench", "--results", str(tmp_path), "--out", str(out)]) == 0
    assert main(
        ["docs-bench", "--results", str(tmp_path), "--out", str(out), "--check"]
    ) == 0
    out.write_text(out.read_text() + "tampered\n")
    assert main(
        ["docs-bench", "--results", str(tmp_path), "--out", str(out), "--check"]
    ) == 1
    assert "DRIFT" in capsys.readouterr().out

"""The AST docstring-coverage linter (the interrogate stand-in)."""

import textwrap

import pytest

from repro.tooling.docscov import measure_docstring_coverage, measure_file


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def test_counts_module_classes_and_public_functions(tmp_path):
    path = write(
        tmp_path,
        "mod.py",
        '''
        """Module docstring."""

        def documented():
            """Yes."""

        def undocumented():
            pass

        class Widget:
            """A class."""

            def method(self):
                pass
        ''',
    )
    cov = measure_file(path)
    # module + 2 functions + class + method = 5; 3 documented.
    assert (cov.total, cov.documented) == (5, 3)
    assert set(cov.missing) == {"undocumented", "Widget.method"}


def test_private_and_dunders_skipped_by_default(tmp_path):
    path = write(
        tmp_path,
        "mod.py",
        '''
        """Doc."""

        def _helper():
            pass

        class Thing:
            """Doc."""

            def __init__(self):
                pass

            def __repr__(self):
                return ""

            def _internal(self):
                pass
        ''',
    )
    cov = measure_file(path)
    assert cov.total == 2  # module + Thing only
    assert cov.missing == ()
    with_private = measure_file(path, include_private=True)
    assert with_private.total == 5  # + _helper, __init__, _internal
    assert "Thing.__repr__" not in with_private.missing


def test_nested_closures_not_counted(tmp_path):
    path = write(
        tmp_path,
        "mod.py",
        '''
        """Doc."""

        def outer():
            """Doc."""
            def closure():
                pass
            return closure
        ''',
    )
    cov = measure_file(path)
    assert cov.total == 2
    assert cov.missing == ()


def test_methods_of_private_class_still_counted(tmp_path):
    path = write(
        tmp_path,
        "mod.py",
        '''
        """Doc."""

        class _Hidden:
            def public_method(self):
                pass
        ''',
    )
    cov = measure_file(path)
    assert "_Hidden.public_method" in cov.missing


def test_missing_module_docstring_reported(tmp_path):
    path = write(tmp_path, "mod.py", "x = 1\n")
    cov = measure_file(path)
    assert cov.missing == ("<module>",)
    assert cov.percent == 0.0


def test_directory_recursion_and_render(tmp_path):
    write(tmp_path, "a.py", '"""Doc."""\n')
    sub = tmp_path / "pkg"
    sub.mkdir()
    write(sub, "b.py", "def f():\n    pass\n")
    report = measure_docstring_coverage([tmp_path])
    assert report.total == 3  # a.py module, b.py module, f
    assert report.documented == 1
    rendered = report.render(verbose=True)
    assert rendered.endswith("TOTAL: 1/3 (33.3%)")
    assert "missing: f" in rendered


def test_rejects_non_python_path(tmp_path):
    other = tmp_path / "notes.txt"
    other.write_text("hi")
    with pytest.raises(ValueError, match="not a Python source"):
        measure_docstring_coverage([other])


def test_instrumented_packages_hold_the_ci_threshold():
    """The gate CI enforces: telemetry/kernels/runtime stay >= 95%."""
    report = measure_docstring_coverage(
        ["src/repro/telemetry", "src/repro/kernels", "src/repro/runtime"]
    )
    assert report.percent >= 95.0

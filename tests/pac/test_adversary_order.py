"""Unit tests for the adversary-model dominance order and noise helpers."""

import numpy as np
import pytest

from repro.pac.adversary import (
    AdversaryModel,
    GENERAL_UNIFORM_ADVERSARY,
    LEARNPOLY_ADVERSARY,
    LMN_ADVERSARY,
    PERCEPTRON_ADVERSARY,
    comparable,
    dominates,
)
from repro.pac.framework import AccessType, Distribution, HypothesisClass
from repro.pufs.metrics import xor_reliability_prediction
from repro.pufs.xor_arbiter import XORArbiterPUF
from repro.pufs.crp import uniform_challenges


class TestDominance:
    def test_reflexive(self):
        for model in (PERCEPTRON_ADVERSARY, LMN_ADVERSARY, LEARNPOLY_ADVERSARY):
            assert dominates(model, model)

    def test_learnpoly_dominates_lmn(self):
        """More access (MQ) and same distribution/hypothesis freedom."""
        assert dominates(LEARNPOLY_ADVERSARY, LMN_ADVERSARY)
        assert not dominates(LMN_ADVERSARY, LEARNPOLY_ADVERSARY)

    def test_lmn_dominates_general_uniform(self):
        """Improper hypothesis freedom on top of the same access."""
        assert dominates(LMN_ADVERSARY, GENERAL_UNIFORM_ADVERSARY)

    def test_lmn_model_dominates_perceptron_model(self):
        """Uniform + improper is a more permissive attacker model than
        arbitrary-distribution + proper: easier to instantiate on every
        axis.  (The paper's 'not comparable' verdict for [9] vs [17] is
        about the *results* — an algorithm-specific mistake bound vs an
        empirical run with correlated chains — not about this freedom
        order.)"""
        assert dominates(LMN_ADVERSARY, PERCEPTRON_ADVERSARY)

    def test_axis_tradeoff_is_incomparable(self):
        """A model trading access for distribution freedom is incomparable."""
        arbitrary_mq = AdversaryModel(
            name="arbitrary+MQ",
            distribution=Distribution.ARBITRARY,
            access=AccessType.MEMBERSHIP_QUERIES,
            hypothesis_class=HypothesisClass.PROPER_LTF,
        )
        uniform_passive = AdversaryModel(
            name="uniform+passive",
            distribution=Distribution.UNIFORM,
            access=AccessType.UNIFORM_EXAMPLES,
            hypothesis_class=HypothesisClass.PROPER_LTF,
        )
        assert not comparable(arbitrary_mq, uniform_passive)

    def test_full_freedom_dominates_everything(self):
        top = AdversaryModel(
            name="top",
            distribution=Distribution.UNIFORM,
            access=AccessType.MEMBERSHIP_AND_EQUIVALENCE,
            hypothesis_class=HypothesisClass.IMPROPER,
        )
        for model in (
            PERCEPTRON_ADVERSARY,
            GENERAL_UNIFORM_ADVERSARY,
            LMN_ADVERSARY,
            LEARNPOLY_ADVERSARY,
        ):
            assert dominates(top, model)


class TestXorReliabilityFormula:
    def test_k1_identity(self):
        assert xor_reliability_prediction(0.05, 1) == pytest.approx(0.95)

    def test_decreases_with_k(self):
        values = [xor_reliability_prediction(0.05, k) for k in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_matches_simulation(self):
        """Analytic (1+(1-2p)^k)/2 vs a simulated XOR PUF."""
        rng = np.random.default_rng(0)
        n, k, sigma = 64, 4, 0.4
        puf = XORArbiterPUF(n, k, rng, noise_sigma=sigma)
        challenges = uniform_challenges(4000, n, rng)
        # Per-chain flip rate, measured.
        chain = puf.chains[0]
        ideal = chain.eval(challenges)
        flips = []
        for _ in range(5):
            noisy = chain.eval_noisy(challenges, rng)
            flips.append(np.mean(noisy != ideal))
        p = float(np.mean(flips))
        predicted = xor_reliability_prediction(p, k)
        # Measured XOR stability.
        xor_ideal = puf.eval(challenges)
        stable = []
        for _ in range(5):
            stable.append(np.mean(puf.eval_noisy(challenges, rng) == xor_ideal))
        measured = float(np.mean(stable))
        assert measured == pytest.approx(predicted, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            xor_reliability_prediction(0.6, 2)
        with pytest.raises(ValueError):
            xor_reliability_prediction(0.1, 0)

"""Unit tests for the AC^0 learnability bounds (Section III's LL thread)."""

import math

import pytest

from repro.locking.circuits import c17, present_sbox, ripple_carry_adder
from repro.pac.circuit_bounds import (
    ac0_distribution_free_time_log10,
    ac0_uniform_lmn_sample_log10,
    assess_circuit_learnability,
    assess_netlist_learnability,
)
from repro.pac.framework import PACParameters

PARAMS = PACParameters(0.05, 0.05)


class TestDistributionFreeBound:
    def test_grows_with_n(self):
        values = [ac0_distribution_free_time_log10(n, 3) for n in (64, 256, 1024)]
        assert values == sorted(values)

    def test_deeper_circuits_harder_to_beat(self):
        # Larger d pushes n^{1/d} down, so the 2^{n - n^{1/d}} bound grows.
        shallow = ac0_distribution_free_time_log10(256, 2)
        deep = ac0_distribution_free_time_log10(256, 6)
        assert deep > shallow

    def test_depth_one_degenerates(self):
        # d=1: exponent n - n = 0 -> trivial bound.
        assert ac0_distribution_free_time_log10(64, 1) == pytest.approx(0.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            ac0_distribution_free_time_log10(0, 2)
        with pytest.raises(ValueError):
            ac0_distribution_free_time_log10(8, 0)
        with pytest.raises(ValueError):
            ac0_distribution_free_time_log10(8, 2, hidden_constant=0)


class TestUniformLMNBound:
    def test_quasipolynomial_in_n(self):
        """log of the bound is polylog(n)-ish: doubling n adds little."""
        a = ac0_uniform_lmn_sample_log10(256, 2, 100, PARAMS)
        b = ac0_uniform_lmn_sample_log10(512, 2, 100, PARAMS)
        assert b - a < 0.35 * a

    def test_depth_in_the_exponent(self):
        shallow = ac0_uniform_lmn_sample_log10(64, 2, 100, PARAMS)
        deep = ac0_uniform_lmn_sample_log10(64, 4, 100, PARAMS)
        assert deep > 10 * shallow

    def test_validates(self):
        with pytest.raises(ValueError):
            ac0_uniform_lmn_sample_log10(1, 2, 10, PARAMS)
        with pytest.raises(ValueError):
            ac0_uniform_lmn_sample_log10(8, 0, 10, PARAMS)


class TestAssessment:
    def test_the_sections_iii_gap(self):
        """Asymptotically the distribution-free cost is exponential in n
        while uniform-PAC is quasi-polynomial; for large n at small depth
        the gap is overwhelming — the paper's LL pitfall.  (The crossover
        sits at large n because the quasi-poly exponent log^d(size/eps) is
        a big constant; below it the *lower* bound is smaller, which is
        exactly why small-instance intuition misleads.)"""
        assessment = assess_circuit_learnability(n=100_000, depth=2, size=5000)
        assert assessment.uniform_is_cheaper
        assert (
            assessment.distribution_free_log10
            > 3 * assessment.uniform_lmn_log10
        )
        # Below the crossover the ordering flips — quote bounds with care.
        small = assess_circuit_learnability(n=1024, depth=3, size=5000)
        assert not small.uniform_is_cheaper

    def test_netlist_depth_and_size_feed_the_assessment(self):
        net = c17()
        assessment = assess_netlist_learnability(net, PARAMS)
        assert assessment.n == 5
        assert assessment.size == 6
        assert assessment.depth == net.depth() == 3

    def test_netlist_depth_values(self):
        assert c17().depth() == 3
        assert present_sbox().depth() >= 2
        # A w-bit ripple adder has depth ~2 per stage.
        assert ripple_carry_adder(4).depth() >= 6

    def test_summary_text(self):
        text = assess_circuit_learnability(64, 2, 30).summary()
        assert "distribution-free" in text
        assert "uniform" in text

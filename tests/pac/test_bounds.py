"""Unit tests for repro.pac.bounds and framework."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pac.bounds import (
    bourgain_junta_size,
    general_vc_bound,
    general_vc_bound_log10,
    learnpoly_bound,
    learnpoly_bound_log10,
    learnpoly_sparsity,
    lmn_bound,
    lmn_bound_log10,
    lmn_degree,
    lmn_feasible,
    perceptron_bound,
    perceptron_bound_log10,
    vc_dim_xor_arbiter,
)
from repro.pac.framework import (
    Distribution,
    PACParameters,
    blumer_sample_bound,
)

PARAMS = PACParameters(eps=0.05, delta=0.05)


class TestPACParameters:
    def test_valid(self):
        p = PACParameters(0.1, 0.01)
        assert p.eps == 0.1

    @pytest.mark.parametrize("eps,delta", [(0.0, 0.1), (1.0, 0.1), (0.1, 0.0), (0.1, 1.0)])
    def test_invalid(self, eps, delta):
        with pytest.raises(ValueError):
            PACParameters(eps, delta)

    def test_frozen(self):
        p = PACParameters(0.1, 0.1)
        with pytest.raises(dataclasses_frozen_error()):
            p.eps = 0.2


def dataclasses_frozen_error():
    import dataclasses

    return dataclasses.FrozenInstanceError


class TestBlumerBound:
    def test_monotone_in_vc(self):
        assert blumer_sample_bound(10, PARAMS) < blumer_sample_bound(100, PARAMS)

    def test_monotone_in_eps(self):
        loose = PACParameters(0.2, 0.05)
        tight = PACParameters(0.01, 0.05)
        assert blumer_sample_bound(10, tight) > blumer_sample_bound(10, loose)

    def test_rejects_bad_vc(self):
        with pytest.raises(ValueError):
            blumer_sample_bound(0, PARAMS)


class TestPerceptronBound:
    def test_formula(self):
        n, k = 16, 2
        expected = (n + 1) ** k / PARAMS.eps**3 + math.log(1 / PARAMS.delta) / PARAMS.eps
        assert perceptron_bound(n, k, PARAMS) == pytest.approx(expected)

    def test_exponential_in_k(self):
        b4 = perceptron_bound(64, 4, PARAMS)
        b5 = perceptron_bound(64, 5, PARAMS)
        assert b5 / b4 == pytest.approx(65, rel=0.01)

    def test_log10_matches_direct(self):
        n, k = 32, 3
        assert perceptron_bound_log10(n, k, PARAMS) == pytest.approx(
            math.log10(perceptron_bound(n, k, PARAMS)), abs=1e-9
        )

    def test_log10_survives_huge_k(self):
        val = perceptron_bound_log10(128, 200, PARAMS)
        assert math.isfinite(val)
        assert val > 300

    def test_validates(self):
        with pytest.raises(ValueError):
            perceptron_bound(0, 2, PARAMS)
        with pytest.raises(ValueError):
            perceptron_bound(16, 0, PARAMS)


class TestGeneralVCBound:
    def test_vc_dim_formula(self):
        n, k = 16, 3
        assert vc_dim_xor_arbiter(n, k) == pytest.approx(
            k * (n + 1) * (1 + math.log(k * n + k))
        )

    def test_polynomial_in_k(self):
        # Doubling k should roughly double (not square) the bound.
        b2 = general_vc_bound(64, 2, PARAMS)
        b4 = general_vc_bound(64, 4, PARAMS)
        assert b4 / b2 < 3.0

    def test_log10_consistent(self):
        assert general_vc_bound_log10(32, 4, PARAMS) == pytest.approx(
            math.log10(general_vc_bound(32, 4, PARAMS))
        )


class TestLMNBound:
    def test_degree_formula(self):
        assert lmn_degree(3, 0.1) == pytest.approx(2.32 * 9 / 0.01)

    def test_small_k_finite(self):
        params = PACParameters(0.49, 0.05)
        assert math.isfinite(lmn_bound(64, 1, params))

    def test_large_k_overflows_to_inf(self):
        assert lmn_bound(64, 10, PARAMS) == math.inf
        assert math.isfinite(lmn_bound_log10(64, 10, PARAMS))

    def test_feasibility_frontier(self):
        # k=1 on a large n is feasible; k=10 is not.
        assert lmn_feasible(10**9, 4)  # ln(1e9) ~ 20.7 >= 16
        assert not lmn_feasible(64, 10)
        assert lmn_feasible(64, 2)

    def test_infeasible_regime_matches_paper(self):
        """k >> sqrt(ln n) -> infeasible (Section III-A discussion)."""
        n = 128
        threshold = math.sqrt(math.log(n))
        assert lmn_feasible(n, max(1, int(threshold)))
        assert not lmn_feasible(n, int(4 * threshold) + 2)


class TestLearnPolyBound:
    def test_bourgain_junta(self):
        assert bourgain_junta_size(0.25) == math.ceil(0.25**-1.5)
        with pytest.raises(ValueError):
            bourgain_junta_size(0.0)
        with pytest.raises(ValueError):
            bourgain_junta_size(0.1, constant=0)

    def test_sparsity(self):
        assert learnpoly_sparsity(3, 4) == 48
        with pytest.raises(ValueError):
            learnpoly_sparsity(0, 2)

    def test_polynomial_in_n_for_log_k(self):
        """Corollary 2: k = log n with MQ stays polynomial in n."""
        params = PACParameters(0.25, 0.05)
        bounds = []
        for n in (64, 256, 1024):
            k = int(math.log2(n))
            bounds.append(learnpoly_bound(n, k, params, junta_size=4))
        # Polynomial growth: quadrupling n raises the bound by a constant
        # power, not an exponential jump.
        assert bounds[2] / bounds[0] < (1024 / 64) ** 4

    def test_log10_consistent(self):
        assert learnpoly_bound_log10(64, 3, PARAMS, junta_size=3) == pytest.approx(
            math.log10(learnpoly_bound(64, 3, PARAMS, junta_size=3))
        )

    def test_junta_override(self):
        small = learnpoly_bound(64, 3, PARAMS, junta_size=2)
        large = learnpoly_bound(64, 3, PARAMS, junta_size=8)
        assert small < large


class TestCrossBoundComparisons:
    """The shape claims of Table I as assertions."""

    def test_general_beats_perceptron_for_moderate_k(self):
        # For k >= 3 the VC route is dramatically cheaper than (n+1)^k.
        for k in (3, 5, 8):
            assert general_vc_bound(64, k, PARAMS) < perceptron_bound(64, k, PARAMS)

    def test_lmn_worst_for_large_k(self):
        k = 8
        assert lmn_bound_log10(64, k, PARAMS) > perceptron_bound_log10(64, k, PARAMS)

    def test_learnpoly_cheapest_at_log_k_regime(self):
        params = PACParameters(0.25, 0.05)
        n = 256
        k = 8  # log2(256)
        lp = learnpoly_bound_log10(n, k, params, junta_size=3)
        assert lp < perceptron_bound_log10(n, k, params)
        assert lp < lmn_bound_log10(n, k, params)

    @given(st.integers(2, 128), st.integers(1, 12))
    @settings(max_examples=50)
    def test_all_log10_forms_finite(self, n, k):
        assert math.isfinite(perceptron_bound_log10(n, k, PARAMS))
        assert math.isfinite(general_vc_bound_log10(n, k, PARAMS))
        assert math.isfinite(lmn_bound_log10(n, k, PARAMS))
        assert math.isfinite(learnpoly_bound_log10(n, k, PARAMS, junta_size=4))

"""Unit tests for repro.pac.adversary and assessment."""

import math

import pytest

from repro.pac.adversary import (
    TABLE1_ADVERSARIES,
    AdversaryModel,
    GENERAL_UNIFORM_ADVERSARY,
    LEARNPOLY_ADVERSARY,
    LMN_ADVERSARY,
    PERCEPTRON_ADVERSARY,
)
from repro.pac.assessment import (
    Assessment,
    Verdict,
    XorArbiterSpec,
    assess_xor_arbiter,
    table1_rows,
    verdicts_disagree,
)
from repro.pac.framework import AccessType, Distribution, HypothesisClass, PACParameters

PARAMS = PACParameters(eps=0.05, delta=0.05)


class TestAdversaryModels:
    def test_table1_has_four_rows(self):
        assert len(TABLE1_ADVERSARIES) == 4
        names = [a.name for a in TABLE1_ADVERSARIES]
        assert len(set(names)) == 4

    def test_describe_mentions_all_axes(self):
        desc = LMN_ADVERSARY.describe()
        assert "uniform" in desc
        assert "LMN" in desc
        assert "improper" in desc

    def test_perceptron_is_arbitrary_distribution(self):
        assert PERCEPTRON_ADVERSARY.distribution is Distribution.ARBITRARY

    def test_learnpoly_uses_membership_queries(self):
        assert LEARNPOLY_ADVERSARY.access is AccessType.MEMBERSHIP_QUERIES

    def test_improper_rows(self):
        assert LMN_ADVERSARY.hypothesis_class is HypothesisClass.IMPROPER
        assert LEARNPOLY_ADVERSARY.hypothesis_class is HypothesisClass.IMPROPER

    def test_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            PERCEPTRON_ADVERSARY.name = "x"


class TestTable1SettingsRegistry:
    def test_registry_matches_adversary_constants(self):
        """The human-readable registry and the AdversaryModel objects must
        describe the same four settings (they feed docs and code
        respectively)."""
        from repro.pac.bounds import TABLE1_SETTINGS

        by_name = {a.name: a for a in TABLE1_ADVERSARIES}
        assert set(TABLE1_SETTINGS) == set(by_name)
        for name, setting in TABLE1_SETTINGS.items():
            model = by_name[name]
            assert setting["distribution"] == model.distribution.value
            assert setting["access"] == model.access.value
            expected_algo = model.algorithm or "independent"
            assert setting["algorithm"] == expected_algo


class TestSpec:
    def test_valid(self):
        spec = XorArbiterSpec(64, 4)
        assert spec.n == 64

    def test_invalid(self):
        with pytest.raises(ValueError):
            XorArbiterSpec(0, 4)
        with pytest.raises(ValueError):
            XorArbiterSpec(64, 0)


class TestAssessment:
    def test_all_rows_produce_assessments(self):
        rows = table1_rows(XorArbiterSpec(64, 4), PARAMS, junta_size=4)
        assert len(rows) == 4
        for row in rows:
            assert isinstance(row, Assessment)
            assert math.isfinite(row.crp_bound_log10)
            assert row.verdict in Verdict

    def test_small_puf_feasible_everywhere(self):
        # The LMN exponent 2.32 k^2/eps^2 is large even for k=1 unless the
        # accuracy demand is loose — hence eps close to 1/2 here.
        params = PACParameters(0.49, 0.1)
        rows = table1_rows(XorArbiterSpec(16, 1), params, junta_size=2)
        assert all(r.verdict is Verdict.FEASIBLE for r in rows)

    def test_large_k_splits_verdicts(self):
        """The paper's pitfall: verdicts depend on the adversary model."""
        rows = table1_rows(XorArbiterSpec(64, 9), PARAMS, junta_size=3)
        by_name = {r.adversary.name: r for r in rows}
        # Perceptron route: (65)^9 / eps^3 ~ 10^20 -> infeasible.
        assert by_name["[9] (Perceptron)"].verdict is Verdict.INFEASIBLE
        # VC route: polynomial -> feasible.
        assert by_name["General (VC)"].verdict is Verdict.FEASIBLE
        # LMN: k >> sqrt(ln 64) -> infeasible.
        assert by_name["Corollary 1 (LMN)"].verdict is Verdict.INFEASIBLE
        assert verdicts_disagree(rows)

    def test_membership_queries_break_log_n_xor(self):
        """Corollary 2's consequence in executable form."""
        n = 256
        k = 8  # = log2(n)
        params = PACParameters(0.25, 0.05)
        lmn = assess_xor_arbiter(XorArbiterSpec(n, k), LMN_ADVERSARY, params)
        mq = assess_xor_arbiter(
            XorArbiterSpec(n, k), LEARNPOLY_ADVERSARY, params, junta_size=3
        )
        assert lmn.verdict is Verdict.INFEASIBLE
        assert mq.verdict is Verdict.FEASIBLE

    def test_unknown_adversary_rejected(self):
        other = AdversaryModel(
            name="mystery",
            distribution=Distribution.UNIFORM,
            access=AccessType.RANDOM_EXAMPLES,
            hypothesis_class=HypothesisClass.IMPROPER,
        )
        with pytest.raises(ValueError):
            assess_xor_arbiter(XorArbiterSpec(64, 4), other, PARAMS)

    def test_summary_readable(self):
        row = assess_xor_arbiter(XorArbiterSpec(64, 2), GENERAL_UNIFORM_ADVERSARY, PARAMS)
        text = row.summary()
        assert "General (VC)" in text
        assert "feasible" in text

    def test_rationales_mention_regime(self):
        lmn_small = assess_xor_arbiter(XorArbiterSpec(64, 1), LMN_ADVERSARY, PACParameters(0.3, 0.1))
        lmn_large = assess_xor_arbiter(XorArbiterSpec(64, 10), LMN_ADVERSARY, PARAMS)
        assert "stays polynomial" in lmn_small.rationale
        assert "super-polynomial" in lmn_large.rationale

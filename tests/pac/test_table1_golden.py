"""Golden regression for the paper's headline table.

``table1_rows`` at the paper's reference point (n=64, k=6,
eps=delta=0.05) is the repository's front-page output — ``python -m
repro assess`` prints exactly these numbers.  This snapshot pins the
log10 CRP bounds and verdicts so refactors (vectorisation, runtime
changes, bound rewrites) cannot silently shift them.  If a change is
*supposed* to alter the maths, update the snapshot in the same commit
and say why.
"""

import math

import pytest

from repro.pac import PACParameters, XorArbiterSpec, table1_rows
from repro.pac.assessment import Verdict

# (adversary name, log10 CRP bound, verdict) at n=64, k=6, eps=delta=0.05.
GOLDEN = [
    ("[9] (Perceptron)", 14.780570126849119, Verdict.FEASIBLE),
    ("General (VC)", 5.211750045229823, Verdict.FEASIBLE),
    ("Corollary 1 (LMN)", 60341.33707385184, Verdict.INFEASIBLE),
    ("Corollary 2 (LearnPoly)", 59.50316819093705, Verdict.INFEASIBLE),
]


@pytest.fixture(scope="module")
def rows():
    return table1_rows(XorArbiterSpec(64, 6), PACParameters(eps=0.05, delta=0.05))


def test_row_order_and_names(rows):
    assert [r.adversary.name for r in rows] == [name for name, _, _ in GOLDEN]


def test_log10_bounds_are_pinned(rows):
    for row, (name, log10_bound, _) in zip(rows, GOLDEN):
        assert row.crp_bound_log10 == pytest.approx(log10_bound, rel=1e-12), (
            f"{name}: log10 bound drifted from the golden snapshot"
        )


def test_verdicts_are_pinned(rows):
    assert [r.verdict for r in rows] == [v for _, _, v in GOLDEN]


def test_bound_and_log10_consistent(rows):
    for row in rows:
        if math.isfinite(row.crp_bound):
            assert math.log10(row.crp_bound) == pytest.approx(
                row.crp_bound_log10, rel=1e-9
            )
        else:
            # Overflowed bounds must still carry a finite log10 surrogate.
            assert math.isfinite(row.crp_bound_log10)


def test_headline_disagreement_holds(rows):
    """The paper's point: the same device gets conflicting verdicts."""
    assert {r.verdict for r in rows} == {Verdict.FEASIBLE, Verdict.INFEASIBLE}

"""Unit tests for the claim-transfer auditor."""

import pytest

from repro.pac.adversary import (
    GENERAL_UNIFORM_ADVERSARY,
    LEARNPOLY_ADVERSARY,
    LMN_ADVERSARY,
    PERCEPTRON_ADVERSARY,
)
from repro.pac.assessment import XorArbiterSpec, table1_rows
from repro.pac.audit import (
    ClaimKind,
    TransferVerdict,
    audit_assessments,
    audit_transfer,
)
from repro.pac.framework import PACParameters


class TestAuditTransfer:
    def test_same_model_always_sound(self):
        for kind in ClaimKind:
            audit = audit_transfer(kind, LMN_ADVERSARY, LMN_ADVERSARY)
            assert audit.verdict is TransferVerdict.SOUND

    def test_attack_transfers_upward(self):
        """An attack under the VC model also works for the freer LMN model."""
        audit = audit_transfer(
            ClaimKind.ATTACK, GENERAL_UNIFORM_ADVERSARY, LMN_ADVERSARY
        )
        assert audit.verdict is TransferVerdict.SOUND

    def test_attack_does_not_transfer_downward(self):
        """An MQ-based attack says nothing about a passive attacker."""
        audit = audit_transfer(
            ClaimKind.ATTACK, LEARNPOLY_ADVERSARY, GENERAL_UNIFORM_ADVERSARY
        )
        assert audit.verdict is TransferVerdict.UNSOUND

    def test_resistance_transfers_downward(self):
        """Resisting the MQ adversary implies resisting the passive one."""
        audit = audit_transfer(
            ClaimKind.RESISTANCE, LEARNPOLY_ADVERSARY, LMN_ADVERSARY
        )
        assert audit.verdict is TransferVerdict.SOUND

    def test_the_papers_headline_pitfall(self):
        """Quoting [9]'s resistance (Perceptron model) against an improper
        uniform attacker is unsound — Section V-B in one predicate."""
        audit = audit_transfer(
            ClaimKind.RESISTANCE, PERCEPTRON_ADVERSARY, LMN_ADVERSARY
        )
        assert audit.verdict is TransferVerdict.UNSOUND
        assert "pitfall" in audit.reason

    def test_summary_readable(self):
        audit = audit_transfer(
            ClaimKind.RESISTANCE, PERCEPTRON_ADVERSARY, LEARNPOLY_ADVERSARY
        )
        text = audit.summary()
        assert "resistance" in text
        assert "unsound" in text


class TestAuditAssessments:
    def test_table1_batch_contains_unsound_quotations(self):
        params = PACParameters(0.05, 0.05)
        rows = table1_rows(XorArbiterSpec(64, 9), params, junta_size=3)
        unsound = audit_assessments(rows)
        # At (64, 9): Perceptron & LMN say infeasible, VC & LearnPoly say
        # feasible — several cross-quotations must be flagged.
        assert len(unsound) >= 2
        # The flagship: quoting the LMN resistance against the MQ model.
        assert any(
            a.kind is ClaimKind.RESISTANCE
            and a.proved_in.name == LMN_ADVERSARY.name
            and a.quoted_in.name == LEARNPOLY_ADVERSARY.name
            for a in unsound
        )

    def test_borderline_rows_skipped(self):
        import dataclasses

        params = PACParameters(0.05, 0.05)
        rows = table1_rows(XorArbiterSpec(64, 2), params, junta_size=3)
        from repro.pac.assessment import Verdict

        rows = [dataclasses.replace(r, verdict=Verdict.BORDERLINE) for r in rows]
        assert audit_assessments(rows) == []

"""Sharded execution: bit-identity, stealing, shard ledgers, shard faults.

Pins the ``TrialRunner(shards=N)`` contract: results are bit-identical to
the serial path regardless of which shard executes which trial, idle
shards steal from the tail of busy ones on skewed mixes, each shard
appends to its own mergeable ``ledger-shardNN.jsonl`` (so a crashed shard
loses only its own unwritten trials and ``--resume`` re-executes exactly
those), and worker death / hangs inside one shard are retried under the
same policy as the single-pool path without touching other shards.
"""

import numpy as np
import pytest

from repro.runtime import RetryPolicy, TrialRunner
from repro.runtime.seeding import fan_out
from repro.runtime.sharding import (
    WorkStealingScheduler,
    default_shard_chunk,
    partition_items,
    run_sharded,
)
from repro.runtime.workloads import (
    FaultInjectionSpec,
    SkewedSleepSpec,
    fault_injection_trial,
    skewed_sleep_trial,
)
from repro.telemetry import RunLedger
from repro.telemetry.ledger import shard_ledger_name


def items_for(num, master_seed=0):
    return list(enumerate(fan_out(master_seed, num)))


def serial_values(trial_fn, num, master_seed, kwargs):
    report = TrialRunner(workers=1).run(
        trial_fn, num, master_seed=master_seed, trial_kwargs=kwargs
    )
    return report.values()


# ----------------------------------------------------------------------
# Partitioning and the scheduler.
# ----------------------------------------------------------------------
class TestPartitionItems:
    def test_contiguous_near_equal_slices(self):
        parts = partition_items(items_for(10), 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        flat = [index for part in parts for index, _ in part]
        assert flat == list(range(10))  # contiguous, order-preserving

    def test_more_shards_than_items_leaves_empty_tails(self):
        parts = partition_items(items_for(2), 5)
        assert [len(p) for p in parts] == [1, 1, 0, 0, 0]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            partition_items(items_for(2), 0)


class TestWorkStealingScheduler:
    def test_acquires_from_own_head(self):
        sched = WorkStealingScheduler(partition_items(items_for(6), 2))
        assert [i for i, _ in sched.acquire(0, 2)] == [0, 1]
        assert [i for i, _ in sched.acquire(1, 2)] == [3, 4]
        assert sched.executed == [2, 2]
        assert sched.steals == [0, 0]

    def test_dry_shard_steals_from_tail_of_longest(self):
        sched = WorkStealingScheduler([items_for(6), []])
        stolen = sched.acquire(1, 2)
        # Tail items, re-reversed into ascending-index order.
        assert [i for i, _ in stolen] == [4, 5]
        assert sched.steals == [0, 1]
        # The victim's head is untouched.
        assert [i for i, _ in sched.acquire(0, 4)] == [0, 1, 2, 3]

    def test_all_empty_returns_nothing(self):
        sched = WorkStealingScheduler([[], []])
        assert sched.acquire(0, 3) == []
        assert sched.remaining() == 0

    def test_invalid_chunk_rejected(self):
        sched = WorkStealingScheduler([items_for(2)])
        with pytest.raises(ValueError, match="chunk"):
            sched.acquire(0, 0)

    def test_default_chunk_turns_slots_over(self):
        assert default_shard_chunk(0, 4, 1) == 1
        assert default_shard_chunk(800, 4, 2) == 13  # ceil(800 / 64)
        # Small enough that every slot cycles several times.
        assert default_shard_chunk(800, 4, 2) * 4 * 2 * 8 >= 800


# ----------------------------------------------------------------------
# Bit-identity across shard counts.
# ----------------------------------------------------------------------
class TestShardedIdentity:
    def test_sharded_matches_serial_bit_for_bit(self):
        kwargs = {"spec": FaultInjectionSpec(size=3)}
        sharded = TrialRunner(workers=1, shards=3).run(
            fault_injection_trial, 8, master_seed=21, trial_kwargs=kwargs
        )
        assert sharded.executor.startswith("sharded(3x1")
        assert [r.index for r in sharded.results] == list(range(8))
        for a, b in zip(
            sharded.values(), serial_values(fault_injection_trial, 8, 21, kwargs)
        ):
            np.testing.assert_array_equal(a, b)

    def test_more_shards_than_trials(self):
        kwargs = {"spec": FaultInjectionSpec(size=2)}
        report = TrialRunner(workers=1, shards=5).run(
            fault_injection_trial, 3, master_seed=4, trial_kwargs=kwargs
        )
        assert all(r.ok for r in report.results)
        for a, b in zip(
            report.values(), serial_values(fault_injection_trial, 3, 4, kwargs)
        ):
            np.testing.assert_array_equal(a, b)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            TrialRunner(shards=0)

    def test_deterministic_trial_error_surfaces_once_per_shard_run(self):
        kwargs = {"spec": FaultInjectionSpec(size=2, fail_indices=(2,))}
        report = TrialRunner(workers=1, shards=2).run(
            fault_injection_trial, 4, master_seed=1, trial_kwargs=kwargs,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0),
        )
        failed = report.results[2]
        assert not failed.ok
        assert failed.error.category == "trial"
        assert failed.attempts == 1  # deterministic errors are never retried
        assert all(r.ok for i, r in enumerate(report.results) if i != 2)


class TestStealing:
    def test_skewed_mix_is_stolen_from_the_loaded_shard(self):
        """Contiguous partitioning hands shard 0 every slow trial; the idle
        shard must steal from its tail rather than finish early and idle."""
        spec = SkewedSleepSpec(slow_count=4, slow_seconds=0.3, fast_seconds=0.0)
        items = items_for(8, master_seed=33)
        results, scheduler, fallbacks = run_sharded(
            skewed_sleep_trial,
            items,
            {"spec": spec},
            shards=2,
            workers=1,
            chunk_size=1,
        )
        assert fallbacks == [None, None]
        assert sum(scheduler.steals) >= 1
        assert sum(scheduler.executed) == 8
        values = {r.index: r.value for r in results}
        reference = serial_values(
            skewed_sleep_trial, 8, 33, {"spec": spec}
        )
        for index in range(8):
            np.testing.assert_array_equal(values[index], reference[index])

    def test_executor_string_reports_steals(self):
        spec = SkewedSleepSpec(slow_count=3, slow_seconds=0.3, fast_seconds=0.0)
        report = TrialRunner(workers=1, shards=2, chunk_size=1).run(
            skewed_sleep_trial, 6, master_seed=2, trial_kwargs={"spec": spec}
        )
        assert "steals=" in report.executor


# ----------------------------------------------------------------------
# Shard ledgers: per-shard files, transparent merge, crash-safe resume.
# ----------------------------------------------------------------------
class TestShardLedgers:
    def run_sharded_with_ledger(self, tmp_path, num=6, seed=3, spec=None):
        spec = spec or FaultInjectionSpec(size=2)
        ledger = RunLedger(tmp_path / "run")
        report = TrialRunner(workers=1, shards=2).run(
            fault_injection_trial, num, master_seed=seed,
            trial_kwargs={"spec": spec}, ledger=ledger,
        )
        return ledger, report

    def test_each_shard_writes_its_own_file(self, tmp_path):
        ledger, _ = self.run_sharded_with_ledger(tmp_path)
        names = [p.name for p in ledger.shard_paths()]
        assert names == [shard_ledger_name(0), shard_ledger_name(1)]
        assert not ledger.path.exists()  # no contended single file

    def test_read_latest_merges_shards_completely(self, tmp_path):
        ledger, report = self.run_sharded_with_ledger(tmp_path)
        merged = ledger.read_latest()
        assert sorted(merged) == list(range(6))
        for index, record in merged.items():
            assert record["status"] == "ok"
            np.testing.assert_array_equal(
                np.asarray(record["value"]), report.results[index].value
            )

    def test_crashed_shard_resumes_and_stays_bit_identical(self, tmp_path):
        """Deleting one shard's ledger simulates a shard whose records never
        landed (killed before any flush): resume must replay the surviving
        shard's records and re-execute exactly the lost indices, ending
        byte-equal to an uninterrupted run."""
        ledger, report = self.run_sharded_with_ledger(tmp_path, num=8, seed=7)
        lost = ledger.shard_paths()[1]
        survived = set(ledger.read_latest()) - {
            r["index"]
            for r in RunLedger(ledger.run_dir, filename=lost.name).read()
        }
        lost.unlink()
        resumed = TrialRunner(workers=1).run(
            fault_injection_trial, 8, master_seed=7,
            trial_kwargs={"spec": FaultInjectionSpec(size=2)},
            resume_from=ledger,
        )
        assert resumed.replayed_count == len(survived)
        for a, b in zip(resumed.values(), report.values()):
            np.testing.assert_array_equal(a, b)

    def test_sharded_run_resumes_a_partial_serial_ledger(self, tmp_path):
        """The converse direction: a sharded rerun on top of a partial
        single-file ledger replays it and shards only the remainder."""
        kwargs = {"spec": FaultInjectionSpec(size=2)}
        ledger = RunLedger(tmp_path / "run")
        TrialRunner(workers=1).run(
            fault_injection_trial, 6, master_seed=9, trial_kwargs=kwargs,
            ledger=ledger,
        )
        lines = ledger.path.read_text().splitlines()
        ledger.path.write_text("\n".join(lines[:2]) + "\n")
        resumed = TrialRunner(workers=1, shards=2).run(
            fault_injection_trial, 6, master_seed=9, trial_kwargs=kwargs,
            ledger=ledger, resume_from=ledger,
        )
        assert resumed.replayed_count == 2
        for a, b in zip(
            resumed.values(), serial_values(fault_injection_trial, 6, 9, kwargs)
        ):
            np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# Faults inside a shard: retried locally, other shards untouched.
# ----------------------------------------------------------------------
class TestShardFaults:
    def test_killed_worker_in_one_shard_is_retried(self, tmp_path):
        spec = FaultInjectionSpec(
            size=2, exit_indices=(1,), once_dir=str(tmp_path)
        )
        with pytest.warns(RuntimeWarning, match="worker died"):
            report = TrialRunner(workers=1, shards=2, chunk_size=1).run(
                fault_injection_trial, 4, master_seed=17,
                trial_kwargs={"spec": spec},
                retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            )
        assert all(r.ok for r in report.results)
        assert report.results[1].attempts >= 2
        clean = {"spec": FaultInjectionSpec(size=2)}
        for a, b in zip(
            report.values(), serial_values(fault_injection_trial, 4, 17, clean)
        ):
            np.testing.assert_array_equal(a, b)

    def test_hung_worker_in_one_shard_is_killed_and_retried(self, tmp_path):
        spec = FaultInjectionSpec(
            size=2, hang_indices=(0,), hang_seconds=60.0,
            once_dir=str(tmp_path),
        )
        with pytest.warns(RuntimeWarning, match="worker hung past"):
            report = TrialRunner(workers=1, shards=2, chunk_size=1).run(
                fault_injection_trial, 3, master_seed=23,
                trial_kwargs={"spec": spec},
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                trial_timeout=1.0,
            )
        assert all(r.ok for r in report.results)
        assert report.results[0].attempts >= 2
        clean = {"spec": FaultInjectionSpec(size=2)}
        for a, b in zip(
            report.values(), serial_values(fault_injection_trial, 3, 23, clean)
        ):
            np.testing.assert_array_equal(a, b)

    def test_persistent_hang_records_shard_timeout_error(self):
        spec = FaultInjectionSpec(size=2, hang_indices=(0,), hang_seconds=60.0)
        report = TrialRunner(workers=1, shards=2, chunk_size=1).run(
            fault_injection_trial, 2, master_seed=0,
            trial_kwargs={"spec": spec},
            retry=RetryPolicy(max_attempts=1),
            trial_timeout=0.75,
        )
        failed = report.results[0]
        assert not failed.ok
        assert failed.error.category == "timeout"
        assert "shard 0" in failed.error.message
        survivor = report.results[1]
        assert survivor.ok
        clean = {"spec": FaultInjectionSpec(size=2)}
        np.testing.assert_array_equal(
            survivor.value, serial_values(fault_injection_trial, 2, 0, clean)[1]
        )

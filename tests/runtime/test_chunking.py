"""Blocked CRP evaluation must be numerically indistinguishable from the
one-shot path (and deterministic where streams interleave)."""

import numpy as np
import pytest

from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import biased_challenges, generate_crps
from repro.pufs.xor_arbiter import XORArbiterPUF
from repro.runtime.chunking import (
    eval_blocked,
    eval_noisy_blocked,
    generate_crps_blocked,
    iter_blocks,
)


def test_iter_blocks_covers_range_exactly():
    spans = list(iter_blocks(1000, 256))
    assert spans[0] == (0, 256)
    assert spans[-1] == (768, 1000)
    assert sum(stop - start for start, stop in spans) == 1000


def test_iter_blocks_edge_cases():
    assert list(iter_blocks(0, 8)) == []
    assert list(iter_blocks(5, 8)) == [(0, 5)]
    with pytest.raises(ValueError):
        list(iter_blocks(10, 0))
    with pytest.raises(ValueError):
        list(iter_blocks(-1, 8))


@pytest.mark.parametrize(
    "make",
    [
        lambda rng: ArbiterPUF(24, rng),
        lambda rng: XORArbiterPUF(24, 3, rng),
        lambda rng: BistableRingPUF(24, rng),
    ],
)
def test_eval_blocked_equals_eval(make):
    rng = np.random.default_rng(0)
    puf = make(rng)
    challenges = (1 - 2 * rng.integers(0, 2, size=(777, 24))).astype(np.int8)
    np.testing.assert_array_equal(
        eval_blocked(puf, challenges, block_size=100), puf.eval(challenges)
    )


def test_eval_noisy_blocked_equals_unblocked_stream():
    """Gaussian draws are consumed sequentially, so blocking the noisy
    evaluation of a single-margin PUF reproduces the one-shot stream."""
    rng = np.random.default_rng(1)
    puf = ArbiterPUF(16, rng, noise_sigma=0.5)
    challenges = (1 - 2 * rng.integers(0, 2, size=(500, 16))).astype(np.int8)
    blocked = eval_noisy_blocked(
        puf, challenges, np.random.default_rng(7), block_size=64
    )
    unblocked = puf.eval_noisy(challenges, np.random.default_rng(7))
    np.testing.assert_array_equal(blocked, unblocked)


def test_generate_crps_blocked_equals_generate_crps_noiseless():
    rng = np.random.default_rng(2)
    puf = ArbiterPUF(20, rng)
    blocked = generate_crps_blocked(
        puf, 600, np.random.default_rng(3), block_size=128
    )
    plain = generate_crps(puf, 600, np.random.default_rng(3))
    np.testing.assert_array_equal(blocked.challenges, plain.challenges)
    np.testing.assert_array_equal(blocked.responses, plain.responses)


def test_generate_crps_blocked_respects_sampler():
    rng = np.random.default_rng(4)
    puf = ArbiterPUF(12, rng)
    crps = generate_crps_blocked(
        puf,
        400,
        np.random.default_rng(5),
        sampler=biased_challenges(1.0),
        block_size=64,
    )
    assert (crps.challenges == -1).all()


def test_generate_crps_blocked_noisy_is_deterministic():
    rng = np.random.default_rng(6)
    puf = ArbiterPUF(16, rng, noise_sigma=0.4)
    a = generate_crps_blocked(
        puf, 300, np.random.default_rng(8), noisy=True, block_size=50
    )
    b = generate_crps_blocked(
        puf, 300, np.random.default_rng(8), noisy=True, block_size=50
    )
    np.testing.assert_array_equal(a.challenges, b.challenges)
    np.testing.assert_array_equal(a.responses, b.responses)


def test_blocked_prefix_property():
    """A longer blocked draw starts with the shorter draw — the property
    the CRP cache's prefix reuse relies on."""
    rng = np.random.default_rng(9)
    puf = ArbiterPUF(16, rng)
    short = generate_crps_blocked(puf, 200, np.random.default_rng(10), block_size=64)
    long = generate_crps_blocked(puf, 500, np.random.default_rng(10), block_size=64)
    np.testing.assert_array_equal(long.challenges[:200], short.challenges)
    np.testing.assert_array_equal(long.responses[:200], short.responses)

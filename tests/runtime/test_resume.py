"""Crash-safe resume: ledger replay must be bit-identical and minimal.

A killed run leaves a partial ``ledger.jsonl``; ``TrialRunner.run(...,
resume_from=...)`` must replay every completed trial exactly as recorded
(bit-for-bit, dtype and shape included), re-execute *only* the missing
indices, and refuse to resume under a different master seed.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import RetryPolicy, TrialRunner
from repro.runtime.workloads import FaultInjectionSpec, fault_injection_trial
from repro.telemetry import RunLedger


def counting_trial(ctx, marker_dir, size=3):
    """Draws from the trial stream and logs one line per execution."""
    with open(Path(marker_dir) / f"ran-{ctx.index}", "a") as fh:
        fh.write("x\n")
    return ctx.rng.random(size)


def executions(marker_dir, index):
    """How many times trial ``index`` actually ran."""
    path = Path(marker_dir) / f"ran-{index}"
    return len(path.read_text().splitlines()) if path.exists() else 0


def truncate_ledger(ledger, keep):
    """Simulate a kill: keep only the first ``keep`` ledger lines."""
    lines = ledger.path.read_text().splitlines()
    ledger.path.write_text("\n".join(lines[:keep]) + "\n")


class TestResume:
    def test_replays_completed_and_executes_only_missing(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        kwargs = {"marker_dir": str(markers)}
        ledger = RunLedger(tmp_path / "run")
        full = TrialRunner(workers=1).run(
            counting_trial, 6, master_seed=13, trial_kwargs=kwargs, ledger=ledger
        )
        truncate_ledger(ledger, keep=3)

        resumed = TrialRunner(workers=1).run(
            counting_trial,
            6,
            master_seed=13,
            trial_kwargs=kwargs,
            ledger=ledger,
            resume_from=ledger,
        )
        assert resumed.replayed_count == 3
        for a, b in zip(full.values(), resumed.values()):
            np.testing.assert_array_equal(a, b)
            assert a.dtype == b.dtype and a.shape == b.shape
        for index in range(3):
            assert executions(markers, index) == 1  # replayed, not re-run
        for index in range(3, 6):
            assert executions(markers, index) == 2
        # The ledger now holds a fresh record for each re-executed trial.
        assert sorted(ledger.read_latest()) == list(range(6))

    def test_fully_complete_run_is_pure_replay(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        kwargs = {"marker_dir": str(markers)}
        ledger = RunLedger(tmp_path / "run")
        TrialRunner(workers=1).run(
            counting_trial, 4, master_seed=2, trial_kwargs=kwargs, ledger=ledger
        )
        resumed = TrialRunner(workers=2).run(
            counting_trial,
            4,
            master_seed=2,
            trial_kwargs=kwargs,
            resume_from=ledger,
        )
        assert resumed.executor == "replay"
        assert resumed.replayed_count == 4
        assert all(r.replayed for r in resumed.results)
        assert all(executions(markers, i) == 1 for i in range(4))

    def test_pooled_resume_matches_serial_reference(self, tmp_path):
        spec = FaultInjectionSpec(size=2)
        kwargs = {"spec": spec}
        ledger = RunLedger(tmp_path / "run")
        TrialRunner(workers=1).run(
            fault_injection_trial, 8, master_seed=5, trial_kwargs=kwargs,
            ledger=ledger,
        )
        truncate_ledger(ledger, keep=5)
        resumed = TrialRunner(workers=3).run(
            fault_injection_trial, 8, master_seed=5, trial_kwargs=kwargs,
            resume_from=ledger,
        )
        reference = TrialRunner(workers=1).run(
            fault_injection_trial, 8, master_seed=5, trial_kwargs=kwargs
        )
        for a, b in zip(resumed.values(), reference.values()):
            np.testing.assert_array_equal(a, b)

    def test_deterministic_trial_errors_replay_without_rerun(self, tmp_path):
        spec = FaultInjectionSpec(size=2, fail_indices=(1,))
        kwargs = {"spec": spec}
        ledger = RunLedger(tmp_path / "run")
        TrialRunner(workers=1).run(
            fault_injection_trial, 3, master_seed=0, trial_kwargs=kwargs,
            ledger=ledger,
        )
        records_before = len(ledger.read())
        resumed = TrialRunner(workers=1).run(
            fault_injection_trial, 3, master_seed=0, trial_kwargs=kwargs,
            ledger=ledger, resume_from=ledger,
        )
        assert resumed.executor == "replay"
        failed = resumed.results[1]
        assert failed.replayed and not failed.ok
        assert failed.error.category == "trial"
        assert failed.error.exc_type == "ValueError"
        assert len(ledger.read()) == records_before  # nothing re-ran

    def test_infra_failures_reexecute_on_resume(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        kwargs = {"marker_dir": str(markers)}
        ledger = RunLedger(tmp_path / "run")
        TrialRunner(workers=1).run(
            counting_trial, 3, master_seed=4, trial_kwargs=kwargs, ledger=ledger
        )
        # Rewrite trial 1's record as an exhausted infra failure.
        records = ledger.read()
        for record in records:
            if record["index"] == 1:
                record["status"] = "error"
                record["value"] = None
                record.pop("value_meta", None)
                record["error"] = {
                    "exc_type": "BrokenProcessPool",
                    "message": "worker process died",
                    "category": "infra",
                }
        ledger.path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        resumed = TrialRunner(workers=1).run(
            counting_trial, 3, master_seed=4, trial_kwargs=kwargs,
            ledger=ledger, resume_from=ledger,
        )
        assert all(r.ok for r in resumed.results)
        assert executions(markers, 1) == 2  # re-executed
        assert executions(markers, 0) == 1 and executions(markers, 2) == 1

    def test_torn_final_line_is_skipped_and_reexecuted(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        kwargs = {"marker_dir": str(markers)}
        ledger = RunLedger(tmp_path / "run")
        TrialRunner(workers=1).run(
            counting_trial, 3, master_seed=6, trial_kwargs=kwargs, ledger=ledger
        )
        lines = ledger.path.read_text().splitlines()
        ledger.path.write_text(
            "\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2]
        )
        with pytest.warns(RuntimeWarning, match="torn write"):
            resumed = TrialRunner(workers=1).run(
                counting_trial, 3, master_seed=6, trial_kwargs=kwargs,
                ledger=ledger, resume_from=ledger,
            )
        assert resumed.replayed_count == 2
        assert all(r.ok for r in resumed.results)
        assert executions(markers, 2) == 2

    def test_master_seed_mismatch_refused(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        ledger.write_meta({"master_seed": 1})
        ledger.append({"index": 0, "status": "ok", "value": 0.5})
        with pytest.raises(ValueError, match="master_seed"):
            TrialRunner(workers=1).run(
                counting_trial,
                2,
                master_seed=2,
                trial_kwargs={"marker_dir": str(tmp_path)},
                resume_from=ledger,
            )

    def test_seed_sequence_master_seed_validates_canonically(self, tmp_path):
        """Non-int seeds validate too: an equivalent SeedSequence resumes,
        a different one is refused (the old check only caught ints)."""
        markers = tmp_path / "markers"
        markers.mkdir()
        kwargs = {"marker_dir": str(markers)}
        ledger = RunLedger(tmp_path / "run")
        ledger.write_meta({"master_seed": 1})
        TrialRunner(workers=1).run(
            counting_trial, 2, master_seed=1, trial_kwargs=kwargs, ledger=ledger
        )
        resumed = TrialRunner(workers=1).run(
            counting_trial,
            2,
            master_seed=np.random.SeedSequence(1),
            trial_kwargs=kwargs,
            resume_from=ledger,
        )
        assert resumed.executor == "replay"
        with pytest.raises(ValueError, match="master_seed"):
            TrialRunner(workers=1).run(
                counting_trial,
                2,
                master_seed=np.random.SeedSequence(2),
                trial_kwargs=kwargs,
                resume_from=ledger,
            )

    def test_trial_count_mismatch_warns(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        kwargs = {"marker_dir": str(markers)}
        ledger = RunLedger(tmp_path / "run")
        ledger.write_meta({"master_seed": 0, "trials": 4})
        TrialRunner(workers=1).run(
            counting_trial, 4, master_seed=0, trial_kwargs=kwargs, ledger=ledger
        )
        with pytest.warns(RuntimeWarning, match="trials=4"):
            resumed = TrialRunner(workers=1).run(
                counting_trial, 2, master_seed=0, trial_kwargs=kwargs,
                resume_from=ledger,
            )
        assert resumed.replayed_count == 2

    def test_resume_accepts_dir_and_ledger_path(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        kwargs = {"marker_dir": str(markers)}
        ledger = RunLedger(tmp_path / "run")
        TrialRunner(workers=1).run(
            counting_trial, 2, master_seed=0, trial_kwargs=kwargs, ledger=ledger
        )
        for handle in (str(ledger.run_dir), ledger.path):
            resumed = TrialRunner(workers=1).run(
                counting_trial, 2, master_seed=0, trial_kwargs=kwargs,
                resume_from=handle,
            )
            assert resumed.executor == "replay"

    def test_resume_from_empty_directory_runs_everything(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        report = TrialRunner(workers=1).run(
            counting_trial,
            2,
            master_seed=0,
            trial_kwargs={"marker_dir": str(markers)},
            resume_from=tmp_path / "fresh-run",
        )
        assert report.replayed_count == 0
        assert all(r.ok for r in report.results)

    def test_out_of_range_indices_ignored(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        markers = tmp_path / "markers"
        markers.mkdir()
        kwargs = {"marker_dir": str(markers)}
        TrialRunner(workers=1).run(
            counting_trial, 4, master_seed=0, trial_kwargs=kwargs, ledger=ledger
        )
        # Resuming a *shorter* run replays only the in-range prefix.
        resumed = TrialRunner(workers=1).run(
            counting_trial, 2, master_seed=0, trial_kwargs=kwargs,
            resume_from=ledger,
        )
        assert [r.index for r in resumed.results] == [0, 1]
        assert resumed.replayed_count == 2

"""TrialRunner: execution semantics and the worker-count determinism
contract (the regression test the tentpole must honour)."""

import numpy as np
import pytest

from repro.runtime import TrialContext, TrialRunner
from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial


def draw_trial(ctx: TrialContext, size: int = 8) -> np.ndarray:
    """A cheap picklable trial: a vector from the trial's own stream."""
    return ctx.rng.random(size)


def indexed_trial(ctx: TrialContext) -> int:
    return ctx.index


def test_workers_1_vs_4_bit_identical():
    """The contract: worker count must not change any trial's result."""
    serial = TrialRunner(workers=1).run(draw_trial, 12, master_seed=2718)
    pooled = TrialRunner(workers=4).run(draw_trial, 12, master_seed=2718)
    assert len(serial.results) == len(pooled.results) == 12
    for a, b in zip(serial.values(), pooled.values()):
        np.testing.assert_array_equal(a, b)


def test_workers_1_vs_4_bit_identical_learning_workload():
    """Same contract on a real learning-curve trial (PUF + CRPs + fit)."""
    spec = LearningCurveSpec(n=16, budgets=(40, 80), test_size=200)
    kwargs = {"spec": spec}
    serial = TrialRunner(workers=1).run(
        learning_curve_trial, 4, master_seed=31, trial_kwargs=kwargs
    )
    pooled = TrialRunner(workers=4).run(
        learning_curve_trial, 4, master_seed=31, trial_kwargs=kwargs
    )
    for a, b in zip(serial.values(), pooled.values()):
        np.testing.assert_array_equal(a, b)


def test_results_ordered_by_index():
    report = TrialRunner(workers=2).run(indexed_trial, 9, master_seed=0)
    assert [r.index for r in report.results] == list(range(9))
    assert report.values() == list(range(9))


def test_master_seed_changes_results():
    a = TrialRunner(workers=1).run(draw_trial, 3, master_seed=1)
    b = TrialRunner(workers=1).run(draw_trial, 3, master_seed=2)
    assert not any(
        np.array_equal(x, y) for x, y in zip(a.values(), b.values())
    )


def test_trials_are_mutually_independent():
    report = TrialRunner(workers=1).run(draw_trial, 6, master_seed=5)
    values = report.values()
    for i in range(len(values)):
        for j in range(i + 1, len(values)):
            assert not np.array_equal(values[i], values[j])


def test_unpicklable_fn_falls_back_to_serial_with_warning():
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        report = TrialRunner(workers=2).run(
            lambda ctx: float(ctx.rng.random()), 3, master_seed=4
        )
    assert report.executor == "serial"
    # And the fallback still honours the seed fan-out.
    reference = TrialRunner(workers=1).run(
        lambda ctx: float(ctx.rng.random()), 3, master_seed=4
    )
    assert report.values() == reference.values()


def test_trial_kwargs_are_passed(tmp_path):
    report = TrialRunner(workers=1).run(
        draw_trial, 2, master_seed=0, trial_kwargs={"size": 3}
    )
    assert all(v.shape == (3,) for v in report.values())


def test_report_timings_and_summary():
    report = TrialRunner(workers=1).run(draw_trial, 5, master_seed=0)
    assert report.trial_seconds().shape == (5,)
    assert (report.trial_seconds() >= 0).all()
    assert report.wall_seconds > 0
    assert report.total_trial_seconds == pytest.approx(
        float(np.sum(report.trial_seconds()))
    )
    assert "5 trials" in report.summary()


def test_context_rng_is_cached_and_spawnable():
    ctx = TrialContext(0, np.random.SeedSequence(8))
    assert ctx.rng is ctx.rng
    streams = ctx.spawn_rngs(3)
    draws = [g.random() for g in streams]
    assert len(set(draws)) == 3


def test_invalid_construction():
    with pytest.raises(ValueError):
        TrialRunner(workers=0)
    with pytest.raises(ValueError):
        TrialRunner(workers=2, chunk_size=0)
    with pytest.raises(ValueError):
        TrialRunner().run(draw_trial, 0)

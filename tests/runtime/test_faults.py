"""Runtime fault injection: trial errors vs infrastructure failures.

Pins the failure taxonomy the runner promises: a raising trial becomes a
structured ``category="trial"`` :class:`TrialError` (never retried, never
misreported as a pool failure), a SIGKILL'd worker is retried under the
:class:`RetryPolicy` after a pool rebuild, and a hung worker is killed at
``trial_timeout`` — all without perturbing a single surviving trial's
bits.
"""

import contextlib
import os
import time
import warnings as _warnings
from concurrent import futures as _futures

import numpy as np
import pytest

from repro.runtime import RetryPolicy, TrialError, TrialFailure, TrialRunner
from repro.runtime import runner as runner_module
from repro.runtime.workloads import FaultInjectionSpec, fault_injection_trial


@contextlib.contextmanager
def warnings_as_errors():
    """Fail the test if the code under test warns at all."""
    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        yield


def clean_values(num_trials, master_seed, size=2):
    """Reference values: the same trials with no faults armed."""
    report = TrialRunner(workers=1).run(
        fault_injection_trial,
        num_trials,
        master_seed=master_seed,
        trial_kwargs={"spec": FaultInjectionSpec(size=size)},
    )
    return report.values()


# ----------------------------------------------------------------------
# Trial errors: deterministic, structured, never retried.
# ----------------------------------------------------------------------
class TestTrialErrors:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_raising_trial_becomes_trial_error_others_survive(self, workers):
        spec = FaultInjectionSpec(size=2, fail_indices=(2,))
        report = TrialRunner(workers=workers).run(
            fault_injection_trial, 5, master_seed=7, trial_kwargs={"spec": spec}
        )
        assert [r.index for r in report.results] == list(range(5))
        failed = report.results[2]
        assert not failed.ok
        assert failed.value is None
        assert failed.error.exc_type == "ValueError"
        assert failed.error.category == "trial"
        assert "injected failure in trial 2" in failed.error.message
        reference = clean_values(5, 7)
        for i in (0, 1, 3, 4):
            assert report.results[i].ok
            np.testing.assert_array_equal(report.results[i].value, reference[i])

    def test_pool_does_not_misreport_trial_error_as_pool_failure(self):
        """The seed bug: a raising trial must not trigger the serial
        fallback (nor its 'process pool unavailable' warning)."""
        spec = FaultInjectionSpec(size=2, fail_indices=(0,))
        with warnings_as_errors():
            report = TrialRunner(workers=2).run(
                fault_injection_trial, 4, master_seed=0, trial_kwargs={"spec": spec}
            )
        assert report.executor == "process-pool"

    def test_trial_errors_are_never_retried(self):
        spec = FaultInjectionSpec(size=2, fail_indices=(1,))
        retry = RetryPolicy(max_attempts=5, base_delay=0.0)
        report = TrialRunner(workers=2).run(
            fault_injection_trial,
            3,
            master_seed=3,
            trial_kwargs={"spec": spec},
            retry=retry,
        )
        assert report.results[1].attempts == 1
        assert report.retried_count == 0

    def test_serial_and_pool_produce_identical_errors(self):
        spec = FaultInjectionSpec(size=2, fail_indices=(0, 2))
        runs = [
            TrialRunner(workers=w).run(
                fault_injection_trial, 4, master_seed=11, trial_kwargs={"spec": spec}
            )
            for w in (1, 2)
        ]
        for a, b in zip(runs[0].results, runs[1].results):
            assert a.ok == b.ok
            if a.ok:
                np.testing.assert_array_equal(a.value, b.value)
            else:
                assert a.error.exc_type == b.error.exc_type
                assert a.error.message == b.error.message

    def test_error_carries_traceback_and_seed_identity(self):
        spec = FaultInjectionSpec(size=2, fail_indices=(0,))
        report = TrialRunner(workers=1).run(
            fault_injection_trial, 1, master_seed=9, trial_kwargs={"spec": spec}
        )
        error = report.results[0].error
        assert "ValueError" in error.traceback
        assert "fault_injection_trial" in error.traceback
        # The recorded seed identity reproduces the failing trial exactly.
        seed = np.random.SeedSequence(
            int(error.entropy), spawn_key=tuple(error.spawn_key)
        )
        redraw = np.random.default_rng(seed).random(2)
        reference = clean_values(1, 9)[0]
        np.testing.assert_array_equal(redraw, reference)

    def test_raise_failures_collects_trial_errors(self):
        spec = FaultInjectionSpec(size=2, fail_indices=(1,))
        report = TrialRunner(workers=1).run(
            fault_injection_trial, 3, master_seed=0, trial_kwargs={"spec": spec}
        )
        with pytest.raises(TrialFailure, match="injected failure in trial 1"):
            report.raise_failures()


# ----------------------------------------------------------------------
# Infrastructure failures: retried, pool rebuilt, survivors untouched.
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_killed_worker_is_retried_and_survivors_keep_their_bits(
        self, tmp_path
    ):
        """os._exit in a worker (= SIGKILL/OOM) breaks the pool; the run
        must rebuild it, re-execute the victims, and end bit-identical to
        a fault-free run."""
        spec = FaultInjectionSpec(
            size=2, exit_indices=(1,), once_dir=str(tmp_path)
        )
        with pytest.warns(RuntimeWarning, match="worker process died"):
            report = TrialRunner(workers=2, chunk_size=1).run(
                fault_injection_trial,
                4,
                master_seed=17,
                trial_kwargs={"spec": spec},
                retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            )
        assert report.executor == "process-pool"
        assert all(r.ok for r in report.results)
        assert report.results[1].attempts >= 2
        assert report.retried_count >= 1
        for value, reference in zip(report.values(), clean_values(4, 17)):
            np.testing.assert_array_equal(value, reference)

    def test_exhausted_retry_budget_records_infra_error(self, tmp_path):
        """A worker that dies on every attempt ends as a structured
        ``category="infra"`` error, not a crash of the whole run."""
        spec = FaultInjectionSpec(size=2, exit_indices=(0,))  # fires every time
        with pytest.warns(RuntimeWarning, match="worker process died"):
            report = TrialRunner(workers=2, chunk_size=1).run(
                fault_injection_trial,
                1,
                master_seed=0,
                trial_kwargs={"spec": spec},
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            )
        failed = report.results[0]
        assert not failed.ok
        assert failed.error.category == "infra"
        assert failed.error.exc_type == "BrokenProcessPool"
        assert failed.attempts == 2


def fast_or_exit_trial(ctx, exit_index, size=2):
    """Picklable: the chosen trial kills its worker late, others are instant."""
    if ctx.index == exit_index:
        time.sleep(0.4)
        os._exit(42)
    return ctx.rng.random(size)


class TestBrokenPoolHarvest:
    def test_completed_chunks_survive_a_broken_pool(self, monkeypatch):
        """A chunk whose future already completed when another chunk broke
        the pool keeps its result: it must never be discarded, re-executed,
        or mislabeled as an infra failure — even with no retry budget left
        and even when the broken future is processed first."""
        real_wait = _futures.wait

        def wait_broken_first(fs, timeout=None, return_when=None):
            done, not_done = real_wait(fs, return_when=_futures.ALL_COMPLETED)
            # Force the worst-case ordering: the runner sees the broken
            # future before the successful one still sitting in `pending`.
            ordered = sorted(done, key=lambda f: f.exception() is None)
            return ordered, not_done

        monkeypatch.setattr(runner_module, "wait", wait_broken_first)
        report = TrialRunner(workers=2, chunk_size=1).run(
            fast_or_exit_trial,
            2,
            master_seed=29,
            trial_kwargs={"exit_index": 1},
            retry=RetryPolicy(max_attempts=1),
        )
        survivor, dead = report.results
        assert survivor.ok
        assert survivor.attempts == 1
        reference = TrialRunner(workers=1).run(
            fast_or_exit_trial, 2, master_seed=29, trial_kwargs={"exit_index": -1}
        )
        np.testing.assert_array_equal(survivor.value, reference.values()[0])
        assert not dead.ok
        assert dead.error.category == "infra"


class TestHungWorkers:
    def test_hung_worker_is_killed_and_retried(self, tmp_path):
        spec = FaultInjectionSpec(
            size=2, hang_indices=(0,), hang_seconds=60.0, once_dir=str(tmp_path)
        )
        with pytest.warns(RuntimeWarning, match="worker hung past"):
            report = TrialRunner(workers=2, chunk_size=1).run(
                fault_injection_trial,
                3,
                master_seed=23,
                trial_kwargs={"spec": spec},
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                trial_timeout=1.0,
            )
        assert all(r.ok for r in report.results)
        assert report.results[0].attempts >= 2
        for value, reference in zip(report.values(), clean_values(3, 23)):
            np.testing.assert_array_equal(value, reference)

    def test_persistent_hang_records_timeout_error(self):
        spec = FaultInjectionSpec(size=2, hang_indices=(0,), hang_seconds=60.0)
        report = TrialRunner(workers=2, chunk_size=1).run(
            fault_injection_trial,
            2,
            master_seed=0,
            trial_kwargs={"spec": spec},
            retry=RetryPolicy(max_attempts=1),
            trial_timeout=0.75,
        )
        failed = report.results[0]
        assert not failed.ok
        assert failed.error.category == "timeout"
        assert failed.error.exc_type == "TimeoutError"
        # The innocent in-flight trial was resubmitted, uncharged, and
        # finished with the right bits.
        survivor = report.results[1]
        assert survivor.ok
        np.testing.assert_array_equal(survivor.value, clean_values(2, 0)[1])

    def test_backlogged_chunks_do_not_accrue_timeout(self):
        """Deadlines arm when a chunk starts executing, not when the run
        is launched: with far more chunks than workers, the later waves
        must not time out merely because they waited for a worker slot
        (8 trials x 0.4s on 2 workers would blow a 1s deadline armed at
        submit-everything-upfront time)."""
        spec = FaultInjectionSpec(size=2, sleep_seconds=0.4)
        with warnings_as_errors():
            report = TrialRunner(workers=2, chunk_size=1).run(
                fault_injection_trial,
                8,
                master_seed=1,
                trial_kwargs={"spec": spec},
                retry=RetryPolicy(max_attempts=1),
                trial_timeout=1.0,
            )
        assert all(r.ok for r in report.results)
        assert all(r.attempts == 1 for r in report.results)
        for value, reference in zip(report.values(), clean_values(8, 1)):
            np.testing.assert_array_equal(value, reference)

    def test_invalid_trial_timeout_rejected(self):
        with pytest.raises(ValueError, match="trial_timeout"):
            TrialRunner(workers=2).run(
                fault_injection_trial,
                1,
                trial_kwargs={"spec": FaultInjectionSpec()},
                trial_timeout=0.0,
            )


# ----------------------------------------------------------------------
# RetryPolicy: validation and deterministic backoff.
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)

    def test_delay_is_deterministic_and_capped(self):
        policy = RetryPolicy(base_delay=0.5, max_delay=4.0, jitter=0.5)
        seed = np.random.SeedSequence(42, spawn_key=(3,))
        delays = [policy.delay(a, seed) for a in range(1, 8)]
        assert delays == [policy.delay(a, seed) for a in range(1, 8)]
        for attempt, delay in enumerate(delays, start=1):
            base = min(4.0, 0.5 * 2 ** (attempt - 1))
            assert base <= delay <= base * 1.5

    def test_jitter_differs_across_trials_but_not_reruns(self):
        policy = RetryPolicy(jitter=0.5)
        a = policy.delay(1, np.random.SeedSequence(0, spawn_key=(0,)))
        b = policy.delay(1, np.random.SeedSequence(0, spawn_key=(1,)))
        assert a != b

    def test_zero_jitter_gives_pure_exponential(self):
        policy = RetryPolicy(base_delay=0.25, max_delay=8.0, jitter=0.0)
        seed = np.random.SeedSequence(0)
        assert [policy.delay(a, seed) for a in (1, 2, 3)] == [0.25, 0.5, 1.0]


# ----------------------------------------------------------------------
# Fault workload plumbing.
# ----------------------------------------------------------------------
class TestFaultInjectionSpec:
    def test_once_dir_arms_exactly_once(self, tmp_path):
        from repro.runtime.workloads import _fault_armed

        spec = FaultInjectionSpec(once_dir=str(tmp_path))
        assert _fault_armed(spec, 3) is True
        assert _fault_armed(spec, 3) is False
        assert _fault_armed(spec, 4) is True  # indices arm independently

    def test_validation(self):
        with pytest.raises(ValueError, match="size"):
            FaultInjectionSpec(size=0)
        with pytest.raises(ValueError, match="non-negative"):
            FaultInjectionSpec(sleep_seconds=-1.0)

    def test_error_serialises_to_ledger_record(self):
        spec = FaultInjectionSpec(size=2, fail_indices=(0,))
        report = TrialRunner(workers=1).run(
            fault_injection_trial, 1, master_seed=5, trial_kwargs={"spec": spec}
        )
        from repro.runtime import result_from_record, trial_record

        record = trial_record(report.results[0])
        assert record["status"] == "error"
        replayed = result_from_record(record)
        assert isinstance(replayed.error, TrialError)
        assert replayed.error.exc_type == "ValueError"
        assert replayed.error.spawn_key == report.results[0].error.spawn_key
        assert replayed.replayed

"""The ``active`` workload: store memoisation, accounting, and resume.

Three runtime contracts layer on top of the strategy-level tests:

* a warm :class:`~repro.runtime.store.ArtifactStore` replays a cached
  adaptive trajectory bit-identically to the cold run, and the replay is
  recorded under the strategy's own query kind (``"mq"``) so the ledger
  stays an honest account of the access model;
* trial telemetry carries the adaptive query counts home through worker
  processes;
* a killed sharded run resumes from its ledger with every adaptive
  trial replayed or re-executed bit-identically.
"""

import numpy as np
import pytest

from repro.runtime import TrialRunner
from repro.runtime.workloads import ActiveTrialSpec, active_trial
from repro.telemetry import RunLedger

SPEC = ActiveTrialSpec(
    n=20, budgets=(32, 64), batch=16, pool_size=256, test_size=500
)


def run_trials(tmp_path, trials=2, cache=True, workers=1, shards=1, **kwargs):
    trial_kwargs = {"spec": kwargs.pop("spec", SPEC)}
    if cache:
        trial_kwargs["cache_dir"] = str(tmp_path / "cache")
    return TrialRunner(workers=workers, shards=shards).run(
        active_trial, trials, master_seed=0, trial_kwargs=trial_kwargs, **kwargs
    )


class TestSpecValidation:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            ActiveTrialSpec(strategy="clairvoyant")

    def test_rejects_pool_smaller_than_budget(self):
        with pytest.raises(ValueError, match="pool_size"):
            ActiveTrialSpec(budgets=(64,), pool_size=32)

    def test_rejects_majority_noise(self):
        with pytest.raises(ValueError, match="noise_rate"):
            ActiveTrialSpec(noise_rate=0.5)


class TestStoreMemoisation:
    def test_warm_rerun_is_bit_identical(self, tmp_path):
        cold = run_trials(tmp_path)
        warm = run_trials(tmp_path)
        for a, b in zip(cold.values(), warm.values()):
            np.testing.assert_array_equal(a, b)

    def test_cache_matches_uncached_run(self, tmp_path):
        # Memoisation must be invisible to the results: the selection
        # stream is independent of the fit/test streams, so cached and
        # from-scratch trials agree bit for bit.
        cached = run_trials(tmp_path)
        plain = run_trials(tmp_path, cache=False)
        for a, b in zip(cached.values(), plain.values()):
            np.testing.assert_array_equal(a, b)

    def test_warm_hit_recorded_under_mq(self, tmp_path):
        run_trials(tmp_path, trials=1)
        warm = run_trials(tmp_path, trials=1)
        telemetry = warm.results[0].telemetry
        counters = telemetry["queries"]["counters"]
        assert counters.get("artifact_store.hits", 0) >= 1
        # The replayed trajectory still books 64 membership queries and
        # zero passive examples — record_kind="mq" on the hit path.
        kinds = telemetry["queries"]["queries"]
        assert kinds["mq"]["queries"] == 64
        assert kinds["mq"]["examples"] == 0
        assert kinds["ex"]["queries"] == 0

    def test_passive_strategy_hits_record_under_ex(self, tmp_path):
        spec = ActiveTrialSpec(
            n=20,
            strategy="passive",
            budgets=(32, 64),
            pool_size=256,
            test_size=500,
        )
        run_trials(tmp_path, trials=1, spec=spec)
        warm = run_trials(tmp_path, trials=1, spec=spec)
        kinds = warm.results[0].telemetry["queries"]["queries"]
        assert kinds["ex"]["queries"] == 64
        assert kinds["ex"]["examples"] == 64
        assert kinds["mq"]["queries"] == 0


class TestShardedResume:
    def truncate(self, ledger, keep):
        lines = ledger.path.read_text().splitlines()
        ledger.path.write_text("\n".join(lines[:keep]) + "\n")

    def test_resumed_sharded_run_matches_serial_reference(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        full = run_trials(tmp_path, trials=4, ledger=ledger)
        self.truncate(ledger, keep=2)
        resumed = run_trials(
            tmp_path,
            trials=4,
            workers=2,
            shards=2,
            ledger=ledger,
            resume_from=ledger,
        )
        assert resumed.replayed_count == 2
        for a, b in zip(full.values(), resumed.values()):
            np.testing.assert_array_equal(a, b)
            assert a.dtype == b.dtype

    def test_completed_adaptive_run_is_pure_replay(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        full = run_trials(tmp_path, trials=3, ledger=ledger)
        resumed = run_trials(tmp_path, trials=3, resume_from=ledger)
        assert resumed.executor == "replay"
        assert resumed.replayed_count == 3
        for a, b in zip(full.values(), resumed.values()):
            np.testing.assert_array_equal(a, b)


class TestParallelDeterminism:
    def test_worker_count_does_not_change_results(self, tmp_path):
        serial = run_trials(tmp_path, trials=4, cache=False)
        parallel = run_trials(tmp_path, trials=4, cache=False, workers=2)
        for a, b in zip(serial.values(), parallel.values()):
            np.testing.assert_array_equal(a, b)

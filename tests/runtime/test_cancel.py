"""Runner hooks the service depends on: ``on_result`` and ``cancel``.

``on_result`` is the progress-streaming tap — it must fire exactly once
per trial (replayed trials included, so a resumed job still reports
every trial), strictly after the ledger append, from the parent process.
``cancel`` is cooperative early stop: in-flight work finishes and is
recorded, the report is flagged ``cancelled``, and a later
``resume_from`` run completes exactly the missing trials bit-identically.
"""

import threading

import numpy as np
import pytest

from repro.runtime import TrialContext, TrialRunner
from repro.telemetry import RunLedger


def draw_trial(ctx: TrialContext, size: int = 4) -> np.ndarray:
    return ctx.rng.random(size)


def failing_trial(ctx: TrialContext) -> int:
    if ctx.index == 1:
        raise ValueError("deterministic failure")
    return ctx.index


class TestOnResult:
    def test_fires_once_per_trial_in_index_order_serially(self):
        seen = []
        TrialRunner(workers=1).run(
            draw_trial, 6, master_seed=3, on_result=lambda r: seen.append(r.index)
        )
        assert seen == list(range(6))

    def test_fires_for_every_trial_on_the_pool_path(self):
        seen = []
        TrialRunner(workers=3).run(
            draw_trial, 9, master_seed=3, on_result=lambda r: seen.append(r.index)
        )
        assert sorted(seen) == list(range(9))

    def test_fires_for_every_trial_on_the_sharded_path(self):
        seen = []
        TrialRunner(workers=2, shards=2).run(
            draw_trial, 8, master_seed=5, on_result=lambda r: seen.append(r.index)
        )
        assert sorted(seen) == list(range(8))

    def test_fires_after_ledger_append(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        recorded_at_callback = []

        def tap(result):
            recorded = {rec["index"] for rec in ledger.read()}
            recorded_at_callback.append(result.index in recorded)

        TrialRunner(workers=1).run(
            draw_trial, 4, master_seed=1, ledger=ledger, on_result=tap
        )
        assert recorded_at_callback == [True] * 4

    def test_replayed_trials_fire_too(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        TrialRunner(workers=1).run(draw_trial, 3, master_seed=9, ledger=ledger)
        seen = []
        report = TrialRunner(workers=1).run(
            draw_trial,
            5,
            master_seed=9,
            ledger=ledger,
            resume_from=ledger,
            on_result=lambda r: seen.append((r.index, r.replayed)),
        )
        assert seen == [(0, True), (1, True), (2, True), (3, False), (4, False)]
        assert report.replayed_count == 3

    def test_error_results_fire(self):
        seen = []
        report = TrialRunner(workers=1).run(
            failing_trial, 3, master_seed=0, on_result=lambda r: seen.append(r.ok)
        )
        assert seen == [True, False, True]
        assert len(report.failures()) == 1


class TestCancel:
    def test_pre_set_cancel_runs_nothing(self):
        cancel = threading.Event()
        cancel.set()
        report = TrialRunner(workers=1).run(
            draw_trial, 10, master_seed=0, cancel=cancel
        )
        assert report.cancelled is True
        assert report.results == []

    def test_mid_run_cancel_keeps_completed_prefix(self):
        cancel = threading.Event()

        def stop_after_three(result):
            if result.index == 2:
                cancel.set()

        report = TrialRunner(workers=1).run(
            draw_trial, 50, master_seed=0, cancel=cancel, on_result=stop_after_three
        )
        assert report.cancelled is True
        assert 3 <= len(report.results) < 50
        assert "cancelled" in report.summary()

    def test_unset_cancel_changes_nothing(self):
        cancel = threading.Event()
        plain = TrialRunner(workers=1).run(draw_trial, 5, master_seed=7)
        gated = TrialRunner(workers=1).run(
            draw_trial, 5, master_seed=7, cancel=cancel
        )
        assert gated.cancelled is False
        for a, b in zip(plain.values(), gated.values()):
            np.testing.assert_array_equal(a, b)

    def test_pool_path_cancel_stops_early(self):
        cancel = threading.Event()

        def stop_soon(result):
            cancel.set()

        report = TrialRunner(workers=2).run(
            draw_trial, 40, master_seed=1, cancel=cancel, on_result=stop_soon
        )
        assert report.cancelled is True
        assert len(report.results) < 40

    def test_cancelled_run_resumes_bit_identically(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        cancel = threading.Event()

        def stop_after_two(result):
            if result.index == 1:
                cancel.set()

        partial = TrialRunner(workers=1).run(
            draw_trial,
            8,
            master_seed=13,
            ledger=ledger,
            cancel=cancel,
            on_result=stop_after_two,
        )
        assert partial.cancelled and len(partial.results) < 8
        resumed = TrialRunner(workers=1).run(
            draw_trial, 8, master_seed=13, ledger=ledger, resume_from=ledger
        )
        assert resumed.cancelled is False
        reference = TrialRunner(workers=1).run(draw_trial, 8, master_seed=13)
        for a, b in zip(resumed.values(), reference.values()):
            np.testing.assert_array_equal(a, b)

    def test_sharded_path_cancel_stops_early(self):
        cancel = threading.Event()

        def stop_soon(result):
            cancel.set()

        report = TrialRunner(workers=2, shards=2).run(
            draw_trial, 40, master_seed=2, cancel=cancel, on_result=stop_soon
        )
        assert report.cancelled is True
        assert len(report.results) < 40

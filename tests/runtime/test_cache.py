"""CRPCache: hit/miss behaviour, prefix reuse, atomicity of provenance."""

import numpy as np
import pytest

from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.crp import CRPSet, generate_crps
from repro.runtime.cache import CRPCache, cache_key, fleet_cache_key


def make_crps(seed=0, m=100, n=12):
    puf = ArbiterPUF(n, np.random.default_rng(seed))
    return generate_crps(puf, m, np.random.default_rng(seed + 1))


def test_miss_generates_and_stores(tmp_path):
    cache = CRPCache(tmp_path)
    calls = []

    def gen():
        calls.append(1)
        return make_crps()

    crps = cache.get_or_generate(
        puf_spec="arbiter(n=12)", seed=0, distribution="uniform", m=100, generate=gen
    )
    assert len(crps) == 100
    assert calls == [1]
    assert cache.misses == 1 and cache.hits == 0
    assert cache.path_for(
        cache_key("arbiter(n=12)", 0, "uniform", 100)
    ).exists()


def test_hit_skips_generation(tmp_path):
    cache = CRPCache(tmp_path)
    first = cache.get_or_generate(
        puf_spec="a", seed=1, distribution="uniform", m=50, generate=make_crps
    )

    def must_not_run():
        raise AssertionError("generator called on a cache hit")

    second = cache.get_or_generate(
        puf_spec="a", seed=1, distribution="uniform", m=50, generate=must_not_run
    )
    np.testing.assert_array_equal(first.challenges, second.challenges)
    np.testing.assert_array_equal(first.responses, second.responses)
    assert cache.hits == 1


def test_prefix_served_from_larger_cached_set(tmp_path):
    cache = CRPCache(tmp_path)
    full = cache.get_or_generate(
        puf_spec="a", seed=2, distribution="uniform", m=100, generate=make_crps
    )
    prefix = cache.get_or_generate(
        puf_spec="a",
        seed=2,
        distribution="uniform",
        m=30,
        generate=lambda: pytest.fail("prefix request must hit"),
    )
    np.testing.assert_array_equal(prefix.challenges, full.challenges[:30])


def test_larger_request_regenerates(tmp_path):
    cache = CRPCache(tmp_path)
    cache.get_or_generate(
        puf_spec="a", seed=3, distribution="uniform", m=50,
        generate=lambda: make_crps(m=50),
    )
    bigger = cache.get_or_generate(
        puf_spec="a", seed=3, distribution="uniform", m=80,
        generate=lambda: make_crps(m=80),
    )
    assert len(bigger) == 80
    assert cache.misses == 2


def test_distinct_provenance_distinct_entries(tmp_path):
    keys = {
        cache_key("a", 0, "uniform", 10),
        cache_key("a", 1, "uniform", 10),
        cache_key("b", 0, "uniform", 10),
        cache_key("a", 0, "biased(0.3)", 10),
        cache_key("a", 0, "uniform", 10, noisy=True),
    }
    assert len(keys) == 5
    # m is deliberately NOT part of the key (prefix reuse).
    assert cache_key("a", 0, "uniform", 10) == cache_key("a", 0, "uniform", 99)


def test_short_generator_output_rejected(tmp_path):
    cache = CRPCache(tmp_path)
    with pytest.raises(ValueError, match="fewer than requested"):
        cache.get_or_generate(
            puf_spec="a", seed=4, distribution="uniform", m=100,
            generate=lambda: make_crps(m=10),
        )


def test_clear_removes_entries(tmp_path):
    cache = CRPCache(tmp_path)
    cache.get_or_generate(
        puf_spec="a", seed=5, distribution="uniform", m=10,
        generate=lambda: make_crps(m=10),
    )
    assert cache.clear() == 1
    assert cache.load(cache_key("a", 5, "uniform", 10)) is None


def test_env_var_default_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    cache = CRPCache()
    assert cache.cache_dir == tmp_path / "envcache"


def test_corrupt_entry_is_a_miss_and_regenerates(tmp_path):
    """A truncated/corrupt .npz (killed writer, bad disk) must not poison
    every future read: warn, unlink, regenerate."""
    cache = CRPCache(tmp_path)
    cache.get_or_generate(
        puf_spec="a", seed=7, distribution="uniform", m=20,
        generate=lambda: make_crps(m=20),
    )
    key = cache_key("a", 7, "uniform", 20)
    cache.path_for(key).write_bytes(b"this is not an npz archive")
    calls = []

    def regenerate():
        calls.append(1)
        return make_crps(m=20)

    with pytest.warns(RuntimeWarning, match="unreadable CRP cache entry"):
        crps = cache.get_or_generate(
            puf_spec="a", seed=7, distribution="uniform", m=20,
            generate=regenerate,
        )
    assert calls == [1]
    assert len(crps) == 20
    # The poisoned file was replaced with a readable one.
    assert cache.load(key) is not None


def test_store_leaves_no_staging_files(tmp_path):
    cache = CRPCache(tmp_path)
    cache.store(cache_key("a", 8, "uniform", 10), make_crps(m=10))
    assert list(tmp_path.glob("*.tmp.npz")) == []


def test_failed_store_cleans_its_staging_file(tmp_path, monkeypatch):
    cache = CRPCache(tmp_path)
    crps = make_crps(m=10)

    def boom(self, path):
        raise OSError("disk full")

    monkeypatch.setattr(CRPSet, "save", boom)
    with pytest.raises(OSError, match="disk full"):
        cache.store("deadbeef", crps)
    assert list(tmp_path.glob("*.tmp.npz")) == []
    assert not cache.path_for("deadbeef").exists()


def test_clear_sweeps_orphaned_staging_files(tmp_path):
    cache = CRPCache(tmp_path)
    cache.get_or_generate(
        puf_spec="a", seed=9, distribution="uniform", m=10,
        generate=lambda: make_crps(m=10),
    )
    orphan = tmp_path / "crps-deadbeef-x1y2z3.tmp.npz"
    orphan.write_bytes(b"partial write from a killed process")
    assert cache.clear() == 2
    assert not orphan.exists()


def test_concurrent_writers_never_corrupt_the_entry(tmp_path):
    """Racing writers of one key each stage in a private mkstemp file and
    publish atomically — the surviving entry is always whole."""
    import threading

    cache = CRPCache(tmp_path)
    key = cache_key("a", 10, "uniform", 30)
    sets = [make_crps(seed=s, m=30) for s in range(4)]
    threads = [
        threading.Thread(target=cache.store, args=(key, crps))
        for crps in sets
        for _ in range(3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    loaded = cache.load(key)
    assert loaded is not None and len(loaded) == 30
    assert list(tmp_path.glob("*.tmp.npz")) == []


def test_roundtrip_preserves_dtypes(tmp_path):
    cache = CRPCache(tmp_path)
    crps = cache.get_or_generate(
        puf_spec="a", seed=6, distribution="uniform", m=20,
        generate=lambda: make_crps(m=20),
    )
    reloaded = cache.get_or_generate(
        puf_spec="a", seed=6, distribution="uniform", m=20,
        generate=lambda: pytest.fail("must hit"),
    )
    assert isinstance(reloaded, CRPSet)
    assert reloaded.challenges.dtype == np.int8
    assert reloaded.responses.dtype == np.int8


# ----------------------------------------------------------------------
# Fleet response-plane entries
# ----------------------------------------------------------------------
def make_fleet_plane(seed=0, m=40, n=10, size=6):
    rng = np.random.default_rng(seed)
    challenges = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
    responses = (1 - 2 * rng.integers(0, 2, size=(m, size))).astype(np.int8)
    return challenges, responses


def test_fleet_key_includes_tier_and_shape():
    """An int8-tier run can never be served a float64 hit, and a resized
    fleet can never alias a stale plane — tier and shape are key material."""
    base = fleet_cache_key("spec", 0, "uniform", "float64", (64, 256))
    assert fleet_cache_key("spec", 0, "uniform", "int8", (64, 256)) != base
    assert fleet_cache_key("spec", 0, "uniform", "float32", (64, 256)) != base
    assert fleet_cache_key("spec", 0, "uniform", "float64", (64, 512)) != base
    assert fleet_cache_key("spec", 0, "uniform", "float64", (32, 256)) != base
    assert fleet_cache_key("spec", 1, "uniform", "float64", (64, 256)) != base
    assert fleet_cache_key("spec", 0, "uniform", "float64", (64, 256), noisy=True) != base
    # m stays out of the digest (prefix reuse), shapes accept numpy ints
    assert fleet_cache_key("spec", 0, "uniform", "float64", np.array([64, 256])) == base


def test_fleet_cross_tier_requests_never_share_an_entry(tmp_path):
    cache = CRPCache(tmp_path)
    f64_plane = make_fleet_plane(seed=1)
    i8_plane = make_fleet_plane(seed=2)
    served_f64 = cache.get_or_generate_fleet(
        "s", 0, "uniform", "float64", (10, 6), 40, lambda: f64_plane
    )
    served_i8 = cache.get_or_generate_fleet(
        "s", 0, "uniform", "int8", (10, 6), 40, lambda: i8_plane
    )
    assert cache.misses == 2 and cache.hits == 0
    assert not np.array_equal(served_f64[1], served_i8[1])


def test_fleet_hit_serves_row_prefix(tmp_path):
    cache = CRPCache(tmp_path)
    challenges, responses = make_fleet_plane(m=50)
    cache.get_or_generate_fleet(
        "s", 3, "uniform", "float64", (10, 6), 50, lambda: (challenges, responses)
    )
    got_c, got_r = cache.get_or_generate_fleet(
        "s", 3, "uniform", "float64", (10, 6), 20,
        lambda: pytest.fail("prefix request must hit"),
    )
    assert cache.hits == 1
    assert np.array_equal(got_c, challenges[:20])
    assert np.array_equal(got_r, responses[:20])
    assert got_c.dtype == np.int8 and got_r.dtype == np.int8


def test_corrupt_fleet_entry_is_a_miss_and_regenerates(tmp_path):
    cache = CRPCache(tmp_path)
    plane = make_fleet_plane(seed=7)
    cache.get_or_generate_fleet(
        "s", 7, "uniform", "float64", (10, 6), 40, lambda: plane
    )
    key = fleet_cache_key("s", 7, "uniform", "float64", (10, 6))
    cache.fleet_path_for(key).write_bytes(b"truncated garbage")
    with pytest.warns(RuntimeWarning, match="unreadable fleet cache entry"):
        got_c, got_r = cache.get_or_generate_fleet(
            "s", 7, "uniform", "float64", (10, 6), 40, lambda: plane
        )
    assert cache.misses == 2
    assert np.array_equal(got_r, plane[1])
    # the regenerated entry is whole again
    assert cache.load_fleet(key) is not None


def test_malformed_fleet_entry_is_discarded(tmp_path):
    """A structurally wrong archive (mismatched row counts) degrades to a
    miss too, not just an unreadable one."""
    cache = CRPCache(tmp_path)
    key = fleet_cache_key("s", 8, "uniform", "float64", (10, 6))
    cache.cache_dir.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        cache.fleet_path_for(key),
        challenges=np.ones((5, 10), dtype=np.int8),
        responses=np.ones((7, 6), dtype=np.int8),
    )
    with pytest.warns(RuntimeWarning, match="unreadable fleet cache entry"):
        assert cache.load_fleet(key) is None
    assert not cache.fleet_path_for(key).exists()


def test_fleet_short_generator_output_rejected(tmp_path):
    cache = CRPCache(tmp_path)
    with pytest.raises(ValueError, match="fewer than requested"):
        cache.get_or_generate_fleet(
            "s", 9, "uniform", "float64", (10, 6), 100,
            lambda: make_fleet_plane(m=40),
        )


def test_clear_sweeps_fleet_entries_too(tmp_path):
    cache = CRPCache(tmp_path)
    cache.get_or_generate(
        puf_spec="a", seed=1, distribution="uniform", m=10,
        generate=lambda: make_crps(m=10),
    )
    cache.get_or_generate_fleet(
        "s", 1, "uniform", "float64", (10, 6), 40, lambda: make_fleet_plane()
    )
    assert cache.clear() == 2
    assert list(tmp_path.glob("*.npz")) == []


def test_fleet_hit_meters_per_instance_queries(tmp_path):
    from repro.telemetry.meter import QueryMeter, metered

    cache = CRPCache(tmp_path)
    cache.get_or_generate_fleet(
        "s", 2, "uniform", "float64", (10, 6), 40, lambda: make_fleet_plane()
    )
    meter = QueryMeter()
    with metered(meter):
        cache.get_or_generate_fleet(
            "s", 2, "uniform", "float64", (10, 6), 30,
            lambda: pytest.fail("must hit"),
        )
    assert meter.total_queries == 30 * 6

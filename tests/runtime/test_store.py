"""ArtifactStore: digest schema, LRU eviction, tier isolation, warm start.

Pins the content-addressed store contract: the digest covers exactly the
generation provenance (kind, spec, seed identity, challenge-set identity,
dtype tier, shape, noisy) and nothing else; eviction is size-capped LRU
with the just-published entry protected; an int8-tier request is never
served a float64 entry; warm-start reruns are bit-identical to cold ones;
and two processes publishing the same digest concurrently both succeed
with exactly one complete archive surviving (winner-take-one).
"""

import multiprocessing
import os
import warnings

import numpy as np
import pytest

from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.crp import generate_crps
from repro.runtime import TrialRunner
from repro.runtime.store import (
    ARTIFACT_KINDS,
    MAX_BYTES_ENV,
    STORE_DIR_ENV,
    ArtifactStore,
    artifact_digest,
    hash_challenges,
)
from repro.runtime.workloads import FleetEvalSpec, fleet_eval_trial


def make_crps(seed=0, m=100, n=12):
    puf = ArbiterPUF(n, np.random.default_rng(seed))
    return generate_crps(puf, m, np.random.default_rng(seed + 1))


def make_plane(seed=0, m=40, n=8, size=3):
    rng = np.random.default_rng(seed)
    challenges = rng.choice(np.array([-1, 1], dtype=np.int8), size=(m, n))
    responses = rng.choice(np.array([-1, 1], dtype=np.int8), size=(m, size))
    return challenges, responses


# ----------------------------------------------------------------------
# Digest schema: provenance in, row count out.
# ----------------------------------------------------------------------
class TestArtifactDigest:
    def test_stable_and_hex(self):
        a = artifact_digest("crps", "arbiter(n=12)", 7)
        assert a == artifact_digest("crps", "arbiter(n=12)", 7)
        assert len(a) == 32
        int(a, 16)  # hex

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown artifact kind"):
            artifact_digest("weights", "spec", 0)

    def test_kind_namespaces_entries(self):
        assert set(ARTIFACT_KINDS) == {"crps", "fleet"}
        assert artifact_digest("crps", "s", 0) != artifact_digest("fleet", "s", 0)

    @pytest.mark.parametrize(
        "override",
        [
            {"spec": "other-spec"},
            {"seed": 1},
            {"distribution": "biased(0.25)"},
            {"tier": "float64"},
            {"shape": (8, 16)},
            {"noisy": True},
        ],
    )
    def test_every_provenance_field_is_key_material(self, override):
        base = dict(
            kind="fleet", spec="s", seed=0, distribution="uniform",
            tier="int8", shape=(4, 8), noisy=False,
        )
        assert artifact_digest(**base) != artifact_digest(**{**base, **override})

    def test_seed_identity_distinguishes_launch_forms(self):
        # int 1 and string "1" are different provenance, not the same key.
        assert artifact_digest("crps", "s", 1) != artifact_digest("crps", "s", "1")

    def test_row_count_is_not_key_material(self, tmp_path):
        """The digest takes no ``m``: a smaller request resolves to the same
        entry as a larger draw from the same state (prefix reuse)."""
        store = ArtifactStore(tmp_path)
        full = store.get_or_generate(
            puf_spec="s", seed=0, distribution="uniform", m=80,
            generate=lambda: make_crps(m=80),
        )
        prefix = store.get_or_generate(
            puf_spec="s", seed=0, distribution="uniform", m=30,
            generate=lambda: pytest.fail("prefix request must hit"),
        )
        assert len(store.entries()) == 1
        np.testing.assert_array_equal(prefix.challenges, full.challenges[:30])

    def test_hash_challenges_covers_content_shape_dtype(self):
        x = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        assert hash_challenges(x).startswith("sha256:")
        assert hash_challenges(x) == hash_challenges(x.copy())
        assert hash_challenges(x) != hash_challenges(-x)
        assert hash_challenges(x) != hash_challenges(x.reshape(4, 1))
        assert hash_challenges(x) != hash_challenges(x.astype(np.int16))

    def test_hash_challenges_keys_explicit_challenge_sets(self, tmp_path):
        """Passing hash_challenges(x) as the distribution keys the entry by
        challenge content: different matrices never alias."""
        x, y = make_plane(seed=1)[0], make_plane(seed=2)[0]
        assert artifact_digest("crps", "s", 0, distribution=hash_challenges(x)) != \
            artifact_digest("crps", "s", 0, distribution=hash_challenges(y))


# ----------------------------------------------------------------------
# LRU eviction under a byte cap.
# ----------------------------------------------------------------------
class TestLRUEviction:
    def fill(self, store, count, m=80):
        paths = []
        for i in range(count):
            key = artifact_digest("crps", f"spec-{i}", i)
            paths.append(store.store(key, make_crps(seed=i, m=m)))
        return paths

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self.fill(store, 3)
        assert store.evictions == 0
        assert len(store.entries()) == 3

    def test_oldest_entries_evicted_first(self, tmp_path):
        seed_store = ArtifactStore(tmp_path)
        a, b = self.fill(seed_store, 2)
        cap = seed_store.total_bytes()
        # Pin distinct mtimes so LRU order is unambiguous.
        os.utime(a, (1_000, 1_000))
        os.utime(b, (2_000, 2_000))

        capped = ArtifactStore(tmp_path, max_bytes=cap)
        key_c = artifact_digest("crps", "spec-c", 99)
        c = capped.store(key_c, make_crps(seed=99, m=10))  # small; one evict
        assert capped.evictions == 1
        assert not a.exists()  # oldest went first
        assert b.exists() and c.exists()

    def test_hit_refreshes_recency(self, tmp_path):
        seed_store = ArtifactStore(tmp_path)
        a, b = self.fill(seed_store, 2)
        cap = seed_store.total_bytes()
        os.utime(a, (1_000, 1_000))
        os.utime(b, (2_000, 2_000))

        capped = ArtifactStore(tmp_path, max_bytes=cap)
        key_a = artifact_digest("crps", "spec-0", 0)
        assert capped.load(key_a) is not None  # touches a: now the newest
        capped.store(artifact_digest("crps", "spec-c", 99), make_crps(99, m=10))
        assert a.exists()  # survived because the hit refreshed it
        assert not b.exists()

    def test_just_published_entry_is_never_evicted(self, tmp_path):
        # A cap smaller than a single entry: everything else goes, but the
        # entry being published survives (the caller is about to use it).
        store = ArtifactStore(tmp_path, max_bytes=1)
        self.fill(store, 2)
        entries = store.entries()
        assert len(entries) == 1
        assert store.evictions == 1

    def test_cap_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env-store"))
        monkeypatch.setenv(MAX_BYTES_ENV, "12345")
        store = ArtifactStore()
        assert store.store_dir == tmp_path / "env-store"
        assert store.max_bytes == 12345


# ----------------------------------------------------------------------
# Tier isolation: the dtype tier is key material for fleet planes.
# ----------------------------------------------------------------------
class TestTierIsolation:
    def fleet_args(self, tier):
        return dict(
            fleet_spec="fleet(arbiter, n=8, size=3)",
            seed=5,
            distribution="uniform",
            tier=tier,
            shape=(8, 3),
            m=40,
        )

    def test_int8_request_never_served_float64_entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def gen():
            calls.append(1)
            return make_plane(seed=5)

        store.get_or_generate_fleet(**self.fleet_args("float64"), generate=gen)
        store.get_or_generate_fleet(**self.fleet_args("int8"), generate=gen)
        assert len(calls) == 2  # second tier missed; no cross-tier serving
        assert store.misses == 2 and store.hits == 0

        def must_not_run():
            raise AssertionError("same-tier request must hit")

        store.get_or_generate_fleet(
            **self.fleet_args("int8"), generate=must_not_run
        )
        assert store.hits == 1

    def test_shape_is_key_material(self, tmp_path):
        store = ArtifactStore(tmp_path)
        args = self.fleet_args("int8")
        store.get_or_generate_fleet(**args, generate=lambda: make_plane(seed=5))
        args["shape"] = (8, 4)
        store.get_or_generate_fleet(**args, generate=lambda: make_plane(seed=5))
        assert store.misses == 2


# ----------------------------------------------------------------------
# Warm-start determinism: cold and warm runs are byte-equal.
# ----------------------------------------------------------------------
class TestWarmStartDeterminism:
    def test_cold_then_warm_fleet_sweep_is_bit_identical(self, tmp_path):
        spec = FleetEvalSpec(
            family="arbiter", n=16, size=8, m=200,
            noise_sigma=0.0, repetitions=1,
        )
        kwargs = {"spec": spec, "cache_dir": str(tmp_path)}
        runner = TrialRunner(workers=1)
        cold = runner.run(fleet_eval_trial, 3, master_seed=9, trial_kwargs=kwargs)
        warm = runner.run(fleet_eval_trial, 3, master_seed=9, trial_kwargs=kwargs)
        for a, b in zip(cold.values(), warm.values()):
            np.testing.assert_array_equal(a, b)
            assert a.dtype == b.dtype and a.shape == b.shape
        # Separate run() calls share the on-disk entries: cross-run reuse.
        probe = ArtifactStore(tmp_path)
        assert len(probe.entries()) == 3

    def test_corrupt_fleet_entry_is_a_miss_and_regenerates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        args = dict(
            fleet_spec="f", seed=0, distribution="uniform",
            tier="int8", shape=(8, 3), m=40,
        )
        store.get_or_generate_fleet(**args, generate=lambda: make_plane(seed=3))
        (entry,) = store.entries()
        entry.write_bytes(b"not a zip archive")
        fresh = ArtifactStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="unreadable fleet cache entry"):
            challenges, responses = fresh.get_or_generate_fleet(
                **args, generate=lambda: make_plane(seed=3)
            )
        assert fresh.corrupt == 1 and fresh.misses == 1
        np.testing.assert_array_equal(challenges, make_plane(seed=3)[0][:40])

    def test_stats_reports_counters_and_disk_state(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=10**9)
        store.get_or_generate(
            puf_spec="a", seed=0, distribution="uniform", m=50,
            generate=lambda: make_crps(m=50),
        )
        store.get_or_generate(
            puf_spec="a", seed=0, distribution="uniform", m=50,
            generate=lambda: pytest.fail("must hit"),
        )
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["evictions"] == 0 and stats["corrupt"] == 0
        assert stats["bytes_served"] > 0 and stats["bytes_stored"] > 0
        assert stats["entries"] == 1
        assert stats["total_bytes"] == store.total_bytes() > 0
        assert stats["max_bytes"] == 10**9


# ----------------------------------------------------------------------
# Same-key publication race: winner-take-one, at the process level.
# ----------------------------------------------------------------------
def _race_writer(store_dir, key, barrier):
    """Store byte-identical CRPs under one key, synchronised for overlap."""
    store = ArtifactStore(store_dir)
    crps = make_crps(seed=0, m=120)  # same provenance => same bytes
    barrier.wait()
    store.store(key, crps)


class TestSameKeyRace:
    def test_concurrent_writers_leave_one_complete_archive(self, tmp_path):
        """Two+ processes publishing the same digest concurrently must both
        succeed, with exactly one complete ``.npz`` surviving and zero
        staging orphans — the winner-take-one contract.  Which writer wins
        is unobservable because entries for one digest are byte-equivalent
        by construction (the digest *is* the generation provenance)."""
        ctx = multiprocessing.get_context("fork")
        key = artifact_digest("crps", "race-spec", 0)
        barrier = ctx.Barrier(4)
        procs = [
            ctx.Process(target=_race_writer, args=(str(tmp_path), key, barrier))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        store = ArtifactStore(tmp_path)
        assert list(store.entries()) == [store.path_for(key)]
        assert not list(tmp_path.glob("*.tmp.npz"))  # no staging orphans
        # The surviving archive is complete and serves hits.
        cached = store.get_or_generate(
            puf_spec="race-spec", seed=0, distribution="uniform", m=120,
            generate=lambda: pytest.fail("race survivor must serve the hit"),
        )
        reference = make_crps(seed=0, m=120)
        np.testing.assert_array_equal(cached.challenges, reference.challenges)
        np.testing.assert_array_equal(cached.responses, reference.responses)


def test_direct_crpcache_construction_is_deprecated(tmp_path):
    from repro.runtime.cache import CRPCache

    with pytest.warns(DeprecationWarning, match="ArtifactStore"):
        cache = CRPCache(tmp_path)
    assert isinstance(cache, ArtifactStore)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        ArtifactStore(tmp_path)  # the replacement constructs silently


# ----------------------------------------------------------------------
# Coarse-mtime regression: a fresh publish must never be self-evicting.
# ----------------------------------------------------------------------
class TestCoarseMtimeEviction:
    """On a 1s-granularity filesystem every entry can share one mtime —
    or the fresh entry can even sort *oldest* (its staging file's stamp
    predates entries touched during the write).  The publish path must
    still guarantee the entry just stored survives its own admission
    pass: ``_touch`` before size accounting and an unconditional
    ``protect`` in ``_evict_over_cap``."""

    def test_fresh_entry_survives_when_all_mtimes_are_equal(
        self, tmp_path, monkeypatch
    ):
        from repro.runtime import store as store_mod

        # Simulate a coarse clock: every entry reports the same stamp, so
        # sort order degenerates to filesystem enumeration order.
        monkeypatch.setattr(store_mod, "_entry_mtime", lambda path: 1_000.0)
        seed_store = ArtifactStore(tmp_path)
        seed_store.store(artifact_digest("crps", "old-a", 0), make_crps(0, m=80))
        seed_store.store(artifact_digest("crps", "old-b", 1), make_crps(1, m=80))
        cap = seed_store.total_bytes()

        capped = ArtifactStore(tmp_path, max_bytes=cap)
        fresh = capped.store(
            artifact_digest("crps", "fresh", 99), make_crps(99, m=80)
        )
        assert fresh.exists(), "the entry just published was evicted"
        assert capped.evictions >= 1  # the cap was enforced on the others

    def test_fresh_entry_survives_even_when_it_sorts_oldest(
        self, tmp_path, monkeypatch
    ):
        from repro.runtime import store as store_mod

        seed_store = ArtifactStore(tmp_path)
        seed_store.store(artifact_digest("crps", "old-a", 0), make_crps(0, m=80))
        seed_store.store(artifact_digest("crps", "old-b", 1), make_crps(1, m=80))
        cap = seed_store.total_bytes()

        capped = ArtifactStore(tmp_path, max_bytes=cap)
        fresh_key = artifact_digest("crps", "fresh", 99)
        fresh_path = capped.path_for(fresh_key)
        # Adversarial clock: the fresh entry reports an *earlier* stamp
        # than everything already present (staging-file inheritance).
        monkeypatch.setattr(
            store_mod,
            "_entry_mtime",
            lambda path: 0.0 if path == fresh_path else 1_000.0,
        )
        capped.store(fresh_key, make_crps(99, m=80))
        assert fresh_path.exists(), "protect must override LRU order"

    def test_fresh_entry_larger_than_the_cap_is_kept(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=1)  # everything oversizes
        path = store.store(artifact_digest("crps", "big", 0), make_crps(0, m=80))
        assert path.exists()  # the caller is about to read it

    def test_publish_stamps_mtime_fresh(self, tmp_path):
        """The published file's mtime reflects publish time, not staging
        time: after an old entry is backdated, a new store must sort
        strictly newer than it."""
        store = ArtifactStore(tmp_path)
        old = store.store(artifact_digest("crps", "old", 0), make_crps(0, m=20))
        os.utime(old, (1_000, 1_000))
        new = store.store(artifact_digest("crps", "new", 1), make_crps(1, m=20))
        from repro.runtime.store import _entry_mtime

        assert _entry_mtime(new) > _entry_mtime(old)

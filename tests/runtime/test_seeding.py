"""Seed fan-out: the determinism foundation of the parallel runtime."""

import numpy as np
import pytest

from repro.runtime.seeding import as_seed_sequence, fan_out, trial_rng, trial_seed


def test_fan_out_is_reproducible():
    first = fan_out(1234, 8)
    second = fan_out(1234, 8)
    for a, b in zip(first, second):
        assert np.random.default_rng(a).integers(0, 2**32) == np.random.default_rng(
            b
        ).integers(0, 2**32)


def test_fan_out_children_are_distinct():
    draws = [
        np.random.default_rng(s).integers(0, 2**63) for s in fan_out(0, 16)
    ]
    assert len(set(draws)) == 16


def test_trial_seed_matches_fan_out():
    children = fan_out(99, 5)
    for i, child in enumerate(children):
        direct = trial_seed(99, i)
        assert np.random.default_rng(direct).integers(
            0, 2**63
        ) == np.random.default_rng(child).integers(0, 2**63)


def test_trial_seed_of_spawned_parent():
    parent = np.random.SeedSequence(7).spawn(3)[1]
    children = parent.spawn(4)
    direct = trial_seed(parent, 2)
    assert np.random.default_rng(direct).integers(
        0, 2**63
    ) == np.random.default_rng(children[2]).integers(0, 2**63)


def test_trial_rng_is_prefix_stable():
    """Trial i's stream does not depend on how many trials exist."""
    few = trial_rng(42, 3).random(4)
    many = trial_rng(42, 3).random(4)
    np.testing.assert_array_equal(few, many)


def test_as_seed_sequence_passthrough():
    seq = np.random.SeedSequence(5)
    assert as_seed_sequence(seq) is seq
    assert as_seed_sequence(5).entropy == 5


def test_invalid_arguments():
    with pytest.raises(ValueError):
        fan_out(0, 0)
    with pytest.raises(ValueError):
        trial_seed(0, -1)

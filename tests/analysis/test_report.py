"""Unit tests for the report aggregator."""

import pytest

from repro.analysis.report import aggregate_results, main, write_report


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "table1_bounds.txt").write_text("TABLE ONE\n")
    (d / "zzz_custom.txt").write_text("CUSTOM\n")
    (d / "lmn_xorpuf.txt").write_text("LMN\n")
    return d


class TestAggregate:
    def test_orders_known_sections_first(self, results_dir):
        text = aggregate_results(results_dir)
        assert text.index("table1_bounds") < text.index("lmn_xorpuf")
        assert text.index("lmn_xorpuf") < text.index("zzz_custom")

    def test_contents_included(self, results_dir):
        text = aggregate_results(results_dir)
        assert "TABLE ONE" in text
        assert "CUSTOM" in text

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            aggregate_results(tmp_path / "nope")

    def test_empty_dir_raises(self, tmp_path):
        d = tmp_path / "empty"
        d.mkdir()
        with pytest.raises(FileNotFoundError):
            aggregate_results(d)

    def test_write_report(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "REPORT.md")
        assert out.exists()
        assert "# Benchmark results" in out.read_text()

    def test_cli(self, results_dir, tmp_path, capsys):
        assert main([str(results_dir), str(tmp_path / "r.md")]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main([]) == 2

"""Unit tests for the learning-curve utility and the CLI."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.analysis.learning_curves import (
    LearningCurve,
    compare_learners,
    learning_curve,
    replicated_learning_curve,
)
from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import ArbiterPUF, parity_transform


def logistic_fitter(x, y, rng):
    return LogisticAttack(feature_map=parity_transform).fit(x, y, rng).predict


def arbiter_factory(rng):
    return ArbiterPUF(16, rng)


class TestLearningCurve:
    def test_curve_shape(self):
        rng = np.random.default_rng(0)
        puf = ArbiterPUF(24, rng)
        curve = learning_curve(
            "logistic", logistic_fitter, puf, [100, 800], test_size=2000, rng=rng
        )
        assert curve.budgets == [100, 800]
        assert len(curve.accuracies) == 2
        assert curve.final_accuracy() > 0.9
        assert curve.accuracies[1] >= curve.accuracies[0] - 0.02

    def test_budget_to_reach(self):
        curve = LearningCurve("x", [10, 100, 1000], [0.6, 0.9, 0.99])
        assert curve.budget_to_reach(0.85) == 100
        assert curve.budget_to_reach(0.999) is None

    def test_is_monotone(self):
        assert LearningCurve("x", [1, 2], [0.6, 0.7]).is_monotone()
        assert not LearningCurve("x", [1, 2], [0.9, 0.6]).is_monotone()
        assert LearningCurve("x", [1, 2], [0.90, 0.88]).is_monotone(slack=0.05)

    def test_validates_budgets(self):
        puf = ArbiterPUF(8, np.random.default_rng(1))
        with pytest.raises(ValueError):
            learning_curve("x", logistic_fitter, puf, [])
        with pytest.raises(ValueError):
            learning_curve("x", logistic_fitter, puf, [0, 10])

    def test_compare_learners_names(self):
        rng = np.random.default_rng(2)
        puf = ArbiterPUF(16, rng)
        curves = compare_learners(
            {"a": logistic_fitter, "b": logistic_fitter},
            puf,
            [200],
            test_size=1000,
            rng=rng,
        )
        assert {c.learner for c in curves} == {"a", "b"}


class TestReplicatedLearningCurve:
    def test_mean_and_std_shapes(self):
        curve, report = replicated_learning_curve(
            "logistic",
            logistic_fitter,
            arbiter_factory,
            [50, 200],
            trials=3,
            test_size=300,
            master_seed=5,
        )
        assert curve.budgets == [50, 200]
        assert len(curve.mean_accuracies) == 2
        assert len(curve.std_accuracies) == 2
        assert curve.trials == 3
        assert len(report.results) == 3
        assert curve.as_curve().accuracies == curve.mean_accuracies

    def test_worker_count_does_not_change_numbers(self):
        kwargs = dict(
            budgets=[50, 200], trials=4, test_size=300, master_seed=17
        )
        serial, _ = replicated_learning_curve(
            "l", logistic_fitter, arbiter_factory, workers=1, **kwargs
        )
        pooled, _ = replicated_learning_curve(
            "l", logistic_fitter, arbiter_factory, workers=4, **kwargs
        )
        assert serial.mean_accuracies == pooled.mean_accuracies
        assert serial.std_accuracies == pooled.std_accuracies

    def test_validates_trials(self):
        with pytest.raises(ValueError):
            replicated_learning_curve(
                "l", logistic_fitter, arbiter_factory, [10], trials=0
            )


class TestCLI:
    def test_assess_runs(self, capsys):
        assert main(["assess", "--n", "32", "--k", "6"]) == 0
        out = capsys.readouterr().out
        assert "Corollary 1 (LMN)" in out
        assert "Verdicts disagree" in out

    def test_audit_runs(self, capsys):
        assert main(["audit", "--n", "64", "--k", "9"]) == 0
        out = capsys.readouterr().out
        assert "UNSOUND" in out
        assert "pitfall" in out

    def test_attack_demo_runs(self, capsys):
        assert main(["attack-demo", "--key-length", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "recovered key" in out

    def test_trials_runs_and_checks_identity(self, capsys):
        code = main(
            [
                "trials",
                "--trials", "3",
                "--workers", "2",
                "--n", "16",
                "--budgets", "40,80",
                "--test-size", "200",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical results across worker counts: True" in out
        assert "speedup:" in out
        assert "per-trial timings" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

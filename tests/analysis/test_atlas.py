"""Unit tests for the security-boundary atlas engine (ISSUE 10)."""

import json

import numpy as np
import pytest

from repro.analysis.atlas import (
    AtlasTrialSpec,
    atlas_trial,
    bench_cases,
    expand_grid,
    reduce_atlas,
    render_markdown,
    run_atlas,
    smoke_spec,
)
from repro.runtime.runner import TrialRunner
from repro.telemetry.ledger import RunLedger

TINY = AtlasTrialSpec(
    families=("xor",),
    learners=("lr",),
    representations=("parity",),
    ns=(16,),
    ks=(1, 2),
    noise_sigmas=(0.0, 0.3),
    budgets=(40, 100),
    test_size=300,
    lr_restarts=2,
    lr_max_iter=60,
)


class TestSpec:
    def test_axes_are_canonicalised(self):
        spec = AtlasTrialSpec(
            families=("cdc_xor", "xor"),
            ks=(3, 1, 1),
            budgets=(400, 150, 150),
        )
        assert spec.families == ("xor", "cdc_xor")
        assert spec.ks == (1, 3)
        assert spec.budgets == (150, 400)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown learner"):
            AtlasTrialSpec(learners=("svm",))
        with pytest.raises(ValueError, match="n >= 4"):
            AtlasTrialSpec(ns=(2,))
        with pytest.raises(ValueError, match="m >= 10"):
            AtlasTrialSpec(budgets=(5,))
        with pytest.raises(ValueError, match="empty"):
            expand_grid(
                AtlasTrialSpec(learners=("reliability",), noise_sigmas=(0.0,))
            )

    def test_smoke_spec_covers_all_three_scenario_families(self):
        spec = smoke_spec()
        cells = expand_grid(spec)
        assert len(cells) >= 100
        assert {c.family for c in cells} == {"xor", "cdc_xor"}
        assert {c.learner for c in cells} == {"lr", "mlp", "reliability"}
        assert {c.representation for c in cells} == {"parity", "raw"}


class TestTrial:
    def _run(self, spec, trials=None, **kwargs):
        return TrialRunner(workers=1).run(
            atlas_trial,
            trials if trials is not None else len(expand_grid(spec)),
            7,
            {"spec": spec, **kwargs},
        )

    def test_trial_value_shape_and_range(self):
        report = self._run(TINY, trials=2)
        for result in report.results:
            assert result.ok, result.error
            acc, queries = result.value
            assert 0.0 <= acc <= 1.0
            assert queries in (40.0, 100.0)

    def test_trials_are_deterministic_given_seed_and_index(self):
        a = self._run(TINY, trials=3)
        b = self._run(TINY, trials=3)
        for ra, rb in zip(a.results, b.results):
            assert np.array_equal(ra.value, rb.value)

    def test_artifact_cache_does_not_change_values(self, tmp_path):
        plain = self._run(TINY, trials=2)
        cached = self._run(TINY, trials=2, cache_dir=str(tmp_path / "crp"))
        warm = self._run(TINY, trials=2, cache_dir=str(tmp_path / "crp"))
        for a, b, c in zip(plain.results, cached.results, warm.results):
            assert np.array_equal(a.value, b.value)
            assert np.array_equal(a.value, c.value)


class TestReduce:
    def test_frontier_is_smallest_breaking_budget(self):
        values = {0: [0.6, 40.0], 1: [0.9, 100.0], 2: [0.5, 40.0], 3: [0.55, 100.0]}
        spec = AtlasTrialSpec(
            families=("xor",), learners=("lr",), ns=(16,), ks=(1, 2),
            noise_sigmas=(0.0,), budgets=(40, 100),
        )
        payload = reduce_atlas(spec, values, frontier=0.75)
        (map_,) = payload["maps"]
        assert map_["frontier"] == {"1": 100, "2": None}
        assert map_["broken_cells"] == 1

    def test_rejects_silly_frontier(self):
        with pytest.raises(ValueError, match="frontier"):
            reduce_atlas(TINY, {}, frontier=0.4)

    def test_markdown_and_bench_cases_render(self):
        values = {i: [0.5 + 0.1 * i, 40.0] for i in range(4)}
        payload = reduce_atlas(TINY, values)
        text = render_markdown(payload)
        assert "# Security-boundary atlas" in text
        assert payload["digest"] in text
        cases = bench_cases(payload)
        assert len(cases) == len(payload["maps"])
        assert all("max_mean_accuracy" in case for case in cases)
        json.dumps(payload)  # the whole payload must be JSON-plain


class TestRunAtlas:
    def test_end_to_end_and_resume_bit_identity(self, tmp_path):
        clean, _ = run_atlas(TINY, master_seed=3)
        assert clean["missing_trials"] == 0

        ledger = RunLedger(tmp_path / "run")
        first, _ = run_atlas(TINY, master_seed=3, ledger=ledger)
        assert first["digest"] == clean["digest"]
        resumed, report = run_atlas(
            TINY, master_seed=3, ledger=ledger, resume=True
        )
        assert "replayed" in report.summary()
        assert resumed["digest"] == clean["digest"]

    def test_sharding_does_not_change_the_digest(self):
        serial, _ = run_atlas(TINY, master_seed=5)
        sharded, _ = run_atlas(TINY, master_seed=5, workers=2, shards=2)
        assert sharded["digest"] == serial["digest"]


class TestServiceRegistration:
    def test_atlas_is_a_servable_workload(self):
        from repro.service.jobs import WORKLOADS, build_workload

        assert "atlas" in WORKLOADS
        trial_fn, spec = build_workload(
            "atlas",
            {"families": ["xor"], "learners": ["lr"], "ns": [16],
             "ks": [1], "noise_sigmas": [0.0], "budgets": [50]},
        )
        assert trial_fn is atlas_trial
        assert spec.families == ("xor",)
        assert spec.budgets == (50,)

"""Unit tests for repro.analysis.tables."""

import math

import pytest

from repro.analysis.tables import TableBuilder, format_float, format_table


class TestFormatFloat:
    def test_integers_plain(self):
        assert format_float(42.0) == "42"

    def test_small_floats_fixed(self):
        assert format_float(3.14159) == "3.14"
        assert format_float(3.14159, digits=4) == "3.1416"

    def test_huge_scientific(self):
        assert "e" in format_float(1.5e12)

    def test_inf(self):
        assert format_float(math.inf) == "inf"

    def test_none_and_str_passthrough(self):
        assert format_float(None) == "-"
        assert format_float("abc") == "abc"


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        assert text.startswith("T\n")
        assert "| a" in text
        assert "| 1" in text

    def test_alignment(self):
        text = format_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len({len(l) for l in lines[1:]}) == 1  # uniform width

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestTableBuilder:
    def test_build_and_render(self):
        tb = TableBuilder(["n", "acc"], title="demo")
        tb.add_row(16, 0.95)
        tb.add_row(32, 0.90)
        text = tb.render()
        assert "demo" in text
        assert "0.95" in text

    def test_validates(self):
        with pytest.raises(ValueError):
            TableBuilder([])
        tb = TableBuilder(["a"])
        with pytest.raises(ValueError):
            tb.add_row(1, 2)

    def test_print_does_not_crash(self, capsys):
        tb = TableBuilder(["a"])
        tb.add_row(1)
        tb.print()
        assert "| a |" in capsys.readouterr().out

"""Unit tests for the CDC-XOR arbiter PUF (ISSUE 10)."""

import numpy as np
import pytest

from repro.pufs.arbiter import parity_transform
from repro.pufs.cdc_xor import (
    CDCXORArbiterPUF,
    default_shifts,
    derive_component_challenges,
)
from repro.pufs.crp import uniform_challenges
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestDeriveComponentChallenges:
    def test_default_shifts_spread_evenly(self):
        assert default_shifts(1, 16) == (0,)
        assert default_shifts(2, 16) == (0, 8)
        assert default_shifts(4, 16) == (0, 4, 8, 12)

    def test_rotation_semantics(self):
        c = np.array([[1, -1, 1, 1]], dtype=np.int8)
        components = derive_component_challenges(c, 2, shifts=(0, 1))
        assert np.array_equal(components[0], c)
        assert np.array_equal(
            components[1], np.array([[-1, 1, 1, 1]], dtype=np.int8)
        )

    def test_shift_wraps_modulo_n(self):
        c = uniform_challenges(8, 6, np.random.default_rng(0))
        a = derive_component_challenges(c, 1, shifts=(2,))
        b = derive_component_challenges(c, 1, shifts=(8,))
        assert np.array_equal(a, b)

    def test_rejects_mismatched_shift_count(self):
        c = uniform_challenges(4, 8, np.random.default_rng(0))
        with pytest.raises(ValueError):
            derive_component_challenges(c, 3, shifts=(0, 4))


class TestCDCXORArbiterPUF:
    def test_component_features_are_rotated_parities(self):
        puf = CDCXORArbiterPUF(12, 3, np.random.default_rng(1))
        c = uniform_challenges(32, 12, np.random.default_rng(2))
        features = puf.component_features(c)
        components = derive_component_challenges(c, 3, puf.shifts)
        assert features.shape == (3, 32, 13)
        for i in range(3):
            assert np.array_equal(features[i], parity_transform(components[i]))

    def test_breaks_shared_feature_structure_for_k_ge_2(self):
        """Unlike the plain XOR, CDC components see different features."""
        rng = np.random.default_rng(3)
        plain = XORArbiterPUF(16, 2, rng)
        cdc = CDCXORArbiterPUF(16, 2, rng)
        c = uniform_challenges(16, 16, np.random.default_rng(4))
        plain_f = plain.component_features(c)
        cdc_f = cdc.component_features(c)
        assert np.array_equal(plain_f[0], plain_f[1])
        assert not np.array_equal(cdc_f[0], cdc_f[1])

    def test_noisy_eval_respects_sigma_zero(self):
        puf = CDCXORArbiterPUF(16, 2, np.random.default_rng(5), noise_sigma=0.0)
        c = uniform_challenges(64, 16, np.random.default_rng(6))
        assert np.array_equal(puf.eval_noisy(c, np.random.default_rng(7)), puf.eval(c))

    def test_custom_shifts_round_trip(self):
        puf = CDCXORArbiterPUF(
            10, 2, np.random.default_rng(8), shifts=(0, 3)
        )
        assert puf.shifts == (0, 3)
        c = uniform_challenges(16, 10, np.random.default_rng(9))
        margins = puf.chain_margins(c)
        components = derive_component_challenges(c, 2, (0, 3))
        for i, chain in enumerate(puf.chains):
            assert np.allclose(
                margins[:, i], parity_transform(components[i]) @ chain.weights
            )

    def test_rejects_bad_shift_count(self):
        with pytest.raises(ValueError):
            CDCXORArbiterPUF(8, 2, np.random.default_rng(0), shifts=(0,))

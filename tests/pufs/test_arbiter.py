"""Unit tests for repro.pufs.arbiter and repro.pufs.base."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleanfuncs.encoding import random_pm1
from repro.conformance.pytest_plugin import statistical_test
from repro.pufs.arbiter import ArbiterPUF, parity_transform


class TestParityTransform:
    def test_shape(self):
        c = random_pm1(8, 20, np.random.default_rng(0))
        phi = parity_transform(c)
        assert phi.shape == (20, 9)

    def test_last_column_constant(self):
        c = random_pm1(5, 10, np.random.default_rng(1))
        assert np.all(parity_transform(c)[:, -1] == 1.0)

    def test_definition(self):
        c = np.array([[1, -1, -1, 1]], dtype=np.int8)
        phi = parity_transform(c)[0]
        # phi_i = prod_{j>=i} c_j
        expected = [1 * -1 * -1 * 1, -1 * -1 * 1, -1 * 1, 1, 1]
        assert phi.tolist() == expected

    def test_single_row(self):
        phi = parity_transform(np.array([1, -1], dtype=np.int8))
        assert phi.shape == (1, 3)

    @given(st.integers(1, 16))
    @settings(max_examples=20)
    def test_values_pm1(self, n):
        c = random_pm1(n, 50, np.random.default_rng(n))
        phi = parity_transform(c)
        assert set(np.unique(phi)) <= {-1.0, 1.0}

    def test_bijective_on_cube(self):
        # phi restricted to its first n columns is injective on challenges.
        from repro.booleanfuncs.encoding import enumerate_cube

        c = enumerate_cube(6)
        phi = parity_transform(c)[:, :6]
        assert len({tuple(r) for r in phi}) == 64


class TestArbiterPUF:
    def test_deterministic_ideal_eval(self):
        puf = ArbiterPUF(16, np.random.default_rng(0))
        c = random_pm1(16, 100, np.random.default_rng(1))
        assert np.array_equal(puf.eval(c), puf.eval(c))

    def test_responses_pm1(self):
        puf = ArbiterPUF(8, np.random.default_rng(2))
        r = puf.eval(random_pm1(8, 50, np.random.default_rng(3)))
        assert set(np.unique(r)) <= {-1, 1}

    def test_explicit_weights(self):
        w = np.zeros(5)
        w[-1] = 1.0  # pure positive bias -> all responses +1
        puf = ArbiterPUF(4, weights=w)
        assert np.all(puf.eval(random_pm1(4, 20, np.random.default_rng(4))) == 1)

    def test_explicit_weights_shape_checked(self):
        with pytest.raises(ValueError):
            ArbiterPUF(4, weights=np.zeros(4))

    def test_margin_is_linear_in_features(self):
        puf = ArbiterPUF(6, np.random.default_rng(5))
        c = random_pm1(6, 30, np.random.default_rng(6))
        margin = puf.raw_margin(c)
        assert np.allclose(margin, parity_transform(c) @ puf.weights)

    def test_as_feature_ltf_consistent(self):
        puf = ArbiterPUF(6, np.random.default_rng(7))
        ltf = puf.as_feature_ltf()
        c = random_pm1(6, 200, np.random.default_rng(8))
        phi = parity_transform(c)[:, :-1]
        assert np.array_equal(ltf(phi.astype(np.int8)), puf.eval(c))

    @statistical_test(alpha=2e-8)
    def test_noise_flips_some_responses(self, stat):
        puf = ArbiterPUF(32, stat.rng("instance", 9), noise_sigma=0.5)
        c = random_pm1(32, 2000, stat.rng("challenges", 10))
        ideal = puf.eval(c)
        noisy = puf.eval_noisy(c, stat.rng("noise", 11))
        flips = int(np.sum(ideal != noisy))
        assert flips > 0, "sigma=0.5 produced no flips at all"
        stat.check_within(flips, 2000, 0.001, 0.19, name="flip_rate_band")

    def test_zero_noise_noisy_equals_ideal(self):
        puf = ArbiterPUF(16, np.random.default_rng(12))
        c = random_pm1(16, 100, np.random.default_rng(13))
        assert np.array_equal(puf.eval_noisy(c), puf.eval(c))

    def test_shape_validation(self):
        puf = ArbiterPUF(8, np.random.default_rng(14))
        with pytest.raises(ValueError):
            puf.eval(np.ones((5, 7), dtype=np.int8))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ArbiterPUF(0)
        with pytest.raises(ValueError):
            ArbiterPUF(8, noise_sigma=-1.0)

    def test_as_boolean_function(self):
        puf = ArbiterPUF(6, np.random.default_rng(15))
        f = puf.as_boolean_function()
        c = random_pm1(6, 50, np.random.default_rng(16))
        assert np.array_equal(f(c), puf.eval(c))

    def test_single_challenge_vector(self):
        puf = ArbiterPUF(8, np.random.default_rng(17))
        c = random_pm1(8, 1, np.random.default_rng(18))[0]
        assert puf.eval(c) in (-1, 1)

    @statistical_test(alpha=2e-8)
    def test_different_seeds_different_instances(self, stat):
        a = ArbiterPUF(32, stat.rng("instance a", 19))
        b = ArbiterPUF(32, stat.rng("instance b", 20))
        c = random_pm1(32, 500, stat.rng("challenges", 21))
        disagreements = int(np.sum(a.eval(c) != b.eval(c)))
        stat.check_at_least(disagreements, 500, 0.2, name="inter_chip_distance")

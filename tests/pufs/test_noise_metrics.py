"""Unit tests for repro.pufs.noise and repro.pufs.metrics."""

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.conformance.pytest_plugin import statistical_test
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.metrics import (
    expected_bias,
    reliability,
    response_bias,
    uniformity,
    uniqueness,
)
from repro.pufs.noise import (
    collect_stable_crps,
    majority_vote,
    repeated_measurements,
    stable_challenge_mask,
)


class TestNoiseHelpers:
    def test_repeated_measurements_shape(self):
        puf = ArbiterPUF(8, np.random.default_rng(0), noise_sigma=0.5)
        c = random_pm1(8, 30, np.random.default_rng(1))
        meas = repeated_measurements(puf, c, 7, np.random.default_rng(2))
        assert meas.shape == (7, 30)

    def test_repeated_measurements_validates(self):
        puf = ArbiterPUF(8, np.random.default_rng(0))
        c = random_pm1(8, 5, np.random.default_rng(1))
        with pytest.raises(ValueError):
            repeated_measurements(puf, c, 0)

    @statistical_test(alpha=2e-8)
    def test_majority_vote_denoises(self, stat):
        puf = ArbiterPUF(32, stat.rng("instance", 3), noise_sigma=0.4)
        c = random_pm1(32, 1000, stat.rng("challenges", 4))
        ideal = puf.eval(c)
        single = int(np.sum(puf.eval_noisy(c, stat.rng("single", 5)) != ideal))
        voted = int(
            np.sum(majority_vote(puf, c, repetitions=21, rng=stat.rng("voted", 6)) != ideal)
        )
        stat.check_two_sample_less(
            voted, 1000, single, 1000, name="majority_vote_denoises"
        )

    def test_majority_vote_noise_free_exact(self):
        puf = ArbiterPUF(16, np.random.default_rng(7))
        c = random_pm1(16, 200, np.random.default_rng(8))
        assert np.array_equal(majority_vote(puf, c, 3), puf.eval(c))

    def test_stable_mask_all_true_when_noise_free(self):
        puf = ArbiterPUF(16, np.random.default_rng(9))
        c = random_pm1(16, 100, np.random.default_rng(10))
        assert np.all(stable_challenge_mask(puf, c, 5))

    def test_stable_mask_filters_noisy(self):
        puf = ArbiterPUF(32, np.random.default_rng(11), noise_sigma=1.0)
        c = random_pm1(32, 2000, np.random.default_rng(12))
        mask = stable_challenge_mask(puf, c, 11, np.random.default_rng(13))
        assert 0.0 < np.mean(mask) < 1.0

    @statistical_test(alpha=2e-8)
    def test_collect_stable_crps(self, stat):
        puf = ArbiterPUF(32, stat.rng("instance", 14), noise_sigma=0.3)
        crps, frac = collect_stable_crps(
            puf, 500, repetitions=7, rng=stat.rng("collection", 15)
        )
        assert len(crps) == 500
        assert 0.0 < frac <= 1.0
        # Stable responses agree with the ideal function almost everywhere:
        # surviving challenges have large margins.
        agreements = int(np.sum(crps.responses == puf.eval(crps.challenges)))
        stat.check_at_least(agreements, 500, 0.98, name="stable_crp_agreement")

    def test_collect_stable_crps_raises_for_hopeless_device(self):
        puf = ArbiterPUF(16, np.random.default_rng(16), noise_sigma=500.0)
        with pytest.raises(RuntimeError):
            collect_stable_crps(
                puf, 1000, repetitions=11, rng=np.random.default_rng(17), max_batches=1
            )

    def test_collect_validates_target(self):
        puf = ArbiterPUF(8, np.random.default_rng(18))
        with pytest.raises(ValueError):
            collect_stable_crps(puf, 0)


class TestMetrics:
    def test_uniformity_and_bias(self):
        r = np.array([1, 1, -1, -1, -1, 1], dtype=np.int8)
        assert uniformity(r) == pytest.approx(0.5)
        assert response_bias(r) == pytest.approx(0.0)

    def test_uniformity_empty_raises(self):
        with pytest.raises(ValueError):
            uniformity(np.array([]))
        with pytest.raises(ValueError):
            response_bias(np.array([]))

    def test_reliability_perfect_when_noise_free(self):
        puf = ArbiterPUF(16, np.random.default_rng(19))
        assert reliability(puf, m=200, rng=np.random.default_rng(20)) == 1.0

    def test_reliability_degrades_with_noise(self):
        quiet = ArbiterPUF(32, np.random.default_rng(21), noise_sigma=0.1)
        loud = ArbiterPUF(32, np.random.default_rng(21), noise_sigma=2.0)
        rng = np.random.default_rng(22)
        assert reliability(loud, m=500, rng=rng) < reliability(quiet, m=500, rng=rng)

    def test_uniqueness_near_half(self):
        pufs = [ArbiterPUF(32, np.random.default_rng(s)) for s in range(30, 36)]
        u = uniqueness(pufs, m=2000, rng=np.random.default_rng(23))
        assert 0.35 < u < 0.65

    def test_uniqueness_validates(self):
        with pytest.raises(ValueError):
            uniqueness([ArbiterPUF(8, np.random.default_rng(0))])
        with pytest.raises(ValueError):
            uniqueness(
                [
                    ArbiterPUF(8, np.random.default_rng(0)),
                    ArbiterPUF(16, np.random.default_rng(1)),
                ]
            )

    def test_expected_bias_close_to_ideal_bias_when_quiet(self):
        puf = BistableRingPUF(16, np.random.default_rng(24), noise_sigma=0.0)
        c = random_pm1(16, 5000, np.random.default_rng(25))
        ideal = np.mean(puf.eval(c))
        eb = expected_bias(puf, m=5000, repetitions=3, rng=np.random.default_rng(26))
        assert eb == pytest.approx(ideal, abs=0.05)

    def test_expected_bias_shrinks_with_noise(self):
        # Heavy attribute noise pushes the expected function toward
        # unbiased coin flips.
        quiet = BistableRingPUF(16, np.random.default_rng(27), noise_sigma=0.0)
        loud = BistableRingPUF(16, np.random.default_rng(27), noise_sigma=50.0)
        rng = np.random.default_rng(28)
        assert abs(expected_bias(loud, rng=rng)) <= abs(expected_bias(quiet, rng=rng)) + 0.02

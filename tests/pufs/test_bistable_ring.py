"""Unit tests for repro.pufs.bistable_ring and feed_forward."""

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.conformance.pytest_plugin import statistical_test
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.feed_forward import FeedForwardArbiterPUF


class TestBistableRingPUF:
    def test_deterministic(self):
        puf = BistableRingPUF(16, np.random.default_rng(0))
        c = random_pm1(16, 100, np.random.default_rng(1))
        assert np.array_equal(puf.eval(c), puf.eval(c))

    def test_zero_interaction_is_ltf(self):
        """At interaction_scale=0 the BR PUF must be exactly an LTF."""
        puf = BistableRingPUF(12, np.random.default_rng(2), interaction_scale=0.0)
        c = random_pm1(12, 500, np.random.default_rng(3))
        offset = puf.global_offset + np.sum(puf.bias_terms)
        linear = c.astype(float) @ puf.linear_weights + offset
        expected = np.where(linear >= 0, 1, -1)
        assert np.array_equal(puf.eval(c), expected)

    @statistical_test(alpha=2e-8)
    def test_interaction_changes_function(self, stat):
        c = random_pm1(32, 3000, stat.rng("challenges", 4))
        linear = BistableRingPUF(32, stat.rng("linear", 5), interaction_scale=0.0)
        nonlinear = BistableRingPUF(32, stat.rng("nonlinear", 5), interaction_scale=0.8)
        # Same seed, so the linear parts coincide; responses must differ on
        # a non-trivial fraction of challenges.
        disagreements = int(np.sum(linear.eval(c) != nonlinear.eval(c)))
        stat.check_at_least(disagreements, 3000, 0.05, name="interaction_distance")

    @statistical_test(alpha=2e-8)
    def test_not_too_biased(self, stat):
        # |mean| < 0.9 <=> the -1 rate sits in [0.05, 0.95].
        alpha_each = stat.split_alpha(5)
        for seed in range(5):
            puf = BistableRingPUF(64, stat.rng(f"instance {seed}", seed))
            c = random_pm1(64, 4000, stat.rng(f"challenges {seed}", 100 + seed))
            minus = int(np.sum(puf.eval(c) == -1))
            stat.check_within(
                minus, 4000, 0.05, 0.95, alpha=alpha_each, name=f"bias[{seed}]"
            )

    def test_pair_indices_include_ring_neighbours(self):
        puf = BistableRingPUF(10, np.random.default_rng(6))
        pairs = {tuple(p) for p in puf.pair_indices}
        for i in range(10):
            assert tuple(sorted((i, (i + 1) % 10))) in pairs

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BistableRingPUF(8, interaction_scale=-1.0)
        with pytest.raises(ValueError):
            BistableRingPUF(8, pair_density=2.0)
        with pytest.raises(ValueError):
            BistableRingPUF(8, triple_density=-0.5)

    @statistical_test(alpha=2e-8)
    def test_noise_model(self, stat):
        puf = BistableRingPUF(32, stat.rng("instance", 7), noise_sigma=1.0)
        c = random_pm1(32, 2000, stat.rng("challenges", 8))
        flips = int(np.sum(puf.eval(c) != puf.eval_noisy(c, stat.rng("noise", 9))))
        assert flips > 0, "sigma=1.0 produced no flips at all"
        stat.check_within(flips, 2000, 0.001, 0.29, name="br_flip_rate_band")


class TestFeedForwardArbiterPUF:
    def test_no_loops_matches_arbiter_recursion(self):
        puf = FeedForwardArbiterPUF(8, loops=(), rng=np.random.default_rng(0))
        c = random_pm1(8, 50, np.random.default_rng(1))
        # Manual recursion.
        diff = np.zeros(50)
        for i in range(8):
            bit = c[:, i]
            diff = np.where(
                bit > 0, diff + puf.straight_delays[i], -diff + puf.crossed_delays[i]
            )
        assert np.array_equal(puf.eval(c), np.where(diff >= 0, 1, -1))

    def test_loop_overrides_challenge_bit(self):
        puf = FeedForwardArbiterPUF(8, loops=[(2, 5)], rng=np.random.default_rng(2))
        c = random_pm1(8, 400, np.random.default_rng(3))
        c_flipped = c.copy()
        c_flipped[:, 5] = -c_flipped[:, 5]
        # Bit 5 is driven by the loop, so flipping it changes nothing.
        assert np.array_equal(puf.eval(c), puf.eval(c_flipped))

    def test_non_loop_bits_still_matter(self):
        puf = FeedForwardArbiterPUF(8, loops=[(2, 5)], rng=np.random.default_rng(4))
        c = random_pm1(8, 400, np.random.default_rng(5))
        c_flipped = c.copy()
        c_flipped[:, 0] = -c_flipped[:, 0]
        assert np.any(puf.eval(c) != puf.eval(c_flipped))

    def test_invalid_loops(self):
        with pytest.raises(ValueError):
            FeedForwardArbiterPUF(8, loops=[(5, 2)])
        with pytest.raises(ValueError):
            FeedForwardArbiterPUF(8, loops=[(0, 9)])
        with pytest.raises(ValueError):
            FeedForwardArbiterPUF(8, loops=[(0, 4), (1, 4)])

    def test_responses_pm1(self):
        puf = FeedForwardArbiterPUF(16, loops=[(3, 8), (5, 12)], rng=np.random.default_rng(6))
        r = puf.eval(random_pm1(16, 100, np.random.default_rng(7)))
        assert set(np.unique(r)) <= {-1, 1}

"""Unit tests for repro.pufs.crp."""

import numpy as np
import pytest

from repro.conformance.pytest_plugin import statistical_test
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.crp import (
    CRPSet,
    biased_challenges,
    generate_crps,
    low_weight_challenges,
    uniform_challenges,
)


class TestSamplers:
    def test_uniform_shape(self):
        c = uniform_challenges(100, 8, np.random.default_rng(0))
        assert c.shape == (100, 8)
        assert set(np.unique(c)) <= {-1, 1}

    @statistical_test(alpha=2e-8)
    def test_uniform_balance(self, stat):
        c = uniform_challenges(20_000, 4, stat.rng("sampler", 1))
        stat.check_bernoulli(
            int(np.sum(c == -1)), int(c.size), 0.5, name="uniform_fair_bits"
        )

    @statistical_test(alpha=2e-8)
    def test_biased_sampler(self, stat):
        # p=0.9 chance of bit 1 -> value -1, so the -1 count is
        # Binomial(mn, 0.9) exactly.
        sampler = biased_challenges(0.9)
        c = sampler(10_000, 6, stat.rng("sampler", 2))
        stat.check_bernoulli(
            int(np.sum(c == -1)), int(c.size), 0.9, name="biased_bits"
        )

    def test_biased_sampler_validates(self):
        with pytest.raises(ValueError):
            biased_challenges(1.5)

    def test_low_weight_sampler(self):
        sampler = low_weight_challenges(2)
        c = sampler(500, 10, np.random.default_rng(3))
        ones = np.sum(c == -1, axis=1)
        assert np.all(ones <= 2)

    def test_low_weight_validates(self):
        with pytest.raises(ValueError):
            low_weight_challenges(-1)


class TestCRPSet:
    def make(self, m=100, n=8, seed=0):
        rng = np.random.default_rng(seed)
        puf = ArbiterPUF(n, rng)
        return generate_crps(puf, m, rng)

    def test_len_and_n(self):
        crps = self.make(50, 12)
        assert len(crps) == 50
        assert crps.n == 12

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CRPSet(np.ones((3, 2, 2), dtype=np.int8), np.ones(3, dtype=np.int8))
        with pytest.raises(ValueError):
            CRPSet(np.ones((3, 2), dtype=np.int8), np.ones(4, dtype=np.int8))

    def test_split_partitions(self):
        crps = self.make(100)
        train, test = crps.split(0.7, np.random.default_rng(1))
        assert len(train) == 70 and len(test) == 30
        combined = {tuple(c) for c in train.challenges} | {
            tuple(c) for c in test.challenges
        }
        original = {tuple(c) for c in crps.challenges}
        assert combined == original

    def test_split_validates(self):
        crps = self.make(10)
        with pytest.raises(ValueError):
            crps.split(1.0)

    def test_subsample(self):
        crps = self.make(100)
        sub = crps.subsample(25, np.random.default_rng(2))
        assert len(sub) == 25
        with pytest.raises(ValueError):
            crps.subsample(101)

    def test_take_prefix(self):
        crps = self.make(100)
        head = crps.take(10)
        assert np.array_equal(head.challenges, crps.challenges[:10])
        with pytest.raises(ValueError):
            crps.take(200)

    def test_save_load_roundtrip(self, tmp_path):
        crps = self.make(40)
        path = tmp_path / "crps.npz"
        crps.save(path)
        loaded = CRPSet.load(path)
        assert np.array_equal(loaded.challenges, crps.challenges)
        assert np.array_equal(loaded.responses, crps.responses)


class TestGenerateCRPs:
    def test_responses_match_puf(self):
        rng = np.random.default_rng(4)
        puf = ArbiterPUF(8, rng)
        crps = generate_crps(puf, 200, rng)
        assert np.array_equal(crps.responses, puf.eval(crps.challenges))

    @statistical_test(alpha=2e-8)
    def test_noisy_generation_differs(self, stat):
        rng = stat.rng("instance+draw", 5)
        puf = ArbiterPUF(32, rng, noise_sigma=0.8)
        crps = generate_crps(puf, 3000, rng, noisy=True)
        ideal = puf.eval(crps.challenges)
        flips = int(np.sum(crps.responses != ideal))
        assert flips > 0, "noisy generation produced no flips"
        stat.check_within(flips, 3000, 0.001, 0.29, name="noisy_crp_flip_band")

    def test_rejects_zero_count(self):
        puf = ArbiterPUF(8, np.random.default_rng(6))
        with pytest.raises(ValueError):
            generate_crps(puf, 0)

    def test_custom_sampler_used(self):
        rng = np.random.default_rng(7)
        puf = ArbiterPUF(8, rng)
        crps = generate_crps(puf, 100, rng, sampler=low_weight_challenges(1))
        assert np.all(np.sum(crps.challenges == -1, axis=1) <= 1)

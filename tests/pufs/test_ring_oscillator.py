"""Unit tests for the Ring-Oscillator PUF and its sorting attack."""

import numpy as np
import pytest

from repro.pufs.ring_oscillator import (
    RingOscillatorPUF,
    predict_from_scores,
    sorting_attack,
)


class TestRingOscillatorPUF:
    def test_antisymmetric_responses(self):
        puf = RingOscillatorPUF(16, np.random.default_rng(0))
        pairs = puf.random_pairs(100, np.random.default_rng(1))
        swapped = pairs[:, ::-1]
        r = puf.eval(pairs)
        r_swapped = puf.eval(swapped)
        # Generic frequencies have no ties, so swapping flips the sign.
        assert np.array_equal(r, -r_swapped)

    def test_transitivity(self):
        """If i beats j and j beats l then i beats l — it's a total order."""
        puf = RingOscillatorPUF(8, np.random.default_rng(2))
        order = np.argsort(-puf.frequencies)
        for a in range(7):
            pair = np.array([[order[a], order[a + 1]]])
            assert puf.eval(pair)[0] == 1

    def test_num_pairs(self):
        assert RingOscillatorPUF(10, np.random.default_rng(3)).num_pairs == 45

    def test_validation(self):
        with pytest.raises(ValueError):
            RingOscillatorPUF(1)
        puf = RingOscillatorPUF(5, np.random.default_rng(4))
        with pytest.raises(ValueError):
            puf.eval(np.array([[0, 0]]))
        with pytest.raises(ValueError):
            puf.eval(np.array([[0, 9]]))
        with pytest.raises(ValueError):
            puf.eval(np.array([[0, 1, 2]]))
        with pytest.raises(ValueError):
            puf.random_pairs(0)
        with pytest.raises(ValueError):
            RingOscillatorPUF(4, noise_sigma=-1)

    def test_noise_flips_close_pairs(self):
        puf = RingOscillatorPUF(32, np.random.default_rng(5), noise_sigma=0.5)
        pairs = puf.random_pairs(3000, np.random.default_rng(6))
        ideal = puf.eval(pairs)
        noisy = puf.eval_noisy(pairs, np.random.default_rng(7))
        rate = np.mean(ideal != noisy)
        assert 0.0 < rate < 0.4

    def test_random_pairs_distinct(self):
        puf = RingOscillatorPUF(6, np.random.default_rng(8))
        pairs = puf.random_pairs(500, np.random.default_rng(9))
        assert np.all(pairs[:, 0] != pairs[:, 1])


class TestSortingAttack:
    def test_few_comparisons_model_the_whole_puf(self):
        """O(m log m) comparisons predict ~all of the m(m-1)/2 pairs."""
        rng = np.random.default_rng(10)
        puf = RingOscillatorPUF(64, rng)
        budget = int(10 * 64 * np.log2(64))  # generous O(m log m)
        observed = puf.random_pairs(budget, rng)
        responses = puf.eval(observed)
        scores, train_agreement = sorting_attack(puf, observed, responses)
        assert train_agreement > 0.95
        # Held-out pairs.
        test = puf.random_pairs(4000, rng)
        acc = np.mean(predict_from_scores(scores, test) == puf.eval(test))
        assert acc > 0.93
        # The budget is a vanishing fraction of the full CRP space... for
        # larger m; here simply far below exhaustive collection:
        assert budget < 3 * puf.num_pairs

    def test_scores_recover_frequency_order_roughly(self):
        rng = np.random.default_rng(11)
        puf = RingOscillatorPUF(20, rng)
        observed = puf.random_pairs(2000, rng)
        scores, _ = sorting_attack(puf, observed, puf.eval(observed))
        true_rank = np.argsort(np.argsort(-puf.frequencies))
        est_rank = np.argsort(np.argsort(-scores))
        # Spearman-ish agreement: mean absolute rank error small.
        assert np.mean(np.abs(true_rank - est_rank)) < 2.0

    def test_validation(self):
        puf = RingOscillatorPUF(5, np.random.default_rng(12))
        with pytest.raises(ValueError):
            sorting_attack(puf, np.array([[0, 1]]), np.array([1, -1]))

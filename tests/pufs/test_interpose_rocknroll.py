"""Unit tests for the Interpose PUF and the RocknRoll constructor."""

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import parity_transform
from repro.pufs.crp import generate_crps
from repro.pufs.interpose import InterposePUF
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestInterposePUF:
    def test_deterministic_and_pm1(self):
        puf = InterposePUF(16, 1, 1, np.random.default_rng(0))
        c = random_pm1(16, 200, np.random.default_rng(1))
        r = puf.eval(c)
        assert np.array_equal(r, puf.eval(c))
        assert set(np.unique(r)) <= {-1, 1}

    def test_structure_matches_manual_composition(self):
        puf = InterposePUF(12, 1, 1, np.random.default_rng(2))
        c = random_pm1(12, 300, np.random.default_rng(3))
        upper = puf.upper.eval(c)
        extended = np.insert(c, puf.position, upper, axis=1).astype(np.int8)
        assert np.array_equal(puf.eval(c), puf.lower.eval(extended))

    def test_upper_bit_matters(self):
        """Challenges where the upper response flips the lower response exist."""
        puf = InterposePUF(16, 1, 1, np.random.default_rng(4))
        c = random_pm1(16, 4000, np.random.default_rng(5))
        upper = puf.upper.eval(c)
        ext_real = np.insert(c, puf.position, upper, axis=1).astype(np.int8)
        ext_flip = np.insert(c, puf.position, -upper, axis=1).astype(np.int8)
        assert np.any(puf.lower.eval(ext_real) != puf.lower.eval(ext_flip))

    def test_bias_moderate(self):
        puf = InterposePUF(32, 1, 2, np.random.default_rng(6))
        c = random_pm1(32, 5000, np.random.default_rng(7))
        assert abs(np.mean(puf.eval(c))) < 0.3

    def test_harder_than_plain_arbiter_for_plain_lr(self):
        """A (1,1)-iPUF resists the plain single-LTF attack that kills a
        plain arbiter chain (the interposed bit breaks the feature map)."""
        rng = np.random.default_rng(8)
        ipuf = InterposePUF(24, 1, 1, np.random.default_rng(9))
        crps = generate_crps(ipuf, 6000, rng)
        fit = LogisticAttack(feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(ipuf, 4000, rng)
        acc = np.mean(fit.predict(test.challenges) == test.responses)
        assert acc < 0.99  # not a clean LTF over phi(c) any more
        assert acc > 0.6  # but substantial structure leaks (known weakness)

    def test_noise_propagates(self):
        puf = InterposePUF(16, 1, 1, np.random.default_rng(10), noise_sigma=0.5)
        c = random_pm1(16, 2000, np.random.default_rng(11))
        flips = np.mean(puf.eval(c) != puf.eval_noisy(c, np.random.default_rng(12)))
        assert 0.0 < flips < 0.3

    def test_position_validation(self):
        with pytest.raises(ValueError):
            InterposePUF(8, position=9)


class TestRocknRoll:
    def test_constructor_sets_high_correlation(self):
        puf = XORArbiterPUF.rocknroll(32, 8, np.random.default_rng(13))
        assert puf.correlation == 0.95
        assert puf.k == 8

    def test_chains_strongly_agree(self):
        puf = XORArbiterPUF.rocknroll(32, 4, np.random.default_rng(14))
        c = random_pm1(32, 3000, np.random.default_rng(15))
        r0 = puf.chains[0].eval(c)
        agreements = [
            np.mean(r0 == chain.eval(c)) for chain in puf.chains[1:]
        ]
        assert min(agreements) > 0.7

    def test_more_learnable_than_independent(self):
        """The [17]-vs-[9] effect with the degree-2 LMN budget."""
        from repro.learning.lmn import LMNLearner

        rng = np.random.default_rng(16)
        x = random_pm1(10, 20_000, rng)
        xt = random_pm1(10, 4000, rng)
        feats = parity_transform(x)[:, :-1].astype(np.int8)
        featst = parity_transform(xt)[:, :-1].astype(np.int8)
        accs = {}
        for name, puf in [
            ("independent", XORArbiterPUF(10, 6, np.random.default_rng(17))),
            ("rocknroll", XORArbiterPUF.rocknroll(10, 6, np.random.default_rng(17))),
        ]:
            fit = LMNLearner(degree=2).fit_sample(feats, puf.eval(x))
            accs[name] = np.mean(fit.hypothesis(featst) == puf.eval(xt))
        assert accs["rocknroll"] > accs["independent"] + 0.1

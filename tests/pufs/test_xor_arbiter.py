"""Unit tests for repro.pufs.xor_arbiter."""

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestXORArbiterPUF:
    def test_k1_equals_single_chain(self):
        puf = XORArbiterPUF(16, 1, np.random.default_rng(0))
        c = random_pm1(16, 200, np.random.default_rng(1))
        assert np.array_equal(puf.eval(c), puf.chains[0].eval(c))

    def test_response_is_xor_of_chains(self):
        puf = XORArbiterPUF(12, 4, np.random.default_rng(2))
        c = random_pm1(12, 300, np.random.default_rng(3))
        prod = np.ones(300, dtype=np.int8)
        for chain in puf.chains:
            prod = prod * chain.eval(c)
        assert np.array_equal(puf.eval(c), prod)

    def test_chain_margins_shape(self):
        puf = XORArbiterPUF(8, 3, np.random.default_rng(4))
        c = random_pm1(8, 17, np.random.default_rng(5))
        assert puf.chain_margins(c).shape == (17, 3)

    def test_bias_small_for_uncorrelated(self):
        puf = XORArbiterPUF(32, 4, np.random.default_rng(6))
        c = random_pm1(32, 5000, np.random.default_rng(7))
        assert abs(np.mean(puf.eval(c))) < 0.1

    def test_correlated_chains_share_structure(self):
        rng = np.random.default_rng(8)
        puf = XORArbiterPUF(32, 4, rng, correlation=0.95)
        # With high correlation, pairs of chains agree far more than chance.
        c = random_pm1(32, 2000, np.random.default_rng(9))
        r0 = puf.chains[0].eval(c)
        r1 = puf.chains[1].eval(c)
        assert np.mean(r0 == r1) > 0.7

    def test_uncorrelated_chains_independent(self):
        puf = XORArbiterPUF(32, 2, np.random.default_rng(10), correlation=0.0)
        c = random_pm1(32, 2000, np.random.default_rng(11))
        r0 = puf.chains[0].eval(c)
        r1 = puf.chains[1].eval(c)
        assert abs(np.mean(r0 == r1) - 0.5) < 0.1

    def test_noise_compounds_with_k(self):
        # Reliability of an XOR PUF degrades with chain count.
        rng_c = np.random.default_rng(12)
        c = random_pm1(64, 3000, rng_c)
        rates = []
        for k in (1, 4, 8):
            puf = XORArbiterPUF(64, k, np.random.default_rng(13), noise_sigma=0.3)
            ideal = puf.eval(c)
            noisy = puf.eval_noisy(c, np.random.default_rng(14))
            rates.append(np.mean(ideal != noisy))
        assert rates[0] < rates[1] < rates[2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            XORArbiterPUF(8, 0)
        with pytest.raises(ValueError):
            XORArbiterPUF(8, 2, correlation=1.0)
        with pytest.raises(ValueError):
            XORArbiterPUF(8, 2, correlation=-0.1)

    def test_repr_mentions_k(self):
        puf = XORArbiterPUF(8, 5, np.random.default_rng(15))
        assert "k=5" in repr(puf)

"""Unit tests for repro.pufs.xor_arbiter."""

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.conformance.pytest_plugin import statistical_test
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestXORArbiterPUF:
    def test_k1_equals_single_chain(self):
        puf = XORArbiterPUF(16, 1, np.random.default_rng(0))
        c = random_pm1(16, 200, np.random.default_rng(1))
        assert np.array_equal(puf.eval(c), puf.chains[0].eval(c))

    def test_response_is_xor_of_chains(self):
        puf = XORArbiterPUF(12, 4, np.random.default_rng(2))
        c = random_pm1(12, 300, np.random.default_rng(3))
        prod = np.ones(300, dtype=np.int8)
        for chain in puf.chains:
            prod = prod * chain.eval(c)
        assert np.array_equal(puf.eval(c), prod)

    def test_chain_margins_shape(self):
        puf = XORArbiterPUF(8, 3, np.random.default_rng(4))
        c = random_pm1(8, 17, np.random.default_rng(5))
        assert puf.chain_margins(c).shape == (17, 3)

    @statistical_test(alpha=2e-8)
    def test_bias_small_for_uncorrelated(self, stat):
        puf = XORArbiterPUF(32, 4, stat.rng("instance", 6))
        c = random_pm1(32, 5000, stat.rng("challenges", 7))
        # |mean| < 0.1 <=> the -1 rate sits in [0.45, 0.55].
        minus = int(np.sum(puf.eval(c) == -1))
        stat.check_within(minus, 5000, 0.45, 0.55, name="xor_response_balance")

    @statistical_test(alpha=2e-8)
    def test_correlated_chains_share_structure(self, stat):
        puf = XORArbiterPUF(32, 4, stat.rng("instance", 8), correlation=0.95)
        # With high correlation, pairs of chains agree far more than chance.
        c = random_pm1(32, 2000, stat.rng("challenges", 9))
        agreements = int(np.sum(puf.chains[0].eval(c) == puf.chains[1].eval(c)))
        stat.check_at_least(agreements, 2000, 0.7, name="chain_agreement")

    @statistical_test(alpha=2e-8)
    def test_uncorrelated_chains_independent(self, stat):
        puf = XORArbiterPUF(32, 2, stat.rng("instance", 10), correlation=0.0)
        c = random_pm1(32, 2000, stat.rng("challenges", 11))
        agreements = int(np.sum(puf.chains[0].eval(c) == puf.chains[1].eval(c)))
        stat.check_within(
            agreements, 2000, 0.45, 0.55, name="chain_independence"
        )

    @statistical_test(alpha=2e-8)
    def test_noise_compounds_with_k(self, stat):
        # Reliability of an XOR PUF degrades with chain count: the flip
        # rate must be (weakly) increasing in k, checked pairwise at a
        # split of this test's alpha.
        m = 3000
        c = random_pm1(64, m, stat.rng("challenges", 12))
        alpha_each = stat.split_alpha(2)
        flips = []
        for k in (1, 4, 8):
            puf = XORArbiterPUF(64, k, stat.rng(f"instance k={k}", 13), noise_sigma=0.3)
            ideal = puf.eval(c)
            noisy = puf.eval_noisy(c, stat.rng(f"noise k={k}", 14))
            flips.append(int(np.sum(ideal != noisy)))
        from repro.conformance import check_two_sample_less

        stat.check(
            check_two_sample_less(
                flips[0], m, flips[1], m, alpha_each, name="flips k=1 <= k=4"
            )
        )
        stat.check(
            check_two_sample_less(
                flips[1], m, flips[2], m, alpha_each, name="flips k=4 <= k=8"
            )
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            XORArbiterPUF(8, 0)
        with pytest.raises(ValueError):
            XORArbiterPUF(8, 2, correlation=1.0)
        with pytest.raises(ValueError):
            XORArbiterPUF(8, 2, correlation=-0.1)

    def test_repr_mentions_k(self):
        puf = XORArbiterPUF(8, 5, np.random.default_rng(15))
        assert "k=5" in repr(puf)

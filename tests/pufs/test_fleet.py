"""The Fleet API: spec validation, seeding, metering, and golden pins.

The golden-snapshot test at the bottom pins the population statistics
of one fixed fleet — ``FleetSpec("xor", n=64, size=256, k=4)`` built
from seed 2026 — to the values the stacked-GEMM path produced when the
fleet layer landed.  Any change to the seeding contract, the weight
stacking, the parity features, the GEMM routing, or the metric math
moves these numbers and fails loudly.
"""

import numpy as np
import pytest

from repro.pufs.crp import uniform_challenges
from repro.pufs.fleet import Fleet, FleetSpec, eval_instance, instance_margin
from repro.pufs.metrics import (
    bit_aliasing,
    fleet_bit_aliasing,
    fleet_reliability,
    fleet_uniformity,
    fleet_uniqueness,
    response_plane_uniqueness,
    uniformity,
    uniqueness,
)
from repro.telemetry.meter import QueryMeter, metered


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_spec_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FleetSpec("optical", 8, 4)
    with pytest.raises(ValueError):
        FleetSpec("arbiter", 0, 4)
    with pytest.raises(ValueError):
        FleetSpec("arbiter", 8, 0)
    with pytest.raises(ValueError):
        FleetSpec("arbiter", 8, 4, k=3)  # k != 1 outside the XOR family
    with pytest.raises(ValueError):
        FleetSpec("xor", 8, 4, k=(2, 3))  # wrong per-instance length
    with pytest.raises(ValueError):
        FleetSpec("xor", 8, 2, k=(2, 0))  # non-positive chain count
    with pytest.raises(ValueError):
        FleetSpec("arbiter", 8, 4, tier="float16")
    with pytest.raises(ValueError):
        FleetSpec("arbiter", 8, 4, noise_sigma=-0.1)


def test_spec_chain_counts_and_describe():
    scalar = FleetSpec("xor", 8, 3, k=4)
    assert scalar.chain_counts == (4, 4, 4)
    mixed = FleetSpec("xor", 8, 3, k=[1, 2, 3])
    assert mixed.chain_counts == (1, 2, 3)
    assert mixed.k == (1, 2, 3)  # sequences normalise to tuples (hashable)
    assert "tier=float64" in scalar.describe()
    assert FleetSpec("arbiter", 8, 3, tier="int8").describe() != FleetSpec(
        "arbiter", 8, 3
    ).describe()


def test_seed_line_replays_the_fleet():
    fleet = Fleet.build(FleetSpec("arbiter", 16, 4), 99)
    line = fleet.seed_line()
    assert "entropy=99" in line
    replayed = Fleet.build(FleetSpec("arbiter", 16, 4), eval(f"np.random.{line}"))
    assert np.array_equal(replayed.weights, fleet.weights)


# ----------------------------------------------------------------------
# Query accounting
# ----------------------------------------------------------------------
def test_fleet_eval_meters_per_instance_queries():
    fleet = Fleet.build(FleetSpec("arbiter", 12, 7, noise_sigma=0.1), 4)
    c = uniform_challenges(30, 12, np.random.default_rng(0))
    meter = QueryMeter()
    with metered(meter):
        fleet.eval(c)
    assert meter.total_queries == 30 * 7
    with metered(meter):
        fleet.majority_vote(c, repetitions=5, rng=np.random.default_rng(1))
    assert meter.total_queries == 30 * 7 + 30 * 7 * 5


def test_fleet_metrics_are_unmetered():
    fleet = Fleet.build(FleetSpec("arbiter", 12, 4, noise_sigma=0.1), 4)
    meter = QueryMeter()
    with metered(meter):
        fleet_uniqueness(fleet, m=50, rng=np.random.default_rng(0))
        fleet_reliability(fleet, m=20, repetitions=3, rng=np.random.default_rng(1))
    assert meter.total_queries == 0


# ----------------------------------------------------------------------
# Batched metrics vs the per-instance loop
# ----------------------------------------------------------------------
def test_fleet_uniqueness_matches_loop_metric():
    fleet = Fleet.build(FleetSpec("arbiter", 24, 6), 11)
    assert fleet_uniqueness(
        fleet, m=400, rng=np.random.default_rng(5)
    ) == uniqueness(fleet.instances(), m=400, rng=np.random.default_rng(5))


def test_fleet_uniformity_and_aliasing_match_loop_metrics():
    fleet = Fleet.build(FleetSpec("xor", 16, 5, k=3), 8)
    m, seed = 300, 21
    challenges = uniform_challenges(m, 16, np.random.default_rng(seed))
    per_instance = [
        uniformity(eval_instance(p, challenges)) for p in fleet.instances()
    ]
    assert np.array_equal(
        fleet_uniformity(fleet, m=m, rng=np.random.default_rng(seed)),
        np.array(per_instance),
    )
    assert np.array_equal(
        fleet_bit_aliasing(fleet, m=m, rng=np.random.default_rng(seed)),
        bit_aliasing(fleet.instances(), m=m, rng=np.random.default_rng(seed)),
    )


def test_response_plane_uniqueness_validates_input():
    with pytest.raises(ValueError):
        response_plane_uniqueness(np.ones((10, 1), dtype=np.int8))
    with pytest.raises(ValueError):
        fleet_uniqueness(Fleet.build(FleetSpec("arbiter", 8, 1), 0), m=10)


def test_instance_margin_matches_fleet_margins():
    fleet = Fleet.build(FleetSpec("ltf", 14, 3), 6)
    c = uniform_challenges(64, 14, np.random.default_rng(2))
    stacked = fleet.margins(c)
    for i, inst in enumerate(fleet.instances()):
        assert np.allclose(stacked[:, i], instance_margin(inst, c), atol=1e-12)


# ----------------------------------------------------------------------
# Golden snapshot: FleetSpec("xor", 64, 256, k=4), seed 2026
# ----------------------------------------------------------------------
GOLDEN_SPEC = FleetSpec("xor", 64, 256, k=4, noise_sigma=0.05)
GOLDEN_SEED = 2026


def test_golden_fleet_population_statistics():
    fleet = Fleet.build(GOLDEN_SPEC, GOLDEN_SEED)
    uq = fleet_uniqueness(fleet, m=2000, rng=np.random.default_rng(1))
    rel = fleet_reliability(fleet, m=500, repetitions=11, rng=np.random.default_rng(2))
    uf = fleet_uniformity(fleet, m=2000, rng=np.random.default_rng(3))
    assert uq == pytest.approx(0.4999551623774509, abs=1e-9)
    assert float(np.mean(rel)) == pytest.approx(0.9928693181818182, abs=1e-9)
    assert float(np.min(rel)) == pytest.approx(0.9865454545454545, abs=1e-9)
    assert float(np.mean(uf)) == pytest.approx(0.50006640625, abs=1e-9)


def test_golden_fleet_weights_are_replayable():
    """The first weight column equals the standalone XOR PUF built from
    seed child (2026, spawn_key=(1,)) — the documented fan-out."""
    fleet = Fleet.build(GOLDEN_SPEC, GOLDEN_SEED)
    child = np.random.SeedSequence(GOLDEN_SEED, spawn_key=(1,))
    from repro.pufs.xor_arbiter import XORArbiterPUF

    standalone = XORArbiterPUF(64, 4, np.random.default_rng(child))
    stacked_first = fleet.weights[:, :4]
    assert np.array_equal(
        stacked_first, np.column_stack([ch.weights for ch in standalone.chains])
    )

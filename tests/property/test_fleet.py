"""Property-based invariants of fleet-stacked PUF evaluation.

Hypothesis drives the :class:`~repro.pufs.fleet.Fleet` API through the
shapes adversarial callers actually produce — a fleet of one, a single
challenge vector, n=1 stage devices, mixed chain counts across an XOR
fleet, non-contiguous and transposed challenge arrays — and checks the
contracts the conformance relations assert at fixed sizes:

* the stacked GEMM agrees with the per-instance loop on every response
  (arbiter/XOR/LTF weights replay the standalone constructors exactly);
* building twice from the same seed line is bit-identical
  (the SeedSequence fan-out is the fleet's entire identity);
* memory layout of the challenge array never changes the answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conformance import note_seed
from repro.pufs.fleet import Fleet, FleetSpec, eval_instance

SETTINGS = settings(max_examples=25, deadline=None)


def build_fleet(family, n, size, seed, k=1, tier="float64"):
    note_seed(f"{family} fleet", seed)
    return Fleet.build(FleetSpec(family, n, size, k=k, tier=tier), seed)


def random_challenges(n, seed, m=32):
    note_seed("challenges", seed)
    rng = np.random.default_rng(seed)
    return (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)


def loop_eval(fleet, challenges):
    return np.column_stack(
        [eval_instance(p, challenges) for p in fleet.instances()]
    )


fleet_params = st.tuples(
    st.sampled_from(["arbiter", "xor", "br", "ltf"]),
    st.integers(min_value=4, max_value=24),  # challenge length
    st.integers(min_value=1, max_value=6),  # fleet size (includes N=1)
    st.integers(min_value=0, max_value=2**31),  # fleet seed
    st.integers(min_value=0, max_value=2**31),  # challenge seed
)


@SETTINGS
@given(fleet_params)
def test_fleet_matches_instance_loop(params):
    family, n, size, fleet_seed, chal_seed = params
    fleet = build_fleet(family, n, size, fleet_seed)
    challenges = random_challenges(n, chal_seed)
    plane = fleet.eval(challenges)
    assert plane.shape == (challenges.shape[0], size)
    assert plane.dtype == np.int8
    assert np.all(np.abs(plane) == 1)
    assert np.array_equal(plane, loop_eval(fleet, challenges))


@SETTINGS
@given(
    st.integers(min_value=4, max_value=16),
    st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=5),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=2**31),
)
def test_mixed_k_xor_fleet_matches_loop(n, ks, fleet_seed, chal_seed):
    fleet = build_fleet("xor", n, len(ks), fleet_seed, k=tuple(ks))
    challenges = random_challenges(n, chal_seed)
    assert np.array_equal(fleet.eval(challenges), loop_eval(fleet, challenges))


@SETTINGS
@given(fleet_params)
def test_build_twice_is_bit_identical(params):
    family, n, size, fleet_seed, chal_seed = params
    a = build_fleet(family, n, size, fleet_seed)
    b = build_fleet(family, n, size, fleet_seed)
    assert np.array_equal(a.weights, b.weights)
    assert a.seed_line() == b.seed_line()
    challenges = random_challenges(n, chal_seed)
    assert np.array_equal(a.eval(challenges), b.eval(challenges))


@SETTINGS
@given(
    st.sampled_from(["arbiter", "xor", "ltf"]),
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=2**31),
)
def test_layout_does_not_change_responses(family, n, fleet_seed, chal_seed):
    """Non-contiguous and transposed challenge arrays answer identically."""
    fleet = build_fleet(family, n, 3, fleet_seed)
    challenges = random_challenges(n, chal_seed)
    baseline = fleet.eval(challenges)
    buffer = np.zeros((64, n), dtype=np.int8)
    buffer[::2] = challenges
    strided = buffer[::2]
    assert not strided.flags["C_CONTIGUOUS"]
    assert np.array_equal(fleet.eval(strided), baseline)
    transposed = np.asfortranarray(challenges)
    assert np.array_equal(fleet.eval(transposed), baseline)


def test_single_challenge_vector_is_promoted():
    fleet = build_fleet("arbiter", 8, 4, seed=11)
    challenge = random_challenges(8, 5, m=1)
    as_vector = fleet.eval(challenge[0])
    assert as_vector.shape == (1, 4)
    assert np.array_equal(as_vector, fleet.eval(challenge))


@pytest.mark.parametrize("family", ["arbiter", "xor", "ltf"])
def test_one_stage_fleet(family):
    """n=1 devices: one challenge bit, still loop-identical."""
    fleet = build_fleet(family, 1, 3, seed=7, k=2 if family == "xor" else 1)
    challenges = np.array([[1], [-1]], dtype=np.int8)
    assert np.array_equal(fleet.eval(challenges), loop_eval(fleet, challenges))


def test_fleet_of_one_instance():
    fleet = build_fleet("xor", 6, 1, seed=3, k=4)
    challenges = random_challenges(6, 9)
    plane = fleet.eval(challenges)
    assert plane.shape == (challenges.shape[0], 1)
    assert np.array_equal(plane, loop_eval(fleet, challenges))


@SETTINGS
@given(
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31),
)
def test_seed_fan_out_is_per_instance(n, size, fleet_seed):
    """Instance i's weights depend only on seed child 1+i: growing the
    fleet never perturbs the instances that were already in it."""
    small = build_fleet("arbiter", n, size, fleet_seed)
    grown = build_fleet("arbiter", n, size + 2, fleet_seed)
    assert np.array_equal(grown.weights[:, :size], small.weights)


@SETTINGS
@given(
    st.sampled_from(["arbiter", "xor", "br", "ltf"]),
    st.integers(min_value=4, max_value=16),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=2**31),
)
def test_int8_tier_is_bit_identical_to_float64(family, n, fleet_seed, chal_seed):
    f64 = build_fleet(family, n, 4, fleet_seed)
    i8 = build_fleet(family, n, 4, fleet_seed, tier="int8")
    challenges = random_challenges(n, chal_seed)
    assert np.array_equal(f64.margins(challenges), i8.margins(challenges))
    assert np.array_equal(f64.eval(challenges), i8.eval(challenges))


def test_zero_noise_noisy_eval_equals_ideal():
    fleet = build_fleet("xor", 10, 3, seed=21, k=3)
    challenges = random_challenges(10, 2)
    rng = np.random.default_rng(0)
    assert np.array_equal(fleet.eval_noisy(challenges, rng), fleet.eval(challenges))
    assert np.array_equal(
        fleet.majority_vote(challenges, repetitions=5, rng=rng),
        fleet.eval(challenges),
    )


def test_wrong_challenge_width_raises():
    fleet = build_fleet("arbiter", 8, 2, seed=0)
    with pytest.raises(ValueError):
        fleet.eval(np.ones((4, 9), dtype=np.int8))

"""Property tests: the character kernel is bit-identical to the old loops.

The blocked-GEMM kernel replaced per-subset ``np.prod``/``np.mean`` loops
in every spectral learner; these properties pin the equivalence the
rewiring relies on, across random shapes, degrees, and block boundaries
(odd blocks, block == m, block > m, block = 1).

Exactness background: characters and +/-1 labels are integer-valued, so
coefficient *sums* are exact in any evaluation order and estimates match
bit for bit for every block size.  Hypothesis *evaluation* sums dyadic
coefficients, which is exact only when the sample size is a power of two
— the prediction properties draw m accordingly (with non-dyadic
coefficients the two paths can legitimately differ on exact ties of the
expansion value).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import CharacterBasis, fwht, low_degree_subsets
from repro.kernels.reference import (
    naive_estimate_coefficients,
    naive_expansion_values,
    naive_sign_of_expansion,
    naive_walsh_hadamard,
)


@st.composite
def estimation_cases(draw):
    n = draw(st.integers(1, 10))
    degree = draw(st.integers(0, min(4, n)))
    m = draw(st.integers(1, 400))
    block_size = draw(
        st.one_of(
            st.integers(1, 16),  # many tiny blocks, odd boundaries
            st.just(m),  # exactly one block
            st.integers(m, m + 50),  # single partial block
            st.sampled_from([7, 31, 100]),  # fixed odd strides
        )
    )
    seed = draw(st.integers(0, 2**31 - 1))
    return n, degree, m, block_size, seed


@given(estimation_cases())
@settings(max_examples=60, deadline=None)
def test_estimates_bit_identical_across_block_sizes(case):
    n, degree, m, block_size, seed = case
    rng = np.random.default_rng(seed)
    x = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
    basis = CharacterBasis.low_degree(n, degree)
    kernel = basis.estimate_coefficients(x, y, block_size=block_size)
    naive = naive_estimate_coefficients(x, y, list(basis.subsets))
    assert np.array_equal(kernel, naive)


@given(
    n=st.integers(1, 8),
    degree=st.integers(0, 4),
    log2_m=st.integers(0, 9),
    block_size=st.sampled_from([1, 3, 8, 100, 10_000]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_predictions_bit_identical_for_dyadic_spectra(
    n, degree, log2_m, block_size, seed
):
    m = 2**log2_m
    rng = np.random.default_rng(seed)
    x = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
    basis = CharacterBasis.low_degree(n, min(degree, n))
    # Estimated coefficients have denominator m (a power of two), so both
    # evaluation paths are exact and must agree everywhere — including
    # on genuine ties, which both map to +1.
    coeffs = basis.estimate_coefficients(x, y)
    spectrum = dict(zip(basis.subsets, coeffs))
    values = basis.evaluate_expansion(x, coeffs, block_size=block_size)
    assert np.array_equal(values, naive_expansion_values(x, spectrum))
    assert np.array_equal(
        basis.predict_sign(x, coeffs, block_size=block_size),
        naive_sign_of_expansion(x, spectrum),
    )


@given(
    n=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
    subset_count=st.integers(1, 12),
)
@settings(max_examples=40, deadline=None)
def test_arbitrary_subset_families_match_naive(n, seed, subset_count):
    rng = np.random.default_rng(seed)
    pool = low_degree_subsets(n, n)
    picks = rng.choice(len(pool), size=min(subset_count, len(pool)), replace=False)
    subsets = [pool[int(i)] for i in picks]
    x = (1 - 2 * rng.integers(0, 2, size=(97, n))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=97)).astype(np.int8)
    basis = CharacterBasis.from_subsets(n, subsets)
    kernel = basis.estimate_coefficients(x, y, block_size=13)
    naive = naive_estimate_coefficients(x, y, subsets)
    assert np.array_equal(kernel, naive)


@given(
    n=st.integers(0, 8),
    batch=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_batched_fwht_matches_old_transform(n, batch, seed):
    rng = np.random.default_rng(seed)
    tables = (1 - 2 * rng.integers(0, 2, size=(batch, 2**n))).astype(np.float64)
    batched = fwht(tables)
    for row_in, row_out in zip(tables, batched):
        assert np.array_equal(naive_walsh_hadamard(row_in), row_out)

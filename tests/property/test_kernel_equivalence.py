"""Property tests: the character kernel is bit-identical to the old loops.

The blocked-GEMM kernel replaced per-subset ``np.prod``/``np.mean`` loops
in every spectral learner; these properties pin the equivalence the
rewiring relies on, across random shapes, degrees, and block boundaries
(odd blocks, block == m, block > m, block = 1).

Exactness background: characters and +/-1 labels are integer-valued, so
coefficient *sums* are exact in any evaluation order and estimates match
bit for bit for every block size.  Hypothesis *evaluation* sums dyadic
coefficients, which is exact only when the sample size is a power of two
— the prediction properties draw m accordingly (with non-dyadic
coefficients the two paths can legitimately differ on exact ties of the
expansion value).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import note_seed
from repro.kernels import CharacterBasis, fwht, low_degree_subsets, mobius_f2_inplace
from repro.kernels.reference import (
    naive_estimate_coefficients,
    naive_expansion_values,
    naive_mobius_f2,
    naive_parity_transform,
    naive_sign_of_expansion,
    naive_walsh_hadamard,
)


@st.composite
def estimation_cases(draw):
    n = draw(st.integers(1, 10))
    degree = draw(st.integers(0, min(4, n)))
    m = draw(st.integers(1, 400))
    block_size = draw(
        st.one_of(
            st.integers(1, 16),  # many tiny blocks, odd boundaries
            st.just(m),  # exactly one block
            st.integers(m, m + 50),  # single partial block
            st.sampled_from([7, 31, 100]),  # fixed odd strides
        )
    )
    seed = draw(st.integers(0, 2**31 - 1))
    return n, degree, m, block_size, seed


@given(estimation_cases())
@settings(max_examples=60, deadline=None)
def test_estimates_bit_identical_across_block_sizes(case):
    n, degree, m, block_size, seed = case
    rng = np.random.default_rng(seed)
    x = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
    basis = CharacterBasis.low_degree(n, degree)
    kernel = basis.estimate_coefficients(x, y, block_size=block_size)
    naive = naive_estimate_coefficients(x, y, list(basis.subsets))
    assert np.array_equal(kernel, naive)


@given(
    n=st.integers(1, 8),
    degree=st.integers(0, 4),
    log2_m=st.integers(0, 9),
    block_size=st.sampled_from([1, 3, 8, 100, 10_000]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_predictions_bit_identical_for_dyadic_spectra(
    n, degree, log2_m, block_size, seed
):
    m = 2**log2_m
    rng = np.random.default_rng(seed)
    x = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
    basis = CharacterBasis.low_degree(n, min(degree, n))
    # Estimated coefficients have denominator m (a power of two), so both
    # evaluation paths are exact and must agree everywhere — including
    # on genuine ties, which both map to +1.
    coeffs = basis.estimate_coefficients(x, y)
    spectrum = dict(zip(basis.subsets, coeffs))
    values = basis.evaluate_expansion(x, coeffs, block_size=block_size)
    assert np.array_equal(values, naive_expansion_values(x, spectrum))
    assert np.array_equal(
        basis.predict_sign(x, coeffs, block_size=block_size),
        naive_sign_of_expansion(x, spectrum),
    )


@given(
    n=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
    subset_count=st.integers(1, 12),
)
@settings(max_examples=40, deadline=None)
def test_arbitrary_subset_families_match_naive(n, seed, subset_count):
    rng = np.random.default_rng(seed)
    pool = low_degree_subsets(n, n)
    picks = rng.choice(len(pool), size=min(subset_count, len(pool)), replace=False)
    subsets = [pool[int(i)] for i in picks]
    x = (1 - 2 * rng.integers(0, 2, size=(97, n))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=97)).astype(np.int8)
    basis = CharacterBasis.from_subsets(n, subsets)
    kernel = basis.estimate_coefficients(x, y, block_size=13)
    naive = naive_estimate_coefficients(x, y, subsets)
    assert np.array_equal(kernel, naive)


@given(
    n=st.integers(0, 8),
    batch=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_batched_fwht_matches_old_transform(n, batch, seed):
    note_seed("fwht tables", seed)
    rng = np.random.default_rng(seed)
    tables = (1 - 2 * rng.integers(0, 2, size=(batch, 2**n))).astype(np.float64)
    batched = fwht(tables)
    for row_in, row_out in zip(tables, batched):
        assert np.array_equal(naive_walsh_hadamard(row_in), row_out)


# ----------------------------------------------------------------------
# Adversarial shapes: every degenerate corner the blocked kernel owns.
# ----------------------------------------------------------------------
@given(
    degree=st.integers(0, 1),
    block_size=st.sampled_from([1, 2, 3, 1000]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_single_variable_single_row(degree, block_size, seed):
    """n=1 with a one-row sample: the smallest possible GEMM."""
    note_seed("n=1 sample", seed)
    rng = np.random.default_rng(seed)
    x = (1 - 2 * rng.integers(0, 2, size=(1, 1))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=1)).astype(np.int8)
    basis = CharacterBasis.low_degree(1, degree)
    kernel = basis.estimate_coefficients(x, y, block_size=block_size)
    assert np.array_equal(kernel, naive_estimate_coefficients(x, y, list(basis.subsets)))
    coeffs = kernel  # m=1 is dyadic, so evaluation is exact too
    spectrum = dict(zip(basis.subsets, coeffs))
    assert np.array_equal(
        basis.predict_sign(x, coeffs, block_size=block_size),
        naive_sign_of_expansion(x, spectrum),
    )


@given(
    n=st.integers(1, 9),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_extreme_degrees_d0_and_dn(n, seed):
    """Degree 0 (constant character only) and degree n (full basis)."""
    note_seed("extreme-degree sample", seed)
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 60))
    x = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
    for degree in (0, n):
        basis = CharacterBasis.low_degree(n, degree)
        kernel = basis.estimate_coefficients(x, y, block_size=7)
        naive = naive_estimate_coefficients(x, y, list(basis.subsets))
        assert np.array_equal(kernel, naive)
    assert len(CharacterBasis.low_degree(n, 0)) == 1
    assert len(CharacterBasis.low_degree(n, n)) == 2**n


@given(
    m=st.sampled_from([1, 2, 3, 5, 97]),
    block_size=st.sampled_from([1, 2, 3, 4, 96, 97, 98]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_block_boundary_never_splits_results(m, block_size, seed):
    """Non-power-of-two m against every boundary-straddling block size."""
    note_seed("block-boundary sample", seed)
    rng = np.random.default_rng(seed)
    x = (1 - 2 * rng.integers(0, 2, size=(m, 6))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
    basis = CharacterBasis.low_degree(6, 3)
    assert np.array_equal(
        basis.estimate_coefficients(x, y, block_size=block_size),
        naive_estimate_coefficients(x, y, list(basis.subsets)),
    )


@given(
    n=st.integers(0, 7),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_mobius_butterfly_matches_submask_sums(n, seed):
    """The in-place GF(2) butterfly equals the O(3^n) definition."""
    note_seed("mobius values", seed)
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 2, size=2**n).astype(np.uint8)
    butterfly = mobius_f2_inplace(values.copy())
    assert np.array_equal(butterfly, naive_mobius_f2(values))
    assert np.array_equal(mobius_f2_inplace(butterfly.copy()), values)


@given(
    m=st.sampled_from([1, 2, 7, 64]),
    n=st.integers(1, 24),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_parity_transform_matches_reference(m, n, seed):
    """The cumprod parity transform equals the per-stage loops exactly."""
    from repro.pufs.arbiter import parity_transform

    note_seed("parity challenges", seed)
    rng = np.random.default_rng(seed)
    c = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
    assert np.array_equal(parity_transform(c), naive_parity_transform(c))

"""Challenge-distribution invariants, including the pinned sign
convention of :func:`repro.pufs.crp.biased_challenges`.

The docstring promise is: each bit is ``-1`` (the +/-1 encoding of
logical one) with probability ``p`` and ``+1`` otherwise.  These tests
make that contract executable so neither side can drift again.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pufs.crp import (
    biased_challenges,
    low_weight_challenges,
    uniform_challenges,
)

SETTINGS = settings(max_examples=25, deadline=None)


def test_biased_extreme_p_one_is_all_minus_one():
    sample = biased_challenges(1.0)(50, 8, np.random.default_rng(0))
    assert (sample == -1).all()


def test_biased_extreme_p_zero_is_all_plus_one():
    sample = biased_challenges(0.0)(50, 8, np.random.default_rng(0))
    assert (sample == 1).all()


@SETTINGS
@given(
    st.floats(min_value=0.05, max_value=0.95),
    st.integers(min_value=0, max_value=2**31),
)
def test_biased_minus_one_rate_matches_p(p, seed):
    """Empirical fraction of -1 bits within a 4-sigma binomial band of p."""
    m, n = 400, 32
    sample = biased_challenges(p)(m, n, np.random.default_rng(seed))
    rate = float(np.mean(sample == -1))
    sigma = np.sqrt(p * (1 - p) / (m * n))
    assert abs(rate - p) < 4 * sigma + 1e-9


@SETTINGS
@given(st.integers(min_value=0, max_value=2**31))
def test_uniform_is_pm1_and_balanced(seed):
    sample = uniform_challenges(500, 16, np.random.default_rng(seed))
    assert sample.dtype == np.int8
    assert set(np.unique(sample)).issubset({-1, 1})
    # 4-sigma band around 1/2 for 8000 fair bits.
    rate = float(np.mean(sample == -1))
    assert abs(rate - 0.5) < 4 * np.sqrt(0.25 / sample.size)


@SETTINGS
@given(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)
def test_low_weight_respects_max_ones(max_ones, seed):
    sample = low_weight_challenges(max_ones)(80, 16, np.random.default_rng(seed))
    ones_per_row = np.sum(sample == -1, axis=1)
    assert (ones_per_row <= max_ones).all()

"""Challenge-distribution invariants, including the pinned sign
convention of :func:`repro.pufs.crp.biased_challenges`.

The docstring promise is: each bit is ``-1`` (the +/-1 encoding of
logical one) with probability ``p`` and ``+1`` otherwise.  These tests
make that contract executable so neither side can drift again.  The
stochastic checks run through the :mod:`repro.conformance` oracles: each
hypothesis test declares one alpha covering *all* of its examples
(``TEST_ALPHA / MAX_EXAMPLES`` per draw), and every numpy seed is noted
via :func:`repro.conformance.note_seed` so a falsifying example prints
the exact generator to rebuild in a REPL.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.conformance import check_bernoulli, note_seed
from repro.conformance.pytest_plugin import statistical_test
from repro.pufs.crp import (
    biased_challenges,
    low_weight_challenges,
    uniform_challenges,
)

MAX_EXAMPLES = 25
SETTINGS = settings(max_examples=MAX_EXAMPLES, deadline=None)

#: Declared per-test false-failure probability, split across all the
#: examples hypothesis draws (union bound), so the marker's registration
#: covers the whole strategy sweep.
TEST_ALPHA = 2e-8
ALPHA_PER_EXAMPLE = TEST_ALPHA / MAX_EXAMPLES


def test_biased_extreme_p_one_is_all_minus_one():
    sample = biased_challenges(1.0)(50, 8, np.random.default_rng(0))
    assert (sample == -1).all()


def test_biased_extreme_p_zero_is_all_plus_one():
    sample = biased_challenges(0.0)(50, 8, np.random.default_rng(0))
    assert (sample == 1).all()


@statistical_test(alpha=TEST_ALPHA)
@SETTINGS
@given(
    st.floats(min_value=0.05, max_value=0.95),
    st.integers(min_value=0, max_value=2**31),
)
def test_biased_minus_one_rate_matches_p(p, seed):
    """The count of -1 bits conforms to Binomial(mn, p) exactly."""
    m, n = 400, 32
    note_seed("biased_challenges rng", seed)
    sample = biased_challenges(p)(m, n, np.random.default_rng(seed))
    check_bernoulli(
        int(np.sum(sample == -1)),
        m * n,
        p,
        ALPHA_PER_EXAMPLE,
        name=f"biased[p={p:g}]",
    ).require()


@statistical_test(alpha=TEST_ALPHA)
@SETTINGS
@given(st.integers(min_value=0, max_value=2**31))
def test_uniform_is_pm1_and_balanced(seed):
    note_seed("uniform_challenges rng", seed)
    sample = uniform_challenges(500, 16, np.random.default_rng(seed))
    assert sample.dtype == np.int8
    assert set(np.unique(sample)).issubset({-1, 1})
    check_bernoulli(
        int(np.sum(sample == -1)),
        int(sample.size),
        0.5,
        ALPHA_PER_EXAMPLE,
        name="uniform_fair",
    ).require()


@SETTINGS
@given(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)
def test_low_weight_respects_max_ones(max_ones, seed):
    note_seed("low_weight_challenges rng", seed)
    sample = low_weight_challenges(max_ones)(80, 16, np.random.default_rng(seed))
    ones_per_row = np.sum(sample == -1, axis=1)
    assert (ones_per_row <= max_ones).all()

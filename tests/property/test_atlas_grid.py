"""Property tests for atlas grid expansion and reduction (ISSUE 10).

The atlas's crash-safe resume contract rests on three structural
invariants: the cell count is a closed-form function of the axis sizes
(feasibility filters included), every cell digest is unique (so ledger
rows can never collide), and the reduced boundary-map digest is
invariant both to how the caller ordered the spec's axes and to the
order trial results arrive in.  These are exact combinatorial claims —
no statistical budget is consumed; trial values are synthesised, not
learned.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.analysis.atlas import (
    AtlasTrialSpec,
    cell_of_trial,
    expand_grid,
    num_trials,
    reduce_atlas,
)

SETTINGS = settings(max_examples=25, deadline=None)


def subsets(values):
    """Non-empty ordered subsets (permutation included) of ``values``."""
    return st.lists(
        st.sampled_from(values),
        min_size=1,
        max_size=len(values),
        unique=True,
    )


spec_axes = st.fixed_dictionaries(
    {
        "families": subsets(("xor", "cdc_xor")),
        "learners": subsets(("lr", "mlp", "reliability")),
        "representations": subsets(("parity", "raw")),
        "ns": subsets((8, 16, 24)),
        "ks": subsets((1, 2, 3)),
        "noise_sigmas": subsets((0.0, 0.2, 0.5)),
        "budgets": subsets((50, 120, 300)),
        "replicates": st.integers(min_value=1, max_value=3),
    }
)


def _build(axes) -> AtlasTrialSpec:
    return AtlasTrialSpec(**axes)


def _expected_cells(spec: AtlasTrialSpec) -> int:
    """The closed-form count: gradient cells + feasible reliability cells."""
    base = len(spec.ns) * len(spec.ks) * len(spec.budgets)
    gradient_learners = [l for l in spec.learners if l != "reliability"]
    count = (
        len(spec.families)
        * len(gradient_learners)
        * len(spec.representations)
        * base
        * len(spec.noise_sigmas)
    )
    if "reliability" in spec.learners:
        noisy = len([s for s in spec.noise_sigmas if s > 0])
        count += len(spec.families) * base * noisy  # parity-pinned
    return count


@SETTINGS
@given(spec_axes)
def test_cell_count_matches_closed_form(axes):
    spec = _build(axes)
    try:
        cells = expand_grid(spec)
    except ValueError:
        # Reliability-only grid with sigma = 0 everywhere: legitimately
        # empty, and expand_grid must say so rather than return nothing.
        assert spec.learners == ("reliability",)
        assert all(s <= 0 for s in spec.noise_sigmas)
        return
    assert len(cells) == _expected_cells(spec)
    assert num_trials(spec) == len(cells) * spec.replicates


@SETTINGS
@given(spec_axes)
def test_cell_digests_are_duplicate_free(axes):
    spec = _build(axes)
    try:
        cells = expand_grid(spec)
    except ValueError:
        return
    digests = [cell.digest() for cell in cells]
    assert len(set(digests)) == len(digests)
    assert len(set(cells)) == len(cells)


@SETTINGS
@given(spec_axes, st.randoms(use_true_random=False))
def test_axis_order_invariance(axes, pyrandom):
    """Shuffling every axis listing yields an *equal* spec: same cells,
    same trial mapping, same reduced digest."""
    spec = _build(axes)
    shuffled = dict(axes)
    for axis in (
        "families",
        "learners",
        "representations",
        "ns",
        "ks",
        "noise_sigmas",
        "budgets",
    ):
        listing = list(shuffled[axis])
        pyrandom.shuffle(listing)
        shuffled[axis] = listing
    other = _build(shuffled)
    assert spec == other
    try:
        cells = expand_grid(spec)
    except ValueError:
        return
    assert expand_grid(other) == cells
    values = _synthetic_values(spec)
    assert (
        reduce_atlas(spec, values)["digest"]
        == reduce_atlas(other, values)["digest"]
    )


def _synthetic_values(spec: AtlasTrialSpec):
    """Deterministic fake [accuracy, queries] per trial index."""
    return {
        i: [0.5 + 0.5 * ((i * 2654435761) % 1000) / 1000.0, float(100 + i)]
        for i in range(num_trials(spec))
    }


@SETTINGS
@given(spec_axes, st.randoms(use_true_random=False))
def test_reduction_ignores_arrival_order(axes, pyrandom):
    """The boundary map is a function of the (index, value) *set*."""
    spec = _build(axes)
    try:
        total = num_trials(spec)
    except ValueError:
        return
    values = _synthetic_values(spec)
    order = list(range(total))
    pyrandom.shuffle(order)
    shuffled = {i: values[i] for i in order}
    assert (
        reduce_atlas(spec, values)["digest"]
        == reduce_atlas(spec, shuffled)["digest"]
    )


@SETTINGS
@given(spec_axes, st.integers(min_value=0, max_value=10_000))
def test_cell_of_trial_is_cell_major(axes, raw_index):
    spec = _build(axes)
    try:
        cells = expand_grid(spec)
    except ValueError:
        return
    total = len(cells) * spec.replicates
    index = raw_index % total
    cell, replicate = cell_of_trial(spec, index)
    assert cell == cells[index // spec.replicates]
    assert replicate == index % spec.replicates


def test_replicate_count_only_changes_trial_total():
    spec = AtlasTrialSpec(ns=(16,), ks=(1,), budgets=(50,))
    doubled = dataclasses.replace(spec, replicates=2)
    assert expand_grid(spec) == expand_grid(doubled)
    assert num_trials(doubled) == 2 * num_trials(spec)


def test_missing_values_are_counted_not_invented():
    spec = AtlasTrialSpec(
        families=("xor",), learners=("lr",), ns=(16,), ks=(1,),
        noise_sigmas=(0.0,), budgets=(50, 100),
    )
    payload = reduce_atlas(spec, {0: [0.9, 50.0]})
    assert payload["missing_trials"] == 1
    rows = {row["m"]: row for row in payload["cells"]}
    assert rows[50]["mean_accuracy"] == 0.9
    assert rows[100]["mean_accuracy"] is None
    assert rows[100]["broken"] is False

"""Property-based invariants every PUF simulator must satisfy.

Hypothesis drives (n, seed, challenge) through the three PUF families the
paper's experiments use — Arbiter, XOR Arbiter, and Bistable Ring — and
checks the contracts the rest of the codebase silently relies on:

* ``eval`` is deterministic (same instance, same challenges, same answer);
* responses are exactly +/-1 with dtype int8;
* ``eval_noisy`` with ``noise_sigma == 0`` equals ``eval`` — zero noise
  must be *exactly* the ideal device, not approximately;
* a k-XOR arbiter's response is the product of its component chains'
  responses on every challenge (the +/-1 encoding of XOR).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conformance import note_seed
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.xor_arbiter import XORArbiterPUF

SETTINGS = settings(max_examples=25, deadline=None)


def make_puf(family, n, seed):
    # note_seed attaches the exact numpy generator identity to any
    # falsifying example, closing the hypothesis-vs-numpy replay gap.
    note_seed(f"{family} instance", seed)
    rng = np.random.default_rng(seed)
    if family == "arbiter":
        return ArbiterPUF(n, rng)
    if family == "xor":
        return XORArbiterPUF(n, 3, rng)
    if family == "br":
        return BistableRingPUF(n, rng)
    raise AssertionError(family)


def random_challenges(n, seed, m=64):
    note_seed("challenges", seed)
    rng = np.random.default_rng(seed)
    return (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)


challenge_params = st.tuples(
    st.sampled_from(["arbiter", "xor", "br"]),
    st.integers(min_value=4, max_value=32),  # challenge length
    st.integers(min_value=0, max_value=2**31),  # instance seed
    st.integers(min_value=0, max_value=2**31),  # challenge seed
)


@SETTINGS
@given(challenge_params)
def test_eval_is_deterministic(params):
    family, n, inst_seed, chal_seed = params
    puf = make_puf(family, n, inst_seed)
    challenges = random_challenges(n, chal_seed)
    first = puf.eval(challenges)
    second = puf.eval(challenges)
    np.testing.assert_array_equal(first, second)


@SETTINGS
@given(challenge_params)
def test_responses_are_pm1_int8(params):
    family, n, inst_seed, chal_seed = params
    puf = make_puf(family, n, inst_seed)
    challenges = random_challenges(n, chal_seed)
    responses = puf.eval(challenges)
    assert responses.dtype == np.int8
    assert set(np.unique(responses)).issubset({-1, 1})


@SETTINGS
@given(challenge_params)
def test_noiseless_eval_noisy_equals_eval(params):
    family, n, inst_seed, chal_seed = params
    puf = make_puf(family, n, inst_seed)
    assert puf.noise_sigma == 0.0
    challenges = random_challenges(n, chal_seed)
    rng = np.random.default_rng(chal_seed)
    np.testing.assert_array_equal(
        puf.eval_noisy(challenges, rng), puf.eval(challenges)
    )


@SETTINGS
@given(
    st.integers(min_value=4, max_value=32),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=2**31),
)
def test_xor_is_product_of_chains(n, k, inst_seed, chal_seed):
    puf = XORArbiterPUF(n, k, np.random.default_rng(inst_seed))
    challenges = random_challenges(n, chal_seed)
    product = np.prod(
        np.stack([chain.eval(challenges) for chain in puf.chains]), axis=0
    )
    np.testing.assert_array_equal(puf.eval(challenges), product.astype(np.int8))


@pytest.mark.parametrize("family", ["arbiter", "xor", "br"])
def test_noisy_responses_still_pm1_int8(family):
    """Even under noise the response alphabet never changes."""
    rng = np.random.default_rng(5)
    if family == "arbiter":
        puf = ArbiterPUF(16, rng, noise_sigma=0.8)
    elif family == "xor":
        puf = XORArbiterPUF(16, 3, rng, noise_sigma=0.8)
    else:
        puf = BistableRingPUF(16, rng, noise_sigma=0.8)
    responses = puf.eval_noisy(random_challenges(16, 6, m=256), rng)
    assert responses.dtype == np.int8
    assert set(np.unique(responses)).issubset({-1, 1})

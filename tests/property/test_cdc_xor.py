"""Property tests for CDC-XOR challenge derivation (ISSUE 10).

The component-challenge derivation is the whole point of the CDC-XOR
construction — each chain sees the master challenge rotated by its own
shift, which destroys the shared-parity-feature structure master-challenge
models rely on.  These tests pin the derivation's algebra: shapes, the
+/-1 alphabet, the exact rotation semantics, equivariance under
permuting the component shifts, and the k=1 collapse onto the plain
arbiter chain (the anchor the differential conformance relation
re-checks bit-exactly).

All checks here are exact (integer rotations, bit-identical margins), so
no test consumes statistical family budget.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.cdc_xor import (
    CDCXORArbiterPUF,
    default_shifts,
    derive_component_challenges,
)

SETTINGS = settings(max_examples=25, deadline=None)

dims = st.tuples(
    st.integers(min_value=1, max_value=32),  # m
    st.integers(min_value=4, max_value=24),  # n
    st.integers(min_value=1, max_value=5),  # k
    st.integers(min_value=0, max_value=2**31),  # seed
)


def _challenges(m: int, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)


@SETTINGS
@given(dims)
def test_derivation_shape_alphabet_and_rotation(args):
    """(k, m, n) output, +/-1 int8 preserved, exact roll semantics."""
    m, n, k, seed = args
    c = _challenges(m, n, seed)
    shifts = default_shifts(k, n)
    components = derive_component_challenges(c, k, shifts)
    assert components.shape == (k, m, n)
    assert components.dtype == c.dtype
    assert np.all(np.abs(components) == 1)
    # Component 0 carries shift 0: it IS the master challenge.
    assert shifts[0] == 0
    assert np.array_equal(components[0], c)
    # Every component is the master rotated left by its shift: element j
    # of the derived challenge is master element (j + shift) mod n.
    for i, shift in enumerate(shifts):
        assert np.array_equal(components[i], np.roll(c, -shift, axis=1))


@SETTINGS
@given(dims, st.randoms(use_true_random=False))
def test_component_permutation_equivariance(args, pyrandom):
    """Permuting the shift list permutes the derived components."""
    m, n, k, seed = args
    c = _challenges(m, n, seed)
    shifts = list(default_shifts(k, n))
    perm = list(range(k))
    pyrandom.shuffle(perm)
    base = derive_component_challenges(c, k, shifts)
    permuted = derive_component_challenges(
        c, k, [shifts[p] for p in perm]
    )
    for i, p in enumerate(perm):
        assert np.array_equal(permuted[i], base[p])


@SETTINGS
@given(
    st.integers(min_value=4, max_value=32),
    st.integers(min_value=0, max_value=2**31),
)
def test_k1_collapses_to_plain_arbiter(n, seed):
    """A 1-component CDC-XOR is its arbiter chain, bit for bit."""
    puf = CDCXORArbiterPUF(n, 1, np.random.default_rng(seed))
    plain = ArbiterPUF(n, weights=puf.chains[0].weights)
    c = _challenges(64, n, seed + 1)
    assert puf.shifts == (0,)
    assert np.array_equal(puf.raw_margin(c), plain.raw_margin(c))
    assert np.array_equal(puf.eval(c), plain.eval(c))


@SETTINGS
@given(dims)
def test_response_is_product_of_component_chain_signs(args):
    """The CDC response factors over per-component chain responses."""
    m, n, k, seed = args
    puf = CDCXORArbiterPUF(n, k, np.random.default_rng(seed))
    c = _challenges(m, n, seed + 1)
    components = derive_component_challenges(c, k, puf.shifts)
    product = np.prod(
        np.stack(
            [chain.eval(components[i]) for i, chain in enumerate(puf.chains)]
        ),
        axis=0,
    ).astype(np.int8)
    responses = puf.eval(c)
    assert responses.dtype == np.int8
    assert np.all(np.abs(responses) == 1)
    assert np.array_equal(responses, product)


@SETTINGS
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=4, max_value=48),
)
def test_default_shifts_distinct_and_anchored(k, n):
    """Default shifts start at 0 and stay distinct while k <= n."""
    shifts = default_shifts(k, n)
    assert len(shifts) == k
    assert shifts[0] == 0
    assert all(0 <= s < n for s in shifts)
    if k <= n:
        assert len(set(shifts)) == k

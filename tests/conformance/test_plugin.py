"""Tests for the pytest plugin: marker, fixture, budget, forensics.

The ``StatContext`` unit tests exercise the per-test alpha ledger
directly; the ``pytester`` tests run the plugin end-to-end in throwaway
test trees and assert on the observable contract — budget registration,
the refusal to hand out ``stat`` without a marker, the family cap, and
the ``conformance seeds`` failure section.
"""

import numpy as np
import pytest

from repro.conformance.pytest_plugin import DEFAULT_TEST_ALPHA, StatContext


class TestStatContext:
    def test_rng_is_captured_and_deterministic(self):
        ctx = StatContext("node::id", 1e-8)
        a = ctx.rng("sampler", 42).integers(0, 2**31)
        b = np.random.default_rng(42).integers(0, 2**31)
        assert a == b
        assert len(ctx.seeds) == 1
        assert "sampler" in ctx.seeds.report()

    def test_split_alpha(self):
        ctx = StatContext("n", 1e-8)
        assert ctx.split_alpha(4) == pytest.approx(2.5e-9)
        with pytest.raises(ValueError):
            ctx.split_alpha(0)

    def test_sugar_defaults_to_declared_alpha(self):
        ctx = StatContext("n", 1e-6)
        result = ctx.check_bernoulli(500, 1000, 0.5)
        assert result.alpha == 1e-6
        assert ctx.results == [result]

    def test_overspend_raises_runtime_error(self):
        ctx = StatContext("n", 1e-8)
        ctx.check_bernoulli(500, 1000, 0.5, alpha=8e-9)
        with pytest.raises(RuntimeError, match="overspent"):
            ctx.check_bernoulli(500, 1000, 0.5, alpha=8e-9)

    def test_failed_check_still_recorded_before_raising(self):
        ctx = StatContext("n", 1e-6)
        with pytest.raises(AssertionError):
            ctx.check_bernoulli(990, 1000, 0.5)
        assert len(ctx.results) == 1 and not ctx.results[0].passed


PLUGIN_ARGS = ("-p", "repro.conformance.pytest_plugin")


class TestPluginEndToEnd:
    def test_marked_test_registers_and_summary_prints(self, pytester):
        pytester.makepyfile(
            """
            from repro.conformance.pytest_plugin import statistical_test

            @statistical_test(alpha=2e-8)
            def test_fair(stat):
                rng = stat.rng("coin", 7)
                heads = int((rng.random(10_000) < 0.5).sum())
                stat.check_bernoulli(heads, 10_000, 0.5)
            """
        )
        result = pytester.runpytest(*PLUGIN_ARGS)
        result.assert_outcomes(passed=1)
        result.stdout.fnmatch_lines(
            ["*conformance error budget*", "*statistical tests: 1*"]
        )

    def test_stat_fixture_without_marker_errors(self, pytester):
        pytester.makepyfile(
            """
            def test_unmarked(stat):
                pass
            """
        )
        result = pytester.runpytest(*PLUGIN_ARGS)
        result.assert_outcomes(errors=1)
        result.stdout.fnmatch_lines(["*requires the @statistical_test*"])

    def test_failure_report_carries_seed_recipe(self, pytester):
        pytester.makepyfile(
            """
            from repro.conformance.pytest_plugin import statistical_test

            @statistical_test(alpha=2e-8)
            def test_wrong_claim(stat):
                rng = stat.rng("coin", 7)
                heads = int((rng.random(10_000) < 0.9).sum())
                stat.check_bernoulli(heads, 10_000, 0.5)
            """
        )
        result = pytester.runpytest(*PLUGIN_ARGS)
        result.assert_outcomes(failed=1)
        result.stdout.fnmatch_lines(
            [
                "*conformance seeds*",
                "*declared alpha: 2e-08*",
                "*SeedSequence*",
            ]
        )

    def test_family_cap_enforced_across_tests(self, pytester):
        pytester.makepyfile(
            """
            from repro.conformance.pytest_plugin import statistical_test

            @statistical_test(alpha=6e-7)
            def test_a(stat):
                stat.check_bernoulli(500, 1000, 0.5)

            @statistical_test(alpha=6e-7)
            def test_b(stat):
                stat.check_bernoulli(500, 1000, 0.5)
            """
        )
        result = pytester.runpytest(*PLUGIN_ARGS)
        # The second registration would push the family past 1e-6.
        result.assert_outcomes(passed=1, errors=1)
        result.stdout.fnmatch_lines(["*BudgetExceeded*"])

    def test_family_alpha_configurable_via_ini(self, pytester):
        pytester.makeini(
            """
            [pytest]
            conformance_family_alpha = 1e-9
            """
        )
        pytester.makepyfile(
            """
            from repro.conformance.pytest_plugin import statistical_test

            @statistical_test(alpha=2e-8)
            def test_too_expensive(stat):
                stat.check_bernoulli(500, 1000, 0.5)
            """
        )
        result = pytester.runpytest(*PLUGIN_ARGS)
        result.assert_outcomes(errors=1)
        result.stdout.fnmatch_lines(["*BudgetExceeded*"])

    def test_marker_only_registration_covers_hypothesis_style(self, pytester):
        """A marked test without the fixture still charges the budget —
        this is the path hypothesis-driven tests take."""
        pytester.makepyfile(
            """
            from repro.conformance import check_bernoulli
            from repro.conformance.pytest_plugin import statistical_test

            @statistical_test(alpha=2e-8)
            def test_marker_only():
                check_bernoulli(5000, 10_000, 0.5, 2e-8).require()
            """
        )
        result = pytester.runpytest(*PLUGIN_ARGS)
        result.assert_outcomes(passed=1)
        result.stdout.fnmatch_lines(["*statistical tests: 1*"])

    def test_default_marker_alpha_is_conformance_default(self, pytester):
        pytester.makepyfile(
            """
            from repro.conformance.pytest_plugin import (
                DEFAULT_TEST_ALPHA,
                statistical_test,
            )

            @statistical_test()
            def test_default(stat):
                assert stat.alpha == DEFAULT_TEST_ALPHA
            """
        )
        result = pytester.runpytest(*PLUGIN_ARGS)
        result.assert_outcomes(passed=1)
        assert DEFAULT_TEST_ALPHA == 2e-8

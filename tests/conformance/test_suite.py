"""Tests for the relation framework and the suite runner.

Covers the registry contract (>= 12 relations, unique names, both
kinds), deterministic re-runs (same master seed, bit-identical seed
fan-out), violation reporting (a failing relation is reported, never
raised), and the ledger integration (one JSONL record per relation plus
a meta.json summary).
"""

import numpy as np
import pytest

from repro.conformance import (
    ConformanceViolation,
    ErrorBudget,
    Relation,
    RelationContext,
    all_relations,
    differential_relations,
    metamorphic_relations,
    relation_seed,
    run_suite,
)
from repro.telemetry.ledger import RunLedger


class TestRegistry:
    def test_at_least_twelve_relations(self):
        assert len(all_relations()) >= 12

    def test_names_unique(self):
        names = [r.name for r in all_relations()]
        assert len(set(names)) == len(names)

    def test_both_kinds_present(self):
        kinds = {r.kind for r in all_relations()}
        assert kinds == {"differential", "metamorphic"}

    def test_differential_relations_are_deterministic(self):
        # Differential checks assert exactness; none should consume alpha.
        assert not any(r.statistical for r in differential_relations())

    def test_statistical_relations_exist(self):
        assert sum(r.statistical for r in metamorphic_relations()) >= 5


class TestRelationContext:
    def test_rng_spawns_deterministic_children(self):
        a = RelationContext(np.random.SeedSequence(7))
        b = RelationContext(np.random.SeedSequence(7))
        assert a.rng().integers(0, 2**31) == b.rng().integers(0, 2**31)
        # Successive spawns differ from each other.
        c = RelationContext(np.random.SeedSequence(7))
        first, second = c.rng(), c.rng()
        assert first.integers(0, 2**31) != second.integers(0, 2**31)

    def test_samples_scaling_floors_at_minimum(self):
        ctx = RelationContext(0, scale=0.01)
        assert ctx.samples(100_000, minimum=512) == 1000
        assert ctx.samples(10_000, minimum=512) == 512

    def test_deterministic_relation_cannot_spend_alpha(self):
        ctx = RelationContext(0, alpha=0.0)
        with pytest.raises(ConformanceViolation, match="deterministic"):
            ctx.split_alpha(2)

    def test_alpha_overspend_detected(self):
        from repro.conformance import check_bernoulli

        ctx = RelationContext(0, alpha=1e-7)
        result = check_bernoulli(500, 1000, 0.5, 8e-8)
        ctx.check(result)
        with pytest.raises(ConformanceViolation, match="overspent"):
            ctx.check(check_bernoulli(500, 1000, 0.5, 8e-8))


class TestRelationRun:
    def test_crash_is_a_violation_not_an_exception(self):
        relation = Relation(
            "boom", "metamorphic", "always crashes", lambda ctx: 1 / 0
        )
        report = relation.run(RelationContext(0))
        assert not report.passed
        assert "ZeroDivisionError" in report.error

    def test_assertion_captured_with_message(self):
        def check(ctx):
            raise ConformanceViolation("the contract broke")

        report = Relation("bad", "metamorphic", "fails", check).run(
            RelationContext(0)
        )
        assert not report.passed
        assert report.error == "the contract broke"

    def test_report_records_seed_identity(self):
        relation = Relation("ok", "metamorphic", "passes", lambda ctx: {"x": 1})
        seed = relation_seed(42, 3)
        report = relation.run(RelationContext(seed))
        assert report.passed
        assert report.seed["entropy"] == 42
        assert report.seed["spawn_key"] == [3]
        assert report.details == {"x": 1}


class TestRunSuite:
    def _toy_relations(self):
        from repro.conformance import check_bernoulli

        def stat_check(ctx):
            rng = ctx.rng()
            flips = int(np.sum(rng.random(2000) < 0.25))
            ctx.check(check_bernoulli(flips, 2000, 0.25, ctx.alpha))
            return {"flips": flips}

        return [
            Relation("det_ok", "differential", "exact pass", lambda ctx: None),
            Relation("stat_ok", "metamorphic", "rate check", stat_check, statistical=True),
            Relation(
                "det_fail",
                "metamorphic",
                "always fails",
                lambda ctx: (_ for _ in ()).throw(ConformanceViolation("nope")),
            ),
        ]

    def test_violations_reported_and_flagged(self):
        suite = run_suite(self._toy_relations(), master_seed=1)
        assert not suite.passed
        assert [v.name for v in suite.violations] == ["det_fail"]
        assert suite.num_statistical == 1

    def test_statistical_relations_share_family_alpha(self):
        suite = run_suite(self._toy_relations(), master_seed=1, family_alpha=1e-6)
        by_name = {r.name: r for r in suite.reports}
        assert by_name["stat_ok"].alpha == pytest.approx(1e-6)
        assert by_name["det_ok"].alpha == 0.0

    def test_same_seed_same_outcome(self):
        a = run_suite(self._toy_relations(), master_seed=9)
        b = run_suite(self._toy_relations(), master_seed=9)
        assert [r.as_dict()["seed"] for r in a.reports] == [
            r.as_dict()["seed"] for r in b.reports
        ]
        assert [r.details for r in a.reports] == [r.details for r in b.reports]

    def test_duplicate_names_rejected(self):
        dup = [
            Relation("x", "metamorphic", "a", lambda ctx: None),
            Relation("x", "metamorphic", "b", lambda ctx: None),
        ]
        with pytest.raises(ValueError, match="unique"):
            run_suite(dup)

    def test_ledger_records_and_meta(self, tmp_path):
        ledger = RunLedger(tmp_path / "conf-run")
        suite = run_suite(self._toy_relations(), master_seed=2, ledger=ledger)
        records = ledger.read()
        assert len(records) == 3
        assert [r["name"] for r in records] == ["det_ok", "stat_ok", "det_fail"]
        assert all("index" in r and "seed" in r for r in records)
        meta = ledger.read_meta()
        assert meta["kind"] == "conformance"
        assert meta["num_violations"] == 1
        assert meta["passed"] is False
        assert meta["budget"]["checks"] == 1

    def test_full_registry_smoke_tier_passes(self, tmp_path):
        """The real suite, at smoke scale: must hold on a healthy tree."""
        ledger = RunLedger(tmp_path / "smoke")
        suite = run_suite(master_seed=1234, ledger=ledger, scale=0.1)
        assert suite.passed, [v.error for v in suite.violations]
        assert len(ledger.read()) == len(all_relations())


class TestBudgetResume:
    """The resume regression guard: re-registration never double-charges.

    A resumed conformance run (same budget object surviving a retry, or
    a run re-executed over an existing ledger) re-registers every
    statistical relation.  The family-wise accounting must show each
    name charged exactly once — the alpha ledger is keyed by name, not
    by registration event.
    """

    def test_rerun_with_shared_budget_registers_once(self):
        budget = ErrorBudget(total=1e-6)
        first = run_suite(master_seed=5, budget=budget, scale=0.1)
        spent_after_first = budget.spent()
        second = run_suite(master_seed=5, budget=budget, scale=0.1)
        assert budget.spent() == pytest.approx(spent_after_first)
        # Every statistical relation now shows exactly two registration
        # events collapsed onto one allocation.
        for name, reg in budget.registrations.items():
            assert reg.count == 2, name
        assert first.num_statistical == second.num_statistical

    def test_resumed_run_with_different_family_alpha_conflicts(self):
        from repro.conformance import BudgetConflict

        budget = ErrorBudget(total=1e-6)
        run_suite(master_seed=5, budget=budget, scale=0.1)
        with pytest.raises(BudgetConflict):
            run_suite(master_seed=5, budget=budget, family_alpha=5e-7, scale=0.1)

    def test_ledger_resume_appends_latest_records(self, tmp_path):
        """Re-running over one ledger directory mirrors TrialRunner resume:
        the reader must take the latest record per index, and the budget
        must stay single-charged."""
        ledger = RunLedger(tmp_path / "resumed")
        budget = ErrorBudget(total=1e-6)
        run_suite(master_seed=7, budget=budget, ledger=ledger, scale=0.1)
        first_count = len(ledger.read())
        run_suite(master_seed=7, budget=budget, ledger=ledger, scale=0.1)
        assert len(ledger.read()) == 2 * first_count
        latest = ledger.read_latest()
        assert len(latest) == first_count  # one surviving record per index
        assert budget.spent() <= budget.total
        meta = ledger.read_meta()
        # meta.json reflects the final run's accounting: every relation
        # registered twice, charged once.
        for entry in meta["budget"]["registrations"].values():
            assert entry["count"] == 2

"""Unit tests for the statistical oracles and the error budget.

The oracles are the suite's foundation: if an interval or an alpha
ledger is wrong, every downstream statistical guarantee is wrong, so
these tests pin the constructions against closed-form facts (scipy's
Beta quantiles, the Hoeffding formula) and the budget against its
idempotency/conflict/overflow contract.
"""

import math

import numpy as np
import pytest

from repro.conformance import oracles as orc


class TestIntervals:
    def test_hoeffding_halfwidth_formula(self):
        t = orc.hoeffding_halfwidth(2000, 0.01)
        assert t == pytest.approx(math.sqrt(math.log(200.0) / 4000.0))

    def test_hoeffding_interval_clipped_to_unit(self):
        lo, hi = orc.hoeffding_interval(1, 10, 0.5)
        assert 0.0 <= lo <= hi <= 1.0

    def test_clopper_pearson_matches_beta_quantiles(self):
        from scipy import stats

        k, m, alpha = 37, 200, 0.05
        lo, hi = orc.clopper_pearson_interval(k, m, alpha)
        assert lo == pytest.approx(stats.beta.ppf(alpha / 2, k, m - k + 1))
        assert hi == pytest.approx(stats.beta.ppf(1 - alpha / 2, k + 1, m - k))

    def test_clopper_pearson_closed_ends(self):
        lo, hi = orc.clopper_pearson_interval(0, 50, 0.05)
        assert lo == 0.0 and 0.0 < hi < 0.2
        lo, hi = orc.clopper_pearson_interval(50, 50, 0.05)
        assert hi == 1.0 and 0.8 < lo < 1.0

    def test_clopper_pearson_contains_true_p_typically(self):
        rng = np.random.default_rng(0)
        p, m = 0.3, 5000
        covered = 0
        for _ in range(50):
            k = int(rng.binomial(m, p))
            lo, hi = orc.clopper_pearson_interval(k, m, 0.05)
            covered += lo <= p <= hi
        assert covered >= 45  # coverage is >= 95% by construction

    def test_tighter_than_hoeffding_for_extreme_p(self):
        # CP exploits the binomial shape; at p near 0 its interval is far
        # narrower than the distribution-free Hoeffding band.
        k, m, alpha = 5, 10_000, 1e-6
        cp_lo, cp_hi = orc.clopper_pearson_interval(k, m, alpha)
        h_lo, h_hi = orc.hoeffding_interval(k, m, alpha)
        assert (cp_hi - cp_lo) < 0.3 * (h_hi - h_lo)

    def test_validation(self):
        with pytest.raises(ValueError):
            orc.hoeffding_halfwidth(0, 0.05)
        with pytest.raises(ValueError):
            orc.hoeffding_halfwidth(10, 0.0)
        with pytest.raises(ValueError):
            orc.clopper_pearson_interval(11, 10, 0.05)
        with pytest.raises(ValueError):
            orc.binomial_pvalue(5, 10, 1.5)


class TestChecks:
    def test_bernoulli_passes_on_truth(self):
        result = orc.check_bernoulli(5000, 10_000, 0.5, 1e-6)
        assert result.passed
        assert result.require() is result
        assert result.p_value is not None

    def test_bernoulli_fails_on_gross_violation(self):
        result = orc.check_bernoulli(9000, 10_000, 0.5, 1e-6)
        assert not result.passed
        with pytest.raises(AssertionError, match="VIOLATED"):
            result.require()

    def test_within_band_semantics(self):
        # CI around 0.5 intersects [0.4, 0.6]: pass.
        assert orc.check_within(5000, 10_000, 0.4, 0.6, 1e-6).passed
        # CI around 0.9 is disjoint from [0.0, 0.6]: fail.
        assert not orc.check_within(9000, 10_000, 0.0, 0.6, 1e-6).passed

    def test_one_sided_wrappers(self):
        assert orc.check_at_most(100, 10_000, 0.05, 1e-6).passed
        assert not orc.check_at_most(5000, 10_000, 0.05, 1e-6).passed
        assert orc.check_at_least(9000, 10_000, 0.5, 1e-6).passed
        assert not orc.check_at_least(100, 10_000, 0.5, 1e-6).passed

    def test_two_sample_equal(self):
        assert orc.check_two_sample_equal(500, 1000, 510, 1000, 1e-6).passed
        assert not orc.check_two_sample_equal(100, 1000, 900, 1000, 1e-6).passed

    def test_two_sample_less_is_one_sided(self):
        # a far below b passes even at a huge observed gap...
        assert orc.check_two_sample_less(10, 1000, 900, 1000, 1e-6).passed
        # ...but the reverse ordering fails.
        assert not orc.check_two_sample_less(900, 1000, 10, 1000, 1e-6).passed

    def test_as_dict_is_json_ready(self):
        import json

        payload = orc.check_bernoulli(5, 10, 0.5, 0.01).as_dict()
        json.dumps(payload)
        assert payload["interval"] == list(payload["interval"])


class TestErrorBudget:
    def test_register_and_accounting(self):
        budget = orc.ErrorBudget(total=1e-6)
        assert budget.register("a", 4e-7) == 4e-7
        budget.register("b", 4e-7)
        assert budget.spent() == pytest.approx(8e-7)
        assert budget.remaining() == pytest.approx(2e-7)

    def test_register_is_idempotent_per_name(self):
        budget = orc.ErrorBudget(total=1e-6)
        for _ in range(5):
            budget.register("resumed-check", 9e-7)
        assert budget.spent() == pytest.approx(9e-7)
        assert budget.registrations["resumed-check"].count == 5

    def test_conflicting_alpha_rejected(self):
        budget = orc.ErrorBudget(total=1e-6)
        budget.register("a", 1e-7)
        with pytest.raises(orc.BudgetConflict):
            budget.register("a", 2e-7)

    def test_overflow_rejected(self):
        budget = orc.ErrorBudget(total=1e-6)
        budget.register("a", 9e-7)
        with pytest.raises(orc.BudgetExceeded):
            budget.register("b", 2e-7)
        # The failed registration must not corrupt the ledger.
        assert budget.spent() == pytest.approx(9e-7)

    def test_split_divides_remaining(self):
        budget = orc.ErrorBudget(total=1e-6)
        budget.register("a", 5e-7)
        assert budget.split(5) == pytest.approx(1e-7)

    def test_summary_shape(self):
        budget = orc.ErrorBudget(total=1e-6)
        budget.register("a", 1e-7)
        summary = budget.summary()
        assert summary["checks"] == 1
        assert summary["registrations"]["a"]["count"] == 1


class TestHolm:
    def test_holm_rejects_smallest_first(self):
        pvalues = {"a": 1e-9, "b": 0.2, "c": 1e-3}
        rejected = orc.holm_rejections(pvalues, alpha=0.01)
        assert rejected["a"] and rejected["c"] and not rejected["b"]

    def test_holm_more_powerful_than_bonferroni(self):
        # Bonferroni at alpha/3 ~ 0.0033 would reject only `a`; Holm's
        # step-down thresholds (alpha/3, alpha/2, alpha) reject all three.
        pvalues = {"a": 0.0032, "b": 0.004, "c": 0.0045}
        rejected = orc.holm_rejections(pvalues, alpha=0.01)
        assert all(rejected.values())

    def test_holm_stops_at_first_acceptance(self):
        pvalues = {"a": 1e-6, "b": 0.9, "c": 0.8}
        rejected = orc.holm_rejections(pvalues, alpha=0.05)
        assert rejected["a"] and not rejected["b"] and not rejected["c"]

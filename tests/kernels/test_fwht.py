"""Unit tests for the in-place butterfly transforms (repro.kernels.fwht)."""

import numpy as np
import pytest

from repro.kernels import fwht, fwht_inplace, mobius_f2_inplace
from repro.kernels.reference import naive_walsh_hadamard


class TestFWHTInplace:
    def test_matches_old_butterfly_exactly(self):
        rng = np.random.default_rng(0)
        for n in range(0, 8):
            tab = (1 - 2 * rng.integers(0, 2, size=2**n)).astype(np.float64)
            assert np.array_equal(fwht(tab), naive_walsh_hadamard(tab))

    def test_batched_matches_per_table(self):
        rng = np.random.default_rng(1)
        tables = (1 - 2 * rng.integers(0, 2, size=(17, 64))).astype(np.float64)
        batched = fwht(tables)
        assert batched.shape == tables.shape
        for row_in, row_out in zip(tables, batched):
            assert np.array_equal(fwht(row_in), row_out)

    def test_truly_in_place(self):
        a = np.array([1.0, -1.0, -1.0, 1.0])
        out = fwht_inplace(a)
        assert out is a
        assert np.array_equal(a, [0.0, 0.0, 0.0, 4.0])

    def test_unnormalised_involution(self):
        rng = np.random.default_rng(2)
        v = rng.normal(size=32)
        w = v.copy()
        fwht_inplace(w)
        fwht_inplace(w)
        assert np.allclose(w / 32.0, v)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="power of two"):
            fwht(np.ones(6))
        with pytest.raises(ValueError, match="power of two"):
            fwht(np.ones(0))
        with pytest.raises(TypeError, match="ndarray"):
            fwht_inplace([1.0, -1.0])
        with pytest.raises(TypeError, match="dtype"):
            fwht_inplace(np.ones(4, dtype=np.int64))
        with pytest.raises(ValueError, match="contiguous"):
            fwht_inplace(np.ones((4, 8))[:, ::2])


class TestMobiusF2:
    def test_matches_explicit_submask_sum(self):
        rng = np.random.default_rng(3)
        v = rng.integers(0, 2, size=32).astype(np.int8)
        out = v.copy()
        mobius_f2_inplace(out)
        for s in range(32):
            expected = 0
            for t in range(32):
                if t & s == t:
                    expected ^= int(v[t])
            assert int(out[s]) == expected

    def test_involution(self):
        rng = np.random.default_rng(4)
        v = rng.integers(0, 2, size=(5, 16)).astype(np.uint8)
        w = v.copy()
        mobius_f2_inplace(w)
        mobius_f2_inplace(w)
        assert np.array_equal(v, w)

    def test_rejects_float_dtype(self):
        with pytest.raises(TypeError, match="dtype"):
            mobius_f2_inplace(np.ones(8))

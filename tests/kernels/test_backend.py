"""The kernel-backend seam: fakes prove the fleet layer never bypasses it.

The seam only earns its keep if *every* stacked GEMM actually goes
through :func:`repro.kernels.backend.get_backend` — a single hard-coded
``np.matmul`` in the fleet layer would silently defeat backend swapping
and the thread-tiling path.  Two fakes enforce that:

* a **recording** backend (delegates to numpy, logs every call) shows
  the Fleet API, the batched metrics, and the ``fleet_eval`` workload
  each issue their multiplies through the seam;
* a **sentinel** backend (returns a constant plane) shows the responses
  callers see are *computed from* the backend's output, not from some
  parallel non-seam path.
"""

import numpy as np
import pytest

from repro.kernels.backend import (
    DTYPE_TIERS,
    KernelBackend,
    NumpyBackend,
    feature_dtype,
    get_backend,
    set_backend,
    use_backend,
    validate_tier,
    weight_dtype,
)
from repro.pufs.fleet import Fleet, FleetSpec
from repro.pufs.metrics import fleet_reliability, fleet_uniqueness
from repro.runtime.runner import TrialContext
from repro.runtime.workloads import FleetEvalSpec, fleet_eval_trial


class RecordingBackend(KernelBackend):
    """Delegates to numpy but logs every gemm's operand shapes/dtypes."""

    name = "recording"

    def __init__(self):
        self.calls = []
        self._inner = NumpyBackend(threads=1)

    def gemm(self, features, weights):
        self.calls.append(
            (features.shape, str(features.dtype), weights.shape, str(weights.dtype))
        )
        return self._inner.gemm(features, weights)


class SentinelBackend(KernelBackend):
    """Ignores its inputs and returns a constant margin plane."""

    name = "sentinel"

    def __init__(self, fill):
        self.fill = fill

    def gemm(self, features, weights):
        return np.full(
            (features.shape[0], weights.shape[1]), self.fill, dtype=np.float64
        )


def challenges(m, n, seed=0):
    rng = np.random.default_rng(seed)
    return (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)


# ----------------------------------------------------------------------
# Seam routing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", ["arbiter", "xor", "br", "ltf"])
def test_fleet_eval_routes_through_seam(family):
    fleet = Fleet.build(FleetSpec(family, 12, 4, k=3 if family == "xor" else 1), 5)
    c = challenges(40, 12)
    expected = fleet.eval(c)
    recorder = RecordingBackend()
    with use_backend(recorder):
        plane = fleet.eval(c)
    assert len(recorder.calls) == 1
    shape, f_dtype, w_shape, _ = recorder.calls[0]
    assert shape[0] == 40 and w_shape[0] == shape[1]
    assert np.array_equal(plane, expected)


def test_int8_tier_features_reach_the_backend_as_int8():
    fleet = Fleet.build(FleetSpec("arbiter", 10, 3, tier="int8"), 1)
    recorder = RecordingBackend()
    with use_backend(recorder):
        fleet.eval(challenges(16, 10))
    assert recorder.calls[0][1] == "int8"
    assert recorder.calls[0][3] == "float64"


def test_fleet_metrics_route_through_seam():
    fleet = Fleet.build(FleetSpec("arbiter", 12, 5, noise_sigma=0.2), 9)
    recorder = RecordingBackend()
    with use_backend(recorder):
        fleet_uniqueness(fleet, m=64, rng=np.random.default_rng(0))
        calls_after_uniqueness = len(recorder.calls)
        fleet_reliability(fleet, m=32, repetitions=3, rng=np.random.default_rng(1))
    # uniqueness = one margin GEMM + one Gram GEMM; reliability adds one
    # margin GEMM per repeated measurement pass
    assert calls_after_uniqueness == 2
    assert len(recorder.calls) > calls_after_uniqueness


def test_fleet_workload_routes_through_seam(tmp_path):
    spec = FleetEvalSpec(family="xor", n=10, size=4, k=2, m=50, repetitions=3)
    ctx = TrialContext(index=0, seed=np.random.SeedSequence(7))
    recorder = RecordingBackend()
    with use_backend(recorder):
        result = fleet_eval_trial(ctx, spec)
    assert recorder.calls, "workload evaluated a fleet without touching the seam"
    assert result.shape == (3,)

    # the cached path must route its generation GEMM through the seam too
    recorder = RecordingBackend()
    with use_backend(recorder):
        cached = fleet_eval_trial(
            TrialContext(index=0, seed=np.random.SeedSequence(7)),
            spec,
            cache_dir=str(tmp_path),
        )
    assert recorder.calls
    assert np.allclose(result, cached, equal_nan=True)


def test_sentinel_backend_controls_responses():
    fleet = Fleet.build(FleetSpec("arbiter", 8, 3), 2)
    c = challenges(10, 8)
    with use_backend(SentinelBackend(-1.0)):
        assert np.all(fleet.eval(c) == -1)
    with use_backend(SentinelBackend(0.0)):  # tie rule: 0 maps to +1
        assert np.all(fleet.eval(c) == 1)


# ----------------------------------------------------------------------
# Installation semantics
# ----------------------------------------------------------------------
def test_set_backend_rejects_non_backends():
    with pytest.raises(TypeError):
        set_backend(object())
    with pytest.raises(TypeError):
        with use_backend("numpy"):
            pass


def test_use_backend_restores_on_exit_and_error():
    default = get_backend()
    fake = SentinelBackend(1.0)
    with use_backend(fake):
        assert get_backend() is fake
    assert get_backend() is default
    with pytest.raises(RuntimeError):
        with use_backend(fake):
            raise RuntimeError("boom")
    assert get_backend() is default


def test_set_backend_none_restores_default():
    fake = SentinelBackend(1.0)
    set_backend(fake)
    try:
        assert get_backend() is fake
    finally:
        set_backend(None)
    assert isinstance(get_backend(), NumpyBackend)


# ----------------------------------------------------------------------
# Dtype-tier contract
# ----------------------------------------------------------------------
def test_tier_validation():
    for tier in DTYPE_TIERS:
        assert validate_tier(tier) == tier
    with pytest.raises(ValueError):
        validate_tier("float16")
    assert feature_dtype("int8") == np.int8
    assert feature_dtype("float32") == np.float32
    assert weight_dtype("int8") == np.float64  # int8 tier keeps f64 weights
    assert weight_dtype("float32") == np.float32


def test_gemm_validates_shapes():
    backend = NumpyBackend(threads=1)
    with pytest.raises(ValueError):
        backend.gemm(np.ones(4), np.ones((4, 2)))
    with pytest.raises(ValueError):
        backend.gemm(np.ones((3, 4)), np.ones((5, 2)))


# ----------------------------------------------------------------------
# Thread tiling
# ----------------------------------------------------------------------
def test_threaded_gemm_is_bit_identical_on_integer_data():
    rng = np.random.default_rng(3)
    features = rng.integers(-1, 2, size=(2048, 33)).astype(np.float64)
    weights = rng.integers(-8, 9, size=(33, 17)).astype(np.float64)
    serial = NumpyBackend(threads=1).gemm(features, weights)
    tiled = NumpyBackend(threads=4).gemm(features, weights)
    assert np.array_equal(serial, tiled)


def test_small_inputs_skip_tiling():
    backend = NumpyBackend(threads=8)
    out = backend.gemm(np.ones((4, 3)), np.ones((3, 2)))
    assert np.array_equal(out, np.full((4, 2), 3.0))


def test_threads_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
    assert NumpyBackend().threads == 3
    assert NumpyBackend().name == "numpy[threads=3]"
    with pytest.raises(ValueError):
        NumpyBackend(threads=0)

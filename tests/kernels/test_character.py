"""Unit tests for the character-kernel basis (repro.kernels.character)."""

import itertools

import numpy as np
import pytest

from repro.kernels import (
    CharacterBasis,
    character_column,
    low_degree_subsets,
    num_low_degree_subsets,
    sign_of_expansion,
)
from repro.kernels.reference import (
    naive_estimate_coefficients,
    naive_expansion_values,
    naive_sign_of_expansion,
)


def _sample(rng, m, n):
    x = (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)
    y = (1 - 2 * rng.integers(0, 2, size=m)).astype(np.int8)
    return x, y


class TestSubsetEnumeration:
    def test_order_is_degree_then_lex(self):
        subsets = low_degree_subsets(4, 2)
        assert subsets == [
            (), (0,), (1,), (2,), (3,),
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        ]

    def test_counts_match(self):
        for n in range(7):
            for d in range(n + 2):
                assert len(low_degree_subsets(n, d)) == num_low_degree_subsets(n, d)

    def test_low_degree_cap(self):
        with pytest.raises(ValueError, match="cap"):
            CharacterBasis.low_degree(20, 3, max_coefficients=100)


class TestCharacterColumn:
    def test_matches_prod(self):
        rng = np.random.default_rng(0)
        x, _ = _sample(rng, 100, 6)
        for subset in [(), (3,), (0, 5), (1, 2, 4)]:
            expected = (
                np.prod(x[:, list(subset)], axis=1) if subset else np.ones(100)
            )
            assert np.array_equal(character_column(x, subset), expected)

    def test_normalises_order_and_duplicates(self):
        rng = np.random.default_rng(1)
        x, _ = _sample(rng, 50, 5)
        assert np.array_equal(
            character_column(x, (4, 1)), character_column(x, (1, 4))
        )
        # chi is a product over the *set* of indices.
        assert np.array_equal(
            character_column(x, (2, 2, 3)), character_column(x, (2, 3))
        )

    def test_out_of_range(self):
        x = np.ones((4, 3), dtype=np.int8)
        with pytest.raises(ValueError, match="out of range"):
            character_column(x, (3,))


class TestCharacterBasis:
    def test_character_matrix_matches_definition(self):
        rng = np.random.default_rng(2)
        x, _ = _sample(rng, 64, 5)
        basis = CharacterBasis.low_degree(5, 3)
        c = basis.character_matrix(x)
        assert c.shape == (64, len(basis))
        for j, subset in enumerate(basis.subsets):
            assert np.array_equal(c[:, j], character_column(x, subset))

    def test_estimates_bit_identical_to_naive(self):
        rng = np.random.default_rng(3)
        x, y = _sample(rng, 777, 8)
        basis = CharacterBasis.low_degree(8, 3)
        kernel = basis.estimate_coefficients(x, y, block_size=100)
        naive = naive_estimate_coefficients(x, y, list(basis.subsets))
        assert np.array_equal(kernel, naive)

    def test_block_size_does_not_change_estimates(self):
        rng = np.random.default_rng(4)
        x, y = _sample(rng, 500, 6)
        basis = CharacterBasis.low_degree(6, 4)
        reference_est = basis.estimate_coefficients(x, y, block_size=500)
        for block_size in (1, 7, 64, 499, 501, 10_000):
            est = basis.estimate_coefficients(x, y, block_size=block_size)
            assert np.array_equal(est, reference_est), block_size

    def test_from_subsets_preserves_requested_order(self):
        rng = np.random.default_rng(5)
        x, y = _sample(rng, 200, 6)
        subsets = [(2, 4), (), (0, 1, 5), (3,)]
        basis = CharacterBasis.from_subsets(6, subsets)
        assert basis.subsets == ((2, 4), (), (0, 1, 5), (3,))
        kernel = basis.estimate_coefficients(x, y)
        naive = naive_estimate_coefficients(x, y, subsets)
        assert np.array_equal(kernel, naive)

    def test_from_subsets_adds_prefix_closure_internally(self):
        basis = CharacterBasis.from_subsets(6, [(0, 1, 5)])
        assert len(basis) == 1
        # (), (0,), (0, 1) are constructed as scaffolding.
        assert basis.num_internal_columns == 4

    def test_duplicate_subsets_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CharacterBasis.from_subsets(4, [(1, 3), (3, 1)])

    def test_expansion_values_match_naive_for_dyadic_coeffs(self):
        # With power-of-two denominators every partial sum is exact, so
        # the GEMM and the sequential loop agree bit for bit.
        rng = np.random.default_rng(6)
        x, y = _sample(rng, 512, 6)
        basis = CharacterBasis.low_degree(6, 3)
        coeffs = basis.estimate_coefficients(x, y)
        spectrum = dict(zip(basis.subsets, coeffs))
        values = basis.evaluate_expansion(x, coeffs)
        assert np.array_equal(values, naive_expansion_values(x, spectrum))
        assert np.array_equal(
            basis.predict_sign(x, coeffs), naive_sign_of_expansion(x, spectrum)
        )

    def test_input_validation(self):
        basis = CharacterBasis.low_degree(4, 2)
        x = np.ones((10, 4), dtype=np.int8)
        with pytest.raises(ValueError, match="x must be"):
            basis.estimate_coefficients(np.ones((10, 3), dtype=np.int8), np.ones(10))
        with pytest.raises(ValueError, match="y must have shape"):
            basis.estimate_coefficients(x, np.ones(9))
        with pytest.raises(ValueError, match="at least one example"):
            basis.estimate_coefficients(np.ones((0, 4), dtype=np.int8), np.ones(0))
        with pytest.raises(ValueError, match="coeffs must have shape"):
            basis.evaluate_expansion(x, np.ones(3))

    def test_grouped_schedule_active_for_low_degree_families(self):
        # The one-multiply-per-parent fast path must engage for the LMN
        # shape; falling back to per-subset multiplies would silently
        # forfeit most of the speedup.
        assert CharacterBasis.low_degree(12, 3)._grouped is not None
        assert CharacterBasis.from_subsets(6, low_degree_subsets(6, 2))._grouped is not None
        # An arbitrary sparse family cannot use it.
        assert CharacterBasis.from_subsets(6, [(0, 3)])._grouped is None


class TestSignOfExpansion:
    def test_empty_spectrum_is_constant_plus_one(self):
        f = sign_of_expansion(4, {})
        x = (1 - 2 * np.random.default_rng(0).integers(0, 2, size=(20, 4))).astype(
            np.int8
        )
        assert np.array_equal(f(x), np.ones(20, dtype=np.int8))

    def test_parity_spectrum_recovers_parity(self):
        rng = np.random.default_rng(7)
        x, _ = _sample(rng, 100, 5)
        f = sign_of_expansion(5, {(1, 3): 1.0})
        assert np.array_equal(f(x), character_column(x, (1, 3)).astype(np.int8))

    def test_ties_map_to_plus_one(self):
        f = sign_of_expansion(2, {(): 1.0, (0,): -1.0})
        x = np.array([[1, 1], [-1, 1]], dtype=np.int8)
        # Row 0: 1 - 1 = 0 -> +1; row 1: 1 + 1 = 2 -> +1.
        assert np.array_equal(f(x), np.array([1, 1], dtype=np.int8))

    def test_exhaustive_agreement_with_naive_on_small_cube(self):
        rng = np.random.default_rng(8)
        cube = np.array(
            list(itertools.product((1, -1), repeat=4)), dtype=np.int8
        )
        # Dyadic coefficients: exact in both paths.
        subsets = low_degree_subsets(4, 4)
        coeffs = rng.integers(-8, 9, size=len(subsets)) / 16.0
        spectrum = dict(zip(subsets, coeffs))
        f = sign_of_expansion(4, spectrum)
        assert np.array_equal(f(cube), naive_sign_of_expansion(cube, spectrum))

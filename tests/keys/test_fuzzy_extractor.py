"""Unit tests for the code-offset fuzzy extractor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.keys.fuzzy_extractor import (
    FuzzyExtractor,
    block_failure_probability,
    repetition_decode,
    repetition_encode,
)
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.crp import uniform_challenges


class TestRepetitionCode:
    def test_encode_repeats(self):
        assert repetition_encode(np.array([1, 0]), 3).tolist() == [1, 1, 1, 0, 0, 0]

    def test_decode_majority(self):
        code = np.array([1, 0, 1, 0, 0, 1], dtype=np.int8)
        assert repetition_decode(code, 3).tolist() == [1, 0]

    @given(st.integers(1, 20), st.integers(1, 9), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_with_correctable_errors(self, key_len, half_r, seed):
        r = 2 * half_r + 1  # odd
        rng = np.random.default_rng(seed)
        key = rng.integers(0, 2, size=key_len).astype(np.int8)
        code = repetition_encode(key, r)
        # Flip up to (r-1)/2 bits in each block.
        corrupted = code.copy().reshape(key_len, r)
        for b in range(key_len):
            flips = rng.choice(r, size=half_r, replace=False)
            corrupted[b, flips] ^= 1
        assert np.array_equal(repetition_decode(corrupted.ravel(), r), key)

    def test_validation(self):
        with pytest.raises(ValueError):
            repetition_encode(np.array([2]), 3)
        with pytest.raises(ValueError):
            repetition_encode(np.array([1]), 0)
        with pytest.raises(ValueError):
            repetition_decode(np.array([1, 0, 1], dtype=np.int8), 2)


class TestFailureProbability:
    def test_zero_error_rate(self):
        assert block_failure_probability(5, 0.0) == 0.0

    def test_monotone_in_p(self):
        probs = [block_failure_probability(5, p) for p in (0.05, 0.1, 0.2, 0.4)]
        assert probs == sorted(probs)

    def test_decreases_with_r(self):
        assert block_failure_probability(9, 0.1) < block_failure_probability(3, 0.1)

    def test_known_value(self):
        # r=3, p=0.1: P[>=2 errors] = 3*0.01*0.9 + 0.001 = 0.028.
        assert block_failure_probability(3, 0.1) == pytest.approx(0.028)

    def test_validation(self):
        with pytest.raises(ValueError):
            block_failure_probability(0, 0.1)
        with pytest.raises(ValueError):
            block_failure_probability(3, 1.5)


class TestFuzzyExtractor:
    def test_noise_free_roundtrip(self):
        fe = FuzzyExtractor(key_length=16, r=5)
        rng = np.random.default_rng(0)
        response = rng.integers(0, 2, size=fe.response_length).astype(np.int8)
        key, helper = fe.generate(response, rng)
        assert fe.reproduce(response, helper) == key

    def test_corrects_bounded_noise(self):
        fe = FuzzyExtractor(key_length=8, r=7)
        rng = np.random.default_rng(1)
        response = rng.integers(0, 2, size=fe.response_length).astype(np.int8)
        key, helper = fe.generate(response, rng)
        noisy = response.copy().reshape(8, 7)
        for b in range(8):
            flips = rng.choice(7, size=3, replace=False)  # (r-1)/2 = 3
            noisy[b, flips] ^= 1
        assert fe.reproduce(noisy.ravel(), helper) == key

    def test_excess_noise_changes_key(self):
        fe = FuzzyExtractor(key_length=4, r=3)
        rng = np.random.default_rng(2)
        response = rng.integers(0, 2, size=fe.response_length).astype(np.int8)
        key, helper = fe.generate(response, rng)
        flipped = (1 - response).astype(np.int8)  # every bit wrong
        assert fe.reproduce(flipped, helper) != key

    def test_raw_output_mode(self):
        fe = FuzzyExtractor(key_length=8, r=3, hash_output=False)
        rng = np.random.default_rng(3)
        response = rng.integers(0, 2, size=fe.response_length).astype(np.int8)
        key, helper = fe.generate(response, rng)
        assert len(key) == 1  # 8 bits packed
        assert fe.reproduce(response, helper) == key

    def test_helper_leakage_accounting(self):
        fe = FuzzyExtractor(key_length=10, r=5)
        rng = np.random.default_rng(4)
        response = rng.integers(0, 2, size=fe.response_length).astype(np.int8)
        _, helper = fe.generate(response, rng)
        assert helper.leakage_bits == 10 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            FuzzyExtractor(key_length=0)
        with pytest.raises(ValueError):
            FuzzyExtractor(key_length=4, r=0)
        fe = FuzzyExtractor(key_length=4, r=3)
        with pytest.raises(ValueError):
            fe.generate(np.zeros(5, dtype=np.int8))
        rng = np.random.default_rng(5)
        response = rng.integers(0, 2, size=12).astype(np.int8)
        _, helper = fe.generate(response, rng)
        other = FuzzyExtractor(key_length=4, r=5)
        with pytest.raises(ValueError):
            other.reproduce(np.zeros(20, dtype=np.int8), helper)

    def test_end_to_end_with_noisy_puf(self):
        """Key generation from an actual noisy PUF matches the theory."""
        rng = np.random.default_rng(6)
        fe = FuzzyExtractor(key_length=16, r=9)
        puf = ArbiterPUF(32, rng, noise_sigma=0.2)
        challenges = uniform_challenges(fe.response_length, 32, rng)
        reference = ((1 - puf.eval(challenges)) // 2).astype(np.int8)
        key, helper = fe.generate(reference, rng)
        successes = 0
        trials = 30
        for _ in range(trials):
            noisy = ((1 - puf.eval_noisy(challenges, rng)) // 2).astype(np.int8)
            successes += fe.reproduce(noisy, helper) == key
        # Arbiter BER at sigma=0.2 is a few percent; r=9 corrects 4 errors
        # per block, so reproduction should almost always succeed.
        assert successes >= trials - 2

"""Failure injection: every attack must fail *loudly and gracefully* when
its threat-model assumptions are violated.

A library for adversary-model analysis must itself be honest about model
violations: a lying oracle, a noisy membership interface, degenerate data.
These tests pin the failure behaviour (clean error or explicit
``success=False``, never a silently wrong answer).
"""

import numpy as np
import pytest

from repro.booleanfuncs.polynomials import SparseF2Polynomial
from repro.learning.chow import ChowLearner
from repro.learning.learn_poly import InconsistentOracle, LearnPoly, SupportTooLarge
from repro.locking.circuits import c17
from repro.locking.combinational import random_lock
from repro.locking.sat_attack import SATAttack
from repro.pufs.crp import CRPSet


class TestLyingOracleSATAttack:
    def test_inconsistent_oracle_cannot_fake_success(self):
        """An oracle answering randomly makes the IO constraints
        unsatisfiable; the attack must report failure, not a bogus key."""
        rng = np.random.default_rng(0)
        locked = random_lock(c17(), 5, rng)

        lying_rng = np.random.default_rng(1)

        class LyingTarget:
            def __init__(self, base):
                self.base = base

            def __getattr__(self, name):
                return getattr(self.base, name)

            def oracle(self, inputs):
                out = self.base.oracle(inputs)
                flips = lying_rng.integers(0, 2, size=out.shape).astype(bool)
                return np.where(flips, 1 - out, out).astype(np.int8)

        result = SATAttack(max_iterations=200).run(LyingTarget(locked))
        if result.success:
            # If the attack still claims success, the key must actually be
            # consistent with the REAL circuit — anything else is a lie.
            assert locked.key_is_functionally_correct(result.key)
        else:
            assert result.key is None

    def test_constant_oracle_detected(self):
        """An oracle stuck at a constant output usually contradicts the
        circuit structure and the attack ends without a false claim."""
        rng = np.random.default_rng(2)
        locked = random_lock(c17(), 4, rng)

        class StuckTarget:
            def __init__(self, base):
                self.base = base

            def __getattr__(self, name):
                return getattr(self.base, name)

            def oracle(self, inputs):
                return np.zeros(
                    (np.atleast_2d(inputs).shape[0], self.base.original.num_outputs),
                    dtype=np.int8,
                )

        result = SATAttack(max_iterations=200).run(StuckTarget(locked))
        if result.success:
            stuck = StuckTarget(locked)
            got = locked.evaluate_locked(
                np.zeros((4, 5), dtype=np.int8), result.key
            )
            # the recovered key reproduces the stuck behaviour it was shown
            assert np.array_equal(got, stuck.oracle(np.zeros((4, 5), np.int8)))


class TestNoisyLearnPoly:
    def test_noisy_membership_oracle_fails_loudly(self):
        """A 10%-noise oracle violates LearnPoly's model; acceptable
        outcomes are an explicit inexact result or a typed error — never a
        silent 'exact' claim that is wrong."""
        poly = SparseF2Polynomial(10, [[0, 1], [4], [6, 7, 8]])
        noise_rng = np.random.default_rng(3)

        def noisy(x):
            clean = poly.evaluate_bits(x)
            flips = noise_rng.random(clean.shape) < 0.10
            return clean ^ flips.astype(np.int8)

        learner = LearnPoly(max_rounds=40, subcube_cap=10)
        try:
            result = learner.fit(10, noisy, np.random.default_rng(4))
        except (InconsistentOracle, SupportTooLarge):
            return  # loud, typed failure: acceptable
        if result.exact:
            # If it claims exactness, the hypothesis must match the clean
            # polynomial almost everywhere (the EQ sample could have been
            # lucky); verify on the full clean function.
            x = np.random.default_rng(5).integers(0, 2, (4000, 10)).astype(np.int8)
            agreement = np.mean(result.predict_bits(x) == poly.evaluate_bits(x))
            assert agreement > 0.9


class TestDegenerateData:
    def test_chow_learner_constant_responses(self):
        rng = np.random.default_rng(6)
        x = (1 - 2 * rng.integers(0, 2, (500, 8))).astype(np.int8)
        y = np.ones(500, dtype=np.int8)
        result = ChowLearner(correction_rounds=2, estimation_sample=2000).fit(
            CRPSet(x, y), rng
        )
        # The reconstructed function must be heavily biased toward +1.
        x_test = (1 - 2 * rng.integers(0, 2, (2000, 8))).astype(np.int8)
        assert np.mean(result.predict(x_test) == 1) > 0.8

    def test_solver_budget_is_a_clean_error(self):
        from repro.locking.solver import SATSolver

        def v(i, h):
            return 1 + i * 4 + h

        clauses = [[v(i, h) for h in range(4)] for i in range(5)]
        for h in range(4):
            for i in range(5):
                for j in range(i + 1, 5):
                    clauses.append([-v(i, h), -v(j, h)])
        solver = SATSolver(clauses, 20)
        with pytest.raises(RuntimeError, match="budget"):
            solver.solve(max_conflicts=1)
        # The solver remains usable afterwards.
        status, _ = solver.solve()
        assert status.value == "unsat"

    def test_crpset_rejects_mismatched_load(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, challenges=np.ones((3, 2), np.int8), responses=np.ones(4, np.int8))
        with pytest.raises(ValueError):
            CRPSet.load(path)

"""End-to-end crash recovery: SIGKILL a pooled CLI run, resume it.

Drives ``python -m repro trials`` as a real subprocess, kills it -9 in
the middle of a pooled fault-injection workload, and asserts the
``--resume`` rerun completes with bit-identical values (the CLI's own
serial-vs-parallel identity check) and a clean ``repro report``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TRIALS = 10


def run_cli(*args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=180,
        **kwargs,
    )


def trials_args(runs_dir, extra=()):
    return [
        "trials",
        "--workload", "fault",
        "--trials", str(TRIALS),
        "--workers", "2",
        "--sleep-seconds", "0.3",
        "--ledger",
        "--run-id", "killrun",
        "--runs-dir", str(runs_dir),
        *extra,
    ]


def test_sigkill_mid_run_then_resume_completes_bit_identical(tmp_path):
    runs_dir = tmp_path / "runs"
    ledger_path = runs_dir / "killrun" / "ledger.jsonl"

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"]
        + trials_args(runs_dir, extra=("--skip-serial",)),
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Wait until some trials have landed in the ledger, then kill -9
        # the parent mid-run (its pool workers are orphaned too).
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if ledger_path.exists() and ledger_path.stat().st_size > 0:
                break
            if proc.poll() is not None:
                pytest.fail("run finished before it could be killed")
            time.sleep(0.05)
        else:
            pytest.fail("no ledger records appeared within 60s")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)

    completed = [
        json.loads(line)
        for line in ledger_path.read_text().splitlines()
        if line.strip()
    ]
    assert 0 < len(completed) < TRIALS, "kill landed too early or too late"

    # Resume: replays the completed records, executes only the rest, and
    # runs the CLI's serial-vs-parallel bit-identity check over all of it.
    resumed = run_cli(*trials_args(runs_dir, extra=("--resume",)))
    assert resumed.returncode == 0, resumed.stdout
    assert "bit-identical results across worker counts: True" in resumed.stdout
    assert f"{len(completed)} replayed" in resumed.stdout

    report = run_cli("report", str(runs_dir / "killrun"), "--no-write")
    assert report.returncode == 0, report.stdout
    assert f"{TRIALS} of {TRIALS} trials completed clean" in report.stdout


def test_resume_refuses_mismatched_invocation(tmp_path):
    """--resume with a different workload/spec/trial count than the run's
    meta.json must refuse instead of splicing foreign records in."""
    runs_dir = tmp_path / "runs"
    base = [
        "trials", "--workload", "fault", "--workers", "1",
        "--sleep-seconds", "0", "--skip-serial",
        "--ledger", "--run-id", "metarun", "--runs-dir", str(runs_dir),
    ]
    first = run_cli(*base, "--trials", "2")
    assert first.returncode == 0, first.stdout

    clash = run_cli(*base, "--trials", "4", "--resume")
    assert clash.returncode == 2
    assert "meta.json" in clash.stdout
    assert "trials" in clash.stdout

    matching = run_cli(*base, "--trials", "2", "--resume")
    assert matching.returncode == 0, matching.stdout
    assert "2 replayed" in matching.stdout


def test_retries_flag_maps_to_extra_attempts():
    """--retries N means N retries on top of the first attempt, so 0
    disables retrying (RetryPolicy counts total executions)."""
    from repro.__main__ import _retry_policy

    assert _retry_policy(0).max_attempts == 1
    assert _retry_policy(2).max_attempts == 3
    with pytest.raises(ValueError, match="retries"):
        _retry_policy(-1)


def test_resume_without_run_id_is_rejected(tmp_path):
    result = run_cli(
        "trials", "--workload", "fault", "--trials", "2", "--resume",
        "--runs-dir", str(tmp_path),
    )
    assert result.returncode == 2
    assert "--resume needs --run-id" in result.stdout


def sharded_trials_args(runs_dir, extra=()):
    return [
        "trials",
        "--workload", "fault",
        "--trials", str(TRIALS),
        "--workers", "1",
        "--shards", "2",
        "--sleep-seconds", "0.3",
        "--ledger",
        "--run-id", "shardkill",
        "--runs-dir", str(runs_dir),
        *extra,
    ]


def test_sigkill_mid_sharded_run_then_resume_completes_bit_identical(tmp_path):
    """SIGKILL a sharded CLI run once shard records exist; --resume must
    merge the partial per-shard ledgers, re-execute only the missing
    trials, and end bit-identical to the serial reference (the CLI's own
    identity check runs over the full result set)."""
    runs_dir = tmp_path / "runs"
    run_dir = runs_dir / "shardkill"

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"]
        + sharded_trials_args(runs_dir, extra=("--skip-serial",)),
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            shard_files = list(run_dir.glob("ledger-shard*.jsonl"))
            if any(p.stat().st_size > 0 for p in shard_files):
                break
            if proc.poll() is not None:
                pytest.fail("run finished before it could be killed")
            time.sleep(0.05)
        else:
            pytest.fail("no shard ledger records appeared within 60s")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)

    completed = []
    for path in sorted(run_dir.glob("ledger-shard*.jsonl")):
        completed.extend(
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        )
    assert 0 < len({r["index"] for r in completed}) < TRIALS, (
        "kill landed too early or too late"
    )

    resumed = run_cli(*sharded_trials_args(runs_dir, extra=("--resume",)))
    assert resumed.returncode == 0, resumed.stdout
    assert "bit-identical results across worker counts: True" in resumed.stdout

    report = run_cli("report", str(run_dir), "--no-write")
    assert report.returncode == 0, report.stdout
    assert f"{TRIALS} of {TRIALS} trials completed clean" in report.stdout


def test_cache_stats_flag_prints_and_records_store_counters(tmp_path):
    """--cache-stats on a cached fleet run prints the aggregated store
    counters and persists them into the run's meta.json; a warm rerun of
    the same store serves hits."""
    cache_dir = tmp_path / "store"
    base = [
        "trials", "--workload", "fleet", "--smoke",
        "--trials", "3", "--workers", "1", "--skip-serial",
        "--cache-dir", str(cache_dir), "--cache-stats",
        "--ledger", "--runs-dir", str(tmp_path / "runs"),
    ]
    cold = run_cli(*base, "--run-id", "cold")
    assert cold.returncode == 0, cold.stdout
    assert "cache stats:" in cold.stdout
    cold_meta = json.loads(
        (tmp_path / "runs" / "cold" / "meta.json").read_text()
    )
    assert cold_meta["cache_stats"]["misses"] == 3
    assert cold_meta["cache_stats"]["hits"] == 0

    warm = run_cli(*base, "--run-id", "warm")
    assert warm.returncode == 0, warm.stdout
    warm_meta = json.loads(
        (tmp_path / "runs" / "warm" / "meta.json").read_text()
    )
    assert warm_meta["cache_stats"]["hits"] == 3
    assert warm_meta["cache_stats"]["bytes_served"] > 0

"""Golden-snapshot crash recovery for the atlas CLI (ISSUE 10).

Drives ``python -m repro atlas`` as a real subprocess on a tiny
2 x 2 x 2 grid (k x sigma x m, n = 16), SIGKILLs it mid-sweep once
ledger records exist, and asserts the ``--resume`` rerun replays the
completed trials and reduces to a boundary-map digest **bit-identical**
to an uninterrupted run's — the atlas's whole resume contract in one
string compare.  The grid's cell digests are additionally pinned as a
golden snapshot: they are a pure function of the cell coordinates, so
any drift in axis canonicalisation or digest material fails loudly here
before it silently invalidates archived boundary maps.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The tiny grid: xor / mlp / parity, n=16, 2 ks x 2 sigmas x 2 budgets.
#: MLP trials are slow enough (~0.1s) to leave a kill window.
GRID = (
    "--families", "xor",
    "--learners", "mlp",
    "--representations", "parity",
    "--ns", "16",
    "--ks", "1,2",
    "--noises", "0,0.3",
    "--budgets", "1000,3000",
)
CELLS = 8

#: Golden snapshot of the grid's cell digests (coordinate-only material,
#: platform independent) in canonical enumeration order.
GOLDEN_CELL_DIGESTS = [
    "3dc8c7f0faa4e6ef",
    "893a15d0370477d6",
    "eb8daa218cec352a",
    "4313ca5e028fff2b",
    "f3829801e7646c6f",
    "35e06fb4548655a7",
    "8973229e035e8f0b",
    "539c899666895493",
]


def atlas_args(runs_dir, run_id, extra=()):
    return [
        "atlas",
        *GRID,
        "--workers", "1",
        "--ledger",
        "--run-id", run_id,
        "--runs-dir", str(runs_dir),
        *extra,
    ]


def run_cli(*args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=300,
        **kwargs,
    )


def test_grid_cell_digests_match_golden_snapshot():
    from repro.analysis.atlas import AtlasTrialSpec, expand_grid

    spec = AtlasTrialSpec(
        families=("xor",),
        learners=("mlp",),
        representations=("parity",),
        ns=(16,),
        ks=(1, 2),
        noise_sigmas=(0.0, 0.3),
        budgets=(1000, 3000),
    )
    assert [c.digest() for c in expand_grid(spec)] == GOLDEN_CELL_DIGESTS


def test_sigkill_mid_atlas_then_resume_is_bit_identical(tmp_path):
    runs_dir = tmp_path / "runs"

    # The uninterrupted reference sweep.
    clean = run_cli(*atlas_args(runs_dir, "clean"))
    assert clean.returncode == 0, clean.stdout
    clean_digest = _digest_of(clean.stdout)
    clean_map = (runs_dir / "clean" / "boundary_map.json").read_bytes()

    # Start the same sweep, SIGKILL it once ledger records appear.
    ledger_path = runs_dir / "killed" / "ledger.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + atlas_args(runs_dir, "killed"),
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if ledger_path.exists() and ledger_path.stat().st_size > 0:
                break
            if proc.poll() is not None:
                pytest.fail("atlas run finished before it could be killed")
            time.sleep(0.005)
        else:
            pytest.fail("no ledger records appeared within 120s")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)

    completed = [
        json.loads(line)
        for line in ledger_path.read_text().splitlines()
        if line.strip()
    ]
    assert completed, "kill landed before any trial completed"
    # The boundary map must not exist yet — the killed run never reduced.
    assert not (runs_dir / "killed" / "boundary_map.json").exists()

    # Resume: replay the completed records, run the rest, reduce.
    resumed = run_cli(*atlas_args(runs_dir, "killed", extra=("--resume",)))
    assert resumed.returncode == 0, resumed.stdout
    assert f"{len(completed)} replayed" in resumed.stdout
    assert _digest_of(resumed.stdout) == clean_digest
    resumed_map = (runs_dir / "killed" / "boundary_map.json").read_bytes()
    assert resumed_map == clean_map


def _digest_of(stdout: str) -> str:
    for line in stdout.splitlines():
        if line.startswith("boundary-map digest:"):
            return line.split(":", 1)[1].strip()
    pytest.fail(f"no boundary-map digest in output:\n{stdout}")


def test_atlas_resume_refuses_mismatched_grid(tmp_path):
    """--resume under a different grid than the run's meta.json refuses."""
    runs_dir = tmp_path / "runs"
    base = [
        "atlas",
        "--families", "xor",
        "--learners", "lr",
        "--ns", "16",
        "--ks", "1",
        "--noises", "0",
        "--workers", "1",
        "--ledger", "--run-id", "metarun", "--runs-dir", str(runs_dir),
    ]
    first = run_cli(*base, "--budgets", "40,100")
    assert first.returncode == 0, first.stdout

    clash = run_cli(*base, "--budgets", "40,100,200", "--resume")
    assert clash.returncode == 2
    assert "meta.json" in clash.stdout

    matching = run_cli(*base, "--budgets", "40,100", "--resume")
    assert matching.returncode == 0, matching.stdout
    assert "2 replayed" in matching.stdout


def test_atlas_resume_without_run_id_is_rejected(tmp_path):
    result = run_cli(
        "atlas", "--resume", "--runs-dir", str(tmp_path),
    )
    assert result.returncode == 2
    assert "--resume needs --run-id" in result.stdout

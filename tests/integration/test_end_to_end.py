"""Integration tests: full pipelines across packages.

Each test exercises a complete workflow a user of the library would run,
crossing at least three subpackages.
"""

import numpy as np
import pytest

from repro.learning.lmn import LMNLearner
from repro.learning.logistic import LogisticAttack
from repro.learning.oracles import ExampleOracle
from repro.locking.bench_format import parse_bench, write_bench
from repro.locking.circuits import random_circuit
from repro.locking.cnf import CNF, gate_clauses, tseitin_encode
from repro.locking.combinational import random_lock
from repro.locking.netlist import GateType
from repro.locking.sat_attack import SATAttack
from repro.locking.sequential import harpoon_lock, recover_key_sequence, unlock_by_lstar
from repro.locking.solver import SATSolver, Satisfiability
from repro.pac import PACParameters, XorArbiterSpec, assess_xor_arbiter
from repro.pac.adversary import LMN_ADVERSARY
from repro.pac.assessment import Verdict
from repro.protocols.lockdown import (
    EavesdroppingAdversary,
    LockdownDevice,
    LockdownServer,
    enroll,
    run_authentication_rounds,
)
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.crp import generate_crps
from repro.pufs.noise import collect_stable_crps
from repro.pufs.xor_arbiter import XORArbiterPUF
from repro.automata.mealy import MealyMachine


class TestPUFAttackPipeline:
    def test_noisy_device_stable_collection_model_attack(self):
        """simulate -> stabilise -> train -> evaluate, like a real attack."""
        rng = np.random.default_rng(0)
        puf = ArbiterPUF(48, rng, noise_sigma=0.6)
        crps, stable_fraction = collect_stable_crps(
            puf, 6000, repetitions=9, rng=rng
        )
        assert 0.3 < stable_fraction <= 1.0
        train, test = crps.split(0.8, rng)
        model = LogisticAttack(feature_map=parity_transform).fit(
            train.challenges, train.responses, rng
        )
        acc = np.mean(model.predict(test.challenges) == test.responses)
        assert acc > 0.95

    def test_pac_verdict_matches_empirical_lmn(self):
        """The assessment engine's LMN verdicts agree with running LMN."""
        params = PACParameters(eps=0.2, delta=0.1)
        rng = np.random.default_rng(1)

        # Feasible regime: k=1 on n=12 (k <= sqrt(ln n) frontier).
        from repro.pac.bounds import lmn_feasible

        assert lmn_feasible(12, 1)
        puf1 = XORArbiterPUF(12, 1, np.random.default_rng(2))
        oracle = ExampleOracle(
            12,
            lambda c: puf1.eval(c),
            rng,
            sampler=lambda m, n, r: (1 - 2 * r.integers(0, 2, (m, n))).astype(np.int8),
        )
        x, y = oracle.draw(20_000)
        feats = parity_transform(x)[:, :-1].astype(np.int8)
        fit = LMNLearner(degree=2).fit_sample(feats, y)
        xt = (1 - 2 * rng.integers(0, 2, (4000, 12))).astype(np.int8)
        acc = np.mean(
            fit.hypothesis(parity_transform(xt)[:, :-1].astype(np.int8))
            == puf1.eval(xt)
        )
        assert acc > 1 - params.eps  # empirically achieves the PAC goal

        # Infeasible regime: k=9 on n=12 — the verdict is INFEASIBLE and a
        # same-budget LMN run stays near chance.
        infeasible = assess_xor_arbiter(XorArbiterSpec(12, 9), LMN_ADVERSARY, params)
        assert infeasible.verdict is Verdict.INFEASIBLE
        assert not lmn_feasible(12, 9)
        puf9 = XORArbiterPUF(12, 9, np.random.default_rng(3))
        y9 = puf9.eval(x)
        fit9 = LMNLearner(degree=2).fit_sample(feats, y9)
        acc9 = np.mean(
            fit9.hypothesis(parity_transform(xt)[:, :-1].astype(np.int8))
            == puf9.eval(xt)
        )
        assert acc9 < 1 - params.eps
        # The frontier separates the two regimes — the pitfall in one test.
        assert acc > 1 - params.eps > acc9


class TestLockingPipeline:
    def test_bench_roundtrip_lock_attack_verify(self):
        """generate -> .bench roundtrip -> lock -> SAT attack -> miter check."""
        rng = np.random.default_rng(4)
        net = random_circuit(7, 25, 2, rng)
        net2 = parse_bench(write_bench(net), name=net.name)
        locked = random_lock(net2, 7, rng)
        result = SATAttack().run(locked)
        assert result.success

        # Independent verification: miter of (locked @ recovered key) vs
        # the original must be UNSAT.
        fixed = locked.locked.with_inputs_fixed(
            {
                name: int(bit)
                for name, bit in zip(locked.key_inputs, result.key)
            }
        )
        cnf = CNF()
        shared = {sig: cnf.new_var() for sig in net2.inputs}
        map_a = tseitin_encode(fixed.renamed("u_", keep=net2.inputs), cnf, dict(shared))
        map_b = tseitin_encode(net2.renamed("v_", keep=net2.inputs), cnf, dict(shared))
        diffs = []
        for o_fixed, o_orig in zip(fixed.outputs, net2.outputs):
            d = cnf.new_var()
            cnf.extend(
                gate_clauses(
                    GateType.XOR, d, [map_a["u_" + o_fixed], map_b["v_" + o_orig]]
                )
            )
            diffs.append(d)
        cnf.add_clause(diffs)
        status, _ = SATSolver(cnf.clauses, cnf.num_vars).solve()
        assert status is Satisfiability.UNSAT

    def test_fsm_lock_learn_unlock(self):
        """Mealy -> HARPOON lock -> L* learn -> key recovery -> equivalence."""
        rng = np.random.default_rng(5)
        machine = MealyMachine.random(6, (0, 1), ("a", "b"), rng)
        locked = harpoon_lock(machine, (1, 1, 0), rng)
        attack = unlock_by_lstar(locked, "b")
        assert attack.behaviour_matches
        word = recover_key_sequence(locked)
        assert word is not None
        state, _ = locked.locked.run(word)
        rerooted = MealyMachine(
            locked.locked.input_alphabet,
            locked.locked.output_alphabet,
            locked.locked.transitions,
            start=state,
        )
        assert rerooted.equivalent(machine)


class TestGateLevelSequentialPipeline:
    def test_fsm_lock_synthesize_extract_learn(self):
        """The paper's Section V-B surface at gate level:

        functional FSM -> HARPOON lock -> synthesize to gates ->
        black-box L* on the *circuit's* I/O behaviour -> exact model.
        """
        from repro.learning.angluin import LStarLearner, exact_equivalence_oracle
        from repro.locking.sequential_netlist import (
            encode_alphabet,
            synthesize_mealy,
        )

        rng = np.random.default_rng(7)
        functional = MealyMachine.random(4, (0, 1), ("lo", "hi"), rng)
        locked = harpoon_lock(functional, (1, 0), rng)
        # Gate-level implementation of the locked machine.
        encoded = encode_alphabet(locked.locked)
        circuit = synthesize_mealy(encoded)
        chip = circuit.extract_mealy()  # white-box reference

        # Identify which gate-level output code corresponds to 'hi' by
        # running the behavioural and gate-level machines side by side
        # (encoded inputs are bit tuples; the behavioural one uses 0/1).
        import itertools as it

        code_of = {}
        for word in it.product(sorted(encoded.input_alphabet), repeat=3):
            plain_word = tuple(w[0] for w in word)
            behav = locked.locked.output_word(plain_word)
            gates_out = chip.output_word(word)
            for b, g in zip(behav, gates_out):
                code_of.setdefault(b, g)
        target_hi = code_of["hi"]

        target_dfa = chip.to_output_dfa(target_hi)
        learner = LStarLearner(sorted(encoded.input_alphabet))
        result = learner.fit(target_dfa.accepts, exact_equivalence_oracle(target_dfa))
        assert result.exact
        assert result.dfa.equivalent(target_dfa)
        # The learned model has at least as many states as the minimal
        # locked machine's output DFA — the key path is inside it.
        assert result.dfa.num_states >= 3


class TestProtocolPipeline:
    def test_lockdown_limits_the_clone(self):
        """The budget controls whether the eavesdropper's clone works."""
        rng = np.random.default_rng(6)
        puf = XORArbiterPUF(32, 2, rng)
        test = generate_crps(puf, 3000, rng)

        accuracies = {}
        for budget in (150, 4000):
            db = enroll(puf, budget, rng)
            server = LockdownServer(db)
            device = LockdownDevice(puf, exposure_budget=budget, rng=rng)
            adversary = EavesdroppingAdversary(k_guess=2)
            run_authentication_rounds(
                server, device, rounds=budget, adversary=adversary
            )
            model = adversary.attempt_clone(rng)
            accuracies[budget] = (
                float(np.mean(model.predict(test.challenges) == test.responses))
                if model
                else 0.5
            )
        assert accuracies[4000] > 0.95
        assert accuracies[150] < accuracies[4000] - 0.05

"""Unit tests for the lockdown authentication protocol."""

import numpy as np
import pytest

from repro.pac.framework import PACParameters
from repro.protocols.lockdown import (
    AuthenticationResult,
    CRPDatabase,
    EavesdroppingAdversary,
    LockdownDevice,
    LockdownServer,
    enroll,
    exposure_budget_from_bound,
    run_authentication_rounds,
)
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.xor_arbiter import XORArbiterPUF


def make_setup(noise=0.2, budget=200, m_enroll=300, seed=0):
    rng = np.random.default_rng(seed)
    puf = XORArbiterPUF(32, 2, rng, noise_sigma=noise)
    db = enroll(puf, m_enroll, rng)
    server = LockdownServer(db)
    device = LockdownDevice(puf, exposure_budget=budget, rng=rng)
    return puf, server, device


class TestDatabase:
    def test_draw_consumes(self):
        rng = np.random.default_rng(1)
        puf = ArbiterPUF(16, rng)
        db = enroll(puf, 10, rng)
        assert db.remaining == 10
        db.draw()
        assert db.remaining == 9

    def test_exhaustion_raises(self):
        rng = np.random.default_rng(2)
        puf = ArbiterPUF(16, rng)
        db = enroll(puf, 2, rng)
        db.draw()
        db.draw()
        with pytest.raises(RuntimeError, match="exhausted"):
            db.draw()

    def test_validation(self):
        with pytest.raises(ValueError):
            CRPDatabase(np.ones((3, 2), np.int8), np.ones(4, np.int8))
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            enroll(ArbiterPUF(8, rng), 0, rng)


class TestDeviceLockdown:
    def test_budget_enforced(self):
        rng = np.random.default_rng(4)
        puf = ArbiterPUF(16, rng)
        device = LockdownDevice(puf, exposure_budget=3, rng=rng)
        challenge = np.ones(16, dtype=np.int8)
        for _ in range(3):
            device.respond(challenge)
        with pytest.raises(RuntimeError, match="lockdown"):
            device.respond(challenge)

    def test_validation(self):
        rng = np.random.default_rng(5)
        puf = ArbiterPUF(8, rng)
        with pytest.raises(ValueError):
            LockdownDevice(puf, exposure_budget=0)
        with pytest.raises(ValueError):
            LockdownDevice(puf, exposure_budget=5, repetitions=0)


class TestAuthentication:
    def test_honest_device_accepted(self):
        _, server, device = make_setup()
        result = run_authentication_rounds(server, device, rounds=100)
        assert result.rounds_run == 100
        assert result.acceptance_rate > 0.9

    def test_wrong_device_rejected(self):
        rng = np.random.default_rng(6)
        genuine = XORArbiterPUF(32, 2, np.random.default_rng(7))
        impostor = XORArbiterPUF(32, 2, np.random.default_rng(8))
        db = enroll(genuine, 200, rng)
        server = LockdownServer(db)
        device = LockdownDevice(impostor, exposure_budget=500, rng=rng)
        result = run_authentication_rounds(server, device, rounds=150)
        assert result.acceptance_rate < 0.7  # ~0.5 for an unrelated PUF

    def test_lockdown_stops_the_run(self):
        _, server, device = make_setup(budget=20)
        result = run_authentication_rounds(server, device, rounds=100)
        assert result.device_locked
        assert result.rounds_run == 20

    def test_database_exhaustion_stops_the_run(self):
        _, server, device = make_setup(budget=1000, m_enroll=30)
        result = run_authentication_rounds(server, device, rounds=100)
        assert result.rounds_run == 30
        assert not result.device_locked

    def test_empty_result_rate(self):
        assert AuthenticationResult(0, 0, False).acceptance_rate == 0.0


class TestAdversary:
    def test_observes_all_traffic(self):
        _, server, device = make_setup()
        adversary = EavesdroppingAdversary(k_guess=2)
        run_authentication_rounds(server, device, rounds=50, adversary=adversary)
        assert adversary.crps_collected == 50

    def test_too_few_crps_no_model(self):
        adversary = EavesdroppingAdversary(k_guess=2)
        assert adversary.attempt_clone() is None

    def test_clone_succeeds_with_generous_exposure(self):
        """The pitfall: a 2-XOR PUF is cloned from a few thousand CRPs."""
        rng = np.random.default_rng(9)
        puf = XORArbiterPUF(32, 2, rng, noise_sigma=0.0)
        db = enroll(puf, 4000, rng)
        server = LockdownServer(db)
        device = LockdownDevice(puf, exposure_budget=4000, rng=rng)
        adversary = EavesdroppingAdversary(k_guess=2)
        run_authentication_rounds(server, device, rounds=4000, adversary=adversary)
        model = adversary.attempt_clone(rng)
        assert model is not None
        from repro.pufs.crp import generate_crps

        test = generate_crps(puf, 3000, rng)
        acc = np.mean(model.predict(test.challenges) == test.responses)
        assert acc > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            EavesdroppingAdversary(k_guess=0)


class TestBudgetDerivation:
    def test_perceptron_budget_huge_for_large_k(self):
        params = PACParameters(0.05, 0.05)
        budget = exposure_budget_from_bound(64, 8, params, bound="perceptron")
        assert budget > 10**9  # the [9] route suggests enormous safety

    def test_vc_budget_moderate(self):
        params = PACParameters(0.05, 0.05)
        budget = exposure_budget_from_bound(64, 8, params, bound="vc")
        assert budget < 10**5

    def test_model_relativity(self):
        """Different bounds, wildly different 'safe' budgets — the pitfall."""
        params = PACParameters(0.05, 0.05)
        p = exposure_budget_from_bound(64, 6, params, bound="perceptron")
        v = exposure_budget_from_bound(64, 6, params, bound="vc")
        assert p > 100 * v

    def test_validation(self):
        params = PACParameters(0.1, 0.1)
        with pytest.raises(ValueError):
            exposure_budget_from_bound(64, 2, params, bound="nope")
        with pytest.raises(ValueError):
            exposure_budget_from_bound(64, 2, params, safety_factor=0.0)

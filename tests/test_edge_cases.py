"""Assorted edge-case coverage across modules."""

import numpy as np
import pytest

from repro.learning.learn_poly import xor_of_junta_ltfs_target
from repro.locking.netlist import Gate, GateType, Netlist
from repro.pufs.arbiter import ArbiterPUF


class TestNetlistEdges:
    def test_zero_gate_passthrough(self):
        """Outputs may simply be inputs; depth is 0."""
        net = Netlist(("a", "b"), ("a",), [])
        assert net.depth() == 0
        assert net.size() == 0
        x = np.array([[1, 0], [0, 1]], dtype=np.int8)
        assert np.array_equal(net.evaluate(x), np.array([[1], [0]]))

    def test_depth_counts_longest_path(self):
        gates = [
            Gate("n1", GateType.NOT, ("a",)),
            Gate("n2", GateType.NOT, ("n1",)),
            Gate("n3", GateType.AND, ("n2", "a")),
        ]
        net = Netlist(("a",), ("n3",), gates)
        assert net.depth() == 3

    def test_depth_ignores_dangling_logic(self):
        gates = [
            Gate("deep1", GateType.NOT, ("a",)),
            Gate("deep2", GateType.NOT, ("deep1",)),
            Gate("out", GateType.NOT, ("a",)),
        ]
        net = Netlist(("a",), ("out",), gates)
        assert net.depth() == 1

    def test_wide_and_gate(self):
        net = Netlist(
            tuple(f"i{j}" for j in range(6)),
            ("y",),
            [Gate("y", GateType.AND, tuple(f"i{j}" for j in range(6)))],
        )
        assert net.evaluate(np.ones(6, dtype=np.int8)).tolist() == [1]
        bits = np.ones(6, dtype=np.int8)
        bits[3] = 0
        assert net.evaluate(bits).tolist() == [0]


class TestTargetBuilders:
    def test_xor_of_junta_target_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            xor_of_junta_ltfs_target(4, 2, 5, rng)  # junta > n
        with pytest.raises(ValueError):
            xor_of_junta_ltfs_target(8, 0, 2, rng)
        with pytest.raises(ValueError):
            xor_of_junta_ltfs_target(8, 2, 0, rng)

    def test_xor_of_junta_target_is_deterministic_given_build(self):
        rng = np.random.default_rng(1)
        target = xor_of_junta_ltfs_target(10, 3, 3, rng)
        x = np.random.default_rng(2).integers(0, 2, (50, 10)).astype(np.int8)
        assert np.array_equal(target(x), target(x))

    def test_single_row_input(self):
        rng = np.random.default_rng(3)
        target = xor_of_junta_ltfs_target(6, 2, 2, rng)
        row = np.ones(6, dtype=np.int8)
        out = target(row)
        assert out.shape == (1,)
        assert out[0] in (0, 1)


class TestPUFBaseEdges:
    def test_repr(self):
        puf = ArbiterPUF(8, np.random.default_rng(0), noise_sigma=0.25)
        text = repr(puf)
        assert "ArbiterPUF" in text and "0.25" in text

    def test_single_challenge_noisy(self):
        puf = ArbiterPUF(8, np.random.default_rng(1), noise_sigma=0.1)
        c = np.ones(8, dtype=np.int8)
        r = puf.eval_noisy(c, np.random.default_rng(2))
        assert r.shape == (1,)
        assert r[0] in (-1, 1)

    def test_three_dim_challenges_rejected(self):
        puf = ArbiterPUF(8, np.random.default_rng(3))
        with pytest.raises(ValueError):
            puf.eval(np.ones((2, 2, 8), dtype=np.int8))


class TestAnalysisEdges:
    def test_format_float_negative_huge(self):
        from repro.analysis.tables import format_float

        assert "e" in format_float(-3.7e9)

    def test_table_mixed_cell_types(self):
        from repro.analysis.tables import format_table

        text = format_table(
            ["a", "b", "c"], [[1, "x", 2.5], [float("inf"), None, -1]]
        )
        assert "inf" in text
        assert "-" in text

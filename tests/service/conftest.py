"""A live in-process service fixture for the HTTP/WebSocket tests.

The server's event loop runs in a daemon thread; the test body stays
synchronous and talks to it through the blocking
:class:`~repro.service.client.ServiceClient`, exactly the way the CI
smoke job and real clients do.  ``LiveService.call`` marshals direct
state inspection onto the loop thread, respecting the service's
"all state lives on the loop thread" invariant.
"""

import asyncio
import concurrent.futures
import threading

import pytest

from repro.service.app import ReproService
from repro.service.client import ServiceClient


class LiveService:
    """One running service plus its event-loop thread."""

    def __init__(self, service: ReproService) -> None:
        self.service = service
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._started.set()
        self.loop.run_forever()

    def start(self) -> "LiveService":
        self._thread.start()
        assert self._started.wait(15), "service failed to start"
        return self

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop)
        future.result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()

    def call(self, fn, *args):
        """Run ``fn(*args)`` on the event-loop thread and return its result."""
        result: "concurrent.futures.Future" = concurrent.futures.Future()

        def runner() -> None:
            try:
                result.set_result(fn(*args))
            except BaseException as exc:  # pragma: no cover - test plumbing
                result.set_exception(exc)

        self.loop.call_soon_threadsafe(runner)
        return result.result(10)

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(self.service.host, self.service.port, **kwargs)


@pytest.fixture
def live_service(tmp_path):
    """A factory for live services; everything started is stopped on exit."""
    started = []

    def make(subdir: str = "svc", **kwargs) -> LiveService:
        service = ReproService(tmp_path / subdir, port=0, **kwargs)
        live = LiveService(service).start()
        started.append(live)
        return live

    yield make
    for live in started:
        try:
            live.stop()
        except Exception:
            pass

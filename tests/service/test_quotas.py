"""Quota admission control: reserve, settle, persist, 429 semantics."""

import json

import pytest

from repro.service.quotas import QuotaExceeded, QuotaLedger


class TestReserve:
    def test_admits_within_limit(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=1000)
        q.reserve("job-1", "alice", 400)
        q.reserve("job-2", "alice", 500)
        assert q.reserved("alice") == 900

    def test_rejects_when_reservations_would_overdraw(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=1000)
        q.reserve("job-1", "alice", 800)
        with pytest.raises(QuotaExceeded) as exc:
            q.reserve("job-2", "alice", 300)
        payload = exc.value.as_dict()
        assert payload == {
            "limit": 1000,
            "used": 0,
            "reserved": 800,
            "requested": 300,
        }

    def test_settled_usage_counts_against_later_admissions(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=1000)
        q.reserve("job-1", "alice", 100)
        q.settle("job-1", "alice", 950)  # spent more than declared
        with pytest.raises(QuotaExceeded):
            q.reserve("job-2", "alice", 100)

    def test_keys_are_independent(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=100)
        q.reserve("job-1", "alice", 100)
        q.reserve("job-2", "bob", 100)  # bob's limit is his own

    def test_no_limit_means_no_rejection_but_usage_tracked(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=None)
        q.reserve("job-1", "alice", 10**9)
        q.settle("job-1", "alice", 12345)
        assert q.usage("alice") == 12345

    def test_reserve_is_idempotent_per_job(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=100)
        q.reserve("job-1", "alice", 60)
        q.reserve("job-1", "alice", 60)  # re-adoption path
        assert q.reserved("alice") == 60

    def test_negative_budget_rejected(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=None)
        with pytest.raises(ValueError):
            q.reserve("job-1", "alice", -1)


class TestSettleAndRelease:
    def test_settle_releases_reservation_and_charges_actuals(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=1000)
        q.reserve("job-1", "alice", 900)
        q.settle("job-1", "alice", 250)
        assert q.reserved("alice") == 0
        assert q.usage("alice") == 250
        q.reserve("job-2", "alice", 700)  # frees 900, charges 250

    def test_release_drops_without_charging(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=100)
        q.reserve("job-1", "alice", 100)
        q.release("job-1")
        assert q.reserved("alice") == 0
        assert q.usage("alice") == 0

    def test_status_view(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=1000)
        q.reserve("job-1", "alice", 300)
        q.settle("job-1", "alice", 200)
        q.reserve("job-2", "alice", 100)
        assert q.status("alice") == {
            "api_key": "alice",
            "limit": 1000,
            "used": 200,
            "reserved": 100,
            "remaining": 700,
        }


class TestPersistence:
    def test_settled_usage_survives_restart(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=500)
        q.reserve("job-1", "alice", 100)
        q.settle("job-1", "alice", 450)
        q2 = QuotaLedger(tmp_path, default_limit=500)
        assert q2.usage("alice") == 450
        with pytest.raises(QuotaExceeded):
            q2.reserve("job-2", "alice", 100)

    def test_reservations_do_not_persist(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=500)
        q.reserve("job-1", "alice", 400)
        q2 = QuotaLedger(tmp_path, default_limit=500)
        assert q2.reserved("alice") == 0  # rebuilt by job adoption instead

    def test_torn_quotas_json_does_not_brick_the_ledger(self, tmp_path):
        (tmp_path / "quotas.json").write_text('{"usage": {"alice": 12')
        q = QuotaLedger(tmp_path, default_limit=500)
        assert q.usage("alice") == 0
        q.reserve("job-1", "alice", 10)
        q.settle("job-1", "alice", 10)
        assert json.loads((tmp_path / "quotas.json").read_text()) == {
            "usage": {"alice": 10}
        }

    def test_quotas_file_written_atomically(self, tmp_path):
        q = QuotaLedger(tmp_path, default_limit=None)
        q.settle("job-1", "alice", 5)
        q.settle("job-2", "alice", 5)
        residue = [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert residue == []
        assert q.usage("alice") == 10

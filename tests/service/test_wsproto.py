"""Byte-level tests for the hand-rolled WebSocket layer.

The decoder is sans-IO, so every case here is pure bytes-in/frames-out:
no sockets, no event loop, no timing.  The encode/decode pairing is the
same code the server and the blocking client run against each other, so
a round-trip failure here *is* a wire-compatibility failure.
"""

import pytest

from repro.service import wsproto


class TestHandshake:
    def test_rfc6455_worked_example(self):
        # The accept key from RFC 6455 section 1.3's worked example.
        assert (
            wsproto.accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_accept_key_strips_whitespace(self):
        key = "dGhlIHNhbXBsZSBub25jZQ=="
        assert wsproto.accept_key(f"  {key}  ") == wsproto.accept_key(key)

    def test_handshake_keys_are_base64_and_unique(self):
        import base64

        keys = {wsproto.handshake_key() for _ in range(8)}
        assert len(keys) == 8
        for key in keys:
            assert len(base64.b64decode(key)) == 16


class TestFrameRoundTrip:
    @pytest.mark.parametrize("mask", [False, True])
    @pytest.mark.parametrize(
        "size",
        [0, 1, 125, 126, 127, 65535, 65536, 70000],
        ids=lambda s: f"{s}B",
    )
    def test_sizes_across_length_encodings(self, size, mask):
        payload = bytes(i % 251 for i in range(size))
        decoder = wsproto.FrameDecoder()
        decoder.feed(wsproto.encode_frame(wsproto.OP_BINARY, payload, mask=mask))
        assert decoder.next_frame() == (wsproto.OP_BINARY, payload)
        assert decoder.next_frame() is None

    def test_text_frame(self):
        decoder = wsproto.FrameDecoder()
        decoder.feed(wsproto.encode_text('{"event": "trial"}', mask=True))
        opcode, payload = decoder.next_frame()
        assert opcode == wsproto.OP_TEXT
        assert payload == b'{"event": "trial"}'

    def test_close_frame_carries_code_and_reason(self):
        import struct

        decoder = wsproto.FrameDecoder()
        decoder.feed(wsproto.encode_close(1001, "going away"))
        opcode, payload = decoder.next_frame()
        assert opcode == wsproto.OP_CLOSE
        assert struct.unpack(">H", payload[:2]) == (1001,)
        assert payload[2:] == b"going away"

    def test_masked_bytes_differ_from_payload(self):
        # Masking must actually transform the wire bytes (RFC 6455 5.3).
        payload = b"A" * 64
        frame = wsproto.encode_frame(wsproto.OP_BINARY, payload, mask=True)
        assert payload not in frame


class TestIncrementalDecoding:
    def test_byte_at_a_time_feed(self):
        frame = wsproto.encode_text("progress", mask=True)
        decoder = wsproto.FrameDecoder()
        for i, byte in enumerate(frame):
            decoder.feed(bytes([byte]))
            if i < len(frame) - 1:
                assert decoder.next_frame() is None
        assert decoder.next_frame() == (wsproto.OP_TEXT, b"progress")

    def test_multiple_frames_in_one_feed(self):
        data = wsproto.encode_text("one") + wsproto.encode_text("two")
        decoder = wsproto.FrameDecoder()
        decoder.feed(data)
        assert [p for _, p in decoder.frames()] == [b"one", b"two"]

    def test_frames_drains_and_preserves_partial_tail(self):
        whole = wsproto.encode_text("done")
        partial = wsproto.encode_text("later")[:-2]
        decoder = wsproto.FrameDecoder()
        decoder.feed(whole + partial)
        assert [p for _, p in decoder.frames()] == [b"done"]
        decoder.feed(wsproto.encode_text("later")[-2:])
        assert [p for _, p in decoder.frames()] == [b"later"]


class TestProtocolErrors:
    def test_fragmented_frames_rejected(self):
        frame = bytearray(wsproto.encode_text("frag"))
        frame[0] &= 0x7F  # clear FIN
        decoder = wsproto.FrameDecoder()
        decoder.feed(bytes(frame))
        with pytest.raises(wsproto.ProtocolError, match="fragmented"):
            decoder.next_frame()

    def test_oversized_declared_payload_rejected(self):
        import struct

        header = bytes([0x82, 127]) + struct.pack(">Q", wsproto.MAX_PAYLOAD + 1)
        decoder = wsproto.FrameDecoder()
        decoder.feed(header)
        with pytest.raises(wsproto.ProtocolError, match="MAX_PAYLOAD"):
            decoder.next_frame()

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(wsproto.ProtocolError):
            wsproto.encode_frame(wsproto.OP_BINARY, b"x" * (wsproto.MAX_PAYLOAD + 1))

    def test_feed_bounds_the_buffer(self):
        decoder = wsproto.FrameDecoder()
        with pytest.raises(wsproto.ProtocolError):
            for _ in range(5):
                decoder.feed(b"\x00" * wsproto.MAX_PAYLOAD)

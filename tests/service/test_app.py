"""End-to-end service tests: submit, stream, cancel, adopt, enforce quota.

Each test talks to a real :class:`~repro.service.app.ReproService`
listening on a loopback port (the ``live_service`` fixture), through the
same blocking client the CI smoke job uses — nothing is mocked between
the HTTP bytes and the ``TrialRunner`` underneath.
"""

import http.client
import json
import time

import pytest

from repro.runtime.runner import TrialRunner
from repro.service.client import ServiceError
from repro.service.jobs import Job, JobSpec, JobStore, build_workload, values_digest
from repro.telemetry.ledger import RunLedger

FLEET_SPEC = {"size": 4, "m": 64, "n": 16}
#: A deliberately slow job used to occupy the single concurrency slot.
SLOW_SPEC = {"slow_count": 50, "slow_seconds": 0.15, "fast_seconds": 0.0}


class TestSubmitAndComplete:
    def test_job_runs_to_done_with_digest_and_metering(self, live_service):
        live = live_service()
        client = live.client()
        job = client.submit(workload="fleet", trials=3, seed=7, spec=FLEET_SPEC)
        final = client.wait(job["job_id"], timeout=60)
        assert final["state"] == "done"
        assert final["completed_trials"] == 3
        result = final["result"]
        assert result["digest"].startswith("sha256:")
        assert result["total_queries"] > 0
        assert len(result["values"]) == 3
        # actual metered spend was settled against the (anonymous) key
        assert client.quota()["used"] == result["total_queries"]

    def test_events_stream_one_event_per_trial_then_done(self, live_service):
        live = live_service()
        client = live.client()
        job = client.submit(workload="fleet", trials=4, seed=1, spec=FLEET_SPEC)
        events = list(client.stream_events(job["job_id"], timeout=60))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "hello"
        assert kinds[-1] == "done"
        trials = [e for e in events if e["event"] == "trial"]
        assert sorted(e["index"] for e in trials) == [0, 1, 2, 3]
        assert [e["completed"] for e in trials] == [1, 2, 3, 4]
        assert all(e["total"] == 4 and e["ok"] for e in trials)

    def test_stream_of_finished_job_replays_buffer_and_closes(self, live_service):
        live = live_service()
        client = live.client()
        job = client.submit(workload="fleet", trials=2, seed=3, spec=FLEET_SPEC)
        client.wait(job["job_id"], timeout=60)
        events = list(client.stream_events(job["job_id"], timeout=30))
        assert [e["event"] for e in events if e["event"] == "trial"] == [
            "trial",
            "trial",
        ]
        assert events[-1]["event"] == "done"

    def test_job_json_persisted_with_result(self, live_service, tmp_path):
        live = live_service()
        client = live.client()
        job = client.submit(workload="fleet", trials=2, seed=5, spec=FLEET_SPEC)
        final = client.wait(job["job_id"], timeout=60)
        on_disk = json.loads(
            (live.service.data_dir / "jobs" / job["job_id"] / "job.json").read_text()
        )
        assert on_disk["state"] == "done"
        assert on_disk["result"]["digest"] == final["result"]["digest"]

    def test_meta_json_records_quota_accounting(self, live_service):
        live = live_service()
        client = live.client(api_key="alice")
        job = client.submit(
            workload="fleet", trials=2, seed=5, spec=FLEET_SPEC, budget=10**6
        )
        final = client.wait(job["job_id"], timeout=60)
        meta = json.loads(
            (live.service.data_dir / "jobs" / job["job_id"] / "meta.json").read_text()
        )
        assert meta["quota"]["api_key"] == "alice"
        assert meta["quota"]["declared_budget"] == 10**6
        assert meta["quota"]["metered_queries"] == final["result"]["total_queries"]


class TestHttpErrors:
    def test_unknown_workload_is_400(self, live_service):
        client = live_service().client()
        with pytest.raises(ServiceError) as exc:
            client.submit(workload="nonsense", trials=1)
        assert exc.value.status == 400

    def test_bad_spec_field_is_400(self, live_service):
        client = live_service().client()
        with pytest.raises(ServiceError) as exc:
            client.submit(workload="fleet", trials=1, spec={"bogus": 1})
        assert exc.value.status == 400
        assert "bogus" in str(exc.value)

    def test_unknown_job_is_404(self, live_service):
        client = live_service().client()
        with pytest.raises(ServiceError) as exc:
            client.job("job-doesnotexist")
        assert exc.value.status == 404

    def test_wrong_method_is_405(self, live_service):
        client = live_service().client()
        with pytest.raises(ServiceError) as exc:
            client.request("DELETE", "/v1/jobs")
        assert exc.value.status == 405

    def test_unknown_path_is_404(self, live_service):
        client = live_service().client()
        with pytest.raises(ServiceError) as exc:
            client.request("GET", "/v2/anything")
        assert exc.value.status == 404

    def test_malformed_json_body_is_400(self, live_service):
        live = live_service()
        conn = http.client.HTTPConnection(
            live.service.host, live.service.port, timeout=10
        )
        try:
            conn.request(
                "POST",
                "/v1/jobs",
                body="{not json",
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_events_without_upgrade_is_426(self, live_service):
        live = live_service()
        client = live.client()
        job = client.submit(workload="fleet", trials=1, spec=FLEET_SPEC)
        with pytest.raises(ServiceError) as exc:
            client.request("GET", f"/v1/jobs/{job['job_id']}/events")
        assert exc.value.status == 426


class TestQuotaEnforcement:
    def test_over_budget_submission_is_429(self, live_service):
        live = live_service(default_quota=100)
        client = live.client(api_key="alice")
        with pytest.raises(ServiceError) as exc:
            client.submit(workload="fleet", trials=1, spec=FLEET_SPEC, budget=200)
        assert exc.value.status == 429
        error = exc.value.payload["error"]
        assert error["limit"] == 100 and error["requested"] == 200

    def test_settled_spend_blocks_later_submissions(self, live_service):
        # fleet meters ~hundreds of queries per trial, far over limit=50
        live = live_service(default_quota=50)
        client = live.client(api_key="bob")
        job = client.submit(workload="fleet", trials=1, spec=FLEET_SPEC, budget=50)
        final = client.wait(job["job_id"], timeout=60)
        assert final["result"]["total_queries"] > 50
        with pytest.raises(ServiceError) as exc:
            client.submit(workload="fleet", trials=1, spec=FLEET_SPEC, budget=0)
        assert exc.value.status == 429

    def test_keys_account_independently(self, live_service):
        live = live_service(default_quota=100)
        alice = live.client(api_key="alice")
        bob = live.client(api_key="bob")
        with pytest.raises(ServiceError):
            alice.submit(workload="fleet", trials=1, spec=FLEET_SPEC, budget=200)
        job = bob.submit(workload="fleet", trials=1, spec=FLEET_SPEC, budget=90)
        assert job["state"] in ("queued", "running")

    def test_quota_endpoint_reports_reservations(self, live_service):
        live = live_service(default_quota=1000, max_concurrent=1)
        client = live.client(api_key="carol")
        client.submit(workload="skew", trials=20, spec=SLOW_SPEC, budget=300)
        status = client.quota()
        assert status["reserved"] == 300
        assert status["remaining"] == 700


class TestCancellation:
    def test_cancel_queued_job(self, live_service):
        live = live_service(max_concurrent=1)
        client = live.client()
        blocker = client.submit(workload="skew", trials=20, spec=SLOW_SPEC)
        queued = client.submit(workload="fleet", trials=2, spec=FLEET_SPEC)
        cancelled = client.cancel(queued["job_id"])
        assert cancelled["state"] == "cancelled"
        assert client.job(queued["job_id"])["state"] == "cancelled"
        client.cancel(blocker["job_id"])

    def test_cancel_running_job_stops_early(self, live_service):
        live = live_service(max_concurrent=1)
        client = live.client()
        job = client.submit(workload="skew", trials=30, spec=SLOW_SPEC)
        # wait until it is actually running, then cancel
        deadline = time.monotonic() + 20
        while client.job(job["job_id"])["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        time.sleep(0.3)
        client.cancel(job["job_id"])
        final = client.wait(job["job_id"], timeout=30)
        assert final["state"] == "cancelled"
        assert final["result"]["cancelled"] is True
        assert final["result"]["completed"] < 30

    def test_cancel_terminal_job_is_409(self, live_service):
        client = live_service().client()
        job = client.submit(workload="fleet", trials=1, spec=FLEET_SPEC)
        client.wait(job["job_id"], timeout=60)
        with pytest.raises(ServiceError) as exc:
            client.cancel(job["job_id"])
        assert exc.value.status == 409


class TestPriorityScheduling:
    def test_small_job_jumps_queued_backlog(self, live_service):
        live = live_service(max_concurrent=1)
        client = live.client()
        blocker = client.submit(workload="skew", trials=20, spec=SLOW_SPEC)
        backlog = client.submit(workload="fleet", trials=17, spec=FLEET_SPEC)
        small = client.submit(workload="fleet", trials=2, spec=FLEET_SPEC)
        assert backlog["priority"] == 10 and small["priority"] == 0
        pending = live.call(live.service._queue.pending)
        assert pending == [small["job_id"], backlog["job_id"]]
        client.cancel(blocker["job_id"])
        # with the slot free, the interactive job finishes first
        final_small = client.wait(small["job_id"], timeout=60)
        assert final_small["state"] == "done"

    def test_list_endpoint_filters_by_state(self, live_service):
        live = live_service()
        client = live.client()
        job = client.submit(workload="fleet", trials=1, spec=FLEET_SPEC)
        client.wait(job["job_id"], timeout=60)
        done = client.jobs(state="done")
        assert [j["job_id"] for j in done] == [job["job_id"]]
        assert client.jobs(state="failed") == []


class TestAdoption:
    """Restart recovery: a killed server's incomplete jobs finish later.

    The persisted state of a crashed server is hand-built here — a
    ``job.json`` frozen in state ``running`` plus a partial trial ledger
    — then a fresh service is pointed at the data dir and must adopt,
    resume, and finish the job bit-identically.  (The subprocess
    SIGKILL version of this lives in the CI smoke job.)
    """

    def _plant_crashed_job(self, data_dir, trials_done: int) -> str:
        store = JobStore(data_dir)
        spec = JobSpec(workload="fleet", trials=5, seed=42, spec=FLEET_SPEC)
        job = Job(job_id="job-crashed0001", spec=spec, state="running")
        job.started_at = time.time()
        store.save(job)
        trial_fn, workload_spec = build_workload(spec.workload, spec.spec)
        ledger = RunLedger(store.job_dir(job.job_id))
        TrialRunner(workers=1).run(
            trial_fn, trials_done, spec.seed, {"spec": workload_spec}, ledger=ledger
        )
        return job.job_id

    def test_incomplete_job_is_adopted_resumed_and_bit_identical(
        self, live_service, tmp_path
    ):
        data_dir = tmp_path / "svc"
        job_id = self._plant_crashed_job(data_dir, trials_done=2)
        live = live_service()  # same tmp_path/svc data dir
        client = live.client()
        events = list(client.stream_events(job_id, timeout=60))
        trials = [e for e in events if e["event"] == "trial"]
        assert len(trials) == 5  # replayed trials still emit events
        assert sum(1 for e in trials if e["replayed"]) == 2
        final = client.wait(job_id, timeout=60)
        assert final["state"] == "done"
        assert final["adopted"] is True
        # the resumed digest equals a clean single-process run's digest
        fresh = client.submit(workload="fleet", trials=5, seed=42, spec=FLEET_SPEC)
        reference = client.wait(fresh["job_id"], timeout=60)
        assert final["result"]["digest"] == reference["result"]["digest"]

    def test_no_resume_flag_skips_adoption(self, live_service, tmp_path):
        data_dir = tmp_path / "svc"
        job_id = self._plant_crashed_job(data_dir, trials_done=1)
        live = live_service(resume=False)
        client = live.client()
        with pytest.raises(ServiceError) as exc:
            client.job(job_id)
        assert exc.value.status == 404

    def test_terminal_jobs_are_registered_but_not_requeued(
        self, live_service, tmp_path
    ):
        data_dir = tmp_path / "svc"
        store = JobStore(data_dir)
        job = Job(
            job_id="job-olddone0000",
            spec=JobSpec(workload="fleet", trials=1, spec=FLEET_SPEC),
            state="done",
        )
        store.save(job)
        live = live_service()
        client = live.client()
        assert client.job("job-olddone0000")["state"] == "done"
        assert live.call(len, live.service._queue) == 0


class TestServiceInfo:
    def test_service_json_written_with_bound_port(self, live_service):
        live = live_service()
        info = json.loads((live.service.data_dir / "service.json").read_text())
        assert info["port"] == live.service.port
        assert info["host"] == live.service.host
        import os

        assert info["pid"] == os.getpid()

    def test_healthz_counts_jobs(self, live_service):
        live = live_service()
        client = live.client()
        job = client.submit(workload="fleet", trials=1, spec=FLEET_SPEC)
        client.wait(job["job_id"], timeout=60)
        health = client.health()
        assert health["ok"] is True
        assert health["jobs"].get("done") == 1


def test_values_digest_matches_direct_runner_output(tmp_path):
    """The service digest is computable offline from a plain runner report."""
    from repro.runtime.runner import trial_record

    trial_fn, spec = build_workload("fleet", FLEET_SPEC)
    report = TrialRunner(workers=1).run(trial_fn, 3, 7, {"spec": spec})
    offline = values_digest([trial_record(r)["value"] for r in report.results])
    assert offline.startswith("sha256:")

"""The job model: workload registry, spec validation, persistence, queue."""

import json

import pytest

from repro.runtime import workloads
from repro.service.jobs import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    SMALL_JOB_TRIALS,
    Job,
    JobSpec,
    JobStore,
    UnknownWorkload,
    build_workload,
    new_job_id,
    values_digest,
)
from repro.service.queue import PriorityJobQueue


class TestBuildWorkload:
    def test_every_registered_workload_constructs_with_defaults(self):
        from repro.service.jobs import WORKLOADS

        for name in WORKLOADS:
            trial_fn, spec = build_workload(name, {})
            assert callable(trial_fn)

    def test_spec_overrides_apply(self):
        _, spec = build_workload("fleet", {"size": 9, "m": 32})
        assert isinstance(spec, workloads.FleetEvalSpec)
        assert (spec.size, spec.m) == (9, 32)

    def test_lists_coerce_to_tuples_for_tuple_fields(self):
        _, spec = build_workload("active", {"budgets": [32, 64]})
        assert spec.budgets == (32, 64)

    def test_unknown_workload(self):
        with pytest.raises(UnknownWorkload, match="unknown workload"):
            build_workload("nonsense", {})

    def test_unknown_spec_field_is_named_in_the_error(self):
        with pytest.raises(ValueError, match="num_instances"):
            build_workload("fleet", {"num_instances": 4})

    def test_invalid_spec_value_propagates_dataclass_validation(self):
        with pytest.raises(ValueError):
            build_workload("skew", {"size": -1})


class TestJobSpec:
    def test_defaults_validate(self):
        spec = JobSpec(workload="fleet")
        assert spec.trials == 4 and spec.api_key == "anonymous"

    def test_invalid_trials_and_budget_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(workload="fleet", trials=0)
        with pytest.raises(ValueError):
            JobSpec(workload="fleet", budget=-1)

    def test_bad_workload_rejected_at_spec_construction(self):
        with pytest.raises(ValueError):
            JobSpec(workload="nope")

    def test_priority_defaults_split_small_vs_batch(self):
        small = JobSpec(workload="fleet", trials=SMALL_JOB_TRIALS)
        big = JobSpec(workload="fleet", trials=SMALL_JOB_TRIALS + 1)
        assert small.effective_priority == PRIORITY_INTERACTIVE
        assert big.effective_priority == PRIORITY_BATCH

    def test_explicit_priority_wins(self):
        spec = JobSpec(workload="fleet", trials=1000, priority=-5)
        assert spec.effective_priority == -5

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="bogus"):
            JobSpec.from_dict({"workload": "fleet", "bogus": 1})

    def test_round_trip(self):
        spec = JobSpec(workload="skew", trials=3, seed=7, budget=100)
        assert JobSpec.from_dict(spec.as_dict()) == spec


class TestJobPersistence:
    def test_save_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job(job_id=new_job_id(), spec=JobSpec(workload="fleet", trials=2))
        job.state = "running"
        job.completed_trials = 1
        store.save(job)
        loaded = store.load(job.job_id)
        assert loaded == job

    def test_job_dir_is_the_run_dir(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.job_dir("job-abc") == tmp_path / "jobs" / "job-abc"

    def test_save_is_atomic_no_tmp_residue(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job(job_id="job-x", spec=JobSpec(workload="fleet"))
        for _ in range(3):
            store.save(job)
        names = {p.name for p in store.job_dir("job-x").iterdir()}
        assert names == {"job.json"}

    def test_load_all_skips_torn_job_json(self, tmp_path):
        store = JobStore(tmp_path)
        good = Job(job_id="job-good", spec=JobSpec(workload="fleet"))
        store.save(good)
        torn = store.job_dir("job-torn")
        torn.mkdir(parents=True)
        (torn / "job.json").write_text('{"job_id": "job-torn", "spe')
        jobs = store.load_all()
        assert set(jobs) == {"job-good"}

    def test_as_dict_reports_effective_priority(self):
        job = Job(job_id="job-p", spec=JobSpec(workload="fleet", trials=500))
        assert job.as_dict()["priority"] == PRIORITY_BATCH


class TestValuesDigest:
    def test_digest_is_order_and_value_sensitive(self):
        a = values_digest([[1.0, 2.0], [3.0]])
        assert a == values_digest([[1.0, 2.0], [3.0]])
        assert a != values_digest([[3.0], [1.0, 2.0]])
        assert a != values_digest([[1.0, 2.0], [3.5]])

    def test_digest_shape(self):
        assert values_digest([]).startswith("sha256:")


class TestPriorityJobQueue:
    def test_lower_priority_value_pops_first(self):
        q = PriorityJobQueue()
        q.push("batch", 10)
        q.push("interactive", 0)
        assert q.pop() == "interactive"
        assert q.pop() == "batch"
        assert q.pop() is None

    def test_fifo_within_a_tier(self):
        q = PriorityJobQueue()
        for name in ("a", "b", "c"):
            q.push(name, 5)
        assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]

    def test_interactive_job_jumps_a_deep_backlog(self):
        q = PriorityJobQueue()
        for i in range(50):
            q.push(f"atlas-{i}", 10)
        q.push("what-if", 0)
        assert q.pop() == "what-if"

    def test_remove_is_lazy_but_effective(self):
        q = PriorityJobQueue()
        q.push("a", 0)
        q.push("b", 0)
        assert q.remove("a") is True
        assert q.remove("a") is False  # already gone
        assert "a" not in q
        assert len(q) == 1
        assert q.pop() == "b"
        assert q.pop() is None

    def test_pending_preview_matches_pop_order(self):
        q = PriorityJobQueue()
        q.push("late-batch", 10)
        q.push("first", 0)
        q.push("second", 0)
        q.remove("second")
        assert q.pending() == ["first", "late-batch"]

    def test_duplicate_push_rejected(self):
        q = PriorityJobQueue()
        q.push("a", 0)
        with pytest.raises(ValueError):
            q.push("a", 0)

    def test_push_after_remove_works(self):
        q = PriorityJobQueue()
        q.push("a", 0)
        q.remove("a")
        q.push("a", 3)
        assert q.pop() == "a"

"""Satellite regression: concurrent jobs meter queries independently.

The job launcher runs every job inside ``contextvars.copy_context()``
and installs a fresh ambient :class:`~repro.telemetry.meter.QueryMeter`
per job, so two jobs sharing the thread-pool executor can never bleed
query counts into each other — and never pollute the event-loop
thread's ambient meter either.  The regression asserted here: each
concurrent job's metered total equals its solo-run total exactly.
"""

import contextvars
import threading

from repro.service.jobs import Job, JobSpec, JobStore
from repro.service.app import run_job_sync
from repro.telemetry.meter import QueryMeter, current_meter, metered

#: Two fleet configurations with different query footprints by
#: construction (different instance counts and challenge counts).
SPEC_A = {"size": 4, "m": 64, "n": 16}
SPEC_B = {"size": 2, "m": 32, "n": 16}


def _solo_total(live_service, name, spec, seed):
    live = live_service(subdir=f"solo-{name}")
    client = live.client()
    job = client.submit(workload="fleet", trials=2, seed=seed, spec=spec)
    final = client.wait(job["job_id"], timeout=60)
    assert final["state"] == "done"
    return final["result"]["total_queries"]


def test_concurrent_jobs_meter_exactly_their_solo_totals(live_service):
    solo_a = _solo_total(live_service, "a", SPEC_A, seed=1)
    solo_b = _solo_total(live_service, "b", SPEC_B, seed=2)
    assert solo_a != solo_b  # distinguishable footprints, or the test is void

    live = live_service(subdir="concurrent", max_concurrent=2)
    client = live.client()
    job_a = client.submit(workload="fleet", trials=2, seed=1, spec=SPEC_A)
    job_b = client.submit(workload="fleet", trials=2, seed=2, spec=SPEC_B)
    final_a = client.wait(job_a["job_id"], timeout=60)
    final_b = client.wait(job_b["job_id"], timeout=60)
    assert final_a["result"]["total_queries"] == solo_a
    assert final_b["result"]["total_queries"] == solo_b


def test_job_body_does_not_pollute_the_callers_ambient_meter(tmp_path):
    """``run_job_sync`` under a copied context leaves the caller's meter alone.

    This is the launcher contract in miniature: the caller (standing in
    for the event-loop thread) has an ambient meter installed; the job
    body runs in ``contextvars.copy_context()`` in another thread, as
    ``ReproService._launch`` does, and the caller's meter must still
    read zero afterwards.
    """
    store = JobStore(tmp_path)
    spec = JobSpec(workload="fleet", trials=1, seed=3, spec=SPEC_B)
    job = Job(job_id="job-isolated001", spec=spec)
    store.save(job)

    with metered(QueryMeter()) as outer:
        ctx = contextvars.copy_context()
        results = {}

        def body():
            results["result"] = ctx.run(
                run_job_sync,
                job,
                store.job_dir(job.job_id),
                lambda result: None,
                threading.Event(),
            )

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(60)
        assert current_meter() is outer
        assert outer.total_queries == 0
    assert results["result"]["total_queries"] > 0

"""HTTP primitives: head parsing, response framing, route matching."""

import json

import pytest

from repro.service import routes


class TestParseRequestHead:
    def test_request_line_and_headers(self):
        head = (
            b"POST /v1/jobs?state=queued HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Length: 12\r\n"
            b"X-API-Key: alice\r\n"
        )
        method, path, query, headers = routes.parse_request_head(head)
        assert method == "POST"
        assert path == "/v1/jobs"
        assert query == {"state": "queued"}
        assert headers["content-length"] == "12"
        assert headers["x-api-key"] == "alice"

    def test_header_names_lowercased_values_stripped(self):
        _, _, _, headers = routes.parse_request_head(
            b"GET / HTTP/1.1\r\nUPGRADE:   websocket  \r\n"
        )
        assert headers == {"upgrade": "websocket"}

    @pytest.mark.parametrize(
        "head",
        [b"GARBAGE", b"GET /\r\n", b"GET / SPDY/3\r\n", b"GET / HTTP/1.1\r\nnocolon\r\n"],
    )
    def test_malformed_heads_raise_bad_request(self, head):
        with pytest.raises(routes.BadRequest):
            routes.parse_request_head(head)


class TestRequestResponse:
    def test_json_body_parses(self):
        request = routes.Request("POST", "/", {}, {}, b'{"a": 1}')
        assert request.json_body() == {"a": 1}

    def test_empty_body_is_empty_object(self):
        assert routes.Request("GET", "/", {}, {}).json_body() == {}

    def test_invalid_json_raises_bad_request(self):
        request = routes.Request("POST", "/", {}, {}, b"{nope")
        with pytest.raises(routes.BadRequest):
            request.json_body()

    def test_response_encoding_has_length_framing(self):
        wire = routes.json_response(201, {"ok": True}).encode()
        head, _, body = wire.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 201 Created\r\n")
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: close" in head
        assert json.loads(body) == {"ok": True}

    def test_error_response_shape(self):
        wire = routes.error_response(429, "over quota", limit=10).encode()
        body = json.loads(wire.partition(b"\r\n\r\n")[2])
        assert body["error"]["message"] == "over quota"
        assert body["error"]["limit"] == 10


class TestRouter:
    def _router(self):
        router = routes.Router()
        router.add("GET", "/v1/jobs", "list")
        router.add("POST", "/v1/jobs", "submit")
        router.add("GET", "/v1/jobs/{job_id}", "get")
        return router

    def test_static_and_param_routes(self):
        router = self._router()
        handler, params, known = router.match("GET", "/v1/jobs/job-123")
        assert (handler, params, known) == ("get", {"job_id": "job-123"}, True)

    def test_method_distinguishes_handlers(self):
        router = self._router()
        assert router.match("POST", "/v1/jobs")[0] == "submit"
        assert router.match("GET", "/v1/jobs")[0] == "list"

    def test_405_vs_404_discrimination(self):
        router = self._router()
        handler, _, known = router.match("DELETE", "/v1/jobs")
        assert handler is None and known is True  # 405
        handler, _, known = router.match("GET", "/v1/nope")
        assert handler is None and known is False  # 404

    def test_params_do_not_cross_slashes(self):
        router = self._router()
        handler, _, _ = router.match("GET", "/v1/jobs/a/b")
        assert handler is None

"""Suite-wide pytest configuration.

Loads the conformance plugin (see ``docs/TESTING.md``): the
``@statistical_test(alpha=...)`` marker, the ``stat`` fixture, the
session-wide family-wise :class:`~repro.conformance.oracles.ErrorBudget`,
and seed-reproduction sections on statistical failures.
"""

pytest_plugins = ["repro.conformance.pytest_plugin", "pytester"]

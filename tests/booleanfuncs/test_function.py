"""Unit tests for repro.booleanfuncs.function."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.booleanfuncs.encoding import enumerate_cube, random_pm1
from repro.booleanfuncs.function import BooleanFunction


def majority3():
    def evaluate(x):
        return np.where(np.sum(x, axis=1) >= 0, 1, -1).astype(np.int8)

    return BooleanFunction(3, evaluate, name="maj3")


class TestConstruction:
    def test_from_truth_table_roundtrip(self):
        tab = [1, -1, -1, 1, 1, 1, -1, -1]
        f = BooleanFunction.from_truth_table(tab)
        assert f.n == 3
        assert f.truth_table().tolist() == tab

    def test_from_truth_table_rejects_bad_length(self):
        with pytest.raises(ValueError):
            BooleanFunction.from_truth_table([1, -1, 1])

    def test_from_truth_table_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BooleanFunction.from_truth_table([1, 0, -1, 1])

    def test_from_callable_unvectorized(self):
        f = BooleanFunction.from_callable(
            2, lambda row: int(row[0]), vectorized=False
        )
        x = enumerate_cube(2)
        assert np.array_equal(f(x), x[:, 0])

    def test_constant(self):
        f = BooleanFunction.constant(4, -1)
        assert np.all(f.truth_table() == -1)

    def test_constant_rejects_bad_value(self):
        with pytest.raises(ValueError):
            BooleanFunction.constant(4, 0)

    def test_parity_on(self):
        f = BooleanFunction.parity_on(4, [0, 2])
        x = random_pm1(4, 30, np.random.default_rng(0))
        assert np.array_equal(f(x), x[:, 0] * x[:, 2])

    def test_parity_on_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BooleanFunction.parity_on(3, [5])


class TestEvaluation:
    def test_single_point(self):
        f = majority3()
        assert f(np.array([1, 1, -1])) == 1
        assert f(np.array([-1, -1, 1])) == -1

    def test_arity_check(self):
        f = majority3()
        with pytest.raises(ValueError):
            f(np.ones((5, 4), dtype=np.int8))

    def test_truth_table_cached(self):
        f = majority3()
        t1 = f.truth_table()
        t2 = f.truth_table()
        assert t1 is t2


class TestComposition:
    def test_xor_is_product(self):
        f = BooleanFunction.parity_on(3, [0])
        g = BooleanFunction.parity_on(3, [1])
        h = f.xor(g)
        x = random_pm1(3, 20, np.random.default_rng(1))
        assert np.array_equal(h(x), x[:, 0] * x[:, 1])

    def test_xor_many_equals_parity(self):
        fs = [BooleanFunction.parity_on(5, [i]) for i in range(5)]
        h = BooleanFunction.xor_many(fs)
        full_parity = BooleanFunction.parity_on(5, range(5))
        assert h.distance(full_parity) == 0.0

    def test_xor_many_empty_raises(self):
        with pytest.raises(ValueError):
            BooleanFunction.xor_many([])

    def test_negate(self):
        f = majority3()
        g = f.negate()
        assert np.array_equal(g.truth_table(), -f.truth_table())

    def test_restrict(self):
        f = BooleanFunction.parity_on(3, [0, 1, 2])
        g = f.restrict(0, -1)  # x0 fixed to -1 flips the parity of the rest
        assert g.n == 2
        x = enumerate_cube(2)
        assert np.array_equal(g(x), -(x[:, 0] * x[:, 1]))

    def test_restrict_rejects_bad_args(self):
        f = majority3()
        with pytest.raises(ValueError):
            f.restrict(5, 1)
        with pytest.raises(ValueError):
            f.restrict(0, 0)

    def test_arity_mismatch_raises(self):
        f = majority3()
        g = BooleanFunction.constant(4, 1)
        with pytest.raises(ValueError):
            f.xor(g)


class TestStatistics:
    def test_distance_self_is_zero(self):
        f = majority3()
        assert f.distance(f) == 0.0

    def test_distance_negation_is_one(self):
        f = majority3()
        assert f.distance(f.negate()) == 1.0

    def test_bias_of_parity_is_zero(self):
        f = BooleanFunction.parity_on(4, [0, 3])
        assert f.bias() == 0.0

    def test_agreement(self):
        f = majority3()
        x = enumerate_cube(3)
        assert f.agreement(f, x) == 1.0
        assert f.agreement(f.negate(), x) == 0.0

    @given(st.integers(1, 5))
    def test_truth_table_matches_pointwise(self, n):
        rng = np.random.default_rng(n)
        tab = (1 - 2 * rng.integers(0, 2, size=2**n)).astype(np.int8)
        f = BooleanFunction.from_truth_table(tab)
        cube = enumerate_cube(n)
        assert np.array_equal(f(cube), tab)

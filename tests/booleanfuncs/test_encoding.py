"""Unit tests for repro.booleanfuncs.encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.booleanfuncs.encoding import (
    bits_to_pm1,
    chi,
    enumerate_cube,
    flip_noise,
    parity,
    pm1_to_bits,
    random_pm1,
)


class TestBitConversions:
    def test_bits_to_pm1_basic(self):
        assert bits_to_pm1([0, 1, 1, 0]).tolist() == [1, -1, -1, 1]

    def test_pm1_to_bits_basic(self):
        assert pm1_to_bits([1, -1, -1, 1]).tolist() == [0, 1, 1, 0]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_pm1([0, 2])

    def test_rejects_non_pm1(self):
        with pytest.raises(ValueError):
            pm1_to_bits([1, 0])

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=64))
    def test_roundtrip(self, bits):
        arr = np.array(bits, dtype=np.int8)
        assert np.array_equal(pm1_to_bits(bits_to_pm1(arr)), arr)

    @given(st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=64))
    def test_roundtrip_pm1(self, pm1):
        arr = np.array(pm1, dtype=np.int8)
        assert np.array_equal(bits_to_pm1(pm1_to_bits(arr)), arr)


class TestParityAndChi:
    def test_parity_matches_xor(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(50, 7))
        pm1 = bits_to_pm1(bits)
        xor = np.bitwise_xor.reduce(bits, axis=1)
        assert np.array_equal(pm1_to_bits(parity(pm1)), xor.astype(np.int8))

    def test_chi_empty_subset_is_one(self):
        x = random_pm1(5, 10, np.random.default_rng(1))
        assert np.all(chi([], x) == 1)

    def test_chi_single_point(self):
        x = np.array([1, -1, 1, -1], dtype=np.int8)
        assert chi([1, 3], x) == 1
        assert chi([1], x) == -1

    def test_chi_multiplicative(self):
        rng = np.random.default_rng(2)
        x = random_pm1(6, 20, rng)
        assert np.array_equal(chi([0, 2], x) * chi([2, 4], x), chi([0, 4], x))


class TestEnumerateCube:
    def test_size_and_values(self):
        cube = enumerate_cube(3)
        assert cube.shape == (8, 3)
        assert set(np.unique(cube)) == {-1, 1}

    def test_truth_table_order(self):
        # Row 0 is all zeros -> all +1; last row all ones -> all -1.
        cube = enumerate_cube(4)
        assert cube[0].tolist() == [1, 1, 1, 1]
        assert cube[-1].tolist() == [-1, -1, -1, -1]
        # Row 1 = binary 0001 -> last variable is 1.
        assert cube[1].tolist() == [1, 1, 1, -1]

    def test_rows_unique(self):
        cube = enumerate_cube(5, encoding="bits")
        assert len({tuple(r) for r in cube}) == 32

    def test_rejects_large_n(self):
        with pytest.raises(ValueError):
            enumerate_cube(30)

    def test_rejects_bad_encoding(self):
        with pytest.raises(ValueError):
            enumerate_cube(3, encoding="hex")

    def test_n_zero(self):
        cube = enumerate_cube(0)
        assert cube.shape == (1, 0)


class TestNoiseAndSampling:
    def test_random_pm1_shape_and_values(self):
        x = random_pm1(10, 100, np.random.default_rng(3))
        assert x.shape == (100, 10)
        assert set(np.unique(x)) <= {-1, 1}

    def test_flip_noise_zero_is_identity(self):
        x = random_pm1(8, 50, np.random.default_rng(4))
        assert np.array_equal(flip_noise(x, 0.0, np.random.default_rng(5)), x)

    def test_flip_noise_one_negates(self):
        x = random_pm1(8, 50, np.random.default_rng(6))
        assert np.array_equal(flip_noise(x, 1.0, np.random.default_rng(7)), -x)

    def test_flip_noise_rate(self):
        rng = np.random.default_rng(8)
        x = random_pm1(20, 5000, rng)
        flipped = flip_noise(x, 0.3, rng)
        rate = np.mean(x != flipped)
        assert abs(rate - 0.3) < 0.02

    def test_flip_noise_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            flip_noise(np.ones(3, dtype=np.int8), 1.5)

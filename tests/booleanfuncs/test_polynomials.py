"""Unit tests for repro.booleanfuncs.polynomials."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleanfuncs.encoding import enumerate_cube
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.polynomials import (
    SparseF2Polynomial,
    XorOfTerms,
    monomial_count_bound,
)


class TestSparseF2Polynomial:
    def test_zero_polynomial(self):
        p = SparseF2Polynomial(3)
        assert p.is_zero()
        assert p.degree == 0
        assert np.all(p.evaluate_bits(np.zeros((4, 3), dtype=np.int8)) == 0)

    def test_constant_one(self):
        p = SparseF2Polynomial(2, [[]])
        assert np.all(p.evaluate_bits(enumerate_cube(2, "bits")) == 1)

    def test_single_monomial(self):
        p = SparseF2Polynomial(3, [[0, 2]])
        x = np.array([[1, 0, 1], [1, 1, 0], [0, 0, 1]], dtype=np.int8)
        assert p.evaluate_bits(x).tolist() == [1, 0, 0]

    def test_duplicate_monomials_cancel(self):
        p = SparseF2Polynomial(3, [[0], [0]])
        assert p.is_zero()

    def test_degree_and_sparsity(self):
        p = SparseF2Polynomial(5, [[0], [1, 2], [0, 3, 4]])
        assert p.degree == 3
        assert p.sparsity == 3

    def test_out_of_range_monomial(self):
        with pytest.raises(ValueError):
            SparseF2Polynomial(2, [[5]])

    def test_addition_is_xor(self):
        p = SparseF2Polynomial(3, [[0], [1]])
        q = SparseF2Polynomial(3, [[1], [2]])
        r = p + q
        assert r.monomials == SparseF2Polynomial(3, [[0], [2]]).monomials

    def test_multiplication_idempotent_variables(self):
        # x0 * x0 = x0 over F2 with x^2 = x.
        p = SparseF2Polynomial(2, [[0]])
        assert (p * p) == p

    def test_multiplication_distributes(self):
        p = SparseF2Polynomial(3, [[0], [1]])
        q = SparseF2Polynomial(3, [[2]])
        r = p * q
        assert r == SparseF2Polynomial(3, [[0, 2], [1, 2]])

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            SparseF2Polynomial(2, [[0]]) + SparseF2Polynomial(3, [[0]])

    def test_parity_constructor(self):
        p = SparseF2Polynomial.parity(4, [0, 2])
        x = np.array([[1, 0, 1, 0], [1, 0, 0, 0]], dtype=np.int8)
        assert p.evaluate_bits(x).tolist() == [0, 1]

    def test_to_boolean_function_encoding(self):
        # p(x) = x0 over F2 -> in the +/-1 world: chi encoding of the bit.
        p = SparseF2Polynomial(2, [[0]])
        f = p.to_boolean_function()
        assert f(np.array([1, 1])) == 1   # bit 0 -> value 0 -> +1
        assert f(np.array([-1, 1])) == -1  # bit 1 -> value 1 -> -1

    @given(st.integers(1, 5), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_add_then_add_cancels(self, n, sparsity):
        rng = np.random.default_rng(n * 100 + sparsity)
        p = SparseF2Polynomial.random(n, sparsity, max_degree=n, rng=rng)
        assert (p + p).is_zero()

    @given(st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_eval_linear_in_f2(self, n):
        # (p + q)(x) = p(x) xor q(x) pointwise.
        rng = np.random.default_rng(n)
        p = SparseF2Polynomial.random(n, 3, n, rng)
        q = SparseF2Polynomial.random(n, 3, n, rng)
        x = enumerate_cube(n, "bits")
        assert np.array_equal(
            (p + q).evaluate_bits(x), p.evaluate_bits(x) ^ q.evaluate_bits(x)
        )


class TestXorOfTerms:
    def test_term_size_enforced(self):
        with pytest.raises(ValueError):
            XorOfTerms(4, [[0, 1, 2]], r=2)

    def test_evaluates_like_polynomial(self):
        xt = XorOfTerms(3, [[0], [1, 2]], r=2)
        x = enumerate_cube(3, "bits")
        expected = x[:, 0] ^ (x[:, 1] & x[:, 2])
        assert np.array_equal(xt.evaluate_bits(x), expected)

    def test_num_terms(self):
        xt = XorOfTerms(4, [[0], [1], [2, 3]], r=2)
        assert xt.num_terms == 3

    def test_to_boolean_function_arity(self):
        xt = XorOfTerms(4, [[0]], r=1)
        assert xt.to_boolean_function().n == 4


class TestMonomialBound:
    def test_formula(self):
        assert monomial_count_bound(3, 2) == 12

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            monomial_count_bound(0, 2)
        with pytest.raises(ValueError):
            monomial_count_bound(1, -1)

"""Unit tests for repro.booleanfuncs.fourier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleanfuncs.encoding import enumerate_cube
from repro.booleanfuncs.fourier import (
    estimate_fourier_coefficient,
    fourier_spectrum,
    index_to_subset,
    inverse_walsh_hadamard,
    low_degree_projection,
    sign_of_expansion,
    spectral_weight_by_degree,
    subset_to_index,
    walsh_hadamard,
)
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.ltf import LTF


class TestWalshHadamard:
    def test_constant_function(self):
        coeffs = walsh_hadamard(np.ones(8))
        assert coeffs[0] == pytest.approx(1.0)
        assert np.allclose(coeffs[1:], 0.0)

    def test_parity_function(self):
        f = BooleanFunction.parity_on(3, [0, 1, 2])
        coeffs = walsh_hadamard(f.truth_table())
        idx = subset_to_index([0, 1, 2], 3)
        assert coeffs[idx] == pytest.approx(1.0)
        mask = np.ones(8, dtype=bool)
        mask[idx] = False
        assert np.allclose(coeffs[mask], 0.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            walsh_hadamard(np.ones(6))

    @given(st.integers(1, 6))
    @settings(max_examples=20)
    def test_involution(self, n):
        rng = np.random.default_rng(n)
        v = rng.normal(size=2**n)
        assert np.allclose(inverse_walsh_hadamard(walsh_hadamard(v)), v)

    @given(st.integers(1, 6))
    @settings(max_examples=20)
    def test_parseval(self, n):
        rng = np.random.default_rng(100 + n)
        tab = (1 - 2 * rng.integers(0, 2, size=2**n)).astype(np.int8)
        coeffs = walsh_hadamard(tab)
        assert np.sum(coeffs**2) == pytest.approx(1.0)


class TestIndexSubset:
    @given(st.integers(1, 10))
    def test_roundtrip(self, n):
        rng = np.random.default_rng(n)
        s = int(rng.integers(0, 2**n))
        assert subset_to_index(index_to_subset(s, n), n) == s

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            subset_to_index([7], 4)


class TestSpectrum:
    def test_spectrum_of_dictator(self):
        f = BooleanFunction.parity_on(4, [2])
        spec = fourier_spectrum(f)
        assert spec == {(2,): pytest.approx(1.0)}

    def test_spectrum_matches_definition(self):
        # fhat(S) = E[f chi_S] computed directly.
        rng = np.random.default_rng(5)
        tab = (1 - 2 * rng.integers(0, 2, size=16)).astype(np.int8)
        f = BooleanFunction.from_truth_table(tab)
        cube = enumerate_cube(4)
        spec = fourier_spectrum(f, threshold=-1.0)
        for subset, coeff in spec.items():
            direct = np.mean(tab * np.prod(cube[:, list(subset)], axis=1))
            assert coeff == pytest.approx(direct)

    def test_weight_by_degree_sums_to_one(self):
        f = LTF(np.array([1.0, 2.0, -1.0, 0.5]))
        w = spectral_weight_by_degree(f)
        assert np.sum(w) == pytest.approx(1.0)

    def test_low_degree_projection_keeps_only_low(self):
        f = BooleanFunction.parity_on(5, [0, 1, 2, 3])
        proj = low_degree_projection(f, degree=2)
        assert proj == {}

    def test_sign_of_expansion_recovers_ltf(self):
        ltf = LTF(np.array([3.0, 1.0, -2.0]))
        spec = low_degree_projection(ltf, degree=3)
        g = sign_of_expansion(3, spec)
        assert ltf.distance(g) == 0.0


class TestEstimation:
    def test_estimate_converges(self):
        ltf = LTF(np.array([1.0, 1.0, 1.0, 1.0, 1.0]))
        exact = fourier_spectrum(ltf, threshold=-1.0)[(0,)]
        est = estimate_fourier_coefficient(
            ltf, [0], m=50_000, rng=np.random.default_rng(9)
        )
        assert est == pytest.approx(exact, abs=0.02)

    def test_estimate_with_fixed_samples(self):
        f = BooleanFunction.parity_on(3, [1])
        rng = np.random.default_rng(10)
        x = (1 - 2 * rng.integers(0, 2, size=(1000, 3))).astype(np.int8)
        y = f(x)
        est = estimate_fourier_coefficient(f, [1], samples=(x, y))
        assert est == pytest.approx(1.0)

    def test_matching_m_with_fixed_samples_is_allowed(self):
        f = BooleanFunction.parity_on(3, [1])
        rng = np.random.default_rng(10)
        x = (1 - 2 * rng.integers(0, 2, size=(1000, 3))).astype(np.int8)
        y = f(x)
        est = estimate_fourier_coefficient(f, [1], m=1000, samples=(x, y))
        assert est == pytest.approx(1.0)

    def test_mismatched_m_with_fixed_samples_is_an_error(self):
        # m used to be silently ignored whenever samples was given; now
        # a contradictory m is rejected instead of misleading the caller.
        f = BooleanFunction.parity_on(3, [1])
        rng = np.random.default_rng(10)
        x = (1 - 2 * rng.integers(0, 2, size=(1000, 3))).astype(np.int8)
        y = f(x)
        with pytest.raises(ValueError, match="contradicts"):
            estimate_fourier_coefficient(f, [1], m=500, samples=(x, y))

    def test_missing_m_without_samples_is_an_error(self):
        f = BooleanFunction.parity_on(3, [1])
        with pytest.raises(ValueError, match="m is required"):
            estimate_fourier_coefficient(f, [1])
        with pytest.raises(ValueError, match="positive"):
            estimate_fourier_coefficient(f, [1], m=0)

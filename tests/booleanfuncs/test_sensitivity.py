"""Unit tests for sensitivity and block sensitivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleanfuncs.encoding import enumerate_cube
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.influences import total_influence_exact
from repro.booleanfuncs.ltf import LTF
from repro.booleanfuncs.sensitivity import (
    average_sensitivity,
    block_sensitivity,
    block_sensitivity_at,
    max_sensitivity,
    sensitivity_at,
)


def random_function(n, seed):
    rng = np.random.default_rng(seed)
    tab = (1 - 2 * rng.integers(0, 2, size=2**n)).astype(np.int8)
    return BooleanFunction.from_truth_table(tab)


class TestSensitivity:
    def test_parity_fully_sensitive(self):
        n = 5
        f = BooleanFunction.parity_on(n, range(n))
        x = np.ones(n, dtype=np.int8)
        assert sensitivity_at(f, x) == n
        assert max_sensitivity(f) == n

    def test_constant_insensitive(self):
        f = BooleanFunction.constant(4, 1)
        assert max_sensitivity(f) == 0
        assert sensitivity_at(f, np.ones(4, dtype=np.int8)) == 0

    def test_majority_sensitivity(self):
        # MAJ_3: at a 2-1 point, flipping either majority bit changes f.
        f = LTF(np.ones(3))
        assert sensitivity_at(f, np.array([1, 1, -1], dtype=np.int8)) == 2
        assert max_sensitivity(f) == 2

    def test_average_equals_total_influence(self):
        f = random_function(5, 0)
        assert average_sensitivity(f) == pytest.approx(total_influence_exact(f))

    def test_point_length_checked(self):
        f = BooleanFunction.constant(3, 1)
        with pytest.raises(ValueError):
            sensitivity_at(f, np.ones(4, dtype=np.int8))
        with pytest.raises(ValueError):
            block_sensitivity_at(f, np.ones(4, dtype=np.int8))


class TestBlockSensitivity:
    def test_parity_blocks_are_singletons(self):
        n = 4
        f = BooleanFunction.parity_on(n, range(n))
        x = np.ones(n, dtype=np.int8)
        assert block_sensitivity_at(f, x) == n

    def test_constant_zero(self):
        f = BooleanFunction.constant(3, -1)
        assert block_sensitivity(f) == 0

    def test_or_function(self):
        # OR at the all-false point: every singleton is sensitive.
        def or_eval(x):
            return np.where(np.any(x == -1, axis=1), -1, 1).astype(np.int8)

        f = BooleanFunction(4, or_eval, name="or4")
        all_true = np.ones(4, dtype=np.int8)
        assert block_sensitivity_at(f, all_true) == 4
        # At the all-false point f only changes when EVERY bit flips, so
        # there is a single sensitive block (the full coordinate set).
        all_false = -np.ones(4, dtype=np.int8)
        assert block_sensitivity_at(f, all_false) == 1

    @given(st.integers(2, 5), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_bs_at_least_s(self, n, seed):
        f = random_function(n, seed)
        cube = enumerate_cube(n)
        rng = np.random.default_rng(seed)
        x = cube[int(rng.integers(0, 2**n))]
        assert block_sensitivity_at(f, x) >= sensitivity_at(f, x)

    @given(st.integers(2, 4), st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_nisan_quadratic_bound(self, n, seed):
        """bs(f) <= s(f)^2 (and s(f) >= 1 for non-constant f)."""
        f = random_function(n, seed)
        s = max_sensitivity(f)
        bs = block_sensitivity(f)
        if s == 0:
            assert bs == 0
        else:
            assert bs <= s * s

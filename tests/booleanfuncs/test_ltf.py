"""Unit tests for repro.booleanfuncs.ltf."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleanfuncs.encoding import enumerate_cube, random_pm1
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.ltf import (
    LTF,
    chow_parameters_exact,
    empirical_distance,
    estimate_chow_parameters,
    integer_weight_approximation,
    ltf_from_chow_parameters,
    regularity,
)


class TestLTFBasics:
    def test_majority(self):
        f = LTF(np.ones(3))
        assert f(np.array([1, 1, -1])) == 1
        assert f(np.array([-1, -1, 1])) == -1

    def test_threshold_shifts_decision(self):
        f = LTF(np.ones(3), threshold=2.5)
        assert f(np.array([1, 1, -1])) == -1  # sum=1 < 2.5
        assert f(np.array([1, 1, 1])) == 1

    def test_sign_zero_is_plus_one(self):
        f = LTF(np.array([1.0, -1.0]))
        assert f(np.array([1, 1])) == 1

    def test_margin(self):
        f = LTF(np.array([2.0, -1.0]), threshold=0.5)
        assert f.margin(np.array([1, -1])) == pytest.approx(2.5)

    def test_rejects_matrix_weights(self):
        with pytest.raises(ValueError):
            LTF(np.ones((2, 2)))

    def test_normalised_same_function(self):
        f = LTF(np.array([3.0, 4.0]), threshold=1.0)
        g = f.normalised()
        assert np.linalg.norm(g.weights) == pytest.approx(1.0)
        assert f.distance(g) == 0.0

    def test_normalise_zero_raises(self):
        with pytest.raises(ValueError):
            LTF(np.zeros(3)).normalised()

    def test_random_reproducible(self):
        a = LTF.random(5, np.random.default_rng(42))
        b = LTF.random(5, np.random.default_rng(42))
        assert np.array_equal(a.weights, b.weights)


class TestChowParameters:
    def test_exact_matches_definition(self):
        f = LTF(np.array([1.0, 2.0, -1.0]))
        chow = chow_parameters_exact(f)
        cube = enumerate_cube(3)
        tab = f.truth_table().astype(float)
        assert chow[0] == pytest.approx(tab.mean())
        for i in range(3):
            assert chow[i + 1] == pytest.approx(np.mean(tab * cube[:, i]))

    def test_estimate_converges_to_exact(self):
        f = LTF(np.array([1.0, -2.0, 0.5, 1.5]))
        exact = chow_parameters_exact(f)
        rng = np.random.default_rng(0)
        x = random_pm1(4, 100_000, rng)
        est = estimate_chow_parameters(x, f(x))
        assert np.allclose(est, exact, atol=0.02)

    def test_estimate_validates_shapes(self):
        with pytest.raises(ValueError):
            estimate_chow_parameters(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            estimate_chow_parameters(np.ones((0, 2)), np.ones(0))

    def test_reconstruction_recovers_majority(self):
        # For MAJ the Chow vector is proportional to the weights, so the
        # reconstruction is exact.
        f = LTF(np.ones(5))
        g = ltf_from_chow_parameters(chow_parameters_exact(f))
        assert f.distance(g) == 0.0

    @given(st.integers(2, 7))
    @settings(max_examples=15, deadline=None)
    def test_reconstruction_close_for_random_ltfs(self, n):
        # Chow-parameter reconstruction of an actual LTF should be close.
        f = LTF.random(n, np.random.default_rng(n))
        g = ltf_from_chow_parameters(chow_parameters_exact(f))
        assert f.distance(g) <= 0.15

    def test_reconstruction_degenerate_chow(self):
        g = ltf_from_chow_parameters(np.array([1.0, 0.0, 0.0]))
        # Should return a constant-ish function without crashing.
        assert g.n == 2

    def test_reconstruction_rejects_scalar(self):
        with pytest.raises(ValueError):
            ltf_from_chow_parameters(np.array([0.5]))


class TestIntegerApproximation:
    def test_integer_weights_close(self):
        f = LTF.random(8, np.random.default_rng(3))
        w, theta = integer_weight_approximation(f, eps=0.01)
        assert w.dtype == np.int64
        g = LTF(w.astype(float), theta)
        assert f.distance(g) <= 0.05

    def test_weight_magnitude_bounded(self):
        f = LTF.random(8, np.random.default_rng(4))
        eps = 0.05
        w, _ = integer_weight_approximation(f, eps=eps)
        cap = np.sqrt(8) * (1 / eps) ** max(1.0, np.log2(1 / eps))
        assert np.max(np.abs(w)) <= cap

    def test_tiny_weights_do_not_crash(self):
        f = LTF(np.array([0.0, 0.0, 0.0, 1e-30]))
        w, _ = integer_weight_approximation(f, eps=0.1)
        assert w.shape == (4,)

    def test_rejects_bad_eps(self):
        f = LTF.random(4, np.random.default_rng(5))
        with pytest.raises(ValueError):
            integer_weight_approximation(f, eps=0.0)


class TestRegularity:
    def test_majority_is_most_regular(self):
        f = LTF(np.ones(9))
        assert regularity(f) == pytest.approx(1 / 3)

    def test_dictator_is_least_regular(self):
        f = LTF(np.array([1.0, 0.0, 0.0, 0.0]))
        assert regularity(f) == pytest.approx(1.0)

    def test_zero_weights(self):
        assert regularity(LTF(np.zeros(3))) == 0.0


class TestEmpiricalDistance:
    def test_self_distance_zero(self):
        f = LTF.random(20, np.random.default_rng(6))
        assert empirical_distance(f, f, m=1000) == 0.0

    def test_negation_distance_one(self):
        f = LTF.random(20, np.random.default_rng(7))
        assert empirical_distance(f, f.negate(), m=1000) == 1.0

    def test_matches_exact_for_small_n(self):
        f = LTF.random(6, np.random.default_rng(8))
        g = LTF.random(6, np.random.default_rng(9))
        exact = f.distance(g)
        emp = empirical_distance(f, g, m=50_000, rng=np.random.default_rng(10))
        assert emp == pytest.approx(exact, abs=0.02)

"""Unit tests for repro.booleanfuncs.influences."""

import numpy as np
import pytest

from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.influences import (
    influence_exact,
    influence_mc,
    influences_exact,
    is_junta_on,
    junta_coordinates,
    total_influence_exact,
)
from repro.booleanfuncs.ltf import LTF


class TestExactInfluences:
    def test_dictator_influence(self):
        f = BooleanFunction.parity_on(4, [1])
        inf = influences_exact(f)
        assert inf[1] == pytest.approx(1.0)
        assert inf[0] == inf[2] == inf[3] == pytest.approx(0.0)

    def test_parity_all_influences_one(self):
        f = BooleanFunction.parity_on(3, [0, 1, 2])
        assert np.allclose(influences_exact(f), 1.0)

    def test_total_influence_of_parity(self):
        n = 5
        f = BooleanFunction.parity_on(n, range(n))
        assert total_influence_exact(f) == pytest.approx(n)

    def test_majority_influences_symmetric(self):
        f = LTF(np.ones(5))
        inf = influences_exact(f)
        assert np.allclose(inf, inf[0])
        # Influence of each coordinate of MAJ_5 is C(4,2)/2^4 = 6/16.
        assert inf[0] == pytest.approx(6 / 16)

    def test_influence_exact_range_check(self):
        f = BooleanFunction.constant(3, 1)
        with pytest.raises(ValueError):
            influence_exact(f, 3)


class TestMonteCarloInfluence:
    def test_matches_exact(self):
        f = LTF(np.array([3.0, 1.0, 1.0, 1.0]))
        exact = influence_exact(f, 0)
        mc = influence_mc(f, 0, m=50_000, rng=np.random.default_rng(0))
        assert mc == pytest.approx(exact, abs=0.01)

    def test_range_check(self):
        f = BooleanFunction.constant(3, 1)
        with pytest.raises(ValueError):
            influence_mc(f, -1)


class TestJunta:
    def test_junta_coordinates_exact(self):
        # Function depends on coordinates {0, 3} only.
        f = BooleanFunction.parity_on(6, [0, 3])
        assert junta_coordinates(f) == [0, 3]

    def test_junta_coordinates_sampled(self):
        f = BooleanFunction.parity_on(6, [2, 5])
        coords = junta_coordinates(f, tau=0.1, m=2000, rng=np.random.default_rng(1))
        assert coords == [2, 5]

    def test_is_junta_on(self):
        f = BooleanFunction.parity_on(5, [1, 2])
        assert is_junta_on(f, [1, 2])
        assert is_junta_on(f, [0, 1, 2])
        assert not is_junta_on(f, [1])

    def test_constant_is_empty_junta(self):
        f = BooleanFunction.constant(4, -1)
        assert is_junta_on(f, [])
        assert junta_coordinates(f) == []

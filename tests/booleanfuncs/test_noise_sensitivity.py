"""Unit tests for repro.booleanfuncs.noise_sensitivity."""

import numpy as np
import pytest

from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.ltf import LTF
from repro.booleanfuncs.noise_sensitivity import (
    lmn_degree_for_xor_puf,
    ltf_noise_sensitivity_bound,
    noise_sensitivity_exact,
    noise_sensitivity_mc,
    noise_stability_exact,
    xor_of_ltfs_noise_sensitivity_bound,
)


class TestExactNoiseSensitivity:
    def test_constant_function_insensitive(self):
        f = BooleanFunction.constant(4, 1)
        assert noise_sensitivity_exact(f, 0.3) == pytest.approx(0.0)

    def test_dictator(self):
        # NS_eps(x_i) = eps exactly.
        f = BooleanFunction.parity_on(5, [2])
        for eps in (0.0, 0.1, 0.25, 0.5):
            assert noise_sensitivity_exact(f, eps) == pytest.approx(eps)

    def test_parity_formula(self):
        # NS_eps(parity_n) = 1/2 (1 - (1-2eps)^n).
        n = 4
        f = BooleanFunction.parity_on(n, range(n))
        for eps in (0.05, 0.2):
            expected = 0.5 * (1 - (1 - 2 * eps) ** n)
            assert noise_sensitivity_exact(f, eps) == pytest.approx(expected)

    def test_monotone_in_eps(self):
        f = LTF(np.array([1.0, 0.7, -0.3, 2.0]))
        values = [noise_sensitivity_exact(f, e) for e in (0.01, 0.1, 0.3, 0.5)]
        assert values == sorted(values)

    def test_rejects_bad_eps(self):
        f = BooleanFunction.constant(2, 1)
        with pytest.raises(ValueError):
            noise_sensitivity_exact(f, 1.5)


class TestStability:
    def test_stability_at_one_is_one(self):
        f = LTF(np.array([1.0, -1.0, 0.5]))
        assert noise_stability_exact(f, 1.0) == pytest.approx(1.0)

    def test_stability_relationship(self):
        # NS_eps(f) = 1/2 - 1/2 Stab_{1-2eps}(f).
        f = LTF(np.array([2.0, 1.0, 1.0, -1.0]))
        eps = 0.15
        ns = noise_sensitivity_exact(f, eps)
        stab = noise_stability_exact(f, 1 - 2 * eps)
        assert ns == pytest.approx(0.5 - 0.5 * stab)

    def test_rejects_bad_rho(self):
        f = BooleanFunction.constant(2, 1)
        with pytest.raises(ValueError):
            noise_stability_exact(f, 2.0)


class TestMonteCarlo:
    def test_mc_matches_exact(self):
        f = LTF(np.array([1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]))
        eps = 0.2
        exact = noise_sensitivity_exact(f, eps)
        mc = noise_sensitivity_mc(f, eps, m=60_000, rng=np.random.default_rng(0))
        assert mc == pytest.approx(exact, abs=0.01)

    def test_mc_rejects_zero_samples(self):
        f = BooleanFunction.constant(2, 1)
        with pytest.raises(ValueError):
            noise_sensitivity_mc(f, 0.1, m=0)


class TestBounds:
    def test_peres_bound_holds_for_random_ltfs(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            f = LTF.random(8, rng)
            for eps in (0.01, 0.1, 0.3):
                assert noise_sensitivity_exact(f, eps) <= ltf_noise_sensitivity_bound(eps)

    def test_kos_bound_holds_for_xor_of_ltfs(self):
        rng = np.random.default_rng(2)
        k = 3
        fs = [LTF.random(6, rng) for _ in range(k)]
        h = BooleanFunction.xor_many(fs)
        for eps in (0.01, 0.05):
            assert noise_sensitivity_exact(h, eps) <= xor_of_ltfs_noise_sensitivity_bound(k, eps)

    def test_bounds_capped_at_half(self):
        assert ltf_noise_sensitivity_bound(1.0) == 0.5
        assert xor_of_ltfs_noise_sensitivity_bound(100, 0.5) == 0.5

    def test_bound_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ltf_noise_sensitivity_bound(-0.1)
        with pytest.raises(ValueError):
            xor_of_ltfs_noise_sensitivity_bound(0, 0.1)


class TestLMNDegree:
    def test_corollary1_formula(self):
        # m = ceil(2.32 k^2 / eps^2)
        assert lmn_degree_for_xor_puf(2, 0.5) == int(np.ceil(2.32 * 4 / 0.25))

    def test_grows_with_k(self):
        ms = [lmn_degree_for_xor_puf(k, 0.2) for k in (1, 2, 4, 8)]
        assert ms == sorted(ms) and ms[0] < ms[-1]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lmn_degree_for_xor_puf(2, 0.0)
        with pytest.raises(ValueError):
            lmn_degree_for_xor_puf(0, 0.1)

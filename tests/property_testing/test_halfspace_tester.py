"""Unit tests for the MORS halfspace tester."""

import math

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.fourier import spectral_weight_by_degree
from repro.booleanfuncs.ltf import LTF
from repro.property_testing.halfspace_tester import (
    HalfspaceTester,
    degree1_weight_ustat,
    expected_degree1_weight,
)
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import CRPSet, generate_crps


class TestExpectedWeight:
    def test_unbiased_is_two_over_pi(self):
        assert expected_degree1_weight(0.0) == pytest.approx(2.0 / math.pi)

    def test_symmetric_in_bias(self):
        assert expected_degree1_weight(0.3) == pytest.approx(
            expected_degree1_weight(-0.3)
        )

    def test_extreme_bias_vanishes(self):
        assert expected_degree1_weight(1.0) == 0.0
        assert expected_degree1_weight(0.999) < 0.01

    def test_validates(self):
        with pytest.raises(ValueError):
            expected_degree1_weight(1.5)

    def test_matches_exact_weight_of_majority(self):
        # MAJ_n has W1 -> 2/pi; at n=9 it is already close.
        f = LTF(np.ones(9))
        w = spectral_weight_by_degree(f)[1]
        assert w == pytest.approx(2.0 / math.pi, abs=0.06)


class TestUStatistic:
    def test_matches_exact_w1(self):
        f = LTF(np.array([2.0, 1.0, 1.0, -1.0, 0.5, 1.5]))
        exact_w1 = spectral_weight_by_degree(f)[1]
        rng = np.random.default_rng(0)
        x = random_pm1(6, 200_000, rng)
        est = degree1_weight_ustat(x, f(x), rng)
        assert est == pytest.approx(exact_w1, abs=0.03)

    def test_parity_has_no_degree1_weight(self):
        f = BooleanFunction.parity_on(8, [0, 1, 2])
        rng = np.random.default_rng(1)
        x = random_pm1(8, 100_000, rng)
        est = degree1_weight_ustat(x, f(x), rng)
        assert abs(est) < 0.03

    def test_validates(self):
        with pytest.raises(ValueError):
            degree1_weight_ustat(np.ones((1, 3)), np.ones(1))


class TestHalfspaceTester:
    def test_accepts_random_ltfs(self):
        rng = np.random.default_rng(2)
        tester = HalfspaceTester(eps=0.1, delta=0.05)
        for seed in range(4):
            target = LTF.random(24, np.random.default_rng(seed))
            result = tester.test_function(24, target, m=60_000, rng=rng)
            assert result.accepted, result.summary()

    def test_rejects_parity(self):
        """Parity has zero degree-1 weight: maximally far from halfspaces."""
        rng = np.random.default_rng(3)
        target = BooleanFunction.parity_on(16, range(16))
        tester = HalfspaceTester(eps=0.1, delta=0.05)
        result = tester.test_function(16, target, m=60_000, rng=rng)
        assert not result.accepted
        assert result.farness_estimate > 0.2

    def test_rejects_br_puf(self):
        """The Table III effect: BR PUFs are not halfspace-consistent."""
        rng = np.random.default_rng(4)
        puf = BistableRingPUF(32, np.random.default_rng(5), interaction_scale=0.9)
        tester = HalfspaceTester(eps=0.05, delta=0.05)
        result = tester.test_function(32, puf.eval, m=120_000, rng=rng)
        assert not result.accepted

    def test_accepts_linear_br_puf_ablation(self):
        """With interactions off, the BR PUF is an LTF and must pass."""
        rng = np.random.default_rng(6)
        puf = BistableRingPUF(32, np.random.default_rng(7), interaction_scale=0.0)
        tester = HalfspaceTester(eps=0.1, delta=0.05)
        result = tester.test_function(32, puf.eval, m=60_000, rng=rng)
        assert result.accepted, result.summary()

    def test_small_sample_widens_threshold(self):
        rng = np.random.default_rng(8)
        target = LTF.random(16, np.random.default_rng(9))
        tester = HalfspaceTester(eps=0.05)
        small = tester.test_function(16, target, m=200, rng=rng)
        large = tester.test_function(16, target, m=50_000, rng=rng)
        assert small.threshold > large.threshold

    def test_crps_interface(self):
        rng = np.random.default_rng(10)
        puf = BistableRingPUF(16, np.random.default_rng(11))
        crps = generate_crps(puf, 20_000, rng)
        result = HalfspaceTester().test_crps(crps, rng)
        assert result.examples_used == 20_000

    def test_validates(self):
        with pytest.raises(ValueError):
            HalfspaceTester(eps=0.0)
        tester = HalfspaceTester()
        with pytest.raises(ValueError):
            tester.test_crps(
                CRPSet(np.ones((2, 3), dtype=np.int8), np.ones(2, dtype=np.int8))
            )
        with pytest.raises(ValueError):
            tester.test_function(4, lambda x: np.ones(len(x)), m=2)

    def test_summary_text(self):
        rng = np.random.default_rng(12)
        target = LTF.random(8, np.random.default_rng(13))
        result = HalfspaceTester().test_function(8, target, m=10_000, rng=rng)
        assert "W1=" in result.summary()

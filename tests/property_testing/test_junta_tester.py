"""Unit tests for the k-junta tester."""

import numpy as np
import pytest

from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.ltf import LTF
from repro.property_testing.junta_tester import JuntaTester
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestJuntaTester:
    def test_accepts_true_junta(self):
        target = BooleanFunction.parity_on(16, [2, 7, 11])
        tester = JuntaTester(k=3, eps=0.1)
        result = tester.test(16, target, np.random.default_rng(0))
        assert result.accepted
        assert result.candidate_coordinates == [2, 7, 11]
        assert result.residual_influence == 0.0

    def test_accepts_with_slack_k(self):
        target = BooleanFunction.parity_on(12, [0, 5])
        tester = JuntaTester(k=4, eps=0.1)
        result = tester.test(12, target, np.random.default_rng(1))
        assert result.accepted
        assert {0, 5} <= set(result.candidate_coordinates)

    def test_rejects_majority_as_small_junta(self):
        target = LTF(np.ones(15))
        tester = JuntaTester(k=3, eps=0.1)
        result = tester.test(15, target, np.random.default_rng(2))
        assert not result.accepted
        assert result.residual_influence > result.threshold

    def test_rejects_full_parity(self):
        target = BooleanFunction.parity_on(10, range(10))
        tester = JuntaTester(k=5, eps=0.1)
        result = tester.test(10, target, np.random.default_rng(3))
        assert not result.accepted

    def test_junta_ltf_accepted(self):
        """The Corollary 2 shape: an LTF on few coordinates is a junta."""

        def target(x):
            # Weights chosen so no coordinate dominates the other two.
            return np.where(
                1.5 * x[:, 3] + 1.0 * x[:, 8] - 0.75 * x[:, 12] >= 0, 1, -1
            ).astype(np.int8)

        tester = JuntaTester(k=3, eps=0.1)
        result = tester.test(16, target, np.random.default_rng(4))
        assert result.accepted
        assert set(result.candidate_coordinates) == {3, 8, 12}

    def test_xor_puf_not_a_small_junta(self):
        """Uncorrelated arbiter chains spread influence over all stages."""
        puf = XORArbiterPUF(16, 2, np.random.default_rng(5))
        tester = JuntaTester(k=3, eps=0.1)
        result = tester.test(16, puf.eval, np.random.default_rng(6))
        assert not result.accepted

    def test_query_accounting(self):
        target = BooleanFunction.parity_on(8, [1])
        tester = JuntaTester(k=1, influence_samples=128, residual_samples=256)
        result = tester.test(8, target, np.random.default_rng(7))
        assert result.queries_used == 8 * 2 * 128 + 2 * 256

    def test_validation(self):
        with pytest.raises(ValueError):
            JuntaTester(k=-1)
        with pytest.raises(ValueError):
            JuntaTester(k=2, eps=0.0)
        with pytest.raises(ValueError):
            JuntaTester(k=2, influence_samples=0)
        tester = JuntaTester(k=5)
        with pytest.raises(ValueError):
            tester.test(5, lambda x: np.ones(len(x)), np.random.default_rng(8))

    def test_summary_text(self):
        target = BooleanFunction.parity_on(6, [0])
        result = JuntaTester(k=1).test(6, target, np.random.default_rng(9))
        assert "junta" in result.summary()

"""Unit tests for empirical distance-to-halfspace estimators."""

import numpy as np
import pytest

from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.ltf import LTF
from repro.property_testing.distance import (
    best_ltf_agreement,
    empirical_min_distance,
    exact_min_distance_small_n,
)
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import generate_crps


class TestBestLTFAgreement:
    def test_near_perfect_on_actual_ltf(self):
        rng = np.random.default_rng(0)
        target = LTF.random(12, rng)
        from repro.booleanfuncs.encoding import random_pm1
        from repro.pufs.crp import CRPSet

        x = random_pm1(12, 8000, rng)
        crps = CRPSet(x, target(x))
        train, test = crps.split(0.7, rng)
        acc, name = best_ltf_agreement(train, test, rng)
        assert acc > 0.95
        assert name in {"perceptron", "averaged_perceptron", "logistic", "chow"}

    def test_capped_on_br_puf(self):
        rng = np.random.default_rng(1)
        puf = BistableRingPUF(16, np.random.default_rng(2))
        crps = generate_crps(puf, 12_000, rng)
        train, test = crps.split(0.7, rng)
        acc, _ = best_ltf_agreement(train, test, rng)
        assert 0.6 < acc < 0.995

    def test_empirical_min_distance_complements(self):
        rng = np.random.default_rng(3)
        puf = BistableRingPUF(16, np.random.default_rng(4))
        crps = generate_crps(puf, 8000, rng)
        train, test = crps.split(0.7, rng)
        d = empirical_min_distance(train, test, np.random.default_rng(5))
        assert 0.0 <= d <= 0.5


class TestExactSmallN:
    def test_zero_for_ltf(self):
        f = LTF(np.array([1.0, 2.0, -0.5, 1.0, 0.3]))
        d = exact_min_distance_small_n(f, rng=np.random.default_rng(6))
        assert d == 0.0

    def test_positive_for_parity(self):
        f = BooleanFunction.parity_on(6, range(6))
        d = exact_min_distance_small_n(f, rng=np.random.default_rng(7))
        # Parity is asymptotically 1/2-far from every halfspace; at n=6
        # corner effects let some LTFs agree a bit above chance.
        assert 0.3 < d <= 0.5

    def test_positive_for_nonlinear_br_puf(self):
        puf = BistableRingPUF(10, np.random.default_rng(8), interaction_scale=0.8)
        f = puf.as_boolean_function()
        d = exact_min_distance_small_n(f, rng=np.random.default_rng(9))
        assert d > 0.02

    def test_extra_candidates_used(self):
        f = LTF(np.array([3.0, -1.0, 0.5, 2.0]))
        # Give the true function itself as a candidate: distance 0 certain.
        d = exact_min_distance_small_n(
            f, extra_candidates=[f], random_candidates=0,
            rng=np.random.default_rng(10),
        )
        assert d == 0.0

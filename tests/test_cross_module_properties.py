"""Property-based invariants that span modules (hypothesis-driven).

These are the library's load-bearing mathematical identities; each test
draws randomized instances and checks an exact or statistical invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booleanfuncs.encoding import enumerate_cube, random_pm1
from repro.booleanfuncs.fourier import (
    fourier_spectrum,
    spectral_weight_by_degree,
    walsh_hadamard,
)
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.influences import influences_exact
from repro.booleanfuncs.ltf import LTF, chow_parameters_exact
from repro.booleanfuncs.noise_sensitivity import (
    noise_sensitivity_exact,
    noise_sensitivity_mc,
)
from repro.booleanfuncs.polynomials import SparseF2Polynomial
from repro.locking.circuits import random_circuit
from repro.locking.cnf import CNF, tseitin_encode
from repro.locking.solver import SATSolver, Satisfiability
from repro.pufs.arbiter import parity_transform


def random_function(n: int, seed: int) -> BooleanFunction:
    rng = np.random.default_rng(seed)
    tab = (1 - 2 * rng.integers(0, 2, size=2**n)).astype(np.int8)
    return BooleanFunction.from_truth_table(tab)


class TestFourierIdentities:
    @given(st.integers(1, 6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_parseval(self, n, seed):
        f = random_function(n, seed)
        assert np.sum(walsh_hadamard(f.truth_table()) ** 2) == pytest.approx(1.0)

    @given(st.integers(1, 6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_plancherel_distance(self, n, seed):
        """dist(f, g) = (1 - <fhat, ghat>) / 2."""
        f = random_function(n, seed)
        g = random_function(n, seed + 1)
        inner = float(
            np.sum(
                walsh_hadamard(f.truth_table()) * walsh_hadamard(g.truth_table())
            )
        )
        assert f.distance(g) == pytest.approx((1.0 - inner) / 2.0)

    @given(st.integers(2, 6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_total_influence_equals_weighted_degree(self, n, seed):
        """I[f] = sum_k k W^k[f]."""
        f = random_function(n, seed)
        weights = spectral_weight_by_degree(f)
        expected = float(np.sum(np.arange(n + 1) * weights))
        assert np.sum(influences_exact(f)) == pytest.approx(expected)

    @given(st.integers(2, 6), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_xor_spectrum_is_convolution_for_disjoint_juntas(self, n, seed):
        """fg for functions on disjoint variables: fhatg(S u T) = fhat(S) ghat(T)."""
        rng = np.random.default_rng(seed)
        # f on first coordinate only, g a parity on the rest.
        f = BooleanFunction.parity_on(n, [0])
        rest = [i for i in range(1, n)]
        g = BooleanFunction.parity_on(n, rest)
        h = f.xor(g)
        spec = fourier_spectrum(h)
        assert spec == {tuple(range(n)): pytest.approx(1.0)}

    @given(st.integers(2, 7), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_noise_sensitivity_mc_matches_exact(self, n, seed):
        rng = np.random.default_rng(seed)
        f = LTF.random(n, rng)
        eps = float(rng.uniform(0.05, 0.4))
        exact = noise_sensitivity_exact(f, eps)
        mc = noise_sensitivity_mc(f, eps, m=40_000, rng=rng)
        assert mc == pytest.approx(exact, abs=0.02)

    @given(st.integers(2, 6), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_chow_parameters_are_low_degree_spectrum(self, n, seed):
        f = random_function(n, seed)
        chow = chow_parameters_exact(f)
        spec = fourier_spectrum(f, threshold=-1.0)
        assert chow[0] == pytest.approx(spec.get((), 0.0))
        for i in range(n):
            assert chow[i + 1] == pytest.approx(spec.get((i,), 0.0))


class TestF2PolynomialRing:
    @st.composite
    @staticmethod
    def polys(draw, n=5):
        mons = draw(
            st.lists(
                st.lists(st.integers(0, n - 1), max_size=n, unique=True),
                max_size=6,
            )
        )
        return SparseF2Polynomial(n, mons)

    @given(polys(), polys())
    @settings(max_examples=40, deadline=None)
    def test_addition_commutes(self, p, q):
        assert p + q == q + p

    @given(polys(), polys(), polys())
    @settings(max_examples=40, deadline=None)
    def test_addition_associates(self, p, q, r):
        assert (p + q) + r == p + (q + r)

    @given(polys(), polys(), polys())
    @settings(max_examples=25, deadline=None)
    def test_multiplication_distributes(self, p, q, r):
        assert p * (q + r) == (p * q) + (p * r)

    @given(polys(), polys())
    @settings(max_examples=25, deadline=None)
    def test_multiplication_commutes(self, p, q):
        assert p * q == q * p

    @given(polys())
    @settings(max_examples=25, deadline=None)
    def test_char_two(self, p):
        assert (p + p).is_zero()

    @given(polys(), polys())
    @settings(max_examples=25, deadline=None)
    def test_eval_homomorphism(self, p, q):
        x = enumerate_cube(5, "bits")
        assert np.array_equal(
            (p * q).evaluate_bits(x),
            p.evaluate_bits(x) & q.evaluate_bits(x),
        )


class TestTransformBijectivity:
    @given(st.integers(2, 10), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_parity_transform_injective(self, n, seed):
        rng = np.random.default_rng(seed)
        c = random_pm1(n, 200, rng)
        unique_c = len({tuple(r) for r in c})
        phi = parity_transform(c)[:, :-1]
        unique_phi = len({tuple(r) for r in phi})
        assert unique_c == unique_phi

    @given(st.integers(2, 10), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_parity_transform_uniform_to_uniform(self, n, seed):
        """phi maps the uniform distribution to the uniform distribution."""
        rng = np.random.default_rng(seed)
        c = random_pm1(n, 4000, rng)
        phi = parity_transform(c)[:, :-1]
        # Each feature column is +/-1 balanced.
        assert np.all(np.abs(phi.mean(axis=0)) < 0.1)


class TestUnrollEquivalence:
    @given(st.integers(0, 1000), st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_unrolled_equals_cycle_accurate_simulation(self, seed, frames):
        """Unrolling is exact: the flattened circuit reproduces the
        sequential run for every frame count, machine, and key."""
        from repro.automata.mealy import MealyMachine
        from repro.locking.sequential_netlist import synthesize_mealy
        from repro.locking.unroll import lock_sequential, unroll

        rng = np.random.default_rng(seed)
        machine = MealyMachine.random(
            int(rng.integers(2, 6)), [(0,), (1,)], ("a", "b"), rng
        )
        circuit = synthesize_mealy(machine)
        max_key = max(1, min(5, circuit.core.num_gates))
        locked = lock_sequential(circuit, int(rng.integers(1, max_key + 1)), rng)
        unrolled = unroll(locked, frames)
        words = [
            np.array([int(rng.integers(0, 2))]) for _ in range(frames)
        ]
        key = rng.integers(0, 2, size=locked.correct_key.size).astype(np.int8)
        _, seq_out = locked.run(words, key)
        flat = unrolled.evaluate_locked(np.concatenate(words)[None, :], key)[0]
        assert np.array_equal(flat, np.concatenate(seq_out))


class TestCircuitCnfAgreement:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_tseitin_models_match_simulation(self, seed):
        rng = np.random.default_rng(seed)
        net = random_circuit(5, 12, 2, rng)
        x = rng.integers(0, 2, size=5).astype(np.int8)
        cnf = CNF()
        var_map = tseitin_encode(net, cnf)
        assumptions = [
            var_map[s] if b else -var_map[s] for s, b in zip(net.inputs, x)
        ]
        status, model = SATSolver(cnf.clauses, cnf.num_vars).solve(
            assumptions=assumptions
        )
        assert status is Satisfiability.SAT
        out = net.evaluate(x)
        for sig, bit in zip(net.outputs, out):
            assert model[var_map[sig]] == bool(bit)

"""Unit tests for DFA boolean operations and bit-aliasing metric."""

import numpy as np
import pytest

from repro.automata.dfa import DFA
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.metrics import bit_aliasing


def even_zeros():
    return DFA((0, 1), [{0: 1, 1: 0}, {0: 0, 1: 1}], {0})


def ends_in_one():
    return DFA((0, 1), [{0: 0, 1: 1}, {0: 0, 1: 1}], {1})


WORDS = [
    (),
    (0,),
    (1,),
    (0, 1),
    (1, 0),
    (0, 0, 1),
    (1, 1, 0, 0),
    (0, 1, 0, 1, 1),
]


class TestDFAOps:
    def test_complement(self):
        dfa = even_zeros()
        comp = dfa.complement()
        for w in WORDS:
            assert comp.accepts(w) == (not dfa.accepts(w))

    def test_double_complement_identity(self):
        dfa = ends_in_one()
        assert dfa.complement().complement().equivalent(dfa)

    def test_intersection(self):
        a, b = even_zeros(), ends_in_one()
        inter = a.intersection(b)
        for w in WORDS:
            assert inter.accepts(w) == (a.accepts(w) and b.accepts(w))

    def test_union_de_morgan(self):
        a, b = even_zeros(), ends_in_one()
        union = a.union(b)
        via_demorgan = (
            a.complement().intersection(b.complement()).complement()
        )
        assert union.equivalent(via_demorgan)

    def test_symmetric_difference_and_equivalence(self):
        a = even_zeros()
        assert a.symmetric_difference(a).is_empty()
        b = ends_in_one()
        diff = a.symmetric_difference(b)
        assert not diff.is_empty()
        for w in WORDS:
            assert diff.accepts(w) == (a.accepts(w) != b.accepts(w))

    def test_is_empty(self):
        nothing = DFA((0,), [{0: 0}], set())
        assert nothing.is_empty()
        everything = DFA((0,), [{0: 0}], {0})
        assert not everything.is_empty()

    def test_alphabet_mismatch(self):
        a = even_zeros()
        b = DFA(("x",), [{"x": 0}], {0})
        with pytest.raises(ValueError):
            a.intersection(b)

    def test_random_dfas_roundtrip(self):
        rng = np.random.default_rng(0)
        for seed in range(4):
            a = DFA.random(5, (0, 1), np.random.default_rng(seed))
            b = DFA.random(4, (0, 1), np.random.default_rng(seed + 100))
            # L(a) = (L(a) ∩ L(b)) ∪ (L(a) ∩ ¬L(b))
            rebuilt = a.intersection(b).union(a.intersection(b.complement()))
            assert rebuilt.equivalent(a)


class TestBitAliasing:
    def test_near_half_for_arbiter_population(self):
        pufs = [ArbiterPUF(32, np.random.default_rng(s)) for s in range(40)]
        aliasing = bit_aliasing(pufs, m=300, rng=np.random.default_rng(1))
        assert aliasing.shape == (300,)
        assert 0.3 < float(np.mean(aliasing)) < 0.7

    def test_identical_chips_fully_aliased(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(size=9)
        pufs = [ArbiterPUF(8, weights=weights) for _ in range(5)]
        aliasing = bit_aliasing(pufs, m=200, rng=np.random.default_rng(3))
        assert np.all((aliasing == 0.0) | (aliasing == 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            bit_aliasing([ArbiterPUF(8, np.random.default_rng(4))])
        with pytest.raises(ValueError):
            bit_aliasing(
                [
                    ArbiterPUF(8, np.random.default_rng(5)),
                    ArbiterPUF(16, np.random.default_rng(6)),
                ]
            )

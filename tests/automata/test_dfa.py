"""Unit tests for repro.automata.dfa."""

import numpy as np
import pytest

from repro.automata.dfa import DFA


def even_zeros_dfa():
    """Accepts binary words with an even number of 0s."""
    return DFA(
        alphabet=(0, 1),
        transitions=[{0: 1, 1: 0}, {0: 0, 1: 1}],
        accepting={0},
    )


def ends_in_one_dfa():
    """Accepts binary words ending in 1."""
    return DFA(
        alphabet=(0, 1),
        transitions=[{0: 0, 1: 1}, {0: 0, 1: 1}],
        accepting={1},
    )


class TestDFABasics:
    def test_accepts(self):
        dfa = even_zeros_dfa()
        assert dfa.accepts(())
        assert not dfa.accepts((0,))
        assert dfa.accepts((0, 1, 0))
        assert not dfa.accepts((0, 0, 0))

    def test_run_from_state(self):
        dfa = even_zeros_dfa()
        assert dfa.run((0,), state=1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DFA((), [], set())
        with pytest.raises(ValueError):
            DFA((0,), [], set())
        with pytest.raises(ValueError):
            DFA((0, 1), [{0: 0}], set())  # missing transition on 1
        with pytest.raises(ValueError):
            DFA((0,), [{0: 5}], set())  # out-of-range target
        with pytest.raises(ValueError):
            DFA((0,), [{0: 0}], set(), start=3)

    def test_reachable_states(self):
        # State 2 is unreachable.
        dfa = DFA(
            (0,),
            [{0: 1}, {0: 0}, {0: 2}],
            accepting={1},
        )
        assert dfa.reachable_states() == [0, 1]


class TestMinimization:
    def test_removes_unreachable(self):
        dfa = DFA((0,), [{0: 1}, {0: 0}, {0: 2}], accepting={1})
        mini = dfa.minimized()
        assert mini.num_states == 2
        assert mini.equivalent(dfa)

    def test_merges_equivalent_states(self):
        # Two redundant accepting states behaving identically.
        dfa = DFA(
            (0, 1),
            [
                {0: 1, 1: 2},
                {0: 1, 1: 1},
                {0: 2, 1: 2},
            ],
            accepting={1, 2},
        )
        mini = dfa.minimized()
        assert mini.num_states == 2
        assert mini.equivalent(dfa)

    def test_minimized_preserves_language(self):
        rng = np.random.default_rng(0)
        for seed in range(5):
            dfa = DFA.random(8, (0, 1), np.random.default_rng(seed))
            mini = dfa.minimized()
            assert mini.equivalent(dfa)
            assert mini.num_states <= dfa.num_states


class TestEquivalence:
    def test_equivalent_to_self(self):
        dfa = even_zeros_dfa()
        assert dfa.equivalent(dfa)

    def test_distinguishes_languages(self):
        a, b = even_zeros_dfa(), ends_in_one_dfa()
        cex = a.find_counterexample(b)
        assert cex is not None
        assert a.accepts(cex) != b.accepts(cex)

    def test_counterexample_is_shortest(self):
        a, b = even_zeros_dfa(), ends_in_one_dfa()
        cex = a.find_counterexample(b)
        # () differs already: even_zeros accepts (), ends_in_one rejects.
        assert cex == ()

    def test_alphabet_mismatch(self):
        a = even_zeros_dfa()
        b = DFA(("x",), [{"x": 0}], {0})
        with pytest.raises(ValueError):
            a.find_counterexample(b)


class TestRandomAndEnumeration:
    def test_random_valid(self):
        dfa = DFA.random(5, (0, 1), np.random.default_rng(1))
        assert dfa.num_states == 5
        for w in [(0,), (1, 0), (1, 1, 1)]:
            assert isinstance(dfa.accepts(w), bool)

    def test_random_validates(self):
        with pytest.raises(ValueError):
            DFA.random(0, (0, 1), np.random.default_rng(2))

    def test_enumerate_words(self):
        dfa = even_zeros_dfa()
        words = list(dfa.enumerate_words(2))
        assert words[0] == ()
        assert len(words) == 1 + 2 + 4

"""Unit tests for repro.automata.mealy."""

import numpy as np
import pytest

from repro.automata.mealy import MealyMachine


def toggle_machine():
    """Outputs 'hi' when input 1 arrives in state 1, else 'lo'; 1 toggles."""
    return MealyMachine(
        input_alphabet=(0, 1),
        output_alphabet=("lo", "hi"),
        transitions=[
            {0: (0, "lo"), 1: (1, "lo")},
            {0: (1, "lo"), 1: (0, "hi")},
        ],
    )


class TestMealyBasics:
    def test_run_outputs(self):
        m = toggle_machine()
        state, outputs = m.run((1, 1, 1))
        assert outputs == ("lo", "hi", "lo")
        assert state == 1

    def test_last_output(self):
        m = toggle_machine()
        assert m.last_output((1, 1)) == "hi"
        assert m.last_output(()) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MealyMachine((), ("o",), [])
        with pytest.raises(ValueError):
            MealyMachine((0,), ("o",), [])
        with pytest.raises(ValueError):
            MealyMachine((0,), ("o",), [{0: (5, "o")}])
        with pytest.raises(ValueError):
            MealyMachine((0,), ("o",), [{0: (0, "bad")}])
        with pytest.raises(ValueError):
            MealyMachine((0, 1), ("o",), [{0: (0, "o")}])  # missing on 1


class TestEquivalence:
    def test_self_equivalent(self):
        m = toggle_machine()
        assert m.equivalent(m)

    def test_counterexample_found(self):
        m1 = toggle_machine()
        m2 = MealyMachine(
            (0, 1),
            ("lo", "hi"),
            [
                {0: (0, "lo"), 1: (1, "lo")},
                {0: (1, "lo"), 1: (0, "lo")},  # never says "hi"
            ],
        )
        cex = m1.behavioural_counterexample(m2)
        assert cex is not None
        assert m1.output_word(cex) != m2.output_word(cex)

    def test_alphabet_mismatch(self):
        m1 = toggle_machine()
        m2 = MealyMachine(("a",), ("lo",), [{"a": (0, "lo")}])
        with pytest.raises(ValueError):
            m1.behavioural_counterexample(m2)


class TestOutputDFA:
    def test_dfa_language_matches_last_output(self):
        m = toggle_machine()
        dfa = m.to_output_dfa("hi")
        for word in [(), (1,), (1, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)]:
            expected = m.last_output(word) == "hi"
            assert dfa.accepts(word) == expected

    def test_random_machine_roundtrip(self):
        rng = np.random.default_rng(0)
        m = MealyMachine.random(6, (0, 1), ("a", "b", "c"), rng)
        for out in ("a", "b", "c"):
            dfa = m.to_output_dfa(out)
            for word in [(0, 1, 1, 0), (1,), (), (1, 1, 1, 1, 0)]:
                assert dfa.accepts(word) == (m.last_output(word) == out)

    def test_random_validates(self):
        with pytest.raises(ValueError):
            MealyMachine.random(0, (0,), ("o",), np.random.default_rng(1))

"""Trace spans: nesting, aggregation, and runner integration."""

import time

import numpy as np

from repro.runtime import TrialRunner
from repro.telemetry import SpanRecorder, current_recorder, recording, trace


def test_trace_is_noop_without_recorder():
    assert current_recorder() is None
    with trace("orphan"):
        pass  # must not raise, must not record anywhere


def test_nesting_depth_and_parents():
    with recording() as rec:
        with trace("outer"):
            with trace("inner"):
                pass
            with trace("inner"):
                pass
    # Children complete (and are appended) before their parent.
    names = [s.name for s in rec.spans]
    assert names == ["inner", "inner", "outer"]
    outer = rec.spans[2]
    assert outer.depth == 0 and outer.parent_index == -1
    for inner in rec.spans[:2]:
        assert inner.depth == 1
        assert inner.parent_index == outer.index
    assert rec.roots() == [outer]


def test_summary_aggregates_by_name():
    with recording() as rec:
        for _ in range(3):
            with trace("kernel.fwht", length=8):
                time.sleep(0.001)
    summary = rec.summary()
    assert summary["kernel.fwht"]["count"] == 3
    assert summary["kernel.fwht"]["wall_s"] > 0
    assert rec.spans[0].attrs == {"length": 8}


def test_span_recorded_on_exception():
    with recording() as rec:
        try:
            with trace("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
    assert [s.name for s in rec.spans] == ["failing"]
    assert rec.current_depth == 0


def test_learner_spans_reach_trial_telemetry_through_runner():
    """TrialRunner installs a recorder per trial; learner fits land in it."""
    from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial

    spec = LearningCurveSpec(n=16, budgets=(30, 60), test_size=50)
    report = TrialRunner(workers=1).run(
        learning_curve_trial, 2, master_seed=5, trial_kwargs={"spec": spec}
    )
    for result in report.results:
        spans = result.telemetry["spans"]
        assert spans["logistic.fit"]["count"] == 2  # one fit per budget
        assert spans["logistic.fit"]["wall_s"] > 0


def closure_hostile_trial(ctx, spec):
    """Module-level but given an unpicklable kwarg to force the fallback."""
    from repro.runtime.workloads import learning_curve_trial

    return learning_curve_trial(ctx, spec)


def test_spans_survive_process_pool_fallback():
    """On the serial-fallback path each trial still gets its own recorder."""
    from repro.runtime.workloads import LearningCurveSpec

    spec = LearningCurveSpec(n=16, budgets=(30,), test_size=50)

    def local_trial(ctx, spec=spec):  # closure -> unpicklable -> fallback
        return closure_hostile_trial(ctx, spec)

    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        report = TrialRunner(workers=4).run(local_trial, 3, master_seed=9)
    assert len(report.results) == 3
    for result in report.results:
        assert result.telemetry["spans"]["logistic.fit"]["count"] == 1


def test_pool_and_serial_telemetry_agree():
    """Query counts in telemetry are deterministic across worker counts."""
    from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial

    spec = LearningCurveSpec(n=16, budgets=(40,), test_size=50)
    kwargs = {"spec": spec}
    serial = TrialRunner(workers=1).run(
        learning_curve_trial, 3, master_seed=11, trial_kwargs=kwargs
    )
    pooled = TrialRunner(workers=3).run(
        learning_curve_trial, 3, master_seed=11, trial_kwargs=kwargs
    )
    for a, b in zip(serial.results, pooled.results):
        assert a.telemetry["queries"]["queries"] == b.telemetry["queries"]["queries"]
        np.testing.assert_array_equal(a.value, b.value)

"""The report closes the loop: measured meters vs pac.bounds predictions."""

import dataclasses

import pytest

from repro.runtime import TrialRunner
from repro.runtime.workloads import (
    LearningCurveSpec,
    SQTrialSpec,
    learning_curve_trial,
    sq_trial,
)
from repro.telemetry import RunLedger
from repro.telemetry.report import build_report, generate_report, render_markdown


def run_workload(tmp_path, name, trial_fn, spec, trials=2, **meta_extra):
    ledger = RunLedger(tmp_path / f"{name}-run")
    meta = {
        "workload": name,
        "spec": dataclasses.asdict(spec),
        "trials": trials,
        "workers": 1,
        "master_seed": 0,
        "eps": 0.05,
        "delta": 0.05,
    }
    meta.update(meta_extra)
    ledger.write_meta(meta)
    TrialRunner(workers=1).run(
        trial_fn, trials, master_seed=0, trial_kwargs={"spec": spec}, ledger=ledger
    )
    return ledger


def test_curve_within_vc_bound(tmp_path):
    spec = LearningCurveSpec(n=16, budgets=(30, 60), test_size=50)
    ledger = run_workload(tmp_path, "curve", learning_curve_trial, spec)
    report = build_report(ledger.run_dir)
    (check,) = report["bound_checks"]
    assert check["kind"] == "ex"
    assert check["measured_max"] == 60  # the largest budget, exactly
    assert check["within"] and report["all_within_bounds"]
    assert 0 < check["ratio"] < 1


def test_sq_lands_exactly_on_both_bounds(tmp_path):
    spec = SQTrialSpec(n=8, tau=0.2, mode="sampling", test_size=50)
    ledger = run_workload(tmp_path, "sq", sq_trial, spec)
    report = build_report(ledger.run_dir)
    by_label = {c["label"]: c for c in report["bound_checks"]}
    queries = next(c for c in by_label.values() if "n + 1" in c["label"])
    assert queries["measured_max"] == queries["bound"] == 9
    assert queries["ratio"] == pytest.approx(1.0)
    assert report["all_within_bounds"]


def test_violation_detected_and_rendered(tmp_path):
    """A meter spending past its bound must flag the run, not pass quietly."""
    ledger = RunLedger(tmp_path / "bad-run")
    ledger.write_meta(
        {"workload": "sq", "spec": {"n": 4, "tau": 0.5, "mode": "adversarial"}}
    )
    ledger.append(
        {
            "index": 0,
            "seconds": 0.1,
            "telemetry": {
                "queries": {
                    "queries": {"sq": {"queries": 99, "examples": 0}},
                },
                "spans": {},
            },
        }
    )
    payload, markdown = generate_report(ledger.run_dir)
    assert not payload["all_within_bounds"]
    assert "BOUND VIOLATION" in markdown
    assert (ledger.run_dir / "report.json").exists()
    assert (ledger.run_dir / "report.md").exists()


def test_markdown_mentions_spans_and_counters(tmp_path):
    spec = LearningCurveSpec(n=16, budgets=(30,), test_size=50)
    ledger = run_workload(tmp_path, "curve", learning_curve_trial, spec)
    report = build_report(ledger.run_dir)
    markdown = render_markdown(report)
    assert "logistic.fit" in markdown
    assert "Measured queries" in markdown
    assert report["spans"]["logistic.fit"]["count"] == 2  # 2 trials x 1 budget


def test_cli_report_exit_codes(tmp_path, capsys):
    from repro.__main__ import main

    spec = SQTrialSpec(n=8, tau=0.2, mode="sampling", test_size=50)
    ledger = run_workload(tmp_path, "sq", sq_trial, spec)
    assert main(["report", str(ledger.run_dir), "--no-write"]) == 0
    out = capsys.readouterr().out
    assert "within their predicted budgets" in out

"""QueryMeter semantics: counting, distinct/repeated split, chaining."""

import numpy as np
import pytest

from repro.telemetry import (
    QUERY_KINDS,
    QueryMeter,
    current_meter,
    metered,
    record,
    unmetered,
)
from repro.telemetry.meter import _row_keys


def rows(*bit_rows):
    """+/-1 int8 rows from 0/1 literals (1 -> -1, 0 -> +1)."""
    return np.array(
        [[-1 if b else 1 for b in row] for row in bit_rows], dtype=np.int8
    )


def test_record_accumulates_per_kind():
    meter = QueryMeter()
    meter.record("ex", queries=10, examples=10)
    meter.record("ex", queries=5, examples=5)
    meter.record("mq", queries=3)
    snap = meter.snapshot()
    assert snap["queries"]["ex"]["queries"] == 15
    assert snap["queries"]["ex"]["batches"] == 2
    assert snap["queries"]["mq"]["queries"] == 3
    assert snap["total_queries"] == 18
    assert set(snap["queries"]) == set(QUERY_KINDS)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown query kind"):
        QueryMeter().record("oracle")


def test_crp_bytes_counts_challenges_and_responses():
    meter = QueryMeter()
    x = rows((0, 1, 0), (1, 1, 0))
    meter.record("mq", queries=2, challenges=x, response_bytes=2)
    assert meter.crp_bytes == x.nbytes + 2
    assert meter.snapshot()["queries"]["mq"]["crp_bytes"] == x.nbytes + 2


def test_distinct_vs_repeated_split_exact():
    meter = QueryMeter()
    meter.record("mq", queries=3, challenges=rows((0, 0), (0, 1), (0, 0)))
    # In-batch duplicate counts as repeated.
    assert meter.distinct_challenges == 2
    assert meter.repeated_challenges == 1
    # Cross-batch duplicate also counts as repeated.
    meter.record("mq", queries=2, challenges=rows((0, 1), (1, 1)))
    assert meter.distinct_challenges == 3
    assert meter.repeated_challenges == 2
    assert meter.challenge_rows == 5
    assert not meter.distinct_saturated


def test_distinct_split_batch_order_independent():
    batches = [rows((0, 0), (1, 0)), rows((1, 0), (1, 1)), rows((0, 0))]
    a, b = QueryMeter(), QueryMeter()
    for x in batches:
        a.record("ex", queries=len(x), challenges=x)
    for x in reversed(batches):
        b.record("ex", queries=len(x), challenges=x)
    assert a.distinct_challenges == b.distinct_challenges == 3
    assert a.repeated_challenges == b.repeated_challenges == 2


def test_distinct_cap_saturates():
    meter = QueryMeter(distinct_cap=2)
    meter.record("ex", queries=4, challenges=rows((0, 0), (0, 1), (1, 0), (1, 1)))
    assert meter.distinct_challenges == 2
    assert meter.distinct_saturated


def test_track_distinct_off_keeps_row_count():
    meter = QueryMeter(track_distinct=False)
    meter.record("ex", queries=2, challenges=rows((0, 0), (0, 0)))
    assert meter.challenge_rows == 2
    assert meter.distinct_challenges == 0
    assert meter.repeated_challenges == 0


def test_row_keys_wide_rows_fall_back_to_bytes():
    x = np.ones((3, 80), dtype=np.int8)
    x[1, 7] = -1
    keys = _row_keys(x)
    assert isinstance(keys, list)
    assert keys[0] == keys[2] != keys[1]
    meter = QueryMeter()
    meter.record("mq", queries=3, challenges=x)
    assert meter.distinct_challenges == 2
    assert meter.repeated_challenges == 1


def test_row_keys_packing_injective_small_n():
    n = 10
    grid = np.array(
        [[1 - 2 * ((i >> j) & 1) for j in range(n)] for i in range(2**n)],
        dtype=np.int8,
    )
    keys = _row_keys(grid)
    assert len(np.unique(keys)) == 2**n


def test_parent_chaining_forwards_everything():
    trial = QueryMeter()
    local = QueryMeter(parent=trial)
    x = rows((0, 1), (1, 1))
    local.record("mq", queries=2, challenges=x, response_bytes=2)
    local.incr("crp_cache.hits")
    for meter in (local, trial):
        assert meter.kinds["mq"].queries == 2
        assert meter.distinct_challenges == 2
        assert meter.counters == {"crp_cache.hits": 1}


def test_ambient_record_and_unmetered():
    assert current_meter() is None
    record("ex", queries=99)  # no-op, nothing installed
    with metered() as meter:
        assert current_meter() is meter
        record("ex", queries=3)
        with unmetered():
            assert current_meter() is None
            record("ex", queries=1000)
        record("ex", queries=2)
    assert current_meter() is None
    assert meter.kinds["ex"].queries == 5


def test_merge_snapshot_sums_counts():
    a = QueryMeter()
    a.record("ex", queries=4, examples=4, challenges=rows((0, 0), (0, 1)))
    b = QueryMeter()
    b.merge_snapshot(a.snapshot())
    b.merge_snapshot(a.snapshot())
    assert b.kinds["ex"].queries == 8
    assert b.challenge_rows == 4

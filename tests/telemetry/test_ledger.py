"""RunLedger: JSONL round-trips, metadata, and runner integration."""

import json
import warnings

import numpy as np
import pytest

from repro.runtime import TrialRunner
from repro.telemetry import RunLedger, new_run_id


def test_round_trip_records_and_meta(tmp_path):
    ledger = RunLedger(tmp_path / "run-1")
    ledger.write_meta({"workload": "curve", "spec": {"n": 8}})
    ledger.append({"index": 0, "value": [0.5]})
    ledger.append_many([{"index": 1}, {"index": 2}])
    reopened = RunLedger.open_existing(tmp_path / "run-1")
    assert reopened.read_meta()["workload"] == "curve"
    records = reopened.read()
    assert [r["index"] for r in records] == [0, 1, 2]


def test_numpy_values_serialised(tmp_path):
    ledger = RunLedger(tmp_path / "run-np")
    ledger.append(
        {"value": np.array([1.5, 2.5]), "count": np.int64(7), "f": np.float32(0.5)}
    )
    raw = ledger.path.read_text()
    record = json.loads(raw)
    assert record["value"] == [1.5, 2.5]
    assert record["count"] == 7


def test_open_existing_requires_ledger_file(tmp_path):
    with pytest.raises(FileNotFoundError, match="not a run directory"):
        RunLedger.open_existing(tmp_path / "nope")


def test_new_run_id_prefix():
    run_id = new_run_id("lmn")
    assert run_id.startswith("lmn-")


def test_runner_writes_one_record_per_trial_in_index_order(tmp_path):
    from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial

    spec = LearningCurveSpec(n=16, budgets=(30, 60), test_size=50)
    ledger = RunLedger(tmp_path / "run-curve")
    report = TrialRunner(workers=2).run(
        learning_curve_trial,
        4,
        master_seed=3,
        trial_kwargs={"spec": spec},
        ledger=ledger,
    )
    # Records append in completion order (crash safety), so sort by index.
    records = sorted(ledger.read(), key=lambda r: r["index"])
    assert [r["index"] for r in records] == [0, 1, 2, 3]
    for record, result in zip(records, report.results):
        assert record["status"] == "ok"
        assert record["attempts"] == 1
        assert record["value"] == pytest.approx(list(result.value))
        assert record["seconds"] == pytest.approx(result.seconds)
        assert record["cpu_seconds"] == pytest.approx(result.cpu_seconds)
        assert record["queue_wait"] >= 0.0
        # The attack spent exactly the largest budget in EX queries; the
        # held-out test draw is unmetered.
        assert record["telemetry"]["queries"]["queries"]["ex"]["queries"] == 60


def test_runner_without_ledger_writes_nothing(tmp_path):
    from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial

    spec = LearningCurveSpec(n=16, budgets=(30,), test_size=50)
    TrialRunner(workers=1).run(
        learning_curve_trial, 1, master_seed=3, trial_kwargs={"spec": spec}
    )
    assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# Shard ledger files and the read_latest merge rule.
# ----------------------------------------------------------------------
class TestShardLedgerMerge:
    def ok(self, index, value):
        return {"index": index, "status": "ok", "value": value}

    def infra(self, index):
        return {
            "index": index,
            "status": "error",
            "error": {"exc_type": "BrokenProcessPool", "category": "infra"},
        }

    def test_shard_handle_names_and_validation(self, tmp_path):
        from repro.telemetry.ledger import shard_ledger_name

        ledger = RunLedger(tmp_path / "run")
        assert ledger.shard(0).path.name == "ledger-shard00.jsonl"
        assert ledger.shard(11).path.name == "ledger-shard11.jsonl"
        assert ledger.shard(3).run_dir == ledger.run_dir
        with pytest.raises(ValueError, match="non-negative"):
            shard_ledger_name(-1)

    def test_read_latest_folds_in_shard_files(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        ledger.shard(0).append(self.ok(0, [1.0]))
        ledger.shard(1).append(self.ok(1, [2.0]))
        ledger.append(self.ok(2, [3.0]))
        merged = ledger.read_latest()
        assert sorted(merged) == [0, 1, 2]
        assert merged[1]["value"] == [2.0]
        # A shard handle reads only its own file — the merge is the main
        # handle's job.
        assert sorted(ledger.shard(0).read_latest()) == [0]

    def test_replayable_record_beats_infra_failure_across_shards(self, tmp_path):
        """A shard's infra hiccup must never shadow the same trial completed
        by another shard, in either read order."""
        ledger = RunLedger(tmp_path / "run")
        ledger.shard(0).append(self.ok(4, [0.5]))
        ledger.shard(1).append(self.infra(4))
        assert ledger.read_latest()[4]["status"] == "ok"
        other = RunLedger(tmp_path / "run2")
        other.shard(0).append(self.infra(4))
        other.shard(1).append(self.ok(4, [0.5]))
        assert other.read_latest()[4]["status"] == "ok"

    def test_equal_rank_takes_the_later_record(self, tmp_path):
        # Replayable records for one index are bit-identical by
        # construction, so "later wins" is only observable for
        # non-replayable ranks — e.g. two infra failures keep the newer
        # attempt count.
        ledger = RunLedger(tmp_path / "run")
        first = self.infra(0)
        first["attempts"] = 1
        second = self.infra(0)
        second["attempts"] = 2
        ledger.append(first)
        ledger.shard(0).append(second)
        assert ledger.read_latest()[0]["attempts"] == 2

    def test_open_existing_accepts_shard_only_directories(self, tmp_path):
        run_dir = tmp_path / "run"
        RunLedger(run_dir).shard(1).append(self.ok(0, [1.0]))
        reopened = RunLedger.open_existing(run_dir)
        assert sorted(reopened.read_latest()) == [0]
        with pytest.raises(FileNotFoundError, match="not a run directory"):
            RunLedger.open_existing(tmp_path / "empty")


class TestShardMergeRobustness:
    """Torn tails and conflicting provenances across shard files.

    A SIGKILLed sharded run can tear the final line of *any* shard file;
    each file must drop only its own torn line.  And when two files hold
    replayable records for one index whose replay payloads differ — which
    the determinism contract forbids — the merge must warn loudly, not
    silently let read order pick a winner."""

    def ok(self, index, value, meta=None):
        record = {"index": index, "status": "ok", "value": value}
        if meta is not None:
            record["value_meta"] = meta
        return record

    def test_two_shards_with_torn_tails_keep_their_good_records(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        ledger.shard(0).append(self.ok(0, [1.0]))
        ledger.shard(1).append(self.ok(1, [2.0]))
        # Tear both shard tails mid-record (killed mid-append).
        for shard_id, torn in ((0, '{"index": 2, "status": "o'),
                               (1, '{"index": 3, "val')):
            with ledger.shard(shard_id).path.open("a") as fh:
                fh.write(torn)
        with pytest.warns(RuntimeWarning, match="torn write") as caught:
            merged = ledger.read_latest()
        assert sorted(merged) == [0, 1]
        assert merged[0]["value"] == [1.0]
        assert merged[1]["value"] == [2.0]
        # one warning per torn file, each naming its own file
        torn_warnings = [w for w in caught if "torn write" in str(w.message)]
        assert len(torn_warnings) == 2
        named = {str(w.message).split(":")[0] for w in torn_warnings}
        assert {p.split("/")[-1] for p in named} == {
            "ledger-shard00.jsonl",
            "ledger-shard01.jsonl",
        }

    def test_conflicting_replayable_records_warn_and_keep_the_later(
        self, tmp_path
    ):
        ledger = RunLedger(tmp_path / "run")
        ledger.shard(0).append(self.ok(5, [1.0]))
        ledger.shard(1).append(self.ok(5, [2.0]))  # forbidden: same index
        with pytest.warns(RuntimeWarning, match="conflicting") as caught:
            merged = ledger.read_latest()
        assert merged[5]["value"] == [2.0]  # later (higher shard) wins
        assert any("trial 5" in str(w.message) for w in caught)

    def test_identical_replayable_records_do_not_warn(self, tmp_path):
        # The normal resume case: the same trial recorded twice,
        # bit-identically — replayable beats nothing, no conflict.
        ledger = RunLedger(tmp_path / "run")
        ledger.append(self.ok(5, [1.0], meta={"dtype": "float64", "shape": [1]}))
        ledger.shard(0).append(
            self.ok(5, [1.0], meta={"dtype": "float64", "shape": [1]})
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ledger.read_latest()[5]["value"] == [1.0]

    def test_replayable_replacing_infra_does_not_warn(self, tmp_path):
        # Different rank replacement is legitimate resume behaviour.
        ledger = RunLedger(tmp_path / "run")
        ledger.append(
            {
                "index": 3,
                "status": "error",
                "error": {"exc_type": "TimeoutError", "category": "infra"},
            }
        )
        ledger.append(self.ok(3, [9.0]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ledger.read_latest()[3]["status"] == "ok"

    def test_differing_timings_are_not_a_conflict(self, tmp_path):
        # Only the replay payload matters; wall time and attempt counts
        # legitimately differ between a record and its resume twin.
        ledger = RunLedger(tmp_path / "run")
        a = self.ok(7, [4.0])
        a.update(seconds=0.5, attempts=1)
        b = self.ok(7, [4.0])
        b.update(seconds=9.9, attempts=3)
        ledger.append(a)
        ledger.shard(0).append(b)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ledger.read_latest()[7]["attempts"] == 3

"""RunLedger: JSONL round-trips, metadata, and runner integration."""

import json

import numpy as np
import pytest

from repro.runtime import TrialRunner
from repro.telemetry import RunLedger, new_run_id


def test_round_trip_records_and_meta(tmp_path):
    ledger = RunLedger(tmp_path / "run-1")
    ledger.write_meta({"workload": "curve", "spec": {"n": 8}})
    ledger.append({"index": 0, "value": [0.5]})
    ledger.append_many([{"index": 1}, {"index": 2}])
    reopened = RunLedger.open_existing(tmp_path / "run-1")
    assert reopened.read_meta()["workload"] == "curve"
    records = reopened.read()
    assert [r["index"] for r in records] == [0, 1, 2]


def test_numpy_values_serialised(tmp_path):
    ledger = RunLedger(tmp_path / "run-np")
    ledger.append(
        {"value": np.array([1.5, 2.5]), "count": np.int64(7), "f": np.float32(0.5)}
    )
    raw = ledger.path.read_text()
    record = json.loads(raw)
    assert record["value"] == [1.5, 2.5]
    assert record["count"] == 7


def test_open_existing_requires_ledger_file(tmp_path):
    with pytest.raises(FileNotFoundError, match="not a run directory"):
        RunLedger.open_existing(tmp_path / "nope")


def test_new_run_id_prefix():
    run_id = new_run_id("lmn")
    assert run_id.startswith("lmn-")


def test_runner_writes_one_record_per_trial_in_index_order(tmp_path):
    from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial

    spec = LearningCurveSpec(n=16, budgets=(30, 60), test_size=50)
    ledger = RunLedger(tmp_path / "run-curve")
    report = TrialRunner(workers=2).run(
        learning_curve_trial,
        4,
        master_seed=3,
        trial_kwargs={"spec": spec},
        ledger=ledger,
    )
    # Records append in completion order (crash safety), so sort by index.
    records = sorted(ledger.read(), key=lambda r: r["index"])
    assert [r["index"] for r in records] == [0, 1, 2, 3]
    for record, result in zip(records, report.results):
        assert record["status"] == "ok"
        assert record["attempts"] == 1
        assert record["value"] == pytest.approx(list(result.value))
        assert record["seconds"] == pytest.approx(result.seconds)
        assert record["cpu_seconds"] == pytest.approx(result.cpu_seconds)
        assert record["queue_wait"] >= 0.0
        # The attack spent exactly the largest budget in EX queries; the
        # held-out test draw is unmetered.
        assert record["telemetry"]["queries"]["queries"]["ex"]["queries"] == 60


def test_runner_without_ledger_writes_nothing(tmp_path):
    from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial

    spec = LearningCurveSpec(n=16, budgets=(30,), test_size=50)
    TrialRunner(workers=1).run(
        learning_curve_trial, 1, master_seed=3, trial_kwargs={"spec": spec}
    )
    assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# Shard ledger files and the read_latest merge rule.
# ----------------------------------------------------------------------
class TestShardLedgerMerge:
    def ok(self, index, value):
        return {"index": index, "status": "ok", "value": value}

    def infra(self, index):
        return {
            "index": index,
            "status": "error",
            "error": {"exc_type": "BrokenProcessPool", "category": "infra"},
        }

    def test_shard_handle_names_and_validation(self, tmp_path):
        from repro.telemetry.ledger import shard_ledger_name

        ledger = RunLedger(tmp_path / "run")
        assert ledger.shard(0).path.name == "ledger-shard00.jsonl"
        assert ledger.shard(11).path.name == "ledger-shard11.jsonl"
        assert ledger.shard(3).run_dir == ledger.run_dir
        with pytest.raises(ValueError, match="non-negative"):
            shard_ledger_name(-1)

    def test_read_latest_folds_in_shard_files(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        ledger.shard(0).append(self.ok(0, [1.0]))
        ledger.shard(1).append(self.ok(1, [2.0]))
        ledger.append(self.ok(2, [3.0]))
        merged = ledger.read_latest()
        assert sorted(merged) == [0, 1, 2]
        assert merged[1]["value"] == [2.0]
        # A shard handle reads only its own file — the merge is the main
        # handle's job.
        assert sorted(ledger.shard(0).read_latest()) == [0]

    def test_replayable_record_beats_infra_failure_across_shards(self, tmp_path):
        """A shard's infra hiccup must never shadow the same trial completed
        by another shard, in either read order."""
        ledger = RunLedger(tmp_path / "run")
        ledger.shard(0).append(self.ok(4, [0.5]))
        ledger.shard(1).append(self.infra(4))
        assert ledger.read_latest()[4]["status"] == "ok"
        other = RunLedger(tmp_path / "run2")
        other.shard(0).append(self.infra(4))
        other.shard(1).append(self.ok(4, [0.5]))
        assert other.read_latest()[4]["status"] == "ok"

    def test_equal_rank_takes_the_later_record(self, tmp_path):
        # Replayable records for one index are bit-identical by
        # construction, so "later wins" is only observable for
        # non-replayable ranks — e.g. two infra failures keep the newer
        # attempt count.
        ledger = RunLedger(tmp_path / "run")
        first = self.infra(0)
        first["attempts"] = 1
        second = self.infra(0)
        second["attempts"] = 2
        ledger.append(first)
        ledger.shard(0).append(second)
        assert ledger.read_latest()[0]["attempts"] == 2

    def test_open_existing_accepts_shard_only_directories(self, tmp_path):
        run_dir = tmp_path / "run"
        RunLedger(run_dir).shard(1).append(self.ok(0, [1.0]))
        reopened = RunLedger.open_existing(run_dir)
        assert sorted(reopened.read_latest()) == [0]
        with pytest.raises(FileNotFoundError, match="not a run directory"):
            RunLedger.open_existing(tmp_path / "empty")

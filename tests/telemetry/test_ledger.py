"""RunLedger: JSONL round-trips, metadata, and runner integration."""

import json

import numpy as np
import pytest

from repro.runtime import TrialRunner
from repro.telemetry import RunLedger, new_run_id


def test_round_trip_records_and_meta(tmp_path):
    ledger = RunLedger(tmp_path / "run-1")
    ledger.write_meta({"workload": "curve", "spec": {"n": 8}})
    ledger.append({"index": 0, "value": [0.5]})
    ledger.append_many([{"index": 1}, {"index": 2}])
    reopened = RunLedger.open_existing(tmp_path / "run-1")
    assert reopened.read_meta()["workload"] == "curve"
    records = reopened.read()
    assert [r["index"] for r in records] == [0, 1, 2]


def test_numpy_values_serialised(tmp_path):
    ledger = RunLedger(tmp_path / "run-np")
    ledger.append(
        {"value": np.array([1.5, 2.5]), "count": np.int64(7), "f": np.float32(0.5)}
    )
    raw = ledger.path.read_text()
    record = json.loads(raw)
    assert record["value"] == [1.5, 2.5]
    assert record["count"] == 7


def test_open_existing_requires_ledger_file(tmp_path):
    with pytest.raises(FileNotFoundError, match="not a run directory"):
        RunLedger.open_existing(tmp_path / "nope")


def test_new_run_id_prefix():
    run_id = new_run_id("lmn")
    assert run_id.startswith("lmn-")


def test_runner_writes_one_record_per_trial_in_index_order(tmp_path):
    from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial

    spec = LearningCurveSpec(n=16, budgets=(30, 60), test_size=50)
    ledger = RunLedger(tmp_path / "run-curve")
    report = TrialRunner(workers=2).run(
        learning_curve_trial,
        4,
        master_seed=3,
        trial_kwargs={"spec": spec},
        ledger=ledger,
    )
    # Records append in completion order (crash safety), so sort by index.
    records = sorted(ledger.read(), key=lambda r: r["index"])
    assert [r["index"] for r in records] == [0, 1, 2, 3]
    for record, result in zip(records, report.results):
        assert record["status"] == "ok"
        assert record["attempts"] == 1
        assert record["value"] == pytest.approx(list(result.value))
        assert record["seconds"] == pytest.approx(result.seconds)
        assert record["cpu_seconds"] == pytest.approx(result.cpu_seconds)
        assert record["queue_wait"] >= 0.0
        # The attack spent exactly the largest budget in EX queries; the
        # held-out test draw is unmetered.
        assert record["telemetry"]["queries"]["queries"]["ex"]["queries"] == 60


def test_runner_without_ledger_writes_nothing(tmp_path):
    from repro.runtime.workloads import LearningCurveSpec, learning_curve_trial

    spec = LearningCurveSpec(n=16, budgets=(30,), test_size=50)
    TrialRunner(workers=1).run(
        learning_curve_trial, 1, master_seed=3, trial_kwargs={"spec": spec}
    )
    assert list(tmp_path.iterdir()) == []

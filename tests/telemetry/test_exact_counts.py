"""Exact query bills: each learner's meter counts are pinned, not fuzzy."""

import numpy as np
import pytest

from repro.learning import (
    ExampleOracle,
    LMNLearner,
    KushilevitzMansour,
    QueryBudgetExceeded,
    SimulatedEquivalenceOracle,
    SQChowLearner,
    SQOracle,
)
from repro.telemetry import QueryMeter, metered


def ltf_target(n, rng):
    weights = rng.normal(size=n)

    def target(x):
        return np.where(np.asarray(x, float) @ weights >= 0, 1, -1).astype(np.int8)

    return target


def test_lmn_fit_oracle_records_exactly_m_examples():
    rng = np.random.default_rng(0)
    oracle = ExampleOracle(10, ltf_target(10, rng), rng=rng)
    with metered() as meter:
        result = LMNLearner(degree=1).fit_oracle(oracle, m=500)
    ex = meter.snapshot()["queries"]["ex"]
    assert ex["queries"] == 500
    assert ex["examples"] == 500
    assert ex["batches"] == 1
    # Learner-local snapshot carries the same bill.
    assert result.telemetry["queries"]["ex"]["queries"] == 500
    assert meter.total_queries == 500  # nothing else was charged


def test_km_meter_matches_membership_queries_counter():
    """The meter's MQ total equals the learner's own queries_made count —
    the shared coefficient sample is charged once, not per bucket."""
    rng = np.random.default_rng(1)
    n = 8
    km = KushilevitzMansour(theta=0.4, bucket_samples=256, coefficient_samples=512)
    with metered() as meter:
        result = km.fit(n, ltf_target(n, rng), rng)
    mq = meter.snapshot()["queries"]["mq"]
    assert mq["queries"] == result.membership_queries
    assert meter.kinds["ex"].queries == 0
    assert result.telemetry["queries"]["mq"]["queries"] == result.membership_queries


def test_sq_chow_records_exactly_n_plus_1_queries():
    rng = np.random.default_rng(2)
    n = 12
    oracle = SQOracle(n, ltf_target(n, rng), tau=0.1, mode="sampling", rng=rng)
    with metered() as meter:
        result = SQChowLearner().fit(oracle)
    sq = meter.snapshot()["queries"]["sq"]
    assert sq["queries"] == n + 1 == result.queries_made
    # Sampling mode: each call consumed max(ceil(4/tau^2), 16) examples.
    assert sq["examples"] == (n + 1) * max(int(np.ceil(4 / 0.1**2)), 16)


def test_sq_adversarial_mode_records_zero_examples():
    """The adversary's internal reference sample is not attacker cost."""
    rng = np.random.default_rng(3)
    n = 6
    oracle = SQOracle(n, ltf_target(n, rng), tau=0.2, mode="adversarial", rng=rng)
    with metered() as meter:
        SQChowLearner().fit(oracle)
    sq = meter.snapshot()["queries"]["sq"]
    assert sq["queries"] == n + 1
    assert sq["examples"] == 0


def test_example_oracle_budget_count_then_raise():
    rng = np.random.default_rng(4)
    oracle = ExampleOracle(8, ltf_target(8, rng), rng=rng, max_examples=100)
    with metered() as meter:
        oracle.draw(80)
        with pytest.raises(QueryBudgetExceeded):
            oracle.draw(30)
    # The refused batch is counted on the oracle but never answered, so
    # the meter (which records answered queries) stays at 80.
    assert oracle.examples_drawn == 110
    assert meter.kinds["ex"].queries == 80


def test_eq_oracle_budget_count_then_raise():
    rng = np.random.default_rng(5)
    target = ltf_target(8, rng)
    oracle = SimulatedEquivalenceOracle(
        8, target, eps=0.2, delta=0.2, rng=rng, max_rounds=2
    )

    def wrong(x):
        return -target(x)

    with metered() as meter:
        assert oracle.query(wrong) is not None
        assert oracle.query(wrong) is not None
        with pytest.raises(QueryBudgetExceeded):
            oracle.query(wrong)
    assert oracle.round == 3  # the refused round is still counted
    assert meter.kinds["eq"].queries == 2  # but was never answered


def test_unmetered_test_draws_keep_trial_bill_equal_to_budget():
    """The lmn workload's ledger EX count is the training budget exactly."""
    from repro.runtime.runner import TrialContext
    from repro.runtime.seeding import fan_out
    from repro.runtime.workloads import LMNTrialSpec, lmn_trial

    spec = LMNTrialSpec(n=8, k=1, degree=1, m=400, test_size=200)
    ctx = TrialContext(index=0, seed=fan_out(0, 1)[0])
    with metered() as meter:
        lmn_trial(ctx, spec)
    assert meter.kinds["ex"].queries == 400  # test_size rows never metered

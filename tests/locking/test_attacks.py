"""Unit tests for combinational locking, SAT attack, and AppSAT."""

import numpy as np
import pytest

from repro.locking.appsat import AppSAT
from repro.locking.circuits import c17, comparator, random_circuit, ripple_carry_adder
from repro.locking.combinational import random_lock
from repro.locking.sat_attack import SATAttack


class TestRandomLock:
    def test_correct_key_restores_function(self):
        rng = np.random.default_rng(0)
        net = c17()
        lc = random_lock(net, 4, rng)
        assert lc.key_is_functionally_correct(lc.correct_key)

    def test_wrong_keys_usually_corrupt(self):
        rng = np.random.default_rng(1)
        net = random_circuit(8, 30, 3, rng)
        lc = random_lock(net, 8, rng)
        corrupting = 0
        for _ in range(10):
            key = rng.integers(0, 2, size=8).astype(np.int8)
            if not np.array_equal(key, lc.correct_key):
                if lc.wrong_key_error_rate(key, rng, m=512) > 0:
                    corrupting += 1
        assert corrupting >= 5  # most wrong keys corrupt something

    def test_key_length_and_inputs(self):
        rng = np.random.default_rng(2)
        lc = random_lock(c17(), 3, rng)
        assert lc.key_length == 3
        assert lc.locked.num_inputs == 5 + 3
        assert all(k.startswith("keyinput") for k in lc.key_inputs)

    def test_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            random_lock(c17(), 0, rng)
        with pytest.raises(ValueError):
            random_lock(c17(), 100, rng)
        lc = random_lock(c17(), 2, rng)
        with pytest.raises(ValueError):
            lc.evaluate_locked(np.zeros((1, 5), np.int8), np.zeros(5, np.int8))

    def test_locked_differs_under_flipped_key(self):
        rng = np.random.default_rng(4)
        lc = random_lock(c17(), 4, rng)
        bad_key = 1 - lc.correct_key  # flip every bit
        assert lc.wrong_key_error_rate(bad_key, rng, m=256) > 0


class TestSATAttack:
    @pytest.mark.parametrize("key_length", [2, 4, 6])
    def test_recovers_functional_key_on_c17(self, key_length):
        rng = np.random.default_rng(10 + key_length)
        lc = random_lock(c17(), key_length, rng)
        result = SATAttack().run(lc)
        assert result.success
        assert lc.key_is_functionally_correct(result.key)

    def test_recovers_key_on_random_circuits(self):
        for seed in range(4):
            rng = np.random.default_rng(20 + seed)
            net = random_circuit(8, 25, 3, rng)
            lc = random_lock(net, 8, rng)
            result = SATAttack().run(lc)
            assert result.success, f"seed {seed}"
            assert lc.key_is_functionally_correct(result.key), f"seed {seed}"

    def test_recovers_key_on_adder(self):
        rng = np.random.default_rng(30)
        lc = random_lock(ripple_carry_adder(3), 6, rng)
        result = SATAttack().run(lc)
        assert result.success
        assert lc.key_is_functionally_correct(result.key)

    def test_dip_count_far_below_exhaustive(self):
        """The SAT attack's whole point: #DIPs << 2^n oracle queries."""
        rng = np.random.default_rng(31)
        net = random_circuit(10, 35, 3, rng)
        lc = random_lock(net, 10, rng)
        result = SATAttack().run(lc)
        assert result.success
        assert result.oracle_queries < 2**6  # vs 2^10 inputs / 2^10 keys

    def test_iteration_cap(self):
        rng = np.random.default_rng(32)
        lc = random_lock(c17(), 6, rng)
        result = SATAttack(max_iterations=0 + 1).run(lc)
        # With a cap of 1 the attack may or may not finish; it must not lie.
        if result.success:
            assert lc.key_is_functionally_correct(result.key)
        else:
            assert result.key is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SATAttack(max_iterations=0)


class TestAppSAT:
    def test_exact_termination_matches_sat_attack(self):
        rng = np.random.default_rng(40)
        lc = random_lock(c17(), 4, rng)
        result = AppSAT(error_threshold=0.0).run(lc, rng)
        assert result.key is not None
        assert lc.key_is_functionally_correct(result.key)

    def test_approximate_key_quality(self):
        rng = np.random.default_rng(41)
        net = random_circuit(10, 40, 4, rng)
        lc = random_lock(net, 10, rng)
        result = AppSAT(error_threshold=0.05).run(lc, rng)
        assert result.key is not None
        # The returned key is an approximation within ~threshold error.
        assert lc.wrong_key_error_rate(result.key, rng, m=2048) <= 0.10

    def test_fewer_or_equal_dips_than_exact(self):
        """AppSAT's selling point: early termination."""
        rng = np.random.default_rng(42)
        net = random_circuit(9, 30, 3, rng)
        lc = random_lock(net, 9, rng)
        exact = SATAttack().run(lc)
        approx = AppSAT(error_threshold=0.05).run(lc, np.random.default_rng(43))
        assert approx.iterations <= exact.iterations + 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AppSAT(error_threshold=1.0)
        with pytest.raises(ValueError):
            AppSAT(settlement_rounds=0)
        with pytest.raises(ValueError):
            AppSAT(queries_per_round=0)
        with pytest.raises(ValueError):
            AppSAT(max_iterations=0)

    def test_summary_text(self):
        rng = np.random.default_rng(44)
        lc = random_lock(c17(), 2, rng)
        result = AppSAT().run(lc, rng)
        assert "key after" in result.summary()

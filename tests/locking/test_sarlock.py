"""Unit tests for SARLock point-function locking."""

import numpy as np
import pytest

from repro.locking.appsat import AppSAT
from repro.locking.circuits import c17, random_circuit
from repro.locking.sarlock import sarlock
from repro.locking.sat_attack import SATAttack


class TestSARLockConstruction:
    def test_correct_key_restores_function(self):
        lc = sarlock(c17(), 4, np.random.default_rng(0))
        assert lc.key_is_functionally_correct(lc.correct_key)

    def test_wrong_key_errs_on_exactly_one_input(self):
        """The defining SARLock property."""
        rng = np.random.default_rng(1)
        lc = sarlock(c17(), 5, rng)
        # Enumerate all 2^5 inputs for a handful of wrong keys.
        idx = np.arange(32, dtype=np.uint32)
        shifts = np.arange(4, -1, -1, dtype=np.uint32)
        all_inputs = ((idx[:, None] >> shifts[None, :]) & 1).astype(np.int8)
        for _ in range(5):
            key = rng.integers(0, 2, size=5).astype(np.int8)
            if np.array_equal(key, lc.correct_key):
                continue
            got = lc.evaluate_locked(all_inputs, key)
            want = lc.oracle(all_inputs)
            wrong_rows = np.nonzero(np.any(got != want, axis=1))[0]
            assert len(wrong_rows) == 1
            # The erring input is the one whose watched bits equal the key.
            assert np.array_equal(all_inputs[wrong_rows[0]][:5], key)

    def test_validation(self):
        with pytest.raises(ValueError):
            sarlock(c17(), 0)
        with pytest.raises(ValueError):
            sarlock(c17(), 6)  # c17 has 5 inputs

    def test_key_length_one(self):
        lc = sarlock(c17(), 1, np.random.default_rng(2))
        assert lc.key_is_functionally_correct(lc.correct_key)


class TestSARLockVsAttacks:
    def test_sat_attack_needs_exponential_dips(self):
        """Exact attack cost ~ 2^|key| - 1 DIPs (each kills one wrong key)."""
        rng = np.random.default_rng(3)
        lc = sarlock(c17(), 4, rng)
        result = SATAttack().run(lc)
        assert result.success
        assert lc.key_is_functionally_correct(result.key)
        # 2^4 - 1 = 15 wrong keys; allow slack for lucky eliminations.
        assert result.iterations >= 10

    def test_appsat_settles_early_with_tiny_error(self):
        """The approximate adversary wins cheaply where exact is expensive."""
        rng = np.random.default_rng(4)
        net = random_circuit(10, 30, 3, rng)
        lc = sarlock(net, 8, rng)
        result = AppSAT(
            error_threshold=0.02, queries_per_round=128, settlement_rounds=2
        ).run(lc, rng)
        assert result.key is not None
        err = lc.wrong_key_error_rate(result.key, rng, m=8192)
        # Any SARLock key errs on ~2^-8 of inputs; AppSAT's key must be in
        # that regime, far below the threshold.
        assert err <= 0.02
        exact = SATAttack().run(lc)
        assert result.iterations < exact.iterations

    def test_sat_attack_scaling_with_key_length(self):
        rng = np.random.default_rng(5)
        dips = []
        for klen in (3, 5):
            lc = sarlock(c17(), klen, rng)
            dips.append(SATAttack().run(lc).iterations)
        # Roughly doubling per extra bit: 2^5 vs 2^3 regime.
        assert dips[1] > 2 * dips[0]

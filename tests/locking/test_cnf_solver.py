"""Unit tests for the CNF encoder and the CDCL SAT solver."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locking.circuits import c17, random_circuit
from repro.locking.cnf import CNF, gate_clauses, tseitin_encode
from repro.locking.netlist import GateType
from repro.locking.solver import SATSolver, Satisfiability


class TestCNF:
    def test_new_var_and_add(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, -b])
        assert cnf.num_vars == 2
        assert len(cnf) == 1

    def test_rejects_bad_clauses(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([])
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_dimacs_output(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([a])
        text = cnf.to_dimacs()
        assert text.startswith("p cnf 1 1")
        assert "1 0" in text


class TestGateClauses:
    @pytest.mark.parametrize(
        "gate_type",
        [
            GateType.AND,
            GateType.OR,
            GateType.NAND,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ],
    )
    def test_binary_gate_semantics(self, gate_type):
        """Every satisfying assignment of the clauses matches the gate table."""
        clauses = gate_clauses(gate_type, 3, [1, 2])
        for bits in itertools.product([False, True], repeat=3):
            ok = all(
                any(bits[abs(l) - 1] == (l > 0) for l in clause)
                for clause in clauses
            )
            a, b, out = bits
            expected = {
                GateType.AND: a and b,
                GateType.OR: a or b,
                GateType.NAND: not (a and b),
                GateType.NOR: not (a or b),
                GateType.XOR: a != b,
                GateType.XNOR: a == b,
            }[gate_type]
            assert ok == (out == expected)

    @pytest.mark.parametrize("gate_type", [GateType.NOT, GateType.BUF])
    def test_unary_gate_semantics(self, gate_type):
        clauses = gate_clauses(gate_type, 2, [1])
        for bits in itertools.product([False, True], repeat=2):
            ok = all(
                any(bits[abs(l) - 1] == (l > 0) for l in clause)
                for clause in clauses
            )
            a, out = bits
            expected = (not a) if gate_type is GateType.NOT else a
            assert ok == (out == expected)

    def test_three_input_xor(self):
        clauses = gate_clauses(GateType.XOR, 4, [1, 2, 3])
        for bits in itertools.product([False, True], repeat=4):
            ok = all(
                any(bits[abs(l) - 1] == (l > 0) for l in clause)
                for clause in clauses
            )
            expected = bits[0] ^ bits[1] ^ bits[2]
            assert ok == (bits[3] == expected)


class TestTseitin:
    def test_encoding_agrees_with_simulation(self):
        """SAT models of the encoding match circuit evaluation."""
        net = c17()
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = rng.integers(0, 2, size=5).astype(np.int8)
            cnf = CNF()
            var_map = tseitin_encode(net, cnf)
            assumptions = [
                var_map[name] if bit else -var_map[name]
                for name, bit in zip(net.inputs, x)
            ]
            solver = SATSolver(cnf.clauses, cnf.num_vars)
            status, model = solver.solve(assumptions=assumptions)
            assert status is Satisfiability.SAT
            out = net.evaluate(x)
            for name, bit in zip(net.outputs, out):
                assert model[var_map[name]] == bool(bit)

    def test_shared_var_map(self):
        net = c17()
        cnf = CNF()
        pre = {sig: cnf.new_var() for sig in net.inputs}
        var_map = tseitin_encode(net, cnf, pre)
        for sig in net.inputs:
            assert var_map[sig] == pre[sig]

    def test_xor_fanin_guard(self):
        from repro.locking.netlist import Gate, Netlist

        wide = Netlist(
            tuple(f"i{j}" for j in range(8)),
            ("y",),
            [Gate("y", GateType.XOR, tuple(f"i{j}" for j in range(8)))],
        )
        with pytest.raises(ValueError, match="fan-in"):
            tseitin_encode(wide, CNF())


class TestSolver:
    def test_simple_sat(self):
        solver = SATSolver([[1, 2], [-1, 2], [1, -2]], 2)
        status, model = solver.solve()
        assert status is Satisfiability.SAT
        assert model[1] and model[2]

    def test_simple_unsat(self):
        solver = SATSolver([[1], [-1]], 1)
        status, model = solver.solve()
        assert status is Satisfiability.UNSAT
        assert model is None

    def test_empty_clause_unsat(self):
        solver = SATSolver()
        solver.add_clause([1])
        solver._pending_empty = True  # simulate adding an empty clause
        assert solver.solve()[0] is Satisfiability.UNSAT

    def test_tautology_dropped(self):
        solver = SATSolver([[1, -1]], 1)
        assert solver.solve()[0] is Satisfiability.SAT

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            SATSolver([[0]])

    def test_assumptions(self):
        solver = SATSolver([[1, 2]], 2)
        status, model = solver.solve(assumptions=[-1])
        assert status is Satisfiability.SAT
        assert model[2]
        assert solver.solve(assumptions=[-1, -2])[0] is Satisfiability.UNSAT
        # Solver is reusable after an assumption-UNSAT.
        assert solver.solve()[0] is Satisfiability.SAT

    def test_incremental_clauses(self):
        solver = SATSolver([[1, 2]], 2)
        assert solver.solve()[0] is Satisfiability.SAT
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve()[0] is Satisfiability.UNSAT

    def test_pigeonhole_unsat(self):
        """PHP(4,3): 4 pigeons, 3 holes — classic CDCL stress case."""
        # var p_{i,h} = 1 + i*3 + h
        def v(i, h):
            return 1 + i * 3 + h

        clauses = []
        for i in range(4):
            clauses.append([v(i, h) for h in range(3)])
        for h in range(3):
            for i in range(4):
                for j in range(i + 1, 4):
                    clauses.append([-v(i, h), -v(j, h)])
        solver = SATSolver(clauses, 12)
        assert solver.solve()[0] is Satisfiability.UNSAT
        assert solver.stats.conflicts > 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_random_formulas_against_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        nv = int(rng.integers(3, 8))
        nc = int(rng.integers(3, 25))
        clauses = [
            [
                int(rng.choice([1, -1])) * int(rng.integers(1, nv + 1))
                for _ in range(int(rng.integers(1, 4)))
            ]
            for _ in range(nc)
        ]
        expected = any(
            all(
                any((bits >> (abs(l) - 1)) & 1 == (l > 0) for l in clause)
                for clause in clauses
            )
            for bits in range(2**nv)
        )
        status, model = SATSolver(clauses, nv).solve()
        assert (status is Satisfiability.SAT) == expected
        if model is not None:
            for clause in clauses:
                assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_conflict_budget(self):
        def v(i, h):
            return 1 + i * 4 + h

        clauses = []
        for i in range(5):
            clauses.append([v(i, h) for h in range(4)])
        for h in range(4):
            for i in range(5):
                for j in range(i + 1, 5):
                    clauses.append([-v(i, h), -v(j, h)])
        solver = SATSolver(clauses, 20)
        with pytest.raises(RuntimeError):
            solver.solve(max_conflicts=2)

    def test_equivalence_check_of_circuits(self):
        """Miter of a circuit against itself must be UNSAT."""
        net = random_circuit(5, 15, 2, np.random.default_rng(1))
        cnf = CNF()
        shared = {sig: cnf.new_var() for sig in net.inputs}
        map_a = tseitin_encode(net.renamed("a_", keep=net.inputs), cnf, dict(shared))
        map_b = tseitin_encode(net.renamed("b_", keep=net.inputs), cnf, dict(shared))
        from repro.locking.cnf import gate_clauses as gc

        diffs = []
        for o in net.outputs:
            d = cnf.new_var()
            cnf.extend(gc(GateType.XOR, d, [map_a["a_" + o], map_b["b_" + o]]))
            diffs.append(d)
        cnf.add_clause(diffs)
        assert SATSolver(cnf.clauses, cnf.num_vars).solve()[0] is Satisfiability.UNSAT

"""Unit tests for Anti-SAT locking."""

import numpy as np
import pytest

from repro.locking.antisat import antisat
from repro.locking.appsat import AppSAT
from repro.locking.circuits import c17
from repro.locking.sat_attack import SATAttack


class TestAntiSATConstruction:
    def test_correct_key_restores_function(self):
        lc = antisat(c17(), 4, np.random.default_rng(0))
        assert lc.key_length == 8  # k_a and k_b
        assert lc.key_is_functionally_correct(lc.correct_key)

    def test_any_matched_halves_are_correct(self):
        """Anti-SAT's correct-key class: every key with k_a == k_b works."""
        rng = np.random.default_rng(1)
        lc = antisat(c17(), 3, rng)
        for _ in range(4):
            half = rng.integers(0, 2, size=3).astype(np.int8)
            key = np.concatenate([half, half])
            assert lc.key_is_functionally_correct(key)

    def test_mismatched_halves_err_on_one_input(self):
        rng = np.random.default_rng(2)
        lc = antisat(c17(), 5, rng)
        idx = np.arange(32, dtype=np.uint32)
        shifts = np.arange(4, -1, -1, dtype=np.uint32)
        all_inputs = ((idx[:, None] >> shifts[None, :]) & 1).astype(np.int8)
        for _ in range(5):
            key = rng.integers(0, 2, size=10).astype(np.int8)
            if np.array_equal(key[:5], key[5:]):
                continue
            got = lc.evaluate_locked(all_inputs, key)
            want = lc.oracle(all_inputs)
            wrong = np.nonzero(np.any(got != want, axis=1))[0]
            assert len(wrong) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            antisat(c17(), 0)
        with pytest.raises(ValueError):
            antisat(c17(), 6)

    def test_key_length_one(self):
        lc = antisat(c17(), 1, np.random.default_rng(3))
        assert lc.key_is_functionally_correct(lc.correct_key)


class TestAntiSATVsAttacks:
    def test_sat_attack_recovers_a_functional_key(self):
        rng = np.random.default_rng(4)
        lc = antisat(c17(), 3, rng)
        result = SATAttack().run(lc)
        assert result.success
        assert lc.key_is_functionally_correct(result.key)

    def test_appsat_cheap_with_tiny_error(self):
        rng = np.random.default_rng(5)
        lc = antisat(c17(), 4, rng)
        result = AppSAT(error_threshold=0.05, queries_per_round=64).run(lc, rng)
        assert result.key is not None
        assert lc.wrong_key_error_rate(result.key, rng, m=4096) <= 0.08

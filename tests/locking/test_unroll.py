"""Unit tests for sequential locking via core-RLL and time-frame unrolling."""

import numpy as np
import pytest

from repro.automata.mealy import MealyMachine
from repro.locking.sat_attack import SATAttack
from repro.locking.sequential_netlist import synthesize_mealy
from repro.locking.unroll import lock_sequential, unroll


def make_locked(seed=0, states=4, key_bits=5):
    rng = np.random.default_rng(seed)
    machine = MealyMachine.random(states, [(0,), (1,)], ("a", "b"), rng)
    circuit = synthesize_mealy(machine)
    return circuit, lock_sequential(circuit, key_bits, rng), rng


class TestLockSequential:
    def test_correct_key_preserves_behaviour(self):
        circuit, locked, rng = make_locked()
        words = [np.array([int(rng.integers(0, 2))]) for _ in range(12)]
        _, clean = circuit.run(words)
        _, with_key = locked.run(words, locked.correct_key)
        assert all(np.array_equal(a, b) for a, b in zip(clean, with_key))

    def test_wrong_key_usually_corrupts(self):
        circuit, locked, rng = make_locked(seed=1)
        words = [np.array([int(rng.integers(0, 2))]) for _ in range(20)]
        _, clean = circuit.run(words)
        corrupting = 0
        for _ in range(8):
            key = rng.integers(0, 2, size=locked.correct_key.size).astype(np.int8)
            if np.array_equal(key, locked.correct_key):
                continue
            _, got = locked.run(words, key)
            corrupting += any(
                not np.array_equal(a, b) for a, b in zip(clean, got)
            )
        assert corrupting >= 4


class TestUnroll:
    def test_unrolled_clean_matches_cycle_simulation(self):
        circuit, locked, rng = make_locked(seed=2)
        frames = 5
        unrolled = unroll(locked, frames)
        words = [np.array([int(rng.integers(0, 2))]) for _ in range(frames)]
        _, clean = circuit.run(words)
        flat_in = np.concatenate(words)
        flat_out = unrolled.original.evaluate(flat_in)
        expected = np.concatenate(clean)
        assert np.array_equal(flat_out, expected)

    def test_unrolled_locked_matches_locked_simulation(self):
        circuit, locked, rng = make_locked(seed=3)
        frames = 4
        unrolled = unroll(locked, frames)
        words = [np.array([int(rng.integers(0, 2))]) for _ in range(frames)]
        key = rng.integers(0, 2, size=locked.correct_key.size).astype(np.int8)
        _, seq_out = locked.run(words, key)
        got = unrolled.evaluate_locked(np.concatenate(words)[None, :], key)[0]
        assert np.array_equal(got, np.concatenate(seq_out))

    def test_validation(self):
        _, locked, _ = make_locked(seed=4)
        with pytest.raises(ValueError):
            unroll(locked, 0)


class TestSequentialSATAttack:
    @pytest.mark.parametrize("seed", range(3))
    def test_recovers_key_from_unrolled_miter(self, seed):
        circuit, locked, rng = make_locked(seed=10 + seed, key_bits=5)
        unrolled = unroll(locked, frames=4)
        result = SATAttack().run(unrolled)
        assert result.success
        # The recovered key must reproduce the clean sequential behaviour
        # on fresh input sequences (beyond the unrolled horizon).
        words = [np.array([int(rng.integers(0, 2))]) for _ in range(15)]
        _, clean = circuit.run(words)
        _, attacked = locked.run(words, result.key)
        assert all(np.array_equal(a, b) for a, b in zip(clean, attacked))

    def test_short_unrolling_may_underconstrain(self):
        """With a single frame the attack sees only depth-1 behaviour; the
        recovered key is consistent with that horizon by construction."""
        circuit, locked, rng = make_locked(seed=20, key_bits=6)
        unrolled = unroll(locked, frames=1)
        result = SATAttack().run(unrolled)
        assert result.success
        # Depth-1 behaviour always matches.
        word = [np.array([1])]
        _, clean = circuit.run(word)
        _, attacked = locked.run(word, result.key)
        assert np.array_equal(clean[0], attacked[0])

"""Unit tests for sequential (FSM) locking and the L*-based attack."""

import numpy as np
import pytest

from repro.automata.mealy import MealyMachine
from repro.locking.sequential import (
    harpoon_lock,
    recover_key_sequence,
    unlock_by_lstar,
)


def sample_machine(seed=0, states=5):
    return MealyMachine.random(
        states, (0, 1), ("lo", "hi"), np.random.default_rng(seed)
    )


class TestHarpoonLock:
    def test_unlocked_view_matches_original(self):
        m = sample_machine()
        lf = harpoon_lock(m, (1, 0, 1), np.random.default_rng(1))
        assert lf.unlocked_view().equivalent(m)

    def test_state_count_grows_by_key_length(self):
        m = sample_machine()
        lf = harpoon_lock(m, (1, 0, 1, 1), np.random.default_rng(2))
        assert lf.locked.num_states == m.num_states + 4

    def test_wrong_prefix_stays_locked(self):
        m = sample_machine()
        key = (1, 0, 1)
        lf = harpoon_lock(m, key, np.random.default_rng(3))
        # Feed a wrong first symbol, then the key: should not be guaranteed
        # to reach the functional mode via the intended path.
        state, outputs = lf.locked.run((0,) + key[:1])
        assert state < len(key) or outputs[0] == outputs[0]  # stays in obf states
        assert state < len(key) + m.num_states

    def test_obfuscation_outputs_are_decoy(self):
        m = sample_machine()
        key = (1, 1, 0)
        lf = harpoon_lock(m, key, np.random.default_rng(4), decoy_output="lo")
        _, outputs = lf.locked.run(key)
        assert all(o == "lo" for o in outputs)

    def test_validation(self):
        m = sample_machine()
        with pytest.raises(ValueError):
            harpoon_lock(m, ())
        with pytest.raises(ValueError):
            harpoon_lock(m, ("bogus",))
        with pytest.raises(ValueError):
            harpoon_lock(m, (0, 1), decoy_output="bogus")


class TestKeyRecovery:
    def test_bfs_finds_an_unlocking_word(self):
        m = sample_machine(seed=5)
        key = (1, 0, 0, 1)
        lf = harpoon_lock(m, key, np.random.default_rng(6))
        found = recover_key_sequence(lf)
        assert found is not None
        # The found word must actually unlock.
        state, _ = lf.locked.run(found)
        view = MealyMachine(
            lf.locked.input_alphabet,
            lf.locked.output_alphabet,
            lf.locked.transitions,
            start=state,
        )
        assert view.equivalent(m)
        assert len(found) <= len(key)

    def test_none_when_length_capped(self):
        m = sample_machine(seed=7)
        lf = harpoon_lock(m, (1, 1, 1, 1, 1), np.random.default_rng(8))
        # max_length=0 only checks the start state, which is locked.
        assert recover_key_sequence(lf, max_length=0) is None


class TestLStarUnlock:
    def test_exact_learning_of_locked_machine(self):
        """Section V-B: the locked FSM's DFA is exactly learnable."""
        m = sample_machine(seed=9, states=4)
        lf = harpoon_lock(m, (1, 0), np.random.default_rng(10))
        result = unlock_by_lstar(lf, "hi")
        assert result.behaviour_matches
        assert result.membership_queries > 0

    def test_sampled_eq_variant(self):
        m = sample_machine(seed=11, states=3)
        lf = harpoon_lock(m, (0, 1), np.random.default_rng(12))
        result = unlock_by_lstar(
            lf, "hi", exact_eq=False, rng=np.random.default_rng(13)
        )
        assert result.learned_states >= 1

    def test_learned_machine_reveals_key_path(self):
        """After L*, BFS on the learned model finds the unlock word."""
        m = sample_machine(seed=14, states=4)
        key = (1, 0, 1)
        lf = harpoon_lock(m, key, np.random.default_rng(15))
        result = unlock_by_lstar(lf, "hi")
        assert result.behaviour_matches
        # The attacker now replays BFS against the true machine; since the
        # learned model is equivalent, the recovered word unlocks it.
        word = recover_key_sequence(lf)
        assert word is not None

"""Unit tests for locking metrics, the PRESENT S-box, and PUF serialisation."""

import numpy as np
import pytest

from repro.locking.antisat import antisat
from repro.locking.circuits import PRESENT_SBOX, c17, present_sbox
from repro.locking.combinational import random_lock
from repro.locking.metrics import corruption_report
from repro.locking.sarlock import sarlock
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.io import load_puf, save_puf
from repro.pufs.xor_arbiter import XORArbiterPUF
from repro.booleanfuncs.encoding import random_pm1


class TestPresentSbox:
    def test_matches_reference_table(self):
        net = present_sbox()
        for x, expected in enumerate(PRESENT_SBOX):
            bits = np.array([(x >> (3 - b)) & 1 for b in range(4)], dtype=np.int8)
            out = net.evaluate(bits)
            value = sum(int(out[b]) << (3 - b) for b in range(4))
            assert value == expected, f"S[{x:X}]"

    def test_is_a_permutation(self):
        net = present_sbox()
        idx = np.arange(16, dtype=np.uint32)
        shifts = np.arange(3, -1, -1, dtype=np.uint32)
        inputs = ((idx[:, None] >> shifts[None, :]) & 1).astype(np.int8)
        outs = net.evaluate(inputs)
        values = {sum(int(o[b]) << (3 - b) for b in range(4)) for o in outs}
        assert values == set(range(16))

    def test_lockable_and_attackable(self):
        from repro.locking.sat_attack import SATAttack

        rng = np.random.default_rng(0)
        lc = random_lock(present_sbox(), 6, rng)
        result = SATAttack().run(lc)
        assert result.success
        assert lc.key_is_functionally_correct(result.key)


class TestCorruptionReport:
    def test_rll_corrupts_heavily(self):
        rng = np.random.default_rng(1)
        lc = random_lock(c17(), 4, rng)
        report = corruption_report(lc, keys_sampled=15, rng=rng)
        assert report.mean_error_rate > 0.05
        assert report.wrong_key_coverage > 0.8

    def test_sarlock_corrupts_minimally(self):
        rng = np.random.default_rng(2)
        lc = sarlock(c17(), 5, rng)
        report = corruption_report(lc, keys_sampled=15, rng=rng)
        # Each wrong key errs on exactly 1 of 32 inputs.
        assert report.max_error_rate <= 1 / 32 + 1e-9
        assert report.mean_error_rate <= 1 / 32 + 1e-9

    def test_rll_vs_pointfunction_ordering(self):
        """The corruption/resilience trade-off in one comparison."""
        rng = np.random.default_rng(3)
        rll = corruption_report(random_lock(c17(), 5, rng), keys_sampled=12, rng=rng)
        sar = corruption_report(sarlock(c17(), 5, rng), keys_sampled=12, rng=rng)
        anti = corruption_report(antisat(c17(), 4, rng), keys_sampled=12, rng=rng)
        assert rll.mean_error_rate > sar.mean_error_rate
        assert rll.mean_error_rate > anti.mean_error_rate

    def test_validation(self):
        rng = np.random.default_rng(4)
        lc = random_lock(c17(), 3, rng)
        with pytest.raises(ValueError):
            corruption_report(lc, keys_sampled=0)


class TestPUFSerialisation:
    def test_arbiter_roundtrip(self, tmp_path):
        puf = ArbiterPUF(24, np.random.default_rng(5), noise_sigma=0.3)
        path = tmp_path / "arbiter.npz"
        save_puf(puf, path)
        loaded = load_puf(path)
        c = random_pm1(24, 500, np.random.default_rng(6))
        assert np.array_equal(puf.eval(c), loaded.eval(c))
        assert loaded.noise_sigma == 0.3

    def test_xor_arbiter_roundtrip(self, tmp_path):
        puf = XORArbiterPUF(16, 4, np.random.default_rng(7), correlation=0.5)
        path = tmp_path / "xor.npz"
        save_puf(puf, path)
        loaded = load_puf(path)
        c = random_pm1(16, 500, np.random.default_rng(8))
        assert np.array_equal(puf.eval(c), loaded.eval(c))
        assert loaded.k == 4

    def test_bistable_ring_roundtrip(self, tmp_path):
        puf = BistableRingPUF(20, np.random.default_rng(9))
        path = tmp_path / "br.npz"
        save_puf(puf, path)
        loaded = load_puf(path)
        c = random_pm1(20, 500, np.random.default_rng(10))
        assert np.array_equal(puf.eval(c), loaded.eval(c))

    def test_unknown_type_rejected(self, tmp_path):
        from repro.pufs.feed_forward import FeedForwardArbiterPUF

        puf = FeedForwardArbiterPUF(8, rng=np.random.default_rng(11))
        with pytest.raises(TypeError):
            save_puf(puf, tmp_path / "ff.npz")

"""Unit tests for truth-table synthesis and sequential circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.mealy import MealyMachine
from repro.locking.sequential_netlist import (
    SequentialCircuit,
    encode_alphabet,
    synthesize_mealy,
)
from repro.locking.synthesis import minimize_cubes, synthesize_truth_table


class TestMinimizeCubes:
    def test_full_cover_merges_to_dont_cares(self):
        cubes = minimize_cubes(list(range(8)), 3)
        assert cubes == [(2, 2, 2)]

    def test_single_minterm(self):
        assert minimize_cubes([5], 3) == [(1, 0, 1)]

    def test_adjacent_pair_merges(self):
        # minterms 0 (000) and 1 (001) merge to 00-.
        assert minimize_cubes([0, 1], 3) == [(0, 0, 2)]


class TestSynthesizeTruthTable:
    @given(st.integers(1, 4), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_tables_synthesize_correctly(self, n, seed):
        rng = np.random.default_rng(seed)
        table = rng.integers(0, 2, size=(2**n, 2)).astype(np.int8)
        net = synthesize_truth_table(table)
        # Verify against the table on every input row.
        idx = np.arange(2**n, dtype=np.uint32)
        shifts = np.arange(n - 1, -1, -1, dtype=np.uint32)
        inputs = ((idx[:, None] >> shifts[None, :]) & 1).astype(np.int8)
        assert np.array_equal(net.evaluate(inputs), table)

    def test_constant_columns(self):
        table = np.array([[0, 1], [0, 1], [0, 1], [0, 1]], dtype=np.int8)
        net = synthesize_truth_table(table)
        x = np.array([[0, 1], [1, 0]], dtype=np.int8)
        assert np.array_equal(net.evaluate(x), np.array([[0, 1], [0, 1]]))

    def test_custom_names(self):
        table = np.array([[0], [1]], dtype=np.int8)
        net = synthesize_truth_table(table, ["a"], ["z"])
        assert net.inputs == ("a",)
        assert net.outputs == ("z",)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_truth_table(np.array([[0], [1], [0]], dtype=np.int8))
        with pytest.raises(ValueError):
            synthesize_truth_table(np.array([[2], [0]], dtype=np.int8))
        with pytest.raises(ValueError):
            synthesize_truth_table(np.array([[0], [1]], dtype=np.int8), ["a", "b"])


class TestSequentialCircuit:
    def make_toggle(self):
        """A 1-bit toggle: state flips when in=1; output = state."""
        # core: inputs [in0, state0] -> outputs [out0, next0]
        table = np.array(
            [
                # in=0, s=0 -> out 0, next 0
                [0, 0],
                # in=0, s=1 -> out 1, next 1
                [1, 1],
                # in=1, s=0 -> out 0, next 1
                [0, 1],
                # in=1, s=1 -> out 1, next 0
                [1, 0],
            ],
            dtype=np.int8,
        )
        core = synthesize_truth_table(table, ["in0", "state0"], ["out0", "next0"])
        return SequentialCircuit(core, 1, 1, 1, [0])

    def test_step_semantics(self):
        circ = self.make_toggle()
        state, out = circ.step(np.array([0]), np.array([1]))
        assert out.tolist() == [0]
        assert state.tolist() == [1]

    def test_run_from_reset(self):
        circ = self.make_toggle()
        final, outputs = circ.run([np.array([1]), np.array([1]), np.array([0])])
        assert [o.tolist() for o in outputs] == [[0], [1], [0]]
        assert final.tolist() == [0]

    def test_extract_mealy_matches_simulation(self):
        circ = self.make_toggle()
        machine = circ.extract_mealy()
        assert machine.num_states == 2
        word = [(1,), (1,), (0,), (1,)]
        _, sim_out = circ.run([np.array(w) for w in word])
        assert machine.output_word(tuple(word)) == tuple(
            tuple(o.tolist()) for o in sim_out
        )

    def test_validation(self):
        core = synthesize_truth_table(
            np.zeros((4, 2), dtype=np.int8), ["a", "b"], ["y", "n"]
        )
        with pytest.raises(ValueError):
            SequentialCircuit(core, 2, 1, 1, [0])  # core inputs mismatch
        with pytest.raises(ValueError):
            SequentialCircuit(core, 1, 2, 1, [0])  # core outputs mismatch
        with pytest.raises(ValueError):
            SequentialCircuit(core, 1, 1, 1, [0, 0])  # bad initial state


class TestSynthesizeMealy:
    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip_random_machines(self, seed):
        """Mealy -> gates -> extraction is behaviourally equivalent."""
        rng = np.random.default_rng(seed)
        machine = MealyMachine.random(
            5, [(0,), (1,)], ("a", "b", "c"), rng
        )
        circuit = synthesize_mealy(machine)
        extracted = circuit.extract_mealy()
        # Compare behaviour through output words (alphabets differ in the
        # output encoding, so compare via simulation of both).
        out_code = {sym: idx for idx, sym in enumerate(sorted({"a", "b", "c"}))}
        for trial in range(30):
            length = int(rng.integers(1, 10))
            word = tuple(
                (int(rng.integers(0, 2)),) for _ in range(length)
            )
            want = [out_code[o] for o in machine.output_word(word)]
            got_syms = extracted.output_word(word)
            got = [int(sym[0]) * 2 + int(sym[1]) if len(sym) == 2 else int(sym[0]) for sym in got_syms]
            assert got == want, (trial, word)

    def test_rejects_non_bit_alphabet(self):
        machine = MealyMachine.random(
            3, ("x", "y"), ("o",), np.random.default_rng(5)
        )
        with pytest.raises(ValueError):
            synthesize_mealy(machine)

    def test_encode_alphabet_enables_synthesis(self):
        machine = MealyMachine.random(
            4, ("x", "y", "z"), ("lo", "hi"), np.random.default_rng(6)
        )
        encoded = encode_alphabet(machine)
        circuit = synthesize_mealy(encoded)
        extracted = circuit.extract_mealy()
        assert extracted.num_states >= 1
        # The encoded machine behaves like the original on encoded words.
        symbols = sorted(machine.input_alphabet, key=repr)
        codes = sorted(encoded.input_alphabet)[: len(symbols)]
        code_of = dict(zip(symbols, codes))
        rng = np.random.default_rng(7)
        for _ in range(20):
            length = int(rng.integers(1, 8))
            word = tuple(symbols[int(rng.integers(0, 3))] for _ in range(length))
            encoded_word = tuple(code_of[s] for s in word)
            assert machine.output_word(word) == encoded.output_word(encoded_word)

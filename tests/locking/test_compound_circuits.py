"""Unit tests for compound locking and the new circuit generators."""

import numpy as np
import pytest

from repro.locking.antisat import antisat
from repro.locking.appsat import AppSAT
from repro.locking.circuits import array_multiplier, c17, multiplexer_tree
from repro.locking.compound import compound_lock
from repro.locking.sat_attack import SATAttack


class TestMultiplexerTree:
    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_selects_correct_input(self, s):
        net = multiplexer_tree(s)
        num_data = 2**s
        for value in range(num_data):
            data = np.zeros(num_data, dtype=np.int8)
            data[value] = 1
            select = np.array(
                [(value >> (s - 1 - i)) & 1 for i in range(s)], dtype=np.int8
            )
            out = net.evaluate(np.concatenate([data, select]))
            assert out.tolist() == [1]

    def test_unselected_input_ignored(self):
        net = multiplexer_tree(2)
        data = np.array([0, 1, 1, 1], dtype=np.int8)
        select = np.array([0, 0], dtype=np.int8)  # selects d0
        assert net.evaluate(np.concatenate([data, select])).tolist() == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            multiplexer_tree(0)


class TestArrayMultiplier:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_exhaustive_small_widths(self, width):
        net = array_multiplier(width)
        for a in range(2**width):
            for b in range(2**width):
                bits = [(a >> i) & 1 for i in range(width)] + [
                    (b >> i) & 1 for i in range(width)
                ]
                out = net.evaluate(np.array(bits, dtype=np.int8))
                value = sum(int(out[i]) << i for i in range(2 * width))
                assert value == a * b, (a, b)

    def test_random_width_four(self):
        net = array_multiplier(4)
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = int(rng.integers(0, 16)), int(rng.integers(0, 16))
            bits = [(a >> i) & 1 for i in range(4)] + [
                (b >> i) & 1 for i in range(4)
            ]
            out = net.evaluate(np.array(bits, dtype=np.int8))
            assert sum(int(out[i]) << i for i in range(8)) == a * b

    def test_validation(self):
        with pytest.raises(ValueError):
            array_multiplier(0)


class TestCompoundLock:
    def test_correct_key_restores_function(self):
        rng = np.random.default_rng(1)
        lc = compound_lock(c17(), rll_bits=3, point_bits=4, rng=rng)
        assert lc.key_length == 3 + 4
        assert lc.key_is_functionally_correct(lc.correct_key)

    def test_wrong_rll_half_corrupts_heavily(self):
        rng = np.random.default_rng(2)
        lc = compound_lock(c17(), 3, 4, rng)
        bad = lc.correct_key.copy()
        bad[:3] = 1 - bad[:3]  # break the RLL half
        assert lc.wrong_key_error_rate(bad, rng, m=512) > 0.05

    def test_wrong_point_half_corrupts_minimally(self):
        rng = np.random.default_rng(3)
        lc = compound_lock(c17(), 3, 5, rng)
        bad = lc.correct_key.copy()
        bad[3:] = 1 - bad[3:]  # break only the SARLock half
        rate = lc.wrong_key_error_rate(bad, rng, m=4096)
        assert rate <= 1 / 32 + 0.02

    def test_appsat_reduces_to_the_weak_component(self):
        """AppSAT's headline: the approximate key nails the RLL half."""
        rng = np.random.default_rng(4)
        lc = compound_lock(c17(), 4, 5, rng)
        result = AppSAT(error_threshold=0.05, queries_per_round=128).run(lc, rng)
        assert result.key is not None
        err = lc.wrong_key_error_rate(result.key, rng, m=4096)
        assert err <= 0.08

    def test_exact_attack_still_succeeds_but_expensively(self):
        rng = np.random.default_rng(5)
        lc = compound_lock(c17(), 3, 4, rng)
        exact = SATAttack().run(lc)
        assert exact.success
        assert lc.key_is_functionally_correct(exact.key)
        approx = AppSAT(error_threshold=0.05, queries_per_round=128).run(
            lc, np.random.default_rng(6)
        )
        assert approx.iterations <= exact.iterations

    def test_antisat_as_point_scheme(self):
        rng = np.random.default_rng(7)
        lc = compound_lock(c17(), 2, 3, rng, point_scheme=antisat)
        assert lc.key_is_functionally_correct(lc.correct_key)

    def test_validation(self):
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            compound_lock(c17(), 2, 6, rng)  # c17 has 5 inputs


class TestNoiseInflation:
    def test_formula_and_monotonicity(self):
        from repro.pac.bounds import bound_with_noise, noisy_sample_inflation

        assert noisy_sample_inflation(0.0) == 1.0
        assert noisy_sample_inflation(0.25) == pytest.approx(4.0)
        values = [noisy_sample_inflation(e) for e in (0.0, 0.1, 0.3, 0.45)]
        assert values == sorted(values)
        assert bound_with_noise(1000.0, 0.25) == pytest.approx(4000.0)
        with pytest.raises(ValueError):
            noisy_sample_inflation(0.5)
        with pytest.raises(ValueError):
            bound_with_noise(0.0, 0.1)

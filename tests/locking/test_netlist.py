"""Unit tests for the netlist IR and .bench format."""

import numpy as np
import pytest

from repro.locking.bench_format import load_bench, parse_bench, save_bench, write_bench
from repro.locking.circuits import c17, comparator, random_circuit, ripple_carry_adder
from repro.locking.netlist import Gate, GateType, Netlist


class TestGate:
    def test_unary_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate("o", GateType.NOT, ("a", "b"))
        with pytest.raises(ValueError):
            Gate("o", GateType.AND, ("a",))

    def test_valid(self):
        g = Gate("o", GateType.XOR, ("a", "b"))
        assert g.output == "o"


class TestNetlistValidation:
    def test_duplicate_driver_rejected(self):
        with pytest.raises(ValueError):
            Netlist(
                ("a", "b"),
                ("x",),
                [Gate("x", GateType.AND, ("a", "b")), Gate("x", GateType.OR, ("a", "b"))],
            )

    def test_driving_an_input_rejected(self):
        with pytest.raises(ValueError):
            Netlist(("a", "b"), ("a",), [Gate("a", GateType.AND, ("a", "b"))])

    def test_undefined_signal_rejected(self):
        with pytest.raises(ValueError):
            Netlist(("a",), ("x",), [Gate("x", GateType.NOT, ("ghost",))])

    def test_undriven_output_rejected(self):
        with pytest.raises(ValueError):
            Netlist(("a", "b"), ("nowhere",), [Gate("x", GateType.AND, ("a", "b"))])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            Netlist(
                ("a",),
                ("x",),
                [
                    Gate("x", GateType.AND, ("a", "y")),
                    Gate("y", GateType.NOT, ("x",)),
                ],
            )

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ValueError):
            Netlist(("a", "a"), ("x",), [Gate("x", GateType.NOT, ("a",))])


class TestEvaluation:
    def test_every_gate_type(self):
        gates = [
            Gate("and_", GateType.AND, ("a", "b")),
            Gate("or_", GateType.OR, ("a", "b")),
            Gate("nand_", GateType.NAND, ("a", "b")),
            Gate("nor_", GateType.NOR, ("a", "b")),
            Gate("xor_", GateType.XOR, ("a", "b")),
            Gate("xnor_", GateType.XNOR, ("a", "b")),
            Gate("not_", GateType.NOT, ("a",)),
            Gate("buf_", GateType.BUF, ("a",)),
        ]
        net = Netlist(
            ("a", "b"),
            tuple(g.output for g in gates),
            gates,
        )
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.int8)
        out = net.evaluate(x)
        a, b = x[:, 0].astype(bool), x[:, 1].astype(bool)
        expected = np.stack(
            [a & b, a | b, ~(a & b), ~(a | b), a ^ b, ~(a ^ b), ~a, a], axis=1
        ).astype(np.int8)
        assert np.array_equal(out, expected)

    def test_c17_known_vector(self):
        net = c17()
        # All-zero input: G10=NAND(0,0)=1, G11=1, G16=NAND(0,1)=1,
        # G19=NAND(1,0)=1, G22=NAND(1,1)=0, G23=NAND(1,1)=0.
        assert net.evaluate(np.zeros(5, dtype=np.int8)).tolist() == [0, 0]

    def test_single_vector_shape(self):
        net = c17()
        out = net.evaluate(np.ones(5, dtype=np.int8))
        assert out.shape == (2,)

    def test_width_check(self):
        with pytest.raises(ValueError):
            c17().evaluate(np.zeros((3, 4), dtype=np.int8))

    def test_evaluate_all_signals(self):
        net = c17()
        vals = net.evaluate_all_signals(np.zeros((1, 5), dtype=np.int8))
        assert vals["G10"][0] == 1

    def test_adder_adds(self):
        net = ripple_carry_adder(4)
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = int(rng.integers(0, 16)), int(rng.integers(0, 16))
            cin = int(rng.integers(0, 2))
            bits = [((a >> i) & 1) for i in range(4)] + [
                ((b >> i) & 1) for i in range(4)
            ] + [cin]
            out = net.evaluate(np.array(bits, dtype=np.int8))
            total = sum(int(out[i]) << i for i in range(5))
            assert total == a + b + cin

    def test_comparator(self):
        net = comparator(3)
        assert net.evaluate(np.array([1, 0, 1, 1, 0, 1], dtype=np.int8)).tolist() == [1]
        assert net.evaluate(np.array([1, 0, 1, 1, 1, 1], dtype=np.int8)).tolist() == [0]

    def test_comparator_width_one(self):
        net = comparator(1)
        assert net.evaluate(np.array([1, 1], dtype=np.int8)).tolist() == [1]


class TestTransforms:
    def test_renamed_preserves_function(self):
        net = c17()
        renamed = net.renamed("p_")
        x = np.random.default_rng(1).integers(0, 2, size=(20, 5)).astype(np.int8)
        assert np.array_equal(net.evaluate(x), renamed.evaluate(x))

    def test_renamed_keep(self):
        net = c17()
        renamed = net.renamed("p_", keep=("G1",))
        assert "G1" in renamed.inputs
        assert "p_G2" in renamed.inputs

    def test_with_inputs_fixed(self):
        net = c17()
        fixed = net.with_inputs_fixed({"G1": 1, "G2": 0})
        assert fixed.num_inputs == 3
        rng = np.random.default_rng(2)
        rest = rng.integers(0, 2, size=(16, 3)).astype(np.int8)
        full = np.concatenate(
            [np.ones((16, 1), np.int8), np.zeros((16, 1), np.int8), rest], axis=1
        )
        assert np.array_equal(fixed.evaluate(rest), net.evaluate(full))

    def test_with_inputs_fixed_validates(self):
        net = c17()
        with pytest.raises(ValueError):
            net.with_inputs_fixed({"nope": 1})
        with pytest.raises(ValueError):
            net.with_inputs_fixed({i: 0 for i in net.inputs})


class TestBenchFormat:
    def test_roundtrip(self):
        net = c17()
        text = write_bench(net)
        parsed = parse_bench(text, name="c17")
        x = np.random.default_rng(3).integers(0, 2, size=(32, 5)).astype(np.int8)
        assert np.array_equal(net.evaluate(x), parsed.evaluate(x))
        assert parsed.inputs == net.inputs
        assert parsed.outputs == net.outputs

    def test_parse_with_comments_and_blanks(self):
        text = """
        # a comment
        INPUT(a)
        INPUT(b)

        OUTPUT(y)
        y = AND(a, b)  # trailing comment
        """
        net = parse_bench(text)
        assert net.evaluate(np.array([1, 1], dtype=np.int8)).tolist() == [1]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny <- AND(a, a)")

    def test_parse_rejects_unknown_gate(self):
        with pytest.raises(ValueError, match="unknown gate"):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(a, b)")

    def test_file_roundtrip(self, tmp_path):
        net = ripple_carry_adder(2)
        path = tmp_path / "rca2.bench"
        save_bench(net, path)
        loaded = load_bench(path)
        x = np.random.default_rng(4).integers(0, 2, size=(10, 5)).astype(np.int8)
        assert np.array_equal(net.evaluate(x), loaded.evaluate(x))


class TestRandomCircuit:
    def test_valid_and_deterministic(self):
        a = random_circuit(6, 20, 2, np.random.default_rng(5))
        b = random_circuit(6, 20, 2, np.random.default_rng(5))
        x = np.random.default_rng(6).integers(0, 2, size=(40, 6)).astype(np.int8)
        assert np.array_equal(a.evaluate(x), b.evaluate(x))

    def test_validates(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            random_circuit(1, 5, 1, rng)
        with pytest.raises(ValueError):
            random_circuit(4, 2, 3, rng)

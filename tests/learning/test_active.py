"""Active-learning strategies: metering, budgets, and pinned identities.

The contracts under test are the ones the docs and conformance suite
promise: every adaptive oracle call lands in the ambient
:class:`~repro.telemetry.QueryMeter` under ``"mq"`` (passive under
``"ex"``), budget overruns follow the oracles' count-then-raise
semantics, and a committee of one is bit-identical to uncertainty
sampling.
"""

import numpy as np
import pytest

from repro.learning.active import (
    STRATEGY_NAMES,
    CommitteeStrategy,
    FastSlowStrategy,
    PassiveStrategy,
    UncertaintyStrategy,
    collect_trajectory,
    make_strategy,
    run_active_attack,
)
from repro.learning.oracles import QueryBudgetExceeded
from repro.pufs.arbiter import ArbiterPUF
from repro.telemetry import QueryMeter, metered

N = 20
TOTAL = 64


def fresh_puf(seed=0, n=N):
    return ArbiterPUF(n, np.random.default_rng(seed))


class TestMetering:
    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_every_query_lands_in_the_meter_under_its_kind(self, name):
        puf = fresh_puf()
        strategy = make_strategy(name)
        with metered(QueryMeter()) as meter:
            trajectory = collect_trajectory(
                N,
                puf.eval,
                strategy,
                TOTAL,
                pool_size=256,
                rng=np.random.default_rng(1),
            )
        assert trajectory.queries == TOTAL
        assert meter.kinds[strategy.kind].queries == TOTAL
        assert meter.total_queries == TOTAL  # nothing leaked to other kinds

    def test_candidate_pool_and_test_draw_are_free(self):
        # run_active_attack draws a 256-row pool and a 500-row test set;
        # neither is an oracle interaction, so the ledger must show
        # exactly the attack budget.
        puf = fresh_puf()
        with metered(QueryMeter()) as meter:
            run_active_attack(
                N,
                puf.eval,
                UncertaintyStrategy(),
                budgets=(32, TOTAL),
                pool_size=256,
                test_size=500,
                seed=3,
            )
        assert meter.total_queries == TOTAL
        assert meter.kinds["mq"].queries == TOTAL
        assert meter.kinds["ex"].queries == 0

    def test_passive_strategy_records_examples(self):
        puf = fresh_puf()
        with metered(QueryMeter()) as meter:
            collect_trajectory(
                N,
                puf.eval,
                PassiveStrategy(),
                TOTAL,
                rng=np.random.default_rng(2),
            )
        assert meter.kinds["ex"].queries == TOTAL
        assert meter.kinds["ex"].examples == TOTAL
        assert meter.kinds["mq"].queries == 0


class TestBudgets:
    def test_adaptive_overrun_counts_then_raises(self):
        # The oracle's count-then-raise semantics on the adaptive path:
        # the refused batch bumps the oracle's own counter before
        # QueryBudgetExceeded propagates, while the ambient meter books
        # only the batches that were actually answered.
        puf = fresh_puf()
        with metered(QueryMeter()) as meter:
            with pytest.raises(QueryBudgetExceeded):
                collect_trajectory(
                    N,
                    puf.eval,
                    UncertaintyStrategy(),
                    TOTAL,
                    batch=16,
                    pool_size=256,
                    rng=np.random.default_rng(4),
                    max_queries=TOTAL - 8,
                )
        # 3 full batches (48) fit under the 56-query cap; the 4th was
        # refused, so the answered-query ledger stops at 48.
        assert meter.kinds["mq"].queries == 48

    def test_membership_oracle_counts_the_refused_batch(self):
        from repro.learning.oracles import MembershipOracle
        from repro.pufs.crp import uniform_challenges

        puf = fresh_puf()
        oracle = MembershipOracle(N, puf.eval, max_queries=24)
        rows = uniform_challenges(16, N, np.random.default_rng(6))
        oracle.query(rows)
        with pytest.raises(QueryBudgetExceeded):
            oracle.query(rows)
        assert oracle.queries_made == 32  # the blown batch is counted

    def test_pool_too_small_for_budget_rejected(self):
        puf = fresh_puf()
        with pytest.raises(ValueError, match="pool_size"):
            collect_trajectory(
                N, puf.eval, UncertaintyStrategy(), TOTAL, pool_size=TOTAL - 1
            )

    def test_queries_are_distinct_challenges(self):
        # The availability mask retires answered candidates, so an
        # adaptive trajectory never wastes budget re-asking a challenge.
        puf = fresh_puf()
        trajectory = collect_trajectory(
            N,
            puf.eval,
            UncertaintyStrategy(),
            TOTAL,
            pool_size=256,
            rng=np.random.default_rng(5),
        )
        assert len({row.tobytes() for row in trajectory.challenges}) == TOTAL


class TestPinnedIdentities:
    def test_committee_of_one_is_uncertainty(self):
        puf = fresh_puf(seed=7)
        a = run_active_attack(
            N, puf.eval, UncertaintyStrategy(), (32, TOTAL), pool_size=256, seed=11
        )
        b = run_active_attack(
            N,
            puf.eval,
            CommitteeStrategy(committee=1),
            (32, TOTAL),
            pool_size=256,
            seed=11,
        )
        np.testing.assert_array_equal(
            a.trajectory.challenges, b.trajectory.challenges
        )
        np.testing.assert_array_equal(
            a.trajectory.responses, b.trajectory.responses
        )
        assert a.accuracies == b.accuracies

    def test_fastslow_with_zero_fast_fraction_is_uncertainty(self):
        # fast_fraction=0 skips the exploration phase entirely, leaving
        # the pure margin rule — the same selections, fits, and rng
        # consumption as uncertainty sampling.
        puf = fresh_puf(seed=8)
        a = run_active_attack(
            N, puf.eval, UncertaintyStrategy(), (TOTAL,), pool_size=256, seed=13
        )
        b = run_active_attack(
            N,
            puf.eval,
            FastSlowStrategy(fast_fraction=0.0),
            (TOTAL,),
            pool_size=256,
            seed=13,
        )
        np.testing.assert_array_equal(
            a.trajectory.challenges, b.trajectory.challenges
        )
        assert a.accuracies == b.accuracies

    def test_fastslow_fast_phase_diverges_from_uncertainty(self):
        puf = fresh_puf(seed=9)
        a = run_active_attack(
            N, puf.eval, UncertaintyStrategy(), (TOTAL,), pool_size=256, seed=17
        )
        b = run_active_attack(
            N,
            puf.eval,
            FastSlowStrategy(fast_fraction=1.0),
            (TOTAL,),
            pool_size=256,
            seed=17,
        )
        assert not np.array_equal(a.trajectory.challenges, b.trajectory.challenges)

    def test_same_seed_replays_bit_identically(self):
        puf = fresh_puf(seed=10)
        runs = [
            run_active_attack(
                N,
                puf.eval,
                CommitteeStrategy(committee=2),
                (32, TOTAL),
                pool_size=256,
                seed=19,
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            runs[0].trajectory.challenges, runs[1].trajectory.challenges
        )
        assert runs[0].accuracies == runs[1].accuracies


class TestMakeStrategy:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("oracle-of-delphi")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="committee"):
            CommitteeStrategy(committee=0)
        with pytest.raises(ValueError, match="fast_fraction"):
            FastSlowStrategy(fast_fraction=1.5)

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_names_round_trip(self, name):
        strategy = make_strategy(name)
        assert strategy.name == name
        assert strategy.kind == ("ex" if name == "passive" else "mq")
        assert strategy.adaptive == (name != "passive")


class TestLearningValue:
    def test_uncertainty_beats_passive_at_equal_final_budget(self):
        # The headline property (mirrored by the statistical conformance
        # relation at larger samples): with the same total budget on an
        # easy arbiter target, margin-guided queries should not lose to
        # i.i.d. draws by much, and typically win.  Averaged over a few
        # instances to keep the assertion robust at test sizes.
        deltas = []
        for seed in range(3):
            puf = fresh_puf(seed=seed, n=24)
            shared = 100 + seed
            passive = run_active_attack(
                24, puf.eval, PassiveStrategy(), (160,), pool_size=256, seed=shared
            )
            active = run_active_attack(
                24,
                puf.eval,
                UncertaintyStrategy(),
                (160,),
                pool_size=256,
                seed=shared,
            )
            deltas.append(active.final_accuracy() - passive.final_accuracy())
        assert float(np.mean(deltas)) > -0.02

"""Unit tests for the reliability (Becker-style) attack."""

import numpy as np
import pytest

from repro.learning.reliability_attack import ReliabilityAttack
from repro.pufs.crp import generate_crps
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestReliabilityAttack:
    @pytest.mark.parametrize("seed", range(2))
    def test_breaks_noisy_2xor(self, seed):
        rng = np.random.default_rng(seed)
        puf = XORArbiterPUF(32, 2, np.random.default_rng(10 + seed), noise_sigma=0.4)
        attack = ReliabilityAttack(crps=6000, repetitions=15)
        result = attack.run(puf, rng)
        test = generate_crps(puf, 4000, np.random.default_rng(20 + seed))
        acc = np.mean(result.predict(test.challenges) == test.responses)
        assert acc > 0.9, f"seed {seed}: {acc:.3f}"
        assert result.reliability_correlation > 0.1

    def test_es_phase_locks_onto_one_chain(self):
        rng = np.random.default_rng(2)
        puf = XORArbiterPUF(32, 2, np.random.default_rng(12), noise_sigma=0.4)
        result = ReliabilityAttack(crps=6000, repetitions=15).run(puf, rng)
        # One of the recovered chain vectors must align strongly with one
        # of the true chains (up to sign).
        best = 0.0
        for recovered in (result.chain_a, result.chain_b):
            r = recovered / np.linalg.norm(recovered)
            for chain in puf.chains:
                t = chain.weights / np.linalg.norm(chain.weights)
                best = max(best, abs(float(r @ t)))
        assert best > 0.85

    def test_measurement_accounting(self):
        rng = np.random.default_rng(3)
        puf = XORArbiterPUF(16, 2, np.random.default_rng(13), noise_sigma=0.3)
        attack = ReliabilityAttack(crps=500, repetitions=5, generations=10)
        result = attack.run(puf, rng)
        assert result.oracle_measurements == 500 * 5

    def test_rejects_wrong_targets(self):
        rng = np.random.default_rng(4)
        attack = ReliabilityAttack(crps=100, repetitions=3, generations=2)
        with pytest.raises(ValueError, match="k = 2"):
            attack.run(XORArbiterPUF(16, 3, rng, noise_sigma=0.3))
        with pytest.raises(ValueError, match="noisy"):
            attack.run(XORArbiterPUF(16, 2, rng, noise_sigma=0.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityAttack(crps=5)
        with pytest.raises(ValueError):
            ReliabilityAttack(repetitions=1)
        with pytest.raises(ValueError):
            ReliabilityAttack(mu=4, lam=2)
        with pytest.raises(ValueError):
            ReliabilityAttack(refinement_rounds=-1)

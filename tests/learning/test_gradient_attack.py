"""Unit tests for the gradient-attack suite and the CMA reliability
attack (ISSUE 10)."""

import numpy as np
import pytest

from repro.learning.gradient_attack import (
    ATTACKER_NAMES,
    LRAttacker,
    MLPAttacker,
    make_attacker,
)
from repro.learning.reliability_attack import CMAReliabilityAttack
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.cdc_xor import CDCXORArbiterPUF
from repro.pufs.crp import generate_crps
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestMakeAttacker:
    def test_registry_resolves_both_learners(self):
        assert set(ATTACKER_NAMES) == {"lr", "mlp"}
        assert isinstance(make_attacker("lr"), LRAttacker)
        assert isinstance(make_attacker("mlp"), MLPAttacker)

    def test_rejects_unknown_name_and_representation(self):
        with pytest.raises(ValueError, match="unknown attacker"):
            make_attacker("svm")
        with pytest.raises(ValueError, match="unknown representation"):
            make_attacker("lr", representation="fourier")

    def test_options_forward_to_constructor(self):
        attacker = make_attacker("lr", k=2, restarts=7)
        assert attacker.k == 2 and attacker.restarts == 7
        mlp = make_attacker("mlp", hidden=9, epochs=3)
        assert mlp.hidden == 9 and mlp.epochs == 3

    def test_predict_before_train_is_an_error(self):
        with pytest.raises(RuntimeError, match="train"):
            make_attacker("lr").predict(np.ones((2, 8), dtype=np.int8))


class TestGradientAttackProtocol:
    @pytest.mark.parametrize("name", ["lr", "mlp"])
    def test_parity_representation_learns_an_arbiter(self, name):
        puf = ArbiterPUF(24, np.random.default_rng(0))
        train = generate_crps(puf, 1500, np.random.default_rng(1))
        test = generate_crps(puf, 1000, np.random.default_rng(2))
        attacker = make_attacker(name).train(
            train.challenges, train.responses, np.random.default_rng(3)
        )
        acc = attacker.accuracy(test.challenges, test.responses)
        assert acc > 0.9, f"{name}: {acc:.3f}"
        predictions = attacker.predict(test.challenges)
        assert predictions.dtype == np.int8
        assert np.all(np.abs(predictions) == 1)

    def test_raw_representation_is_the_wrong_feature_space(self):
        """The same LR learner under raw bits stays far from the parity
        model — the representation pitfall, isolated."""
        puf = ArbiterPUF(24, np.random.default_rng(4))
        train = generate_crps(puf, 1500, np.random.default_rng(5))
        test = generate_crps(puf, 1000, np.random.default_rng(6))
        accs = {}
        for representation in ("parity", "raw"):
            attacker = make_attacker("lr", representation=representation)
            attacker.train(
                train.challenges, train.responses, np.random.default_rng(7)
            )
            accs[representation] = attacker.accuracy(
                test.challenges, test.responses
            )
        assert accs["parity"] > accs["raw"] + 0.1

    def test_lr_k2_breaks_a_2xor(self):
        puf = XORArbiterPUF(16, 2, np.random.default_rng(8))
        train = generate_crps(puf, 3000, np.random.default_rng(9))
        test = generate_crps(puf, 1000, np.random.default_rng(10))
        attacker = make_attacker("lr", k=2, restarts=6).train(
            train.challenges, train.responses, np.random.default_rng(11)
        )
        assert attacker.accuracy(test.challenges, test.responses) > 0.85

    def test_lr_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            LRAttacker(k=0)


class TestCMAReliabilityAttack:
    def test_breaks_noisy_2xor(self):
        puf = XORArbiterPUF(16, 2, np.random.default_rng(20), noise_sigma=0.4)
        attack = CMAReliabilityAttack(crps=3000, repetitions=9, generations=30)
        result = attack.run(puf, np.random.default_rng(21))
        test = generate_crps(puf, 1500, np.random.default_rng(22))
        acc = np.mean(result.predict(test.challenges) == test.responses)
        assert acc > 0.85, f"{acc:.3f}"
        assert result.chain_weights.shape == (2, 17)
        # k-1 slots are ES-peeled against the reliability signal; the
        # last chain is recovered by logistic on the residual labels.
        assert len(result.correlations) == 1

    def test_generalises_to_k3(self):
        puf = XORArbiterPUF(16, 3, np.random.default_rng(23), noise_sigma=0.4)
        attack = CMAReliabilityAttack(
            crps=4000, repetitions=9, generations=40, restarts=3
        )
        result = attack.run(puf, np.random.default_rng(24))
        test = generate_crps(puf, 1500, np.random.default_rng(25))
        acc = np.mean(result.predict(test.challenges) == test.responses)
        assert acc > 0.8, f"{acc:.3f}"

    def test_covers_cdc_xor_via_component_features(self):
        puf = CDCXORArbiterPUF(
            16, 2, np.random.default_rng(26), noise_sigma=0.4
        )
        attack = CMAReliabilityAttack(crps=3000, repetitions=9, generations=30)
        result = attack.run(puf, np.random.default_rng(27))
        assert result.shifts == puf.shifts
        c = generate_crps(puf, 1500, np.random.default_rng(28))
        acc = np.mean(result.predict(c.challenges) == c.responses)
        assert acc > 0.8, f"{acc:.3f}"

    def test_measurement_accounting(self):
        puf = XORArbiterPUF(12, 2, np.random.default_rng(29), noise_sigma=0.3)
        attack = CMAReliabilityAttack(crps=400, repetitions=5, generations=5)
        result = attack.run(puf, np.random.default_rng(30))
        assert result.oracle_measurements == 400 * 5

    def test_rejects_noiseless_device(self):
        quiet = XORArbiterPUF(12, 2, np.random.default_rng(31), noise_sigma=0.0)
        with pytest.raises(ValueError, match="noisy"):
            CMAReliabilityAttack(crps=100, repetitions=3, generations=2).run(
                quiet
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            CMAReliabilityAttack(crps=5)
        with pytest.raises(ValueError):
            CMAReliabilityAttack(repetitions=2)
        with pytest.raises(ValueError):
            CMAReliabilityAttack(batches=0)
        with pytest.raises(ValueError):
            CMAReliabilityAttack(repetitions=4, batches=9)

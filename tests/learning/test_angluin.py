"""Unit tests for Angluin's L* learner."""

import numpy as np
import pytest

from repro.automata.dfa import DFA
from repro.automata.mealy import MealyMachine
from repro.learning.angluin import (
    LStarLearner,
    exact_equivalence_oracle,
    sampled_equivalence_oracle,
)


def even_zeros_dfa():
    return DFA((0, 1), [{0: 1, 1: 0}, {0: 0, 1: 1}], {0})


class TestLStarExactEQ:
    def test_learns_even_zeros(self):
        target = even_zeros_dfa()
        learner = LStarLearner((0, 1))
        result = learner.fit(target.accepts, exact_equivalence_oracle(target))
        assert result.exact
        assert result.dfa.equivalent(target)
        assert result.dfa.num_states == 2

    def test_learns_minimal_automaton(self):
        # A bloated 4-state DFA for "ends in 1" must come back with 2 states.
        target = DFA(
            (0, 1),
            [
                {0: 2, 1: 1},
                {0: 0, 1: 3},
                {0: 0, 1: 3},
                {0: 2, 1: 1},
            ],
            accepting={1, 3},
        )
        learner = LStarLearner((0, 1))
        result = learner.fit(target.accepts, exact_equivalence_oracle(target))
        assert result.dfa.equivalent(target)
        assert result.dfa.num_states == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_learns_random_dfas(self, seed):
        rng = np.random.default_rng(seed)
        target = DFA.random(7, (0, 1), rng)
        learner = LStarLearner((0, 1))
        result = learner.fit(target.accepts, exact_equivalence_oracle(target))
        assert result.exact
        assert result.dfa.equivalent(target)
        assert result.dfa.num_states == target.minimized().num_states

    def test_larger_alphabet(self):
        rng = np.random.default_rng(11)
        target = DFA.random(5, ("a", "b", "c"), rng)
        learner = LStarLearner(("a", "b", "c"))
        result = learner.fit(target.accepts, exact_equivalence_oracle(target))
        assert result.dfa.equivalent(target)

    def test_query_accounting(self):
        target = even_zeros_dfa()
        learner = LStarLearner((0, 1))
        result = learner.fit(target.accepts, exact_equivalence_oracle(target))
        assert result.membership_queries > 0
        assert result.equivalence_queries >= 1


class TestLStarSampledEQ:
    def test_pac_learns_with_sampled_oracle(self):
        rng = np.random.default_rng(12)
        target = DFA.random(5, (0, 1), rng)
        learner = LStarLearner((0, 1))
        eq = sampled_equivalence_oracle(
            target.accepts, (0, 1), eps=0.01, delta=0.05,
            rng=np.random.default_rng(13), max_length=14,
        )
        result = learner.fit(target.accepts, eq)
        # PAC guarantee: high agreement on random words.
        rng2 = np.random.default_rng(14)
        agree = 0
        trials = 2000
        for _ in range(trials):
            length = int(rng2.integers(0, 12))
            word = tuple(int(rng2.integers(0, 2)) for _ in range(length))
            agree += result.dfa.accepts(word) == target.accepts(word)
        assert agree / trials > 0.97

    def test_validation(self):
        with pytest.raises(ValueError):
            LStarLearner(())
        with pytest.raises(ValueError):
            LStarLearner((0, 1), max_rounds=0)


class TestLStarOnMealy:
    def test_learns_mealy_output_language(self):
        """The Section V-B workflow: learn the FSM via its output DFA."""
        rng = np.random.default_rng(15)
        machine = MealyMachine.random(4, (0, 1), ("lo", "hi"), rng)
        target = machine.to_output_dfa("hi")
        learner = LStarLearner((0, 1))
        result = learner.fit(target.accepts, exact_equivalence_oracle(target))
        assert result.dfa.equivalent(target)

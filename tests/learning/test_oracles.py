"""Unit tests for repro.learning.oracles and metrics."""

import numpy as np
import pytest

from repro.learning.metrics import (
    accuracy,
    error_rate,
    evaluate_hypothesis,
    majority_baseline,
)
from repro.learning.oracles import (
    ExampleOracle,
    MembershipOracle,
    SimulatedEquivalenceOracle,
    angluin_eq_sample_size,
)
from repro.pufs.arbiter import ArbiterPUF
from repro.pufs.crp import CRPSet, biased_challenges


def xor_target(x):
    return np.prod(x, axis=1).astype(np.int8)


class TestExampleOracle:
    def test_draw_shapes_and_labels(self):
        oracle = ExampleOracle(6, xor_target, np.random.default_rng(0))
        x, y = oracle.draw(100)
        assert x.shape == (100, 6)
        assert np.array_equal(y, xor_target(x))
        assert oracle.examples_drawn == 100

    def test_draw_counts_accumulate(self):
        oracle = ExampleOracle(4, xor_target, np.random.default_rng(1))
        oracle.draw(10)
        oracle.draw(5)
        assert oracle.examples_drawn == 15

    def test_noise_rate_applied(self):
        oracle = ExampleOracle(
            8, xor_target, np.random.default_rng(2), noise_rate=0.25
        )
        x, y = oracle.draw(20_000)
        flip_rate = np.mean(y != xor_target(x))
        assert abs(flip_rate - 0.25) < 0.02

    def test_custom_distribution(self):
        oracle = ExampleOracle(
            8, xor_target, np.random.default_rng(3), sampler=biased_challenges(0.9)
        )
        x, _ = oracle.draw(5000)
        assert np.mean(x) < -0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ExampleOracle(4, xor_target, noise_rate=0.5)
        oracle = ExampleOracle(4, xor_target)
        with pytest.raises(ValueError):
            oracle.draw(0)


class TestMembershipOracle:
    def test_query_and_counting(self):
        oracle = MembershipOracle(4, xor_target)
        x = np.array([[1, 1, -1, 1], [-1, -1, -1, -1]], dtype=np.int8)
        y = oracle.query(x)
        assert y.tolist() == [-1, 1]
        assert oracle.queries_made == 2

    def test_query_one(self):
        oracle = MembershipOracle(3, xor_target)
        assert oracle.query_one(np.array([1, -1, 1])) == -1

    def test_budget_enforced(self):
        oracle = MembershipOracle(3, xor_target, max_queries=5)
        oracle.query(np.ones((5, 3), dtype=np.int8))
        with pytest.raises(RuntimeError):
            oracle.query(np.ones((1, 3), dtype=np.int8))

    def test_width_check(self):
        oracle = MembershipOracle(3, xor_target)
        with pytest.raises(ValueError):
            oracle.query(np.ones((2, 4), dtype=np.int8))


class TestSimulatedEQ:
    def test_sample_size_grows_with_round(self):
        sizes = [angluin_eq_sample_size(0.1, 0.05, i) for i in range(5)]
        assert sizes == sorted(sizes)
        assert sizes[0] >= 1

    def test_sample_size_validates(self):
        with pytest.raises(ValueError):
            angluin_eq_sample_size(0.0, 0.5, 0)
        with pytest.raises(ValueError):
            angluin_eq_sample_size(0.1, 0.5, -1)

    def test_accepts_correct_hypothesis(self):
        eq = SimulatedEquivalenceOracle(
            6, xor_target, eps=0.05, delta=0.05, rng=np.random.default_rng(4)
        )
        assert eq.query(xor_target) is None
        assert eq.examples_used > 0

    def test_rejects_wrong_hypothesis_with_counterexample(self):
        eq = SimulatedEquivalenceOracle(
            6, xor_target, eps=0.05, delta=0.05, rng=np.random.default_rng(5)
        )
        wrong = lambda x: -xor_target(x)
        cex = eq.query(wrong)
        assert cex is not None
        assert xor_target(cex[None, :])[0] != wrong(cex[None, :])[0]


class TestMetrics:
    def test_accuracy_basic(self):
        a = np.array([1, -1, 1, 1])
        b = np.array([1, 1, 1, -1])
        assert accuracy(a, b) == 0.5
        assert error_rate(a, b) == 0.5

    def test_accuracy_validates(self):
        with pytest.raises(ValueError):
            accuracy(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_evaluate_hypothesis(self):
        rng = np.random.default_rng(6)
        puf = ArbiterPUF(8, rng)
        from repro.pufs.crp import generate_crps

        crps = generate_crps(puf, 500, rng)
        assert evaluate_hypothesis(puf.eval, crps) == 1.0

    def test_majority_baseline(self):
        labels = np.array([1, 1, 1, -1])
        assert majority_baseline(labels) == 0.75
        with pytest.raises(ValueError):
            majority_baseline(np.array([]))

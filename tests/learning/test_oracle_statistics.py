"""Statistical contracts of the oracle layer.

The PAC analysis treats the oracles' parameters as ground truth — an
``ExampleOracle`` with ``noise_rate=p`` *is* the p-noisy example oracle
of the noise-tolerance theorems, and a ``MembershipOracle``'s counter
*is* the query complexity being charged.  These tests verify both claims
empirically through the :mod:`repro.conformance` oracles: the realised
flip rate must conform to an exact Clopper-Pearson interval at the
declared per-test alpha (family-wise accounting in docs/TESTING.md), and
the counter matches the challenges actually asked.
"""

import numpy as np
import pytest

from repro.conformance.pytest_plugin import statistical_test
from repro.learning.oracles import ExampleOracle, MembershipOracle


def parity_target(x):
    return np.prod(x, axis=1).astype(np.int8)


class TestExampleOracleNoiseRate:
    @statistical_test(alpha=2e-8)
    @pytest.mark.parametrize("p", [0.05, 0.15, 0.3, 0.45])
    def test_empirical_flip_rate_in_binomial_ci(self, p, stat):
        m = 40_000
        oracle = ExampleOracle(
            8, parity_target, stat.rng("oracle", 123), noise_rate=p
        )
        x, y = oracle.draw(m)
        flips = int(np.sum(y != parity_target(x)))
        stat.check_bernoulli(flips, m, p, name=f"flip_rate[p={p}]")

    def test_zero_noise_never_flips(self):
        oracle = ExampleOracle(
            8, parity_target, np.random.default_rng(7), noise_rate=0.0
        )
        x, y = oracle.draw(5000)
        np.testing.assert_array_equal(y, parity_target(x))

    @statistical_test(alpha=2e-8)
    def test_flips_are_independent_of_position(self, stat):
        """Early and late halves of a draw flip at the same rate (no drift)."""
        p = 0.2
        oracle = ExampleOracle(
            6, parity_target, stat.rng("oracle", 11), noise_rate=p
        )
        x, y = oracle.draw(30_000)
        mism = y != parity_target(x)
        first, second = int(np.sum(mism[:15_000])), int(np.sum(mism[15_000:]))
        stat.check_two_sample_equal(
            first, 15_000, second, 15_000, name="flip_rate_halves_equal"
        )


class TestMembershipOracleAccounting:
    def test_counter_matches_challenges_asked(self):
        oracle = MembershipOracle(5, parity_target)
        rng = np.random.default_rng(0)
        asked = 0
        for batch in (1, 7, 32, 100):
            x = (1 - 2 * rng.integers(0, 2, size=(batch, 5))).astype(np.int8)
            oracle.query(x)
            asked += batch
            assert oracle.queries_made == asked

    def test_single_row_and_query_one_count_as_one(self):
        oracle = MembershipOracle(4, parity_target)
        oracle.query(np.array([1, -1, 1, -1], dtype=np.int8))
        assert oracle.queries_made == 1
        oracle.query_one(np.array([1, 1, 1, 1], dtype=np.int8))
        assert oracle.queries_made == 2

    def test_budget_enforced_at_exact_boundary(self):
        oracle = MembershipOracle(4, parity_target, max_queries=10)
        x = np.ones((10, 4), dtype=np.int8)
        oracle.query(x)  # exactly the budget: fine
        with pytest.raises(RuntimeError, match="budget"):
            oracle.query_one(np.ones(4, dtype=np.int8))
        # The counter still reflects every challenge that was asked.
        assert oracle.queries_made == 11

"""Unit tests for the Kushilevitz-Mansour learner."""

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.ltf import LTF
from repro.learning.kushilevitz_mansour import KushilevitzMansour
from repro.pufs.arbiter import ArbiterPUF, parity_transform


class TestKMOnStructuredTargets:
    def test_finds_high_degree_parity(self):
        """The LMN-vs-KM separation: a degree-10 parity in n=16.

        LMN at degree 10 would estimate C(16,<=10) ~ 59k coefficients from
        random examples; KM homes in on the single heavy one with
        membership queries.
        """
        subset = (0, 2, 3, 5, 6, 8, 9, 11, 13, 15)
        target = BooleanFunction.parity_on(16, subset)
        km = KushilevitzMansour(theta=0.3, bucket_samples=1024)
        result = km.fit(16, target, np.random.default_rng(0))
        assert result.heavy_subsets() == [subset]
        assert result.spectrum[subset] == pytest.approx(1.0, abs=0.05)
        x = random_pm1(16, 2000, np.random.default_rng(1))
        assert np.mean(result.predict(x) == target(x)) == 1.0

    def test_finds_sparse_mixed_spectrum(self):
        # f = MAJ3(x0, x3 x4, x1 x2 x5) = (a + b + c - abc)/2: exactly four
        # coefficients of magnitude 1/2, at degrees 1, 2, 3, and 6.
        def target(x):
            a = x[:, 0]
            b = x[:, 3] * x[:, 4]
            c = x[:, 1] * x[:, 2] * x[:, 5]
            return np.where(a + b + c >= 0, 1, -1).astype(np.int8)

        km = KushilevitzMansour(theta=0.3, bucket_samples=4096)
        result = km.fit(8, target, np.random.default_rng(2))
        found = set(result.heavy_subsets())
        assert {(0,), (3, 4), (1, 2, 5), (0, 1, 2, 3, 4, 5)} <= found
        x = random_pm1(8, 3000, np.random.default_rng(3))
        assert np.mean(result.predict(x) == target(x)) > 0.95

    def test_majority_degree_one_coefficients(self):
        target = LTF(np.ones(7))
        km = KushilevitzMansour(theta=0.2, bucket_samples=2048)
        result = km.fit(7, target, np.random.default_rng(4))
        # MAJ_7's heavy coefficients are exactly the seven singletons.
        singletons = {s for s in result.heavy_subsets() if len(s) == 1}
        assert len(singletons) == 7

    def test_constant_function(self):
        target = BooleanFunction.constant(6, -1)
        km = KushilevitzMansour(theta=0.5)
        result = km.fit(6, target, np.random.default_rng(5))
        assert result.heavy_subsets() == [()]
        assert result.spectrum[()] == pytest.approx(-1.0, abs=0.05)

    def test_arbiter_puf_in_feature_space(self):
        """KM models an arbiter PUF given MQ access (the [19]-style attack)."""
        puf = ArbiterPUF(10, np.random.default_rng(6))

        def target(x_feat):
            # Oracle over the parity-feature cube: LTF with weights w.
            return np.where(
                x_feat @ puf.weights[:-1] + puf.weights[-1] >= 0, 1, -1
            ).astype(np.int8)

        km = KushilevitzMansour(theta=0.15, bucket_samples=2048)
        result = km.fit(10, target, np.random.default_rng(7))
        x = random_pm1(10, 3000, np.random.default_rng(8))
        assert np.mean(result.predict(x) == target(x)) > 0.85


class TestKMBehaviour:
    def test_query_accounting(self):
        target = BooleanFunction.parity_on(6, [1])
        km = KushilevitzMansour(theta=0.4, bucket_samples=256)
        result = km.fit(6, target, np.random.default_rng(9))
        assert result.membership_queries > 0
        assert result.buckets_explored >= 2 * 6

    def test_queries_scale_with_precision(self):
        target = BooleanFunction.parity_on(6, [1])
        cheap = KushilevitzMansour(theta=0.4, bucket_samples=128).fit(
            6, target, np.random.default_rng(10)
        )
        costly = KushilevitzMansour(theta=0.4, bucket_samples=2048).fit(
            6, target, np.random.default_rng(11)
        )
        assert costly.membership_queries > cheap.membership_queries

    def test_high_theta_finds_nothing_on_flat_spectrum(self):
        # Full parity spreads weight 1 on a single far coefficient, but a
        # bent-like random function has flat small coefficients: with a
        # large theta, KM returns an empty spectrum.
        rng = np.random.default_rng(12)
        tab = (1 - 2 * rng.integers(0, 2, size=2**10)).astype(np.int8)
        target = BooleanFunction.from_truth_table(tab)
        km = KushilevitzMansour(theta=0.6, bucket_samples=1024)
        result = km.fit(10, target, np.random.default_rng(13))
        assert result.spectrum == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            KushilevitzMansour(theta=0.0)
        with pytest.raises(ValueError):
            KushilevitzMansour(theta=0.1, bucket_samples=0)

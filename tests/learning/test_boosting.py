"""Unit tests for AdaBoost over stumps."""

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.booleanfuncs.ltf import LTF
from repro.learning.boosting import AdaBoost, Stump
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.crp import generate_crps


class TestStump:
    def test_coordinate_stump(self):
        s = Stump(coordinate=1, polarity=-1)
        x = np.array([[1, 1], [1, -1]], dtype=np.int8)
        assert s.predict(x).tolist() == [-1, 1]

    def test_constant_stump(self):
        s = Stump(coordinate=-1, polarity=1)
        assert np.all(s.predict(np.zeros((5, 3), np.int8)) == 1)


class TestAdaBoost:
    def test_learns_dictator_in_one_round(self):
        rng = np.random.default_rng(0)
        x = random_pm1(8, 500, rng)
        y = x[:, 3]
        result = AdaBoost(rounds=10).fit(x, y)
        assert result.train_accuracy == 1.0
        assert result.rounds_run <= 2

    def test_learns_majority(self):
        rng = np.random.default_rng(1)
        target = LTF(np.ones(9))
        x = random_pm1(9, 4000, rng)
        result = AdaBoost(rounds=120).fit(x, target(x))
        x_test = random_pm1(9, 4000, rng)
        assert np.mean(result.predict(x_test) == target(x_test)) > 0.85

    def test_boosting_beats_best_single_stump(self):
        rng = np.random.default_rng(2)
        target = LTF(np.array([3.0, 2.0, 2.0, 1.0, 1.0, 1.0]))
        x = random_pm1(6, 3000, rng)
        y = target(x)
        one = AdaBoost(rounds=1).fit(x, y)
        many = AdaBoost(rounds=80).fit(x, y)
        assert many.train_accuracy > one.train_accuracy

    def test_arbiter_puf_with_parity_features(self):
        rng = np.random.default_rng(3)
        puf = ArbiterPUF(16, rng)
        crps = generate_crps(puf, 6000, rng)
        result = AdaBoost(rounds=150, feature_map=parity_transform).fit(
            crps.challenges, crps.responses
        )
        test = generate_crps(puf, 4000, rng)
        acc = np.mean(result.predict(test.challenges) == test.responses)
        assert acc > 0.8

    def test_constant_target_handled(self):
        x = random_pm1(5, 100, np.random.default_rng(4))
        y = np.ones(100, dtype=np.int8)
        result = AdaBoost(rounds=10).fit(x, y)
        assert result.train_accuracy == 1.0

    def test_pure_noise_falls_back_gracefully(self):
        rng = np.random.default_rng(5)
        x = random_pm1(5, 2000, rng)
        y = (1 - 2 * rng.integers(0, 2, size=2000)).astype(np.int8)
        result = AdaBoost(rounds=5, min_edge=0.05).fit(x, y)
        # Accuracy near chance, but a valid hypothesis is returned.
        assert 0.4 < result.train_accuracy < 0.65

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaBoost(rounds=0)
        with pytest.raises(ValueError):
            AdaBoost(min_edge=-1)
        booster = AdaBoost()
        with pytest.raises(ValueError):
            booster.fit(np.ones((3, 2)), np.ones(2))

    def test_score_sign_matches_predict(self):
        rng = np.random.default_rng(6)
        target = LTF(np.ones(7))
        x = random_pm1(7, 1000, rng)
        result = AdaBoost(rounds=30).fit(x, target(x))
        assert np.array_equal(
            np.where(result.score(x) >= 0, 1, -1), result.predict(x)
        )

"""Unit tests for the LearnPoly (Schapire-Sellie style) learner."""

import numpy as np
import pytest

from repro.booleanfuncs.polynomials import SparseF2Polynomial
from repro.learning.learn_poly import (
    LearnPoly,
    QueryBudgetExceeded,
    SupportTooLarge,
)


def run_learner(poly, seed=0, **kwargs):
    learner = LearnPoly(**kwargs)
    return learner.fit(poly.n, poly.evaluate_bits, np.random.default_rng(seed))


class TestLearnPolyExactRecovery:
    def test_zero_polynomial(self):
        poly = SparseF2Polynomial(6)
        result = run_learner(poly)
        assert result.polynomial.is_zero()
        assert result.exact
        assert result.rounds == 0

    def test_single_monomial(self):
        poly = SparseF2Polynomial(8, [[1, 3]])
        result = run_learner(poly, seed=1)
        assert result.polynomial == poly
        assert result.exact

    def test_constant_one(self):
        poly = SparseF2Polynomial(5, [[]])
        result = run_learner(poly, seed=2)
        assert result.polynomial == poly

    def test_parity_target(self):
        # Parity is the hard case for single-bit shrinking (needs pairs).
        poly = SparseF2Polynomial.parity(10, [0, 2, 4, 6, 8])
        result = run_learner(poly, seed=3)
        assert result.polynomial == poly
        assert result.exact

    def test_mixed_degree_sparse_target(self):
        poly = SparseF2Polynomial(12, [[0], [1, 2], [3, 4, 5], [6]])
        result = run_learner(poly, seed=4)
        assert result.polynomial == poly

    @pytest.mark.parametrize("seed", range(5))
    def test_random_sparse_targets(self, seed):
        rng = np.random.default_rng(100 + seed)
        poly = SparseF2Polynomial.random(10, sparsity=6, max_degree=3, rng=rng)
        result = run_learner(poly, seed=seed)
        assert result.polynomial == poly
        assert result.exact

    def test_query_counts_polynomial(self):
        poly = SparseF2Polynomial(16, [[0, 1], [5], [9, 12, 15]])
        result = run_learner(poly, seed=5)
        # Generous sanity cap: a few thousand queries, not 2^16.
        assert result.membership_queries < 30_000
        assert result.rounds <= 10


class TestLearnPolyLimits:
    def test_query_budget_enforced(self):
        poly = SparseF2Polynomial(10, [[0], [1, 2], [3, 4, 5]])
        learner = LearnPoly(max_queries=10)
        with pytest.raises(QueryBudgetExceeded):
            learner.fit(10, poly.evaluate_bits, np.random.default_rng(6))

    def test_dense_high_degree_target_detected(self):
        # Majority is far from any sparse low-degree F2 polynomial; the
        # learner must fail loudly (SupportTooLarge) or run out of rounds,
        # never silently return a wrong "exact" answer.
        n = 14

        def majority_bits(x):
            return (np.sum(x, axis=1) > n // 2).astype(np.int8)

        learner = LearnPoly(subcube_cap=6, max_rounds=30)
        try:
            result = learner.fit(n, majority_bits, np.random.default_rng(7))
            assert not result.exact
        except SupportTooLarge:
            pass

    def test_validation(self):
        with pytest.raises(ValueError):
            LearnPoly(eps=0.0)
        with pytest.raises(ValueError):
            LearnPoly(delta=1.0)
        with pytest.raises(ValueError):
            LearnPoly(subcube_cap=0)
        with pytest.raises(ValueError):
            LearnPoly(max_rounds=0)


class TestLearnPolyAgainstJuntas:
    def test_learns_junta_of_xored_ands(self):
        """The Corollary 2 shape: XOR of small-support terms."""
        poly = SparseF2Polynomial(20, [[0, 1], [2, 3], [4, 5], [6, 7]])
        result = run_learner(poly, seed=8)
        assert result.polynomial == poly

    def test_prediction_interface(self):
        poly = SparseF2Polynomial(8, [[0], [3, 4]])
        result = run_learner(poly, seed=9)
        x = np.random.default_rng(10).integers(0, 2, size=(50, 8)).astype(np.int8)
        assert np.array_equal(result.predict_bits(x), poly.evaluate_bits(x))

"""Unit tests for the product-of-margins XOR PUF attack."""

import numpy as np
import pytest

from repro.learning.xor_logistic import XorLogisticAttack
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.crp import generate_crps
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestXorLogisticAttack:
    def test_k1_reduces_to_plain_logistic(self):
        rng = np.random.default_rng(0)
        puf = ArbiterPUF(32, rng)
        crps = generate_crps(puf, 3000, rng)
        fit = XorLogisticAttack(1, feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 3000, rng)
        assert np.mean(fit.predict(test.challenges) == test.responses) > 0.97

    def test_breaks_2xor_puf(self):
        rng = np.random.default_rng(1)
        puf = XORArbiterPUF(32, 2, rng)
        crps = generate_crps(puf, 5000, rng)
        fit = XorLogisticAttack(2, feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 5000, rng)
        assert np.mean(fit.predict(test.challenges) == test.responses) > 0.95

    def test_breaks_3xor_puf(self):
        rng = np.random.default_rng(2)
        puf = XORArbiterPUF(24, 3, rng)
        crps = generate_crps(puf, 12_000, rng)
        fit = XorLogisticAttack(3, feature_map=parity_transform, restarts=10).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 5000, rng)
        assert np.mean(fit.predict(test.challenges) == test.responses) > 0.90

    def test_underparameterised_model_fails(self):
        """Modelling a 3-XOR with k_guess=1 caps near chance."""
        rng = np.random.default_rng(3)
        puf = XORArbiterPUF(24, 3, rng)
        crps = generate_crps(puf, 8000, rng)
        fit = XorLogisticAttack(1, feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 5000, rng)
        acc = np.mean(fit.predict(test.challenges) == test.responses)
        assert acc < 0.7

    def test_too_few_crps_generalise_poorly(self):
        rng = np.random.default_rng(4)
        puf = XORArbiterPUF(32, 2, rng)
        crps = generate_crps(puf, 150, rng)
        fit = XorLogisticAttack(2, feature_map=parity_transform, restarts=3).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 5000, rng)
        acc = np.mean(fit.predict(test.challenges) == test.responses)
        assert acc < 0.92  # far from the converged regime

    def test_restart_accounting(self):
        rng = np.random.default_rng(5)
        puf = XORArbiterPUF(16, 2, rng)
        crps = generate_crps(puf, 2000, rng)
        fit = XorLogisticAttack(2, feature_map=parity_transform, restarts=5).fit(
            crps.challenges, crps.responses, rng
        )
        assert 1 <= fit.restarts_used <= 5

    def test_margin_sign_matches_predictions(self):
        rng = np.random.default_rng(6)
        puf = XORArbiterPUF(16, 2, rng)
        crps = generate_crps(puf, 1000, rng)
        fit = XorLogisticAttack(2, feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        margins = fit.margin(crps.challenges)
        preds = fit.predict(crps.challenges)
        assert np.array_equal(np.where(margins >= 0, 1, -1), preds)

    def test_validation(self):
        with pytest.raises(ValueError):
            XorLogisticAttack(0)
        with pytest.raises(ValueError):
            XorLogisticAttack(2, restarts=0)
        with pytest.raises(ValueError):
            XorLogisticAttack(2, l2=-1)
        with pytest.raises(ValueError):
            XorLogisticAttack(2, target_accuracy=0.4)
        attack = XorLogisticAttack(2)
        with pytest.raises(ValueError):
            attack.fit(np.ones((3, 2)), np.ones(2))

"""Unit tests for the Perceptron and logistic-regression attacks."""

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.booleanfuncs.ltf import LTF
from repro.learning.logistic import LogisticAttack
from repro.learning.perceptron import Perceptron
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import generate_crps


class TestPerceptron:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(0)
        target = LTF.random(10, rng)
        x = random_pm1(10, 2000, rng)
        y = target(x)
        result = Perceptron(max_epochs=100).fit(x, y, rng)
        assert result.converged
        assert result.train_accuracy == 1.0
        # Generalisation on fresh data.
        x_test = random_pm1(10, 2000, rng)
        assert np.mean(result.predict(x_test) == target(x_test)) > 0.95

    def test_mistake_counting(self):
        rng = np.random.default_rng(1)
        target = LTF.random(8, rng)
        x = random_pm1(8, 500, rng)
        result = Perceptron(max_epochs=100).fit(x, target(x), rng)
        assert result.mistakes > 0

    def test_arbiter_puf_with_feature_map(self):
        """The classic result: arbiter PUFs are learnable via parity features."""
        rng = np.random.default_rng(2)
        puf = ArbiterPUF(32, rng)
        crps = generate_crps(puf, 3000, rng)
        result = Perceptron(max_epochs=60, feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 3000, rng)
        acc = np.mean(result.predict(test.challenges) == test.responses)
        assert acc > 0.95

    def test_arbiter_puf_without_feature_map_struggles(self):
        """Wrong representation: raw challenges are not separable."""
        rng = np.random.default_rng(3)
        puf = ArbiterPUF(32, rng)
        crps = generate_crps(puf, 3000, rng)
        result = Perceptron(max_epochs=30).fit(crps.challenges, crps.responses, rng)
        test = generate_crps(puf, 3000, rng)
        raw_acc = np.mean(result.ltf(test.challenges) == test.responses)
        assert raw_acc < 0.9

    def test_averaged_variant_on_nonseparable(self):
        rng = np.random.default_rng(4)
        puf = BistableRingPUF(16, rng)
        crps = generate_crps(puf, 2000, rng)
        plain = Perceptron(max_epochs=20).fit(crps.challenges, crps.responses, rng)
        avg = Perceptron(max_epochs=20, averaged=True).fit(
            crps.challenges, crps.responses, rng
        )
        # Both produce valid LTFs; averaged should not be (much) worse.
        test = generate_crps(puf, 2000, rng)
        acc_avg = np.mean(avg.predict(test.challenges) == test.responses)
        acc_plain = np.mean(plain.predict(test.challenges) == test.responses)
        assert acc_avg >= acc_plain - 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            Perceptron(max_epochs=0)
        with pytest.raises(ValueError):
            Perceptron(learning_rate=0)
        p = Perceptron()
        with pytest.raises(ValueError):
            p.fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            p.fit(np.ones((0, 2)), np.ones(0))

    def test_deterministic_without_shuffle(self):
        rng_data = np.random.default_rng(5)
        target = LTF.random(6, rng_data)
        x = random_pm1(6, 200, rng_data)
        y = target(x)
        r1 = Perceptron(max_epochs=10, shuffle=False).fit(x, y)
        r2 = Perceptron(max_epochs=10, shuffle=False).fit(x, y)
        assert np.array_equal(r1.ltf.weights, r2.ltf.weights)
        assert r1.mistakes == r2.mistakes


class TestLogisticAttack:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(6)
        target = LTF.random(10, rng)
        x = random_pm1(10, 2000, rng)
        result = LogisticAttack().fit(x, target(x), rng)
        x_test = random_pm1(10, 3000, rng)
        assert np.mean(result.predict(x_test) == target(x_test)) > 0.95

    def test_breaks_arbiter_puf(self):
        rng = np.random.default_rng(7)
        puf = ArbiterPUF(64, rng)
        crps = generate_crps(puf, 5000, rng)
        result = LogisticAttack(feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 5000, rng)
        assert np.mean(result.predict(test.challenges) == test.responses) > 0.97

    def test_probability_calibrated_sign(self):
        rng = np.random.default_rng(8)
        target = LTF.random(6, rng)
        x = random_pm1(6, 1000, rng)
        result = LogisticAttack().fit(x, target(x), rng)
        probs = result.probability(x)
        preds = np.where(probs >= 0.5, 1, -1)
        assert np.mean(preds == result.predict(x)) > 0.99

    def test_noise_tolerance(self):
        rng = np.random.default_rng(9)
        puf = ArbiterPUF(32, rng, noise_sigma=0.5)
        crps = generate_crps(puf, 4000, rng, noisy=True)
        result = LogisticAttack(feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 4000, rng)  # ideal labels
        assert np.mean(result.predict(test.challenges) == test.responses) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticAttack(l2=-1.0)
        with pytest.raises(ValueError):
            LogisticAttack(max_iter=0)
        attack = LogisticAttack()
        with pytest.raises(ValueError):
            attack.fit(np.ones((3, 2)), np.ones(2))

"""Unit tests for the iPUF splitting attack."""

import numpy as np
import pytest

from repro.learning.interpose_attack import (
    InterposeSplittingAttack,
    attack_interpose_puf,
)
from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import parity_transform
from repro.pufs.crp import generate_crps
from repro.pufs.interpose import InterposePUF


class TestSplittingAttack:
    @pytest.mark.parametrize("seed", range(3))
    def test_breaks_11_ipuf(self, seed):
        puf = InterposePUF(20, 1, 1, np.random.default_rng(seed))
        result = attack_interpose_puf(puf, 8000, np.random.default_rng(100 + seed))
        test = generate_crps(puf, 4000, np.random.default_rng(200 + seed))
        acc = np.mean(result.predict(test.challenges) == test.responses)
        assert acc > 0.95, f"seed {seed}: {acc:.3f}"

    def test_beats_monolithic_ltf_attack(self):
        """The structural attack outperforms treating the iPUF as one LTF."""
        rng = np.random.default_rng(5)
        puf = InterposePUF(20, 1, 1, np.random.default_rng(6))
        crps = generate_crps(puf, 8000, rng)
        mono = LogisticAttack(feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        split = InterposeSplittingAttack(puf.position).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 4000, rng)
        mono_acc = np.mean(mono.predict(test.challenges) == test.responses)
        split_acc = np.mean(split.predict(test.challenges) == test.responses)
        assert split_acc > mono_acc + 0.02

    def test_iteration_tracking(self):
        puf = InterposePUF(12, 1, 1, np.random.default_rng(7))
        crps = generate_crps(puf, 2000, np.random.default_rng(8))
        result = InterposeSplittingAttack(puf.position, iterations=3).fit(
            crps.challenges, crps.responses, np.random.default_rng(9)
        )
        assert 1 <= result.iterations_run <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            InterposeSplittingAttack(-1)
        with pytest.raises(ValueError):
            InterposeSplittingAttack(2, iterations=0)
        attack = InterposeSplittingAttack(5)
        with pytest.raises(ValueError):
            attack.fit(np.ones((3, 4)), np.ones(2))
        with pytest.raises(ValueError):
            InterposeSplittingAttack(10).fit(
                np.ones((10, 4), dtype=np.int8), np.ones(10, dtype=np.int8)
            )

    def test_rejects_bigger_ipufs(self):
        puf = InterposePUF(12, 2, 1, np.random.default_rng(10))
        with pytest.raises(ValueError, match=r"\(1,1\)"):
            attack_interpose_puf(puf, 100)

"""Unit tests for the evolution-strategies attack."""

import numpy as np
import pytest

from repro.learning.evolution import EvolutionStrategiesAttack
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.crp import generate_crps
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestESAttack:
    def test_breaks_single_arbiter(self):
        rng = np.random.default_rng(0)
        puf = ArbiterPUF(16, rng)
        crps = generate_crps(puf, 2000, rng)
        attack = EvolutionStrategiesAttack(
            1, generations=150, feature_map=parity_transform
        )
        result = attack.fit(crps.challenges, crps.responses, rng)
        test = generate_crps(puf, 3000, rng)
        acc = np.mean(result.predict(test.challenges) == test.responses)
        assert acc > 0.9

    def test_breaks_2xor(self):
        rng = np.random.default_rng(1)
        puf = XORArbiterPUF(12, 2, rng)
        crps = generate_crps(puf, 4000, rng)
        attack = EvolutionStrategiesAttack(
            2, generations=250, lam=48, feature_map=parity_transform,
            target_accuracy=0.95,
        )
        result = attack.fit(crps.challenges, crps.responses, rng)
        test = generate_crps(puf, 3000, rng)
        acc = np.mean(result.predict(test.challenges) == test.responses)
        assert acc > 0.85

    def test_early_stop_on_target_accuracy(self):
        rng = np.random.default_rng(2)
        puf = ArbiterPUF(8, rng)
        crps = generate_crps(puf, 800, rng)
        attack = EvolutionStrategiesAttack(
            1, generations=500, target_accuracy=0.9,
            feature_map=parity_transform,
        )
        result = attack.fit(crps.challenges, crps.responses, rng)
        assert result.train_accuracy >= 0.9
        assert result.generations_run < 500

    def test_evaluation_accounting(self):
        rng = np.random.default_rng(3)
        puf = ArbiterPUF(8, rng)
        crps = generate_crps(puf, 300, rng)
        attack = EvolutionStrategiesAttack(
            1, mu=4, lam=8, generations=5, target_accuracy=1.0,
            feature_map=parity_transform,
        )
        result = attack.fit(crps.challenges, crps.responses, rng)
        assert result.evaluations <= 4 + 5 * 8

    def test_validation(self):
        with pytest.raises(ValueError):
            EvolutionStrategiesAttack(0)
        with pytest.raises(ValueError):
            EvolutionStrategiesAttack(1, mu=4, lam=2)
        with pytest.raises(ValueError):
            EvolutionStrategiesAttack(1, generations=0)
        with pytest.raises(ValueError):
            EvolutionStrategiesAttack(1, sigma0=0)
        with pytest.raises(ValueError):
            EvolutionStrategiesAttack(1, target_accuracy=0.3)
        attack = EvolutionStrategiesAttack(1)
        with pytest.raises(ValueError):
            attack.fit(np.ones((2, 3)), np.ones(3))

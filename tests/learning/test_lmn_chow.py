"""Unit tests for the LMN and Chow-parameter learners."""

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.ltf import LTF
from repro.learning.chow import ChowLearner
from repro.learning.lmn import LMNLearner, lmn_sample_size, num_low_degree_subsets
from repro.learning.oracles import ExampleOracle
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import CRPSet, generate_crps
from repro.pufs.xor_arbiter import XORArbiterPUF


class TestLMNHelpers:
    def test_subset_count(self):
        assert num_low_degree_subsets(5, 0) == 1
        assert num_low_degree_subsets(5, 1) == 6
        assert num_low_degree_subsets(5, 2) == 16
        assert num_low_degree_subsets(5, 5) == 32
        assert num_low_degree_subsets(5, 9) == 32  # degree clamped to n

    def test_subset_count_validates(self):
        with pytest.raises(ValueError):
            num_low_degree_subsets(5, -1)

    def test_sample_size_monotone_in_degree(self):
        sizes = [lmn_sample_size(10, d, 0.1, 0.05) for d in (1, 2, 3)]
        assert sizes == sorted(sizes)

    def test_sample_size_validates(self):
        with pytest.raises(ValueError):
            lmn_sample_size(10, 2, 0.0, 0.5)


class TestLMNLearner:
    def test_learns_low_degree_target_exactly(self):
        # A degree-2 sign-of-polynomial target.
        rng = np.random.default_rng(0)
        target = BooleanFunction.parity_on(8, [1, 4])
        oracle = ExampleOracle(8, target, rng)
        result = LMNLearner(degree=2).fit_oracle(oracle, 4000)
        x = random_pm1(8, 3000, rng)
        assert np.mean(result.predict(x) == target(x)) > 0.99

    def test_learns_majority(self):
        rng = np.random.default_rng(1)
        target = LTF(np.ones(9))
        oracle = ExampleOracle(9, target, rng)
        result = LMNLearner(degree=3).fit_oracle(oracle, 8000)
        x = random_pm1(9, 3000, rng)
        assert np.mean(result.predict(x) == target(x)) > 0.93

    def test_degree_too_low_fails_on_parity(self):
        # Parity of 4 has no Fourier weight below degree 4.
        rng = np.random.default_rng(2)
        target = BooleanFunction.parity_on(6, [0, 1, 2, 3])
        oracle = ExampleOracle(6, target, rng)
        result = LMNLearner(degree=2).fit_oracle(oracle, 5000)
        x = random_pm1(6, 4000, rng)
        acc = np.mean(result.predict(x) == target(x))
        assert acc < 0.6  # essentially random

    def test_noise_tolerance(self):
        """Classification noise shrinks coefficients but not their signs."""
        rng = np.random.default_rng(3)
        target = BooleanFunction.parity_on(8, [2, 5])
        oracle = ExampleOracle(8, target, rng, noise_rate=0.2)
        result = LMNLearner(degree=2).fit_oracle(oracle, 20_000)
        x = random_pm1(8, 3000, rng)
        assert np.mean(result.predict(x) == target(x)) > 0.95

    def test_captured_weight_parseval(self):
        rng = np.random.default_rng(4)
        target = LTF(np.ones(7))
        oracle = ExampleOracle(7, target, rng)
        result = LMNLearner(degree=7).fit_oracle(oracle, 20_000)
        assert result.captured_weight == pytest.approx(1.0, abs=0.1)

    def test_guard_rail_on_coefficient_blowup(self):
        learner = LMNLearner(degree=10, max_coefficients=1000)
        with pytest.raises(ValueError, match="infeasibility"):
            learner.low_degree_subsets(64)

    def test_small_k_xor_puf_learnable(self):
        """Corollary 1 feasibility direction: constant k."""
        rng = np.random.default_rng(5)
        puf = XORArbiterPUF(10, 2, rng)
        oracle = ExampleOracle(10, puf.eval, rng)
        result = LMNLearner(degree=3).fit_oracle(oracle, 30_000)
        x = random_pm1(10, 5000, rng)
        assert np.mean(result.predict(x) == puf.eval(x)) > 0.8

    def test_threshold_prunes_spectrum(self):
        rng = np.random.default_rng(6)
        target = BooleanFunction.parity_on(8, [0])
        oracle = ExampleOracle(8, target, rng)
        dense = LMNLearner(degree=2, threshold=0.0).fit_oracle(oracle, 3000)
        sparse = LMNLearner(degree=2, threshold=0.2).fit_oracle(oracle, 3000)
        assert len(sparse.spectrum) < len(dense.spectrum)
        assert list(sparse.spectrum) == [(0,)]

    def test_validation(self):
        with pytest.raises(ValueError):
            LMNLearner(degree=-1)
        with pytest.raises(ValueError):
            LMNLearner(degree=1, threshold=-0.5)
        learner = LMNLearner(degree=1)
        with pytest.raises(ValueError):
            learner.fit_sample(np.ones((3, 2)), np.ones(2))


class TestChowLearner:
    def test_recovers_actual_ltf(self):
        """When the target IS an LTF, Chow reconstruction approaches it."""
        rng = np.random.default_rng(7)
        target = LTF.random(12, rng)
        x = random_pm1(12, 30_000, rng)
        crps = CRPSet(x, target(x))
        result = ChowLearner(correction_rounds=8).fit(crps, rng)
        x_test = random_pm1(12, 10_000, rng)
        acc = np.mean(result.predict(x_test) == target(x_test))
        assert acc > 0.95

    def test_plateaus_on_br_puf(self):
        """The paper's Table II effect: BR PUFs defeat LTF reconstruction."""
        rng = np.random.default_rng(8)
        puf = BistableRingPUF(16, rng)
        crps = generate_crps(puf, 30_000, rng)
        result = ChowLearner(correction_rounds=8).fit(crps, rng)
        test = generate_crps(puf, 10_000, rng)
        acc = np.mean(result.predict(test.challenges) == test.responses)
        assert acc < 0.99  # cannot be arbitrarily close to 1

    def test_correction_rounds_help_or_hold(self):
        rng = np.random.default_rng(9)
        target = LTF.random(10, rng)
        x = random_pm1(10, 20_000, rng)
        crps = CRPSet(x, target(x))
        raw = ChowLearner(correction_rounds=0).fit(crps, np.random.default_rng(10))
        corrected = ChowLearner(correction_rounds=10).fit(crps, np.random.default_rng(10))
        x_test = random_pm1(10, 10_000, np.random.default_rng(11))
        acc_raw = np.mean(raw.predict(x_test) == target(x_test))
        acc_cor = np.mean(corrected.predict(x_test) == target(x_test))
        assert acc_cor >= acc_raw - 0.02

    def test_result_fields(self):
        rng = np.random.default_rng(12)
        target = LTF.random(6, rng)
        x = random_pm1(6, 2000, rng)
        result = ChowLearner(correction_rounds=2, estimation_sample=2000).fit(
            CRPSet(x, target(x)), rng
        )
        assert result.chow_estimate.shape == (7,)
        assert result.rounds_run <= 2
        assert result.residual >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChowLearner(correction_rounds=-1)
        with pytest.raises(ValueError):
            ChowLearner(step=0)
        with pytest.raises(ValueError):
            ChowLearner(estimation_sample=0)

"""Unit tests for the Statistical Query framework."""

import itertools

import numpy as np
import pytest

from repro.booleanfuncs.encoding import random_pm1
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.ltf import LTF
from repro.learning.statistical_query import (
    SQChowLearner,
    SQOracle,
    parity_correlations_under_sq,
)


class TestSQOracle:
    def test_adversarial_answers_on_tau_grid(self):
        target = LTF(np.ones(5))
        oracle = SQOracle(5, target, tau=0.1, rng=np.random.default_rng(0))
        answer = oracle.query(lambda x, y: y)
        assert answer == pytest.approx(round(answer / 0.1) * 0.1)

    def test_adversarial_within_tolerance(self):
        target = BooleanFunction.constant(4, 1)
        oracle = SQOracle(4, target, tau=0.05, rng=np.random.default_rng(1))
        answer = oracle.query(lambda x, y: y)
        assert abs(answer - 1.0) <= 0.05 + 1e-9

    def test_sampling_mode_close_to_truth(self):
        target = BooleanFunction.parity_on(6, [0])
        oracle = SQOracle(
            6, target, tau=0.05, mode="sampling", rng=np.random.default_rng(2)
        )
        answer = oracle.query(lambda x, y: y * x[:, 0])
        assert answer == pytest.approx(1.0, abs=0.1)

    def test_query_counting(self):
        target = BooleanFunction.constant(3, 1)
        oracle = SQOracle(3, target, tau=0.1, rng=np.random.default_rng(3))
        oracle.query(lambda x, y: y)
        oracle.query(lambda x, y: y)
        assert oracle.queries_made == 2

    def test_range_enforced(self):
        target = BooleanFunction.constant(3, 1)
        oracle = SQOracle(3, target, tau=0.1, rng=np.random.default_rng(4))
        with pytest.raises(ValueError):
            oracle.query(lambda x, y: 2.0 * y)

    def test_validation(self):
        target = BooleanFunction.constant(3, 1)
        with pytest.raises(ValueError):
            SQOracle(3, target, tau=0.0)
        with pytest.raises(ValueError):
            SQOracle(3, target, tau=0.1, mode="oracle-of-delphi")


class TestSQChowLearner:
    def test_learns_majority_under_adversarial_sq(self):
        """LTFs are SQ-learnable: tau-perturbed Chow parameters suffice."""
        target = LTF(np.ones(9))
        oracle = SQOracle(9, target, tau=0.02, rng=np.random.default_rng(5))
        result = SQChowLearner().fit(oracle)
        assert result.queries_made == 10
        x = random_pm1(9, 5000, np.random.default_rng(6))
        assert np.mean(result.predict(x) == target(x)) > 0.9

    def test_learns_random_ltf_under_sampling_sq(self):
        target = LTF.random(10, np.random.default_rng(7))
        oracle = SQOracle(
            10, target, tau=0.02, mode="sampling", rng=np.random.default_rng(8)
        )
        result = SQChowLearner().fit(oracle)
        x = random_pm1(10, 5000, np.random.default_rng(9))
        assert np.mean(result.predict(x) == target(x)) > 0.85

    def test_noise_tolerance_by_construction(self):
        """A noisy target (flipped labels) shrinks but keeps Chow signs."""
        clean = LTF(np.ones(7))
        rng = np.random.default_rng(10)

        def noisy(x):
            y = clean(x)
            flips = rng.random(y.shape) < 0.2
            return np.where(flips, -y, y)

        oracle = SQOracle(7, noisy, tau=0.02, rng=np.random.default_rng(11))
        result = SQChowLearner().fit(oracle)
        x = random_pm1(7, 5000, np.random.default_rng(12))
        assert np.mean(result.predict(x) == clean(x)) > 0.85


class TestParitySQHardness:
    def test_adversarial_oracle_hides_the_parity(self):
        """All wrong candidates answer exactly 0; the right one stands out
        only when queried directly — no better than exhaustive search."""
        secret = (1, 3, 4)
        target = BooleanFunction.parity_on(6, secret)
        oracle = SQOracle(6, target, tau=0.2, rng=np.random.default_rng(13))
        candidates = [
            s for r in range(0, 4) for s in itertools.combinations(range(6), r)
        ]
        answers = parity_correlations_under_sq(oracle, candidates)
        for subset, value in answers.items():
            if subset == secret:
                assert value == pytest.approx(1.0, abs=0.2)
            else:
                assert value == pytest.approx(0.0, abs=1e-9)

    def test_membership_queries_beat_sq_on_parities(self):
        """The access-model separation: KM (MQ) finds what SQ cannot."""
        from repro.learning.kushilevitz_mansour import KushilevitzMansour

        secret = (0, 2, 3, 5, 7, 8)
        target = BooleanFunction.parity_on(10, secret)
        km = KushilevitzMansour(theta=0.4, bucket_samples=1024)
        result = km.fit(10, target, np.random.default_rng(14))
        assert result.heavy_subsets() == [secret]

"""Unit tests for the MLP attack."""

import numpy as np
import pytest

from repro.learning.mlp import MLPAttack
from repro.pufs import BistableRingPUF, generate_crps
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.booleanfuncs.encoding import random_pm1
from repro.booleanfuncs.function import BooleanFunction


class TestMLPAttack:
    def test_learns_arbiter_features(self):
        rng = np.random.default_rng(0)
        puf = ArbiterPUF(24, rng)
        crps = generate_crps(puf, 4000, rng)
        fit = MLPAttack(hidden=16, epochs=30, feature_map=parity_transform).fit(
            crps.challenges, crps.responses, rng
        )
        test = generate_crps(puf, 3000, rng)
        assert np.mean(fit.predict(test.challenges) == test.responses) > 0.93

    def test_clears_brpuf_ltf_cap(self):
        """The improper-learning escape (Section V-B) via a neural net."""
        rng = np.random.default_rng(1)
        puf = BistableRingPUF(20, np.random.default_rng(2))
        train = generate_crps(puf, 15_000, rng)
        test = generate_crps(puf, 6000, rng)
        from repro.learning.logistic import LogisticAttack

        ltf_acc = np.mean(
            LogisticAttack()
            .fit(train.challenges, train.responses, rng)
            .predict(test.challenges)
            == test.responses
        )
        mlp_acc = np.mean(
            MLPAttack(hidden=48, epochs=40)
            .fit(train.challenges, train.responses, rng)
            .predict(test.challenges)
            == test.responses
        )
        assert mlp_acc > ltf_acc + 0.05

    def test_learns_xor_of_two_bits(self):
        """A linear model cannot do XOR; the MLP must."""
        target = BooleanFunction.parity_on(6, [1, 4])
        rng = np.random.default_rng(3)
        x = random_pm1(6, 4000, rng)
        fit = MLPAttack(hidden=8, epochs=60).fit(x, target(x), rng)
        x_test = random_pm1(6, 3000, rng)
        assert np.mean(fit.predict(x_test) == target(x_test)) > 0.95

    def test_score_sign_matches_predict(self):
        rng = np.random.default_rng(4)
        x = random_pm1(5, 500, rng)
        y = x[:, 0].astype(np.int8)
        fit = MLPAttack(hidden=4, epochs=10).fit(x, y, rng)
        assert np.array_equal(
            np.where(fit.score(x) >= 0, 1, -1), fit.predict(x)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPAttack(hidden=0)
        with pytest.raises(ValueError):
            MLPAttack(epochs=0)
        with pytest.raises(ValueError):
            MLPAttack(learning_rate=0)
        with pytest.raises(ValueError):
            MLPAttack(l2=-1)
        attack = MLPAttack()
        with pytest.raises(ValueError):
            attack.fit(np.ones((3, 2)), np.ones(4))

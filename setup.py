"""Legacy setup shim so `pip install -e .` works without build isolation."""

from setuptools import setup

setup()

"""A code-offset fuzzy extractor over a repetition code.

Construction (Dodis et al.'s secure sketch, instantiated with the
[r, 1, r] repetition code):

* **Generate**: draw a random key bit k_i per block, encode it to r code
  bits, and publish ``helper = codeword XOR response_block``.  The key is
  the concatenation of the k_i (optionally hashed down).
* **Reproduce**: given a fresh noisy response, compute
  ``helper XOR response'`` and decode each block by majority vote; errors
  up to floor((r-1)/2) per block are corrected.

The repetition code keeps everything dependency-free and analysable: the
block failure probability for bit error rate p is the binomial tail
``P[Bin(r, p) > (r-1)/2]``, exposed by :func:`block_failure_probability`
so tests can check the measured failure rate against theory.

Security note relevant to the paper: helper data is public.  For a
repetition code each block's helper reveals r-1 parity relations among
the response bits, i.e. the *adversary's* information budget grows with
the helper size — one more quantity an adversary model has to track.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from typing import Optional, Tuple

import numpy as np


def repetition_encode(key_bits: np.ndarray, r: int) -> np.ndarray:
    """Encode each key bit into ``r`` repeated code bits."""
    if r < 1:
        raise ValueError("repetition factor must be positive")
    key_bits = np.asarray(key_bits, dtype=np.int8)
    if not np.all((key_bits == 0) | (key_bits == 1)):
        raise ValueError("key bits must be 0/1")
    return np.repeat(key_bits, r)


def repetition_decode(code_bits: np.ndarray, r: int) -> np.ndarray:
    """Majority-decode blocks of ``r`` code bits back to key bits."""
    if r < 1:
        raise ValueError("repetition factor must be positive")
    code_bits = np.asarray(code_bits, dtype=np.int8)
    if code_bits.size % r:
        raise ValueError("code length must be a multiple of r")
    blocks = code_bits.reshape(-1, r)
    sums = blocks.sum(axis=1)
    # Ties (even r) round toward 1 — deterministic either way.
    return (sums * 2 >= r).astype(np.int8)


def block_failure_probability(r: int, bit_error_rate: float) -> float:
    """P[a majority-decoded block is wrong] = P[Bin(r, p) >= ceil(r/2 + eps)].

    For odd r this is the tail above (r-1)/2 errors.
    """
    if r < 1:
        raise ValueError("repetition factor must be positive")
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError("bit_error_rate must be in [0, 1]")
    threshold = r // 2 + 1 if r % 2 else r // 2
    p = bit_error_rate
    prob = 0.0
    for errors in range(threshold, r + 1):
        prob += math.comb(r, errors) * p**errors * (1 - p) ** (r - errors)
    return prob


@dataclasses.dataclass
class HelperData:
    """Public helper data of the code-offset sketch."""

    offset: np.ndarray  # codeword XOR response, length key_bits * r
    r: int
    key_length: int

    @property
    def leakage_bits(self) -> int:
        """Entropy-loss upper bound of the sketch: (r - 1) per block."""
        return self.key_length * (self.r - 1)


class FuzzyExtractor:
    """Code-offset fuzzy extractor with repetition-code error correction.

    Parameters
    ----------
    key_length:
        Number of raw key bits extracted.
    r:
        Repetition factor (odd values recommended); corrects up to
        floor((r-1)/2) response-bit errors per block.
    hash_output:
        If True, :meth:`generate`/:meth:`reproduce` return a 32-byte
        SHA-256 digest of the raw key (the privacy-amplification step);
        otherwise the raw key bits.
    """

    def __init__(self, key_length: int, r: int = 5, hash_output: bool = True) -> None:
        if key_length < 1:
            raise ValueError("key_length must be positive")
        if r < 1:
            raise ValueError("repetition factor must be positive")
        self.key_length = key_length
        self.r = r
        self.hash_output = hash_output

    @property
    def response_length(self) -> int:
        """PUF response bits consumed per extraction."""
        return self.key_length * self.r

    def generate(
        self,
        response_bits: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[bytes, HelperData]:
        """Enrollment: (key, public helper) from a reference response."""
        response_bits = self._check_response(response_bits)
        rng = np.random.default_rng() if rng is None else rng
        key_bits = rng.integers(0, 2, size=self.key_length).astype(np.int8)
        codeword = repetition_encode(key_bits, self.r)
        offset = (codeword ^ response_bits).astype(np.int8)
        helper = HelperData(offset=offset, r=self.r, key_length=self.key_length)
        return self._finalize(key_bits), helper

    def reproduce(
        self, noisy_response_bits: np.ndarray, helper: HelperData
    ) -> bytes:
        """Reconstruction from a fresh (noisy) response and the helper."""
        noisy = self._check_response(noisy_response_bits)
        if helper.r != self.r or helper.key_length != self.key_length:
            raise ValueError("helper data does not match this extractor")
        shifted = (helper.offset ^ noisy).astype(np.int8)
        key_bits = repetition_decode(shifted, self.r)
        return self._finalize(key_bits)

    # ------------------------------------------------------------------
    def _check_response(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.int8)
        if bits.shape != (self.response_length,):
            raise ValueError(
                f"expected {self.response_length} response bits, got {bits.shape}"
            )
        if not np.all((bits == 0) | (bits == 1)):
            raise ValueError("response bits must be 0/1")
        return bits

    def _finalize(self, key_bits: np.ndarray) -> bytes:
        raw = np.packbits(key_bits).tobytes()
        if self.hash_output:
            return hashlib.sha256(raw).digest()
        return raw

"""Key generation from noisy PUF responses.

The paper's introduction motivates PUFs as the answer to "secure key
generation and storage have been the main challenges".  Turning a noisy
PUF response into a stable key requires a fuzzy extractor; this package
provides a classic code-offset construction over a repetition code, plus
the helper-data leakage analysis an adversary-model discussion needs
(helper data is public — its leakage must be priced into the attacker's
CRP/information budget).
"""

from repro.keys.fuzzy_extractor import (
    FuzzyExtractor,
    HelperData,
    repetition_decode,
    repetition_encode,
)

__all__ = [
    "FuzzyExtractor",
    "HelperData",
    "repetition_encode",
    "repetition_decode",
]

"""Chunked, vectorised CRP evaluation.

Large challenge matrices are the hot path of every benchmark: a
``(m, n)`` int8 challenge block expands to ``(m, n+1)`` float64 parity
features inside ``PUF.eval``, so a single 10^6-challenge call allocates
~0.5 GB of intermediates and falls out of cache.  Streaming the same
work through fixed-size blocks keeps the working set cache-resident and
bounds peak memory, at identical numerical results.

Determinism note: NumPy ``Generator`` streams are consumed value-by-value
in C order, so drawing ``m`` samples in consecutive blocks produces the
same array as one ``m``-sized draw.  Blocked generation and blocked noisy
evaluation are therefore *bit-identical* to their unblocked counterparts
for the same Generator state (pinned by tests/runtime/test_chunking.py).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

# The block walk lives in repro.kernels.blocking so the character kernel
# (a leaf package) can share it; re-exported here for back-compat.
from repro.kernels.blocking import DEFAULT_BLOCK_SIZE, iter_blocks  # noqa: F401
from repro.pufs.base import PUF
from repro.pufs.crp import ChallengeSampler, CRPSet, uniform_challenges


def eval_blocked(
    puf: PUF,
    challenges: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """``puf.eval`` streamed through cache-friendly blocks."""
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    m = challenges.shape[0]
    out = np.empty(m, dtype=np.int8)
    for start, stop in iter_blocks(m, block_size):
        out[start:stop] = puf.eval(challenges[start:stop])
    return out


def eval_noisy_blocked(
    puf: PUF,
    challenges: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """``puf.eval_noisy`` streamed through blocks, same stream as unblocked."""
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    rng = np.random.default_rng() if rng is None else rng
    m = challenges.shape[0]
    out = np.empty(m, dtype=np.int8)
    for start, stop in iter_blocks(m, block_size):
        out[start:stop] = puf.eval_noisy(challenges[start:stop], rng)
    return out


def generate_crps_blocked(
    puf: PUF,
    m: int,
    rng: Optional[np.random.Generator] = None,
    sampler: ChallengeSampler = uniform_challenges,
    noisy: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> CRPSet:
    """Streamed equivalent of :func:`repro.pufs.crp.generate_crps`.

    Challenges are drawn and evaluated block by block so the peak
    intermediate allocation is one block's features, not the whole set's.
    With ``noisy=False`` the output is bit-identical to the unblocked
    generator for the same ``rng`` state.  With ``noisy=True`` it is
    deterministic (same rng -> same CRPs) but draws noise interleaved
    with challenges, so it matches other blocked runs, not the unblocked
    generator's stream order.
    """
    if m <= 0:
        raise ValueError("CRP count must be positive")
    rng = np.random.default_rng() if rng is None else rng
    challenges = np.empty((m, puf.n), dtype=np.int8)
    responses = np.empty(m, dtype=np.int8)
    for start, stop in iter_blocks(m, block_size):
        block = sampler(stop - start, puf.n, rng)
        challenges[start:stop] = block
        if noisy:
            responses[start:stop] = puf.eval_noisy(block, rng)
        else:
            responses[start:stop] = puf.eval(block)
    # One record for the whole draw (not per block): the meter's distinct
    # split and byte accounting see the same rows either way.
    from repro.telemetry.meter import record as _record

    _record(
        "ex",
        queries=m,
        examples=m,
        challenges=challenges,
        response_bytes=responses.nbytes,
    )
    return CRPSet(challenges, responses)

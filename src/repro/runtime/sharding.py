"""Work-stealing sharded execution: several process pools, one trial set.

One process pool is a single queue: a handful of slow trials at its head
stall every worker behind them, and one hung worker's pool rebuild
freezes *all* in-flight chunks.  Sharding splits a trial set across
``shards`` independent pools, each driven by its own parent-side thread,
with a :class:`WorkStealingScheduler` between them: every shard owns a
deque of trial items, takes chunks from its *head*, and — when its own
deque runs dry — steals a chunk from the *tail* of the longest remaining
deque.  Skewed trial mixes therefore rebalance automatically: a shard
that drew the slow trials keeps grinding while idle shards drain its
tail, and a pool rebuild (timeout, dead worker) only stalls one shard.

Every guarantee of the single-pool :class:`~repro.runtime.runner.TrialRunner`
path is preserved, because trials stay pure functions of
``(master_seed, index)``:

* **Bit-identical replay** — which shard executes a trial is
  unobservable in its result; the caller re-orders by index.
* **Failure semantics** — deterministic trial errors are captured
  in-worker and never retried; worker death and per-shard-pool timeouts
  are retried under the same :class:`~repro.runtime.runner.RetryPolicy`
  with seed-derived backoff; pickling failures drain the shard serially
  in its driver thread.
* **Crash-safe resume** — each shard appends to its own
  ``ledger-shardNN.jsonl`` (:meth:`repro.telemetry.ledger.RunLedger.shard`),
  so shards never contend on one file and a SIGKILL mid-run leaves every
  finished trial on disk; ``RunLedger.read_latest`` merges shard files
  by trial index with replayable-record preference, so ``--resume``
  works unchanged on a partially-written sharded run.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.runner import (
    RetryPolicy,
    TrialFn,
    TrialResult,
    _execute_chunk,
    _execute_trial,
    _failed_results,
    _stop_pool,
    trial_record,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.telemetry.ledger import RunLedger

#: One schedulable unit: ``(trial index, its SeedSequence)``.
TrialItem = Tuple[int, "np.random.SeedSequence"]


def partition_items(items: List[TrialItem], shards: int) -> List[List[TrialItem]]:
    """Split ``items`` into ``shards`` contiguous, near-equal slices.

    Contiguity keeps each shard's initial deque a run of consecutive
    trial indices — the natural unit for ledger inspection — and any
    imbalance in *cost* (as opposed to count) is what the stealing
    scheduler exists to fix at runtime.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(len(items), shards)
    parts: List[List[TrialItem]] = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        parts.append(items[start : start + size])
        start += size
    return parts


class WorkStealingScheduler:
    """Per-shard deques with tail-stealing for idle shards.

    All operations run under one lock — the unit of work is a whole
    chunk of trials (each worth milliseconds to minutes), so lock
    traffic is negligible.  A shard acquires from the *head* of its own
    deque; an empty shard steals from the *tail* of the longest other
    deque, preserving the victim's cheap-to-reach head locality and
    taking the work it was furthest from starting.
    """

    def __init__(self, partitions: List[List[TrialItem]]) -> None:
        self._lock = threading.Lock()
        self._deques: List[deque] = [deque(part) for part in partitions]
        self.steals = [0 for _ in partitions]
        self.executed = [0 for _ in partitions]

    @property
    def shards(self) -> int:
        """How many shard deques the scheduler manages."""
        return len(self._deques)

    def acquire(self, shard_id: int, chunk: int) -> List[TrialItem]:
        """Up to ``chunk`` items for ``shard_id``; steals when it is dry.

        Returns an empty list only when every deque is empty — the
        shard's signal to finish its in-flight work and exit.
        """
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        with self._lock:
            own = self._deques[shard_id]
            if own:
                taken = [own.popleft() for _ in range(min(chunk, len(own)))]
                self.executed[shard_id] += len(taken)
                return taken
            victim = max(
                (d for i, d in enumerate(self._deques) if i != shard_id),
                key=len,
                default=None,
            )
            if victim is None or not victim:
                return []
            stolen = [victim.pop() for _ in range(min(chunk, len(victim)))]
            stolen.reverse()  # restore ascending-index order within the chunk
            self.steals[shard_id] += 1
            self.executed[shard_id] += len(stolen)
            return stolen

    def remaining(self) -> int:
        """How many items are still queued across all deques."""
        with self._lock:
            return sum(len(d) for d in self._deques)


class _ShardDriver:
    """One shard: a process pool fed from the scheduler by a parent thread.

    The driver mirrors the single-pool fault machinery of
    :meth:`TrialRunner._run_pool` — at most ``workers`` chunks in flight
    (deadlines measure execution, not queue wait), kill-then-shutdown
    pool rebuild on hangs, completed-future harvest before a
    broken-pool rebuild, retry with seed-derived backoff, serial
    fallback on pickling failures — but acquires its chunks dynamically
    from the :class:`WorkStealingScheduler` instead of a precomputed
    list, which is what makes stealing possible mid-run.
    """

    def __init__(
        self,
        shard_id: int,
        scheduler: WorkStealingScheduler,
        trial_fn: TrialFn,
        kwargs: Dict[str, Any],
        workers: int,
        chunk: int,
        retry: RetryPolicy,
        trial_timeout: Optional[float],
        emit: Callable[[TrialResult], None],
        cancel: Optional[threading.Event] = None,
    ) -> None:
        self.shard_id = shard_id
        self.scheduler = scheduler
        self.trial_fn = trial_fn
        self.kwargs = kwargs
        self.workers = workers
        self.chunk = chunk
        self.retry = retry
        self.trial_timeout = trial_timeout
        self.emit = emit
        self.cancel = cancel
        self.results: List[TrialResult] = []
        self.fallback: Optional[str] = None
        self.error: Optional[BaseException] = None

    def _cancelled(self) -> bool:
        """Whether the run's cooperative stop event has been set."""
        return self.cancel is not None and self.cancel.is_set()

    # -- bookkeeping ----------------------------------------------------
    def _finish(self, chunk_results: List[TrialResult]) -> None:
        for result in chunk_results:
            self.emit(result)
        self.results.extend(chunk_results)

    def _run_items_serially(self, items: List[TrialItem]) -> None:
        for index, seed in items:
            self._finish([_execute_trial(self.trial_fn, index, seed, self.kwargs)])

    def _drain_serially(self, leftovers: List[List[TrialItem]]) -> None:
        """Finish every leftover and still-queued chunk in this thread.

        The serial fallback still participates in stealing: after its
        own leftovers it keeps acquiring from the scheduler, so a shard
        that lost its pool degrades to one in-thread worker instead of
        stranding queued trials.
        """
        for items in leftovers:
            self._run_items_serially(items)
        while not self._cancelled():
            items = self.scheduler.acquire(self.shard_id, self.chunk)
            if not items:
                return
            self._run_items_serially(items)

    # -- the drive loop -------------------------------------------------
    def drive(self) -> None:
        """Run this shard to completion (thread entry point)."""
        try:
            self._drive()
        except BaseException as exc:  # pragma: no cover - defensive
            self.error = exc

    def _drive(self) -> None:
        try:
            pool = ProcessPoolExecutor(max_workers=self.workers)
        except Exception as exc:  # no POSIX semaphores, fork failure, ...
            self.fallback = f"{type(exc).__name__}: {exc}"
            self._drain_serially([])
            return

        pending: Dict[Future, List[TrialItem]] = {}
        deadlines: Dict[Future, float] = {}
        attempts: Dict[int, int] = {}  # keyed by the chunk's first index

        def submit(items: List[TrialItem], charge: bool = True) -> None:
            ckey = items[0][0]
            if charge:
                attempts[ckey] = attempts.get(ckey, 0) + 1
            future = pool.submit(
                _execute_chunk,
                self.trial_fn,
                items,
                self.kwargs,
                time.time(),
                attempts[ckey],
            )
            pending[future] = items
            if self.trial_timeout is not None:
                deadlines[future] = (
                    time.monotonic() + self.trial_timeout * len(items)
                )

        def pump() -> None:
            # Same in-flight cap as the single-pool path: deadlines armed
            # at submit measure execution because nothing queues behind
            # other chunks inside the pool.  A set cancel event stops the
            # shard acquiring; in-flight chunks drain to completion.
            while not self._cancelled() and len(pending) < self.workers:
                items = self.scheduler.acquire(self.shard_id, self.chunk)
                if not items:
                    return
                submit(items)

        def rebuild() -> None:
            nonlocal pool
            _stop_pool(pool)
            pending.clear()
            deadlines.clear()
            pool = ProcessPoolExecutor(max_workers=self.workers)

        def backoff(items: List[TrialItem]) -> None:
            delay = self.retry.delay(attempts[items[0][0]], items[0][1])
            if delay > 0:
                time.sleep(delay)

        while True:
            pump()
            if not pending:
                break  # scheduler dry and nothing in flight
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - time.monotonic())
            done, _ = wait(set(pending), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                now = time.monotonic()
                overdue = [
                    pending[f] for f, d in deadlines.items() if d <= now
                ]
                if not overdue:
                    continue
                # A worker hung past its deadline: this shard's pool dies
                # and is rebuilt; other shards are untouched.  In-flight
                # innocents resubmit without being charged an attempt.
                overdue_keys = {items[0][0] for items in overdue}
                victims = sorted(pending.values(), key=lambda c: c[0][0])
                rebuild()
                for items in victims:
                    ckey = items[0][0]
                    if ckey not in overdue_keys:
                        submit(items, charge=False)
                    elif attempts[ckey] >= self.retry.max_attempts:
                        self._finish(
                            _failed_results(
                                items,
                                attempts[ckey],
                                category="timeout",
                                exc_type="TimeoutError",
                                message=(
                                    f"trial exceeded trial_timeout="
                                    f"{self.trial_timeout}s on every one of "
                                    f"{attempts[ckey]} attempt(s); shard "
                                    f"{self.shard_id} worker killed"
                                ),
                                seconds=float(self.trial_timeout),
                            )
                        )
                    else:
                        warnings.warn(
                            f"shard {self.shard_id}: worker hung past "
                            f"{self.trial_timeout}s on trials "
                            f"{[i for i, _ in items]}; pool rebuilt, "
                            f"retrying (attempt {attempts[ckey] + 1})",
                            RuntimeWarning,
                        )
                        backoff(items)
                        submit(items)
                continue
            for future in done:
                items = pending.pop(future, None)
                if items is None:
                    continue  # belonged to a pool torn down this round
                deadlines.pop(future, None)
                try:
                    chunk_results = future.result()
                except BrokenProcessPool:
                    # This shard's pool died.  Harvest futures that hold
                    # completed results, rebuild, retry the rest.
                    victims = [items]
                    for other, oitems in list(pending.items()):
                        harvest = None
                        if other.done():
                            try:
                                harvest = other.result()
                            except Exception:
                                harvest = None
                        if harvest is None:
                            victims.append(oitems)
                        else:
                            pending.pop(other)
                            deadlines.pop(other, None)
                            self._finish(harvest)
                    victims.sort(key=lambda c: c[0][0])
                    rebuild()
                    for vitems in victims:
                        ckey = vitems[0][0]
                        if attempts[ckey] >= self.retry.max_attempts:
                            self._finish(
                                _failed_results(
                                    vitems,
                                    attempts[ckey],
                                    category="infra",
                                    exc_type="BrokenProcessPool",
                                    message=(
                                        f"shard {self.shard_id} worker died; "
                                        "retry budget exhausted after "
                                        f"{attempts[ckey]} attempt(s)"
                                    ),
                                )
                            )
                        else:
                            warnings.warn(
                                f"shard {self.shard_id}: worker died; pool "
                                f"rebuilt, retrying trials "
                                f"{[i for i, _ in vitems]} "
                                f"(attempt {attempts[ckey] + 1})",
                                RuntimeWarning,
                            )
                            backoff(vitems)
                            submit(vitems)
                    break  # remaining `done` futures died with the pool
                except Exception as exc:
                    # Deterministic plumbing failure — drain serially.
                    self.fallback = f"{type(exc).__name__}: {exc}"
                    leftovers = list(pending.values())
                    leftovers.append(items)
                    leftovers.sort(key=lambda c: c[0][0])
                    _stop_pool(pool)
                    self._drain_serially(leftovers)
                    return
                else:
                    self._finish(chunk_results)

        pool.shutdown()


def default_shard_chunk(remaining: int, shards: int, workers: int) -> int:
    """The default per-acquisition chunk for a sharded run.

    Small enough that every (shard, worker) slot turns over several
    times — stealing needs unclaimed tail work to exist — while still
    amortising pool submission overhead.
    """
    return max(1, -(-remaining // (8 * max(1, shards) * max(1, workers))))


def run_sharded(
    trial_fn: TrialFn,
    items: List[TrialItem],
    kwargs: Dict[str, Any],
    shards: int,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    trial_timeout: Optional[float] = None,
    ledger: Optional["RunLedger"] = None,
    on_result: Optional[Callable[[TrialResult], None]] = None,
    cancel: Optional[threading.Event] = None,
) -> Tuple[List[TrialResult], WorkStealingScheduler, List[Optional[str]]]:
    """Execute ``items`` across ``shards`` work-stealing process pools.

    Each shard runs ``workers`` worker processes (total parallelism is
    ``shards * workers``) and appends completed records to its own
    ``ledger-shardNN.jsonl`` when ``ledger`` is given — the caller's
    main ledger merges them transparently via
    :meth:`~repro.telemetry.ledger.RunLedger.read_latest`.  Returns the
    results (unordered; the caller sorts by index), the scheduler (for
    steal/executed accounting), and each shard's serial-fallback reason
    (None when its pool stayed healthy).

    ``on_result`` fires once per completed trial *from the shard's
    driver thread* (after its ledger append, so an observer never sees a
    trial the ledger could lose); callbacks must be thread-safe.  A set
    ``cancel`` event stops every shard acquiring new chunks; in-flight
    chunks finish and are recorded, then the drivers exit.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    retry = RetryPolicy() if retry is None else retry
    chunk = chunk_size or default_shard_chunk(len(items), shards, workers)
    scheduler = WorkStealingScheduler(partition_items(items, shards))

    def make_emit(shard_id: int) -> Callable[[TrialResult], None]:
        shard_ledger = None if ledger is None else ledger.shard(shard_id)

        def emit(result: TrialResult) -> None:
            if shard_ledger is not None:
                shard_ledger.append(trial_record(result))
            if on_result is not None:
                on_result(result)

        return emit

    drivers = [
        _ShardDriver(
            shard_id=s,
            scheduler=scheduler,
            trial_fn=trial_fn,
            kwargs=kwargs,
            workers=workers,
            chunk=chunk,
            retry=retry,
            trial_timeout=trial_timeout,
            emit=make_emit(s),
            cancel=cancel,
        )
        for s in range(shards)
    ]
    threads = [
        threading.Thread(
            target=driver.drive, name=f"repro-shard-{driver.shard_id}"
        )
        for driver in drivers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for driver in drivers:
        if driver.error is not None:
            raise driver.error
    results = [result for driver in drivers for result in driver.results]
    fallbacks = [driver.fallback for driver in drivers]
    return results, scheduler, fallbacks

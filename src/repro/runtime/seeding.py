"""Deterministic seed fan-out for parallel trials.

Every experiment in this reproduction is a loop of independent trials
(fresh PUF instance x CRP draw x learner fit).  To run those trials on a
process pool *without* losing reproducibility, each trial must own a
random stream that depends only on ``(master_seed, trial_index)`` — never
on which worker ran it or in what order.  ``numpy.random.SeedSequence``
is built for exactly this: ``SeedSequence(master).spawn(k)`` derives k
statistically independent children, and child ``i`` is identical to
``SeedSequence(master, spawn_key=(i,))``, so a worker can reconstruct its
stream from two integers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, Sequence[int], np.random.SeedSequence, None]


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Coerce an int / sequence / SeedSequence / None into a SeedSequence."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def fan_out(master_seed: SeedLike, num_trials: int) -> List[np.random.SeedSequence]:
    """One independent :class:`~numpy.random.SeedSequence` per trial.

    The fan-out is a pure function of ``(master_seed, num_trials)``:
    trial ``i`` receives the same child regardless of worker count,
    scheduling order, or platform.
    """
    if num_trials <= 0:
        raise ValueError(f"num_trials must be positive, got {num_trials}")
    return as_seed_sequence(master_seed).spawn(num_trials)


def trial_seed(master_seed: SeedLike, index: int) -> np.random.SeedSequence:
    """The ``index``-th child of the fan-out, reconstructed directly.

    Equivalent to ``fan_out(master_seed, index + 1)[index]`` but O(1):
    NumPy guarantees spawned child ``i`` equals
    ``SeedSequence(entropy, spawn_key=(i,))``.
    """
    if index < 0:
        raise ValueError(f"trial index must be non-negative, got {index}")
    base = as_seed_sequence(master_seed)
    return np.random.SeedSequence(
        base.entropy, spawn_key=tuple(base.spawn_key) + (index,)
    )


def trial_rng(master_seed: SeedLike, index: int) -> np.random.Generator:
    """A fresh Generator for one trial, independent of all other trials."""
    return np.random.default_rng(trial_seed(master_seed, index))

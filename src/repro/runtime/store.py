"""The content-addressed artifact store: memoised arrays keyed by provenance.

Every expensive artifact this codebase produces — a CRP pool, a fleet
response plane — is a pure function of its generation provenance: the
artifact *kind*, the PUF/fleet spec, the seed identity, the challenge-set
identity (a distribution name or an explicit challenge hash), and the
dtype tier.  :class:`ArtifactStore` turns that observation into a shared
on-disk cache: artifacts are keyed by a canonical digest of exactly that
tuple (:func:`artifact_digest`), deduplicated across workloads, and
reusable across *runs* — a Table-I rerun or an atlas re-sweep hits the
store instead of regenerating.

Store layout and guarantees
---------------------------
* One compressed ``.npz`` per entry, named ``<kind>-<digest>.npz``.
* **Atomic publication, winner-take-one.**  Writers stage into a private
  ``tempfile.mkstemp`` file and publish with ``os.replace``; two
  processes storing the same digest concurrently both succeed, and
  exactly one complete archive survives (whichever ``replace`` lands
  last).  Entries for one digest are byte-equivalent by construction —
  the digest *is* the generation provenance — so which writer wins is
  unobservable.
* **Corrupt-entry-as-miss.**  An unreadable or malformed archive (killed
  writer, bad disk) is warned about, unlinked, and reported as a miss,
  so one crash can never poison every later run.
* **Prefix / row-slab reuse.**  Challenge draws are sequential, so the
  first ``m`` rows of a larger cached artifact equal an ``m``-row
  generation from the same state; the row count therefore stays *out* of
  the digest and requests are served from any cached superset.
* **Size-capped LRU eviction.**  With ``max_bytes`` set (or
  ``$REPRO_CACHE_MAX_BYTES``), publishing an entry evicts
  least-recently-used entries (by file mtime, refreshed on every hit)
  until the store fits; the entry just published is never evicted.
* **Telemetry.**  Hits, misses, evictions, corrupt discards and byte
  counts go to the ambient :mod:`repro.telemetry` meter under
  ``artifact_store.*`` (plus the legacy ``crp_cache.*`` /
  ``fleet_cache.*`` names), so per-trial ledger records carry the
  store's behaviour and ``repro trials --cache-stats`` can aggregate it.

:class:`repro.runtime.cache.CRPCache` remains as a deprecated
compatibility shim over this class (legacy digest schema, same on-disk
naming); new code should construct :class:`ArtifactStore` directly.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.pufs.crp import CRPSet
from repro.telemetry.meter import incr as _incr
from repro.telemetry.meter import record as _record

#: The artifact kinds the store recognises (the filename prefixes).
ARTIFACT_KINDS = ("crps", "fleet")

#: Environment variable supplying the default store directory.
STORE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable supplying the default size cap (bytes).
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"


def _entry_mtime(path: Path) -> float:
    """An entry's LRU recency stamp (module-level so tests can fake clocks).

    A vanished entry — concurrently evicted or replaced — sorts oldest,
    which is harmless: unlinking it again is a no-op.
    """
    try:
        return path.stat().st_mtime
    except OSError:
        return 0.0


def _canonical_seed_material(seed: object) -> str:
    """A stable string identity for a seed-like object.

    ``repr`` is stable for the seed shapes the runtime passes around —
    ints, strings, and tuples of ``(entropy, spawn_key, index)`` — and
    intentionally distinguishes ``1`` from ``"1"``: different launch
    forms are different provenance.
    """
    return repr(seed)


def hash_challenges(challenges: np.ndarray) -> str:
    """A digest identifying an explicit challenge set (shape, dtype, bytes).

    For callers that hold a concrete challenge matrix instead of a
    distribution name: pass ``hash_challenges(x)`` as the
    ``distribution`` of :func:`artifact_digest` and the artifact is keyed
    by the exact challenge content.
    """
    x = np.ascontiguousarray(challenges)
    h = hashlib.sha256()
    h.update(str((x.shape, str(x.dtype))).encode("utf-8"))
    h.update(x.tobytes())
    return "sha256:" + h.hexdigest()[:32]


def artifact_digest(
    kind: str,
    spec: str,
    seed: object,
    distribution: str = "uniform",
    tier: str = "int8",
    shape: Sequence[int] = (),
    noisy: bool = False,
) -> str:
    """The canonical content digest for one artifact's provenance.

    The digest covers ``(kind, spec, seed identity, challenge-set
    identity, dtype tier, shape, noisy)`` — exactly the tuple that
    determines the artifact's bytes.  ``distribution`` names the
    challenge-set identity: a distribution spec string for seeded draws,
    or a :func:`hash_challenges` digest for explicit challenge matrices.
    The row count is deliberately *not* key material (prefix reuse; see
    the module docstring).  Material is canonicalised through sorted-key
    JSON so semantically equal keys digest equally regardless of call
    order, and the kind doubles as a namespace: a ``crps`` artifact can
    never collide with a ``fleet`` artifact of the same spec.
    """
    if kind not in ARTIFACT_KINDS:
        raise ValueError(f"unknown artifact kind {kind!r}; expected {ARTIFACT_KINDS}")
    material = json.dumps(
        {
            "kind": kind,
            "spec": str(spec),
            "seed": _canonical_seed_material(seed),
            "challenges": str(distribution),
            "tier": str(tier),
            "shape": [int(v) for v in shape],
            "noisy": bool(noisy),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


class ArtifactStore:
    """A directory of content-addressed, memoised experiment artifacts.

    Parameters
    ----------
    store_dir:
        Where the ``.npz`` entries live; created on first store.
        Defaults to ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in the
        working directory.
    max_bytes:
        Size cap for LRU eviction.  ``None`` reads
        ``$REPRO_CACHE_MAX_BYTES``; a missing/empty variable means
        unbounded.  ``0`` or negative disables caching growth entirely
        (every store immediately evicts everything but the newest entry
        that fits — degenerate but well-defined).
    """

    def __init__(
        self,
        store_dir: Optional[Union[str, Path]] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if store_dir is None:
            store_dir = os.environ.get(STORE_DIR_ENV, ".repro_cache")
        if max_bytes is None:
            raw = os.environ.get(MAX_BYTES_ENV, "")
            max_bytes = int(raw) if raw.strip() else None
        self.store_dir = Path(store_dir)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        self.bytes_served = 0
        self.bytes_stored = 0

    # ------------------------------------------------------------------
    # Directory layout.
    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Path:
        """Alias for :attr:`store_dir` (the pre-ArtifactStore name)."""
        return self.store_dir

    def entry_path(self, kind: str, key: str) -> Path:
        """The ``.npz`` file backing entry ``key`` of ``kind``."""
        return self.store_dir / f"{kind}-{key}.npz"

    def path_for(self, key: str) -> Path:
        """The ``.npz`` file backing CRP-set entry ``key``."""
        return self.entry_path("crps", key)

    def fleet_path_for(self, key: str) -> Path:
        """The ``.npz`` file backing fleet-plane entry ``key``."""
        return self.entry_path("fleet", key)

    def entries(self) -> Dict[Path, int]:
        """Current entries mapped to their on-disk sizes (bytes)."""
        sizes: Dict[Path, int] = {}
        if self.store_dir.exists():
            for kind in ARTIFACT_KINDS:
                for path in self.store_dir.glob(f"{kind}-*.npz"):
                    if path.name.endswith(".tmp.npz"):
                        continue  # a writer's staging file, not an entry
                    try:
                        sizes[path] = path.stat().st_size
                    except OSError:
                        continue  # concurrently evicted/replaced
        return sizes

    def total_bytes(self) -> int:
        """Total size of all current entries (bytes)."""
        return sum(self.entries().values())

    # ------------------------------------------------------------------
    # Publication and loading primitives.
    # ------------------------------------------------------------------
    def _publish(self, path: Path, write: Callable[[Path], None]) -> Path:
        """Stage with ``write(tmp)`` and publish ``tmp`` -> ``path`` atomically.

        The staging file comes from ``tempfile.mkstemp`` in the store
        directory, so concurrent writers of the same key never interleave
        into one tmp path — each publishes its own complete archive via
        ``os.replace`` and the last one wins whole (winner-take-one;
        entries for one digest are byte-equivalent, so the winner is
        unobservable).  Orphaned staging files from killed writers are
        swept by :meth:`clear`.
        """
        self.store_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{path.name[: -len('.npz')]}-", suffix=".tmp.npz",
            dir=self.store_dir,
        )
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            write(tmp)
            size = tmp.stat().st_size
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # only on a failed write/replace
                tmp.unlink()
        # The published file inherits the staging file's mtime, which on a
        # coarse-granularity (1s) filesystem can predate entries touched
        # during the write — making the *newest* entry look LRU-oldest.
        # Stamp it now, before any size accounting, so recency is honest.
        self._touch(path)
        self.bytes_stored += size
        _incr("artifact_store.stores")
        _incr("artifact_store.bytes_stored", size)
        self._evict_over_cap(protect=path)
        return path

    def _discard_corrupt(self, path: Path, label: str, exc: Exception) -> None:
        """Warn about, count, and unlink an unreadable entry (miss path)."""
        warnings.warn(
            f"discarding unreadable {label} cache entry {path.name} "
            f"({type(exc).__name__}: {exc}); regenerating",
            RuntimeWarning,
            stacklevel=3,
        )
        self.corrupt += 1
        _incr("artifact_store.corrupt")
        try:
            path.unlink()
        except OSError:
            pass

    def _touch(self, path: Path) -> None:
        """Refresh an entry's mtime — the LRU recency signal — on a hit."""
        try:
            os.utime(path, None)
        except OSError:
            pass  # entry raced with an eviction; the load already happened

    def _evict_over_cap(self, protect: Optional[Path] = None) -> int:
        """Evict least-recently-used entries until the store fits the cap.

        ``protect`` — the entry just published — is never evicted, even
        when it alone exceeds ``max_bytes`` (the caller is about to use
        it; evicting it would just re-pay generation on the next run) and
        even when filesystem mtime granularity makes it sort oldest (a 1s
        filesystem can stamp a fresh entry with the same — or, via its
        staging file, an earlier — mtime than entries already present).
        Returns how many entries were removed.
        """
        if self.max_bytes is None:
            return 0
        sizes = self.entries()
        total = sum(sizes.values())
        if total <= self.max_bytes:
            return 0

        removed = 0
        for path in sorted(sizes, key=_entry_mtime):
            if total <= self.max_bytes:
                break
            if protect is not None and path == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue  # another process beat us to it
            total -= sizes[path]
            removed += 1
            self.evictions += 1
            _incr("artifact_store.evictions")
        return removed

    # ------------------------------------------------------------------
    # CRP-set entries.
    # ------------------------------------------------------------------
    def _crp_key(
        self, puf_spec: str, seed: object, distribution: str, noisy: bool
    ) -> str:
        """Digest for a CRP-set artifact (CRP sets are always int8)."""
        return artifact_digest(
            "crps", puf_spec, seed, distribution=distribution, noisy=noisy
        )

    def load(self, key: str) -> Optional[CRPSet]:
        """The cached CRP set for ``key``, or None.

        An unreadable entry — a truncated or corrupt ``.npz`` left behind
        by a killed writer — is treated as a miss: the file is warned
        about, unlinked, and the caller regenerates.  Every *read* after
        a crash would otherwise fail forever on the same poisoned file.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            crps = CRPSet.load(path)
        except Exception as exc:
            self._discard_corrupt(path, "CRP", exc)
            _incr("crp_cache.corrupt")
            return None
        self._touch(path)
        return crps

    def store(self, key: str, crps: CRPSet) -> Path:
        """Persist ``crps`` under ``key`` (atomic replace, winner-take-one).

        Concurrent writers of the same key both succeed; exactly one
        complete archive survives — see :meth:`_publish`.
        """
        return self._publish(self.path_for(key), crps.save)

    def get_or_generate(
        self,
        puf_spec: str,
        seed: object,
        distribution: str,
        m: int,
        generate: Callable[[], CRPSet],
        noisy: bool = False,
        record_kind: str = "ex",
    ) -> CRPSet:
        """The first ``m`` CRPs for this provenance, generating on miss.

        On a hit with at least ``m`` cached CRPs the prefix is returned
        without calling ``generate``.  On a miss (or a cached set that is
        too short) ``generate()`` runs and its output replaces the cached
        file, so the store monotonically grows to the largest request.

        ``record_kind`` names the query kind the hit path records the
        replayed CRPs under: ``"ex"`` for distribution draws (the
        default), ``"mq"`` for memoised adaptive trajectories whose rows
        were originally attacker-chosen membership queries — replayed
        answers are accountable under the access model that produced
        them, not the one the cache happens to resemble.
        """
        if m <= 0:
            raise ValueError("CRP count must be positive")
        key = self._crp_key(puf_spec, seed, distribution, noisy)
        cached = self.load(key)
        if cached is not None and len(cached) >= m:
            self.hits += 1
            _incr("crp_cache.hits")
            _incr("artifact_store.hits")
            taken = cached.take(m)
            served = taken.challenges.nbytes + taken.responses.nbytes
            self.bytes_served += served
            _incr("artifact_store.bytes_served", served)
            # A cache hit replays CRPs the adversary is still accountable
            # for; record them under the kind their original collection
            # used (the generator inside `generate` records the miss path).
            _record(
                record_kind,
                queries=m,
                examples=m if record_kind == "ex" else 0,
                challenges=taken.challenges,
                response_bytes=taken.responses.nbytes,
            )
            return taken
        self.misses += 1
        _incr("crp_cache.misses")
        _incr("artifact_store.misses")
        crps = generate()
        if len(crps) < m:
            raise ValueError(
                f"generator produced {len(crps)} CRPs, fewer than requested {m}"
            )
        self.store(key, crps)
        return crps.take(m)

    # ------------------------------------------------------------------
    # Fleet response planes: (m, n) challenges against an (m, N) response
    # matrix; the dtype tier and the fleet shape are digest material.
    # ------------------------------------------------------------------
    def _fleet_key(
        self,
        fleet_spec: str,
        seed: object,
        distribution: str,
        tier: str,
        shape: Sequence[int],
        noisy: bool,
    ) -> str:
        """Digest for a fleet-plane artifact (tier + shape are key material).

        An int8-tier run can therefore never be served a float64-tier
        entry, and a resized fleet can never alias a stale plane, even
        when the caller's spec string omits either.
        """
        return artifact_digest(
            "fleet",
            fleet_spec,
            seed,
            distribution=distribution,
            tier=tier,
            shape=shape,
            noisy=noisy,
        )

    def load_fleet(self, key: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The cached (challenges, responses) plane for ``key``, or None.

        Same corrupt-entry policy as :meth:`load`: an unreadable or
        malformed archive is warned about, unlinked, and reported as a
        miss, so one killed writer cannot poison every later run.
        """
        path = self.fleet_path_for(key)
        if not path.exists():
            return None
        try:
            data = np.load(path)
            challenges = np.asarray(data["challenges"], dtype=np.int8)
            responses = np.asarray(data["responses"], dtype=np.int8)
            if (
                challenges.ndim != 2
                or responses.ndim != 2
                or challenges.shape[0] != responses.shape[0]
            ):
                raise ValueError(
                    f"malformed fleet entry: challenges {challenges.shape} "
                    f"vs responses {responses.shape}"
                )
        except Exception as exc:
            self._discard_corrupt(path, "fleet", exc)
            _incr("fleet_cache.corrupt")
            return None
        self._touch(path)
        return challenges, responses

    def store_fleet(
        self, key: str, challenges: np.ndarray, responses: np.ndarray
    ) -> Path:
        """Persist a fleet response plane under ``key`` (atomic replace)."""

        def write(tmp: Path) -> None:
            np.savez_compressed(
                tmp,
                challenges=np.asarray(challenges, dtype=np.int8),
                responses=np.asarray(responses, dtype=np.int8),
            )

        return self._publish(self.fleet_path_for(key), write)

    def get_or_generate_fleet(
        self,
        fleet_spec: str,
        seed: object,
        distribution: str,
        tier: str,
        shape: Sequence[int],
        m: int,
        generate: Callable[[], Tuple[np.ndarray, np.ndarray]],
        noisy: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The first ``m`` rows of this fleet plane, generating on miss.

        Prefix reuse works row-wise exactly as for CRP sets: challenge
        draws are sequential, so the first ``m`` rows of a larger cached
        plane equal an ``m``-row generation from the same seed.
        """
        if m <= 0:
            raise ValueError("challenge count must be positive")
        key = self._fleet_key(fleet_spec, seed, distribution, tier, shape, noisy)
        cached = self.load_fleet(key)
        if cached is not None and cached[0].shape[0] >= m:
            self.hits += 1
            _incr("fleet_cache.hits")
            _incr("artifact_store.hits")
            challenges, responses = cached[0][:m], cached[1][:m]
            served = challenges.nbytes + responses.nbytes
            self.bytes_served += served
            _incr("artifact_store.bytes_served", served)
            # Replayed oracle answers are still adversary queries, per
            # instance (mirrors the CRP hit path above).
            _record(
                "ex",
                queries=m * responses.shape[1],
                examples=m * responses.shape[1],
                challenges=challenges,
                response_bytes=responses.nbytes,
            )
            return challenges, responses
        self.misses += 1
        _incr("fleet_cache.misses")
        _incr("artifact_store.misses")
        challenges, responses = generate()
        if challenges.shape[0] < m:
            raise ValueError(
                f"generator produced {challenges.shape[0]} rows, "
                f"fewer than requested {m}"
            )
        self.store_fleet(key, challenges, responses)
        return challenges[:m], responses[:m]

    # ------------------------------------------------------------------
    # Maintenance and introspection.
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete all entries; returns how many files were removed.

        Sweeps CRP entries, fleet entries, and ``*.tmp.npz`` staging
        orphans left by writers killed between ``mkstemp`` and
        ``os.replace``.
        """
        removed = 0
        if self.store_dir.exists():
            for kind in ARTIFACT_KINDS:
                for path in self.store_dir.glob(f"{kind}-*.npz"):
                    path.unlink()
                    removed += 1
        return removed

    def stats(self) -> Dict[str, object]:
        """A JSON-ready summary of this store handle's activity.

        Hit/miss/eviction/corrupt counts and byte totals are *per handle*
        (this process's view); ``entries`` and ``total_bytes`` reflect
        the shared on-disk state right now.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "bytes_served": self.bytes_served,
            "bytes_stored": self.bytes_stored,
            "entries": len(self.entries()),
            "total_bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(dir={str(self.store_dir)!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )

"""Parallel experiment runtime: deterministic trial fan-out, chunked CRP
evaluation, and on-disk CRP memoisation.

The three pieces compose into the standard experiment loop:

* :mod:`repro.runtime.seeding` — ``SeedSequence``-based fan-out so trial
  ``i`` owns a stream independent of worker count and scheduling order;
* :mod:`repro.runtime.runner` — :class:`TrialRunner`, a process-pool
  executor for independent trials with a serial fallback, per-trial
  timing, structured :class:`TrialError` capture, infrastructure-only
  retries (:class:`RetryPolicy`), per-trial timeouts with pool rebuild,
  and crash-safe resume from a run ledger;
* :mod:`repro.runtime.chunking` — blocked CRP generation/evaluation that
  keeps the working set cache-resident;
* :mod:`repro.runtime.store` — :class:`ArtifactStore`, content-addressed
  ``.npz`` memoisation of generated artifacts (CRP sets, fleet response
  planes) keyed by :func:`artifact_digest`, with LRU eviction and
  hit/miss/bytes stats (:mod:`repro.runtime.cache` keeps the deprecated
  :class:`CRPCache` facade);
* :mod:`repro.runtime.sharding` — work-stealing multi-pool execution
  behind ``TrialRunner(shards=N)``, with per-shard mergeable ledgers.

Picklable standard workloads live in :mod:`repro.runtime.workloads`
(imported explicitly, not re-exported, to keep this package import-light).
"""

from repro.runtime.cache import CRPCache, cache_key, fleet_cache_key
from repro.runtime.chunking import (
    DEFAULT_BLOCK_SIZE,
    eval_blocked,
    eval_noisy_blocked,
    generate_crps_blocked,
    iter_blocks,
)
from repro.runtime.runner import (
    RetryPolicy,
    TrialContext,
    TrialError,
    TrialFailure,
    TrialReport,
    TrialResult,
    TrialRunner,
    result_from_record,
    trial_record,
)
from repro.runtime.seeding import as_seed_sequence, fan_out, trial_rng, trial_seed
from repro.runtime.sharding import (
    WorkStealingScheduler,
    partition_items,
    run_sharded,
)
from repro.runtime.store import ArtifactStore, artifact_digest, hash_challenges

__all__ = [
    "ArtifactStore",
    "artifact_digest",
    "hash_challenges",
    "CRPCache",
    "cache_key",
    "fleet_cache_key",
    "WorkStealingScheduler",
    "partition_items",
    "run_sharded",
    "DEFAULT_BLOCK_SIZE",
    "eval_blocked",
    "eval_noisy_blocked",
    "generate_crps_blocked",
    "iter_blocks",
    "RetryPolicy",
    "TrialContext",
    "TrialError",
    "TrialFailure",
    "TrialReport",
    "TrialResult",
    "TrialRunner",
    "result_from_record",
    "trial_record",
    "as_seed_sequence",
    "fan_out",
    "trial_rng",
    "trial_seed",
]

"""Picklable trial workloads for the parallel runtime.

:class:`~repro.runtime.runner.TrialRunner` ships trial functions to
worker processes, so they must be module-level callables.  This module
collects the standard experiment shapes — the learning-curve trial used
by ``python -m repro trials`` and the CRP-collection trial the cache
benchmarks replay — with all parameters passed as plain dataclasses.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.kernels import CharacterBasis, DEFAULT_CHARACTER_BLOCK
from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import generate_crps, uniform_challenges
from repro.pufs.fleet import Fleet, FleetSpec
from repro.pufs.metrics import response_plane_uniqueness
from repro.pufs.xor_arbiter import XORArbiterPUF
from repro.runtime.chunking import DEFAULT_BLOCK_SIZE, generate_crps_blocked
from repro.runtime.store import ArtifactStore
from repro.runtime.runner import TrialContext
from repro.telemetry import unmetered


@dataclasses.dataclass(frozen=True)
class LearningCurveSpec:
    """One learning-curve trial: fresh PUF, one pool, accuracy per budget."""

    n: int = 48
    k: int = 1  # 1 = plain arbiter chain; >1 = XOR arbiter
    budgets: Tuple[int, ...] = (100, 400, 1600)
    test_size: int = 2000

    def __post_init__(self) -> None:
        if self.n <= 0 or self.k <= 0:
            raise ValueError("n and k must be positive")
        if not self.budgets or min(self.budgets) < 1:
            raise ValueError("budgets must be positive")
        if self.test_size <= 0:
            raise ValueError("test_size must be positive")

    @property
    def sorted_budgets(self) -> Tuple[int, ...]:
        """The CRP budgets in ascending order (the evaluation order)."""
        return tuple(sorted(int(b) for b in self.budgets))


def learning_curve_trial(ctx: TrialContext, spec: LearningCurveSpec) -> np.ndarray:
    """Accuracy of the logistic attack at each budget, for one fresh PUF.

    All randomness (instance weights, CRP draws, learner init) comes from
    ``ctx``, so the result is a pure function of ``(master_seed, index)``
    — the determinism contract of :class:`TrialRunner`.
    """
    rng = ctx.rng
    if spec.k == 1:
        puf = ArbiterPUF(spec.n, rng)
    else:
        puf = XORArbiterPUF(spec.n, spec.k, rng)
    budgets = spec.sorted_budgets
    pool = generate_crps_blocked(puf, budgets[-1], rng)
    # Held-out evaluation is not an adversary query: suspend the meter so
    # the ledger's EX count equals the attack budget exactly.
    with unmetered():
        test = generate_crps_blocked(puf, spec.test_size, rng)
    accuracies = np.empty(len(budgets))
    for i, budget in enumerate(budgets):
        result = LogisticAttack(feature_map=parity_transform).fit(
            pool.challenges[:budget], pool.responses[:budget], rng
        )
        accuracies[i] = float(
            np.mean(result.predict(test.challenges) == test.responses)
        )
    return accuracies


@dataclasses.dataclass(frozen=True)
class ActiveTrialSpec:
    """One active-learning trial: adaptive challenge selection on a fresh PUF.

    The trial collects a :class:`~repro.learning.active.Trajectory` with
    the named strategy (``passive``/``uncertainty``/``committee``/
    ``fastslow``), then fits a logistic hypothesis at every budget prefix
    and reports held-out accuracy — the adaptive counterpart of
    :class:`LearningCurveSpec`, with every oracle call metered under the
    access model that produced it ("ex" passive, "mq" adaptive).
    """

    n: int = 32
    k: int = 1  # 1 = plain arbiter chain; >1 = XOR arbiter
    strategy: str = "uncertainty"
    budgets: Tuple[int, ...] = (64, 128, 256)
    batch: int = 16
    pool_size: int = 1024
    committee: int = 3
    fast_fraction: float = 0.5
    test_size: int = 2000
    noise_rate: float = 0.0

    def __post_init__(self) -> None:
        from repro.learning.active import STRATEGY_NAMES

        if self.n <= 0 or self.k <= 0:
            raise ValueError("n and k must be positive")
        if self.strategy not in STRATEGY_NAMES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected {STRATEGY_NAMES}"
            )
        if not self.budgets or min(self.budgets) < 1:
            raise ValueError("budgets must be positive")
        if self.batch < 1 or self.committee < 1:
            raise ValueError("batch and committee must be positive")
        if self.pool_size < max(self.budgets):
            raise ValueError("pool_size must cover the largest budget")
        if not 0.0 <= self.fast_fraction <= 1.0:
            raise ValueError("fast_fraction must be in [0, 1]")
        if self.test_size <= 0:
            raise ValueError("test_size must be positive")
        if not 0.0 <= self.noise_rate < 0.5:
            raise ValueError("noise_rate must be in [0, 0.5)")

    @property
    def sorted_budgets(self) -> Tuple[int, ...]:
        """The query budgets in ascending order (the checkpoint order)."""
        return tuple(sorted(int(b) for b in self.budgets))


def active_trial(
    ctx: TrialContext,
    spec: ActiveTrialSpec,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
) -> np.ndarray:
    """Held-out accuracy at each budget checkpoint for one adaptive attack.

    Seed layout (four independent streams off the trial seed): instance
    weights, query selection, checkpoint fit initialisations, and the
    held-out test draw.  With ``cache_dir`` set, the completed trajectory
    is memoised in an :class:`~repro.runtime.store.ArtifactStore` keyed
    by (PUF spec, trial seed, strategy parameters); a warm rerun skips
    the entire selection loop — every near-hyperplane re-evaluation —
    and replays the cached query sequence, with the hit recorded under
    the strategy's own query kind (``"mq"`` for adaptive strategies) so
    the ledger stays an honest account of the access model.  Because the
    selection stream is independent of the fit and test streams, cold
    and warm runs are bit-identical.
    """
    from repro.learning.active import (
        collect_trajectory,
        evaluate_trajectory,
        make_strategy,
    )
    from repro.pufs.crp import CRPSet

    instance_seed, select_seed, fit_seed, test_seed = ctx.seed.spawn(4)
    instance_rng = np.random.default_rng(instance_seed)
    if spec.k == 1:
        puf = ArbiterPUF(spec.n, instance_rng)
        puf_spec = f"ArbiterPUF(n={spec.n})"
    else:
        puf = XORArbiterPUF(spec.n, spec.k, instance_rng)
        puf_spec = f"XORArbiterPUF(n={spec.n}, k={spec.k})"
    strategy = make_strategy(
        spec.strategy,
        committee=spec.committee,
        fast_fraction=spec.fast_fraction,
    )
    budgets = spec.sorted_budgets
    total = budgets[-1]
    # The challenge-set identity of an adaptive trajectory is its full
    # generation recipe (strategy + loop shape), not a distribution name.
    # The total budget is key material: unlike i.i.d. draws, a shorter
    # adaptive trajectory is not in general a prefix of a longer one
    # (the fast/slow phase boundary moves with the total), so the
    # store's row-count-free prefix reuse must not cross budgets.
    trajectory_id = (
        f"active:{strategy.describe()}:batch={spec.batch}"
        f":pool={spec.pool_size}:noise={spec.noise_rate}:total={total}"
    )

    def generate() -> CRPSet:
        trajectory = collect_trajectory(
            spec.n,
            puf.eval,
            strategy,
            total,
            batch=spec.batch,
            pool_size=spec.pool_size,
            rng=np.random.default_rng(select_seed),
            noise_rate=spec.noise_rate,
        )
        return CRPSet(trajectory.challenges, trajectory.responses)

    if cache_dir is not None:
        crps = ArtifactStore(cache_dir, max_bytes=cache_max_bytes).get_or_generate(
            puf_spec=puf_spec,
            seed=(ctx.seed.entropy, tuple(ctx.seed.spawn_key), ctx.index),
            distribution=trajectory_id,
            m=total,
            generate=generate,
            noisy=spec.noise_rate > 0,
            record_kind=strategy.kind,
        )
    else:
        crps = generate()
    with unmetered():
        test_rng = np.random.default_rng(test_seed)
        test_x = uniform_challenges(spec.test_size, spec.n, test_rng)
        test_y = puf.eval(test_x)
    accuracies = evaluate_trajectory(
        crps.challenges,
        crps.responses,
        budgets,
        test_x,
        test_y,
        rng=np.random.default_rng(fit_seed),
    )
    return np.asarray(accuracies, dtype=np.float64)


@dataclasses.dataclass(frozen=True)
class FaultInjectionSpec:
    """Deterministic fault injection for the runtime's failure semantics.

    The trial draws ``size`` uniforms from its own stream (so survivors
    and retries are bit-identical to a clean run), then misbehaves on the
    configured indices:

    * ``fail_indices`` raise ``ValueError`` on *every* attempt — a
      deterministic trial bug, which the runner must report as a
      :class:`~repro.runtime.runner.TrialError` and never retry;
    * ``exit_indices`` hard-kill the hosting process with ``os._exit`` —
      what a SIGKILL'd/OOM'd worker looks like to the pool
      (``BrokenProcessPool``); **never run these on the serial path**,
      they would kill the parent;
    * ``hang_indices`` sleep ``hang_seconds`` — a hung worker for the
      ``trial_timeout`` machinery.

    With ``once_dir`` set, exit/hang faults arm only on the first attempt:
    a marker file per index (atomic ``O_EXCL`` create, so pool workers
    race safely) disarms the fault and the retry succeeds.  ``fail``
    faults ignore ``once_dir`` — a deterministic exception that vanished
    on retry would be exactly the misreporting this runtime exists to
    prevent.  ``sleep_seconds`` stretches every trial, giving kill-test
    harnesses a window to interrupt mid-run.
    """

    size: int = 4
    sleep_seconds: float = 0.0
    fail_indices: Tuple[int, ...] = ()
    exit_indices: Tuple[int, ...] = ()
    hang_indices: Tuple[int, ...] = ()
    hang_seconds: float = 60.0
    once_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")
        if self.sleep_seconds < 0 or self.hang_seconds < 0:
            raise ValueError("sleep/hang durations must be non-negative")


def _fault_armed(spec: FaultInjectionSpec, index: int) -> bool:
    """Whether an injected infra fault fires on this attempt.

    Without ``once_dir`` faults always fire; with it, the first caller to
    create the marker wins the right to misbehave and later attempts run
    clean.
    """
    if spec.once_dir is None:
        return True
    marker = Path(spec.once_dir) / f"fault-fired-{index}"
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def fault_injection_trial(ctx: TrialContext, spec: FaultInjectionSpec) -> np.ndarray:
    """A cheap trial that can fail, hang, or kill its host on demand.

    The returned draw is a pure function of the trial's seed, so killed
    and resumed runs reproduce surviving trials bit-identically — the
    property every fault test in ``tests/runtime`` pins down.
    """
    value = ctx.rng.random(spec.size)
    if spec.sleep_seconds > 0:
        time.sleep(spec.sleep_seconds)
    if ctx.index in spec.exit_indices and _fault_armed(spec, ctx.index):
        os._exit(42)  # abrupt worker death; the pool sees BrokenProcessPool
    if ctx.index in spec.hang_indices and _fault_armed(spec, ctx.index):
        time.sleep(spec.hang_seconds)
    if ctx.index in spec.fail_indices:
        raise ValueError(f"injected failure in trial {ctx.index}")
    return value


@dataclasses.dataclass(frozen=True)
class SkewedSleepSpec:
    """A sleep-bound trial mix with all the slow trials clustered up front.

    The adversarial case for static partitioning: contiguous sharding
    hands every slow trial to shard 0, so without stealing the run's
    wall clock is shard 0's serial grind while the other shards idle.
    The work-stealing scheduler must rebalance it — this is the trial
    mix behind the ``--shards`` scaling case of ``BENCH_store.json``.
    Trials sleep (they do not spin), so shard scaling is observable even
    on a single-CPU host.

    ``slow_count`` leading trial indices sleep ``slow_seconds``; the
    rest sleep ``fast_seconds``.  The returned draw is a pure function
    of the trial's seed (sleeps consume no randomness), preserving
    bit-identical replay across shard counts.
    """

    slow_count: int = 4
    slow_seconds: float = 0.4
    fast_seconds: float = 0.01
    size: int = 4

    def __post_init__(self) -> None:
        if self.slow_count < 0:
            raise ValueError("slow_count must be non-negative")
        if self.slow_seconds < 0 or self.fast_seconds < 0:
            raise ValueError("sleep durations must be non-negative")
        if self.size <= 0:
            raise ValueError("size must be positive")


def skewed_sleep_trial(ctx: TrialContext, spec: SkewedSleepSpec) -> np.ndarray:
    """Sleep slow/fast by index position, return a seed-pure draw."""
    value = ctx.rng.random(spec.size)
    duration = (
        spec.slow_seconds if ctx.index < spec.slow_count else spec.fast_seconds
    )
    if duration > 0:
        time.sleep(duration)
    return value


@dataclasses.dataclass(frozen=True)
class ChowTrialSpec:
    """One Chow-parameter trial on a fresh BR PUF — generation-heavy."""

    n: int = 64
    m: int = 20_000
    interaction_scale: float = 0.55
    block_size: int = DEFAULT_BLOCK_SIZE


def chow_brpuf_trial(
    ctx: TrialContext,
    spec: ChowTrialSpec,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
) -> np.ndarray:
    """Chow parameters of a fresh BR PUF from ``m`` noiseless CRPs.

    The CRP pool dominates the cost; with ``cache_dir`` set it is
    memoised in an :class:`~repro.runtime.store.ArtifactStore` keyed by
    (spec, trial seed), so a warm re-run skips generation entirely and
    only the O(n m) Chow estimate remains.  The hit path consumes no
    randomness, so cold and warm runs are bit-identical.
    ``cache_max_bytes`` caps the store with LRU eviction.
    """
    instance_rng, crp_rng = ctx.spawn_rngs(2)
    puf = BistableRingPUF(
        spec.n, instance_rng, interaction_scale=spec.interaction_scale
    )
    puf_spec = (
        f"BistableRingPUF(n={spec.n}, interaction_scale={spec.interaction_scale})"
    )

    def generate():
        return generate_crps_blocked(
            puf, spec.m, crp_rng, block_size=spec.block_size
        )

    if cache_dir is not None:
        crps = ArtifactStore(cache_dir, max_bytes=cache_max_bytes).get_or_generate(
            puf_spec=puf_spec,
            seed=(ctx.seed.entropy, tuple(ctx.seed.spawn_key), ctx.index),
            distribution="uniform",
            m=spec.m,
            generate=generate,
        )
    else:
        crps = generate()
    # Chow parameters are exactly the degree-<=1 Fourier coefficients
    # E[f(x)] and E[f(x) x_i], in the kernel's [(), (0,), ..., (n-1,)]
    # column order — one blocked GEMM, bit-identical to the former
    # explicit ``x.T @ y / m`` (integer-valued partial sums are exact).
    basis = CharacterBasis.low_degree(spec.n, 1)
    return basis.estimate_coefficients(
        crps.challenges, crps.responses, block_size=spec.block_size
    )


@dataclasses.dataclass(frozen=True)
class FleetEvalSpec:
    """One fleet-evaluation trial: build a population, evaluate it batched.

    The trial is the runtime face of the stacked-GEMM fleet layer: it
    constructs a :class:`~repro.pufs.fleet.Fleet` from the trial's seed
    line, answers ``m`` challenges against all ``size`` instances in one
    GEMM, and reports population statistics.  ``tier`` selects the dtype
    tier; the cache key of the memoised response plane includes it, so
    an int8 run can never be served a float64 entry (or vice versa).
    """

    family: str = "arbiter"
    n: int = 64
    size: int = 256
    k: int = 4
    correlation: float = 0.0
    noise_sigma: float = 0.05
    tier: str = "float64"
    m: int = 2000
    repetitions: int = 5

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError("m must be positive")
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        self.fleet_spec()  # validates family/n/size/k/tier eagerly

    def fleet_spec(self) -> FleetSpec:
        """The validated FleetSpec this trial builds."""
        return FleetSpec(
            family=self.family,
            n=self.n,
            size=self.size,
            k=self.k if self.family == "xor" else 1,
            correlation=self.correlation,
            noise_sigma=self.noise_sigma,
            tier=self.tier,
        )


def fleet_eval_trial(
    ctx: TrialContext,
    spec: FleetEvalSpec,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
) -> np.ndarray:
    """[uniqueness, mean uniformity, mean reliability] of one fresh fleet.

    Seed layout: the trial seed's first spawn child builds the fleet
    (its own fan-out gives every instance a private line), the second
    drives challenge draws and measurement noise.  The ideal response
    plane is memoised by (fleet spec, seed, tier, shape) when
    ``cache_dir`` is set; reliability needs fresh noisy measurements and
    is always computed live.
    """
    fleet_seed, crp_seed = ctx.seed.spawn(2)
    fleet = Fleet.build(spec.fleet_spec(), fleet_seed)
    rng = np.random.default_rng(crp_seed)
    challenges = uniform_challenges(spec.m, spec.n, rng)

    def generate():
        return challenges, fleet.eval(challenges)

    if cache_dir is not None:
        store = ArtifactStore(cache_dir, max_bytes=cache_max_bytes)
        challenges, plane = store.get_or_generate_fleet(
            fleet_spec=fleet.spec.describe(),
            seed=(ctx.seed.entropy, tuple(ctx.seed.spawn_key), ctx.index),
            distribution="uniform",
            tier=spec.tier,
            shape=(spec.n, spec.size),
            m=spec.m,
            generate=generate,
        )
    else:
        challenges, plane = generate()

    uniqueness = (
        response_plane_uniqueness(plane) if spec.size >= 2 else float("nan")
    )
    uniformity = float(np.mean(plane == -1))
    if spec.noise_sigma > 0 and spec.repetitions > 1:
        voted = fleet.majority_vote(challenges, spec.repetitions, rng)
        meas = fleet.eval_noisy(challenges, rng)
        reliability = float(np.mean(meas == voted))
    else:
        reliability = 1.0
    return np.array([uniqueness, uniformity, reliability])


@dataclasses.dataclass(frozen=True)
class LMNTrialSpec:
    """One LMN trial on a fresh XOR Arbiter PUF over parity features.

    Mirrors the E4 benchmark shape: the n-stage challenge is mapped to
    the n-column parity feature space (the constant feature dropped), and
    the degree-<=``degree`` spectrum is estimated from ``m`` uniform
    CRPs through the character kernel.
    """

    n: int = 12
    k: int = 2
    degree: int = 3
    m: int = 25_000
    test_size: int = 5_000
    block_size: int = DEFAULT_CHARACTER_BLOCK

    def __post_init__(self) -> None:
        if self.n <= 0 or self.k <= 0:
            raise ValueError("n and k must be positive")
        if self.degree < 0:
            raise ValueError("degree must be non-negative")
        if self.m <= 0 or self.test_size <= 0:
            raise ValueError("m and test_size must be positive")


def lmn_trial(ctx: TrialContext, spec: LMNTrialSpec) -> np.ndarray:
    """[captured_weight, test_accuracy] of LMN on one fresh XOR PUF.

    The training sample is drawn through an
    :class:`~repro.learning.oracles.ExampleOracle` so the trial meter sees
    exactly ``m`` EX queries; the held-out test draw is unmetered.  The
    oracle's uniform sampler consumes the rng stream identically to the
    former inline draw, so results are bit-identical across PRs.
    """
    from repro.learning.lmn import LMNLearner
    from repro.learning.oracles import ExampleOracle

    instance_rng, crp_rng = ctx.spawn_rngs(2)
    puf = XORArbiterPUF(spec.n, spec.k, instance_rng)

    def features(challenges: np.ndarray) -> np.ndarray:
        return parity_transform(challenges)[:, :-1].astype(np.int8)

    oracle = ExampleOracle(spec.n, puf.eval, rng=crp_rng)
    train, responses = oracle.draw(spec.m)
    result = LMNLearner(degree=spec.degree).fit_sample(
        features(train), responses
    )
    with unmetered():
        test = uniform_challenges(spec.test_size, spec.n, crp_rng)
    accuracy = float(
        np.mean(result.hypothesis(features(test)) == puf.eval(test))
    )
    return np.array([result.captured_weight, accuracy])


@dataclasses.dataclass(frozen=True)
class KMTrialSpec:
    """One Kushilevitz-Mansour trial against an arbiter PUF's feature LTF.

    The arbiter parity map is a bijection on the hypercube, so a
    membership query in feature space is a physically realisable
    chosen-challenge query — the access model of Table I row 4.  The
    target has arity ``n + 1`` (the n parity features plus the constant
    column, freed to +/-1 under membership queries).
    """

    n: int = 12
    theta: float = 0.25
    bucket_samples: int = 2048
    coefficient_samples: int = 8192
    test_size: int = 2000

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if not 0 < self.theta <= 1:
            raise ValueError("theta must be in (0, 1]")
        if self.bucket_samples < 1 or self.coefficient_samples < 1:
            raise ValueError("sample counts must be positive")
        if self.test_size <= 0:
            raise ValueError("test_size must be positive")


def km_trial(ctx: TrialContext, spec: KMTrialSpec) -> np.ndarray:
    """[test_accuracy, membership_queries] of KM on one fresh arbiter PUF.

    The raw target callable goes straight to
    :class:`~repro.learning.KushilevitzMansour`, whose internal query path
    records every row as an MQ query (wrapping the target in a
    ``MembershipOracle`` would double-count).
    """
    from repro.learning.kushilevitz_mansour import KushilevitzMansour

    instance_rng, query_rng = ctx.spawn_rngs(2)
    puf = ArbiterPUF(spec.n, instance_rng)
    weights = puf.weights
    arity = spec.n + 1

    def target(z: np.ndarray) -> np.ndarray:
        margins = np.asarray(z, dtype=np.float64) @ weights
        return np.where(margins >= 0, 1, -1).astype(np.int8)

    km = KushilevitzMansour(
        theta=spec.theta,
        bucket_samples=spec.bucket_samples,
        coefficient_samples=spec.coefficient_samples,
    )
    result = km.fit(arity, target, query_rng)
    with unmetered():
        test = uniform_challenges(spec.test_size, arity, query_rng)
    accuracy = float(np.mean(result.hypothesis(test) == target(test)))
    return np.array([accuracy, float(result.membership_queries)])


@dataclasses.dataclass(frozen=True)
class SQTrialSpec:
    """One statistical-query Chow trial on a random feature-space LTF.

    ``n`` is the oracle arity (the feature dimension); the learner asks
    exactly ``n + 1`` correlational queries.  ``mode`` selects the
    sampling oracle (realistic, example-backed) or the adversarial
    tau-rounding oracle of the SQ lower-bound argument.
    """

    n: int = 32
    tau: float = 0.05
    mode: str = "sampling"
    test_size: int = 2000

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if not 0 < self.tau < 1:
            raise ValueError("tau must be in (0, 1)")
        if self.mode not in ("adversarial", "sampling"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.test_size <= 0:
            raise ValueError("test_size must be positive")


def sq_trial(ctx: TrialContext, spec: SQTrialSpec) -> np.ndarray:
    """[test_accuracy, sq_queries] of the Chow learner on a random LTF."""
    from repro.learning.statistical_query import SQChowLearner, SQOracle

    instance_rng, query_rng = ctx.spawn_rngs(2)
    weights = instance_rng.normal(0.0, 1.0, size=spec.n)

    def target(z: np.ndarray) -> np.ndarray:
        margins = np.asarray(z, dtype=np.float64) @ weights
        return np.where(margins >= 0, 1, -1).astype(np.int8)

    oracle = SQOracle(spec.n, target, tau=spec.tau, mode=spec.mode, rng=query_rng)
    result = SQChowLearner().fit(oracle)
    with unmetered():
        test = uniform_challenges(spec.test_size, spec.n, query_rng)
    accuracy = float(np.mean(result.predict(test) == target(test)))
    return np.array([accuracy, float(result.queries_made)])

"""Picklable trial workloads for the parallel runtime.

:class:`~repro.runtime.runner.TrialRunner` ships trial functions to
worker processes, so they must be module-level callables.  This module
collects the standard experiment shapes — the learning-curve trial used
by ``python -m repro trials`` and the CRP-collection trial the cache
benchmarks replay — with all parameters passed as plain dataclasses.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.kernels import CharacterBasis, DEFAULT_CHARACTER_BLOCK
from repro.learning.logistic import LogisticAttack
from repro.pufs.arbiter import ArbiterPUF, parity_transform
from repro.pufs.bistable_ring import BistableRingPUF
from repro.pufs.crp import generate_crps
from repro.pufs.xor_arbiter import XORArbiterPUF
from repro.runtime.cache import CRPCache
from repro.runtime.chunking import DEFAULT_BLOCK_SIZE, generate_crps_blocked
from repro.runtime.runner import TrialContext


@dataclasses.dataclass(frozen=True)
class LearningCurveSpec:
    """One learning-curve trial: fresh PUF, one pool, accuracy per budget."""

    n: int = 48
    k: int = 1  # 1 = plain arbiter chain; >1 = XOR arbiter
    budgets: Tuple[int, ...] = (100, 400, 1600)
    test_size: int = 2000

    def __post_init__(self) -> None:
        if self.n <= 0 or self.k <= 0:
            raise ValueError("n and k must be positive")
        if not self.budgets or min(self.budgets) < 1:
            raise ValueError("budgets must be positive")
        if self.test_size <= 0:
            raise ValueError("test_size must be positive")

    @property
    def sorted_budgets(self) -> Tuple[int, ...]:
        return tuple(sorted(int(b) for b in self.budgets))


def learning_curve_trial(ctx: TrialContext, spec: LearningCurveSpec) -> np.ndarray:
    """Accuracy of the logistic attack at each budget, for one fresh PUF.

    All randomness (instance weights, CRP draws, learner init) comes from
    ``ctx``, so the result is a pure function of ``(master_seed, index)``
    — the determinism contract of :class:`TrialRunner`.
    """
    rng = ctx.rng
    if spec.k == 1:
        puf = ArbiterPUF(spec.n, rng)
    else:
        puf = XORArbiterPUF(spec.n, spec.k, rng)
    budgets = spec.sorted_budgets
    pool = generate_crps_blocked(puf, budgets[-1], rng)
    test = generate_crps_blocked(puf, spec.test_size, rng)
    accuracies = np.empty(len(budgets))
    for i, budget in enumerate(budgets):
        result = LogisticAttack(feature_map=parity_transform).fit(
            pool.challenges[:budget], pool.responses[:budget], rng
        )
        accuracies[i] = float(
            np.mean(result.predict(test.challenges) == test.responses)
        )
    return accuracies


@dataclasses.dataclass(frozen=True)
class ChowTrialSpec:
    """One Chow-parameter trial on a fresh BR PUF — generation-heavy."""

    n: int = 64
    m: int = 20_000
    interaction_scale: float = 0.55
    block_size: int = DEFAULT_BLOCK_SIZE


def chow_brpuf_trial(
    ctx: TrialContext,
    spec: ChowTrialSpec,
    cache_dir: Optional[str] = None,
) -> np.ndarray:
    """Chow parameters of a fresh BR PUF from ``m`` noiseless CRPs.

    The CRP pool dominates the cost; with ``cache_dir`` set it is
    memoised by (spec, trial seed), so a warm re-run skips generation
    entirely and only the O(n m) Chow estimate remains.
    """
    instance_rng, crp_rng = ctx.spawn_rngs(2)
    puf = BistableRingPUF(
        spec.n, instance_rng, interaction_scale=spec.interaction_scale
    )
    puf_spec = (
        f"BistableRingPUF(n={spec.n}, interaction_scale={spec.interaction_scale})"
    )

    def generate():
        return generate_crps_blocked(
            puf, spec.m, crp_rng, block_size=spec.block_size
        )

    if cache_dir is not None:
        crps = CRPCache(cache_dir).get_or_generate(
            puf_spec=puf_spec,
            seed=(ctx.seed.entropy, tuple(ctx.seed.spawn_key), ctx.index),
            distribution="uniform",
            m=spec.m,
            generate=generate,
        )
    else:
        crps = generate()
    # Chow parameters are exactly the degree-<=1 Fourier coefficients
    # E[f(x)] and E[f(x) x_i], in the kernel's [(), (0,), ..., (n-1,)]
    # column order — one blocked GEMM, bit-identical to the former
    # explicit ``x.T @ y / m`` (integer-valued partial sums are exact).
    basis = CharacterBasis.low_degree(spec.n, 1)
    return basis.estimate_coefficients(
        crps.challenges, crps.responses, block_size=spec.block_size
    )


@dataclasses.dataclass(frozen=True)
class LMNTrialSpec:
    """One LMN trial on a fresh XOR Arbiter PUF over parity features.

    Mirrors the E4 benchmark shape: the n-stage challenge is mapped to
    the n-column parity feature space (the constant feature dropped), and
    the degree-<=``degree`` spectrum is estimated from ``m`` uniform
    CRPs through the character kernel.
    """

    n: int = 12
    k: int = 2
    degree: int = 3
    m: int = 25_000
    test_size: int = 5_000
    block_size: int = DEFAULT_CHARACTER_BLOCK

    def __post_init__(self) -> None:
        if self.n <= 0 or self.k <= 0:
            raise ValueError("n and k must be positive")
        if self.degree < 0:
            raise ValueError("degree must be non-negative")
        if self.m <= 0 or self.test_size <= 0:
            raise ValueError("m and test_size must be positive")


def lmn_trial(ctx: TrialContext, spec: LMNTrialSpec) -> np.ndarray:
    """[captured_weight, test_accuracy] of LMN on one fresh XOR PUF."""
    from repro.learning.lmn import LMNLearner

    instance_rng, crp_rng = ctx.spawn_rngs(2)
    puf = XORArbiterPUF(spec.n, spec.k, instance_rng)

    def features(challenges: np.ndarray) -> np.ndarray:
        return parity_transform(challenges)[:, :-1].astype(np.int8)

    train = (1 - 2 * crp_rng.integers(0, 2, size=(spec.m, spec.n))).astype(np.int8)
    result = LMNLearner(degree=spec.degree).fit_sample(
        features(train), puf.eval(train)
    )
    test = (1 - 2 * crp_rng.integers(0, 2, size=(spec.test_size, spec.n))).astype(
        np.int8
    )
    accuracy = float(
        np.mean(result.hypothesis(features(test)) == puf.eval(test))
    )
    return np.array([result.captured_weight, accuracy])

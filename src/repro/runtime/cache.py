"""Deprecated CRP-cache facade over the content-addressed ArtifactStore.

This module is the pre-:class:`~repro.runtime.store.ArtifactStore` cache
API, kept as a compatibility shim: :class:`CRPCache` is now a thin
subclass of :class:`ArtifactStore` that preserves the *legacy* digest
schema (:func:`cache_key` / :func:`fleet_cache_key`) and the exact
on-disk naming, hit/miss accounting, corrupt-entry-as-miss, and atomic
winner-take-one store semantics existing callers rely on.  Constructing
it emits a :class:`DeprecationWarning`; new code should construct
:class:`repro.runtime.store.ArtifactStore` directly, which adds
size-capped LRU eviction, ``stats()``, and the canonical
:func:`~repro.runtime.store.artifact_digest` keying shared across
workloads.

Why a shim instead of a hard break: CRP sets are a pure function of
``(PUF spec, instance seed, challenge distribution, count, noise
flag)``, so existing caches on disk remain valid — the legacy digests
keep resolving to the same files, and a request for a *prefix* of a
cached draw is still served from the same entry (blocked and unblocked
generators draw challenges sequentially, so the first ``m`` rows of a
larger draw equal an ``m``-row draw from the same state).
"""

from __future__ import annotations

import hashlib
import warnings
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.runtime.store import ArtifactStore


def cache_key(
    puf_spec: str,
    seed: object,
    distribution: str,
    m: int,
    noisy: bool = False,
) -> str:
    """A stable hex digest identifying one CRP set's provenance.

    ``m`` is *not* part of the digest — see prefix reuse in the module
    docstring — but is validated by :meth:`CRPCache.get_or_generate`.
    This is the *legacy* digest schema; new code should key through
    :func:`repro.runtime.store.artifact_digest`.
    """
    material = f"{puf_spec}|seed={seed!r}|dist={distribution}|noisy={bool(noisy)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


def fleet_cache_key(
    fleet_spec: str,
    seed: object,
    distribution: str,
    tier: str,
    shape: Sequence[int],
    noisy: bool = False,
) -> str:
    """Legacy provenance digest for a cached *fleet* response plane.

    Unlike :func:`cache_key`, the dtype ``tier`` and the fleet ``shape``
    (challenge length, instance count) are explicit key material — even
    when a caller's spec string omits them — so an int8-tier run can
    never be served a float64-tier entry and a resized fleet can never
    alias a stale plane.  The challenge count ``m`` stays out of the
    digest for the same prefix-reuse reason as :func:`cache_key`.
    """
    material = (
        f"{fleet_spec}|seed={seed!r}|dist={distribution}"
        f"|tier={tier}|shape={tuple(int(v) for v in shape)!r}|noisy={bool(noisy)}"
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


class CRPCache(ArtifactStore):
    """Deprecated: an :class:`ArtifactStore` speaking the legacy digests.

    Behaviour is identical to the historical ``CRPCache`` — same file
    names (``crps-<key>.npz`` / ``fleet-<key>.npz``), same legacy keys,
    same hit/miss counters, prefix reuse, corrupt-entry-as-miss, atomic
    winner-take-one stores, and orphan-sweeping :meth:`clear` — plus the
    store's additions (``stats()``, optional LRU cap via
    ``$REPRO_CACHE_MAX_BYTES``).  Construction warns; migrate to
    :class:`repro.runtime.store.ArtifactStore`.

    Parameters
    ----------
    cache_dir:
        Where the ``.npz`` files live; created on first store.  Defaults
        to ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in the working
        directory.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        warnings.warn(
            "CRPCache is deprecated; construct repro.runtime.store."
            "ArtifactStore instead (same directory layout, canonical "
            "artifact_digest keys, LRU eviction and stats())",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(store_dir=cache_dir)

    def _crp_key(
        self, puf_spec: str, seed: object, distribution: str, noisy: bool
    ) -> str:
        """Key CRP entries with the legacy :func:`cache_key` digest."""
        return cache_key(puf_spec, seed, distribution, 0, noisy)

    def _fleet_key(
        self,
        fleet_spec: str,
        seed: object,
        distribution: str,
        tier: str,
        shape: Sequence[int],
        noisy: bool,
    ) -> str:
        """Key fleet entries with the legacy :func:`fleet_cache_key` digest."""
        return fleet_cache_key(fleet_spec, seed, distribution, tier, shape, noisy)

"""On-disk memoisation of generated CRP sets.

Benchmark runs regenerate the same CRP pools over and over: the Table II
sweep alone draws tens of thousands of BR PUF responses per ring size,
every time it runs.  Since a CRP set is a pure function of
``(PUF spec, instance seed, challenge distribution, count, noise flag)``,
it can be generated once and memoised to a compressed ``.npz``.

Keys are explicit, not derived from live PUF objects: the caller states
the spec string (e.g. ``"BistableRingPUF(n=64, sigma=0.4)"``) and the
instance seed, which is exactly the information needed to regenerate the
set.  A cached file stores however many CRPs were generated; a request
for a *prefix* of that is served from the same file, because blocked and
unblocked generators draw challenges sequentially — the first ``m`` rows
of a larger draw equal an ``m``-row draw from the same state.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import warnings
from pathlib import Path
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.pufs.crp import CRPSet
from repro.telemetry.meter import incr as _incr
from repro.telemetry.meter import record as _record


def cache_key(
    puf_spec: str,
    seed: object,
    distribution: str,
    m: int,
    noisy: bool = False,
) -> str:
    """A stable hex digest identifying one CRP set's provenance.

    ``m`` is *not* part of the digest — see prefix reuse in the module
    docstring — but is validated by :meth:`CRPCache.get_or_generate`.
    """
    material = f"{puf_spec}|seed={seed!r}|dist={distribution}|noisy={bool(noisy)}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


def fleet_cache_key(
    fleet_spec: str,
    seed: object,
    distribution: str,
    tier: str,
    shape: Sequence[int],
    noisy: bool = False,
) -> str:
    """Provenance digest for a cached *fleet* response plane.

    Unlike :func:`cache_key`, the dtype ``tier`` and the fleet ``shape``
    (challenge length, instance count) are explicit key material — even
    when a caller's spec string omits them — so an int8-tier run can
    never be served a float64-tier entry and a resized fleet can never
    alias a stale plane.  The challenge count ``m`` stays out of the
    digest for the same prefix-reuse reason as :func:`cache_key`.
    """
    material = (
        f"{fleet_spec}|seed={seed!r}|dist={distribution}"
        f"|tier={tier}|shape={tuple(int(v) for v in shape)!r}|noisy={bool(noisy)}"
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


class CRPCache:
    """A directory of memoised CRP sets keyed by generation provenance.

    Parameters
    ----------
    cache_dir:
        Where the ``.npz`` files live; created on first store.  Defaults
        to ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in the working
        directory.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """The ``.npz`` file backing cache entry ``key``."""
        return self.cache_dir / f"crps-{key}.npz"

    def load(self, key: str) -> Optional[CRPSet]:
        """The cached set for ``key``, or None.

        An unreadable entry — a truncated or corrupt ``.npz`` left behind
        by a killed writer — is treated as a miss: the file is warned
        about, unlinked, and the caller regenerates.  Every *read* after
        a crash would otherwise fail forever on the same poisoned file.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            return CRPSet.load(path)
        except Exception as exc:
            warnings.warn(
                f"discarding unreadable CRP cache entry {path.name} "
                f"({type(exc).__name__}: {exc}); regenerating",
                RuntimeWarning,
                stacklevel=2,
            )
            _incr("crp_cache.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def store(self, key: str, crps: CRPSet) -> Path:
        """Persist ``crps`` under ``key`` (atomic replace).

        The staging file comes from ``tempfile.mkstemp`` in ``cache_dir``,
        so concurrent writers of the same key never interleave into one
        tmp path — each publishes its own complete archive via
        ``os.replace`` and the last one wins whole.  Orphaned staging
        files from killed writers are swept by :meth:`clear`.
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"crps-{key}-", suffix=".tmp.npz", dir=self.cache_dir
        )
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            crps.save(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # only on a failed save/replace
                tmp.unlink()
        return path

    # ------------------------------------------------------------------
    def get_or_generate(
        self,
        puf_spec: str,
        seed: object,
        distribution: str,
        m: int,
        generate: Callable[[], CRPSet],
        noisy: bool = False,
    ) -> CRPSet:
        """The first ``m`` CRPs for this provenance, generating on miss.

        On a hit with at least ``m`` cached CRPs the prefix is returned
        without calling ``generate``.  On a miss (or a cached set that is
        too short) ``generate()`` runs and its output replaces the cached
        file, so the cache monotonically grows to the largest request.
        """
        if m <= 0:
            raise ValueError("CRP count must be positive")
        key = cache_key(puf_spec, seed, distribution, m, noisy)
        cached = self.load(key)
        if cached is not None and len(cached) >= m:
            self.hits += 1
            _incr("crp_cache.hits")
            taken = cached.take(m)
            # A cache hit replays CRPs the adversary is still accountable
            # for; record them as EX queries just like fresh generation
            # (the generator inside `generate` records the miss path).
            _record(
                "ex",
                queries=m,
                examples=m,
                challenges=taken.challenges,
                response_bytes=taken.responses.nbytes,
            )
            return taken
        self.misses += 1
        _incr("crp_cache.misses")
        crps = generate()
        if len(crps) < m:
            raise ValueError(
                f"generator produced {len(crps)} CRPs, fewer than requested {m}"
            )
        self.store(key, crps)
        return crps.take(m)

    # ------------------------------------------------------------------
    # Fleet response planes: (m, n) challenges against an (m, N) response
    # matrix, keyed by fleet_cache_key (tier and shape in the digest).
    # ------------------------------------------------------------------
    def fleet_path_for(self, key: str) -> Path:
        """The ``.npz`` file backing fleet cache entry ``key``."""
        return self.cache_dir / f"fleet-{key}.npz"

    def load_fleet(self, key: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The cached (challenges, responses) plane for ``key``, or None.

        Same corrupt-entry policy as :meth:`load`: an unreadable or
        malformed archive is warned about, unlinked, and reported as a
        miss, so one killed writer cannot poison every later run.
        """
        path = self.fleet_path_for(key)
        if not path.exists():
            return None
        try:
            data = np.load(path)
            challenges = np.asarray(data["challenges"], dtype=np.int8)
            responses = np.asarray(data["responses"], dtype=np.int8)
            if (
                challenges.ndim != 2
                or responses.ndim != 2
                or challenges.shape[0] != responses.shape[0]
            ):
                raise ValueError(
                    f"malformed fleet entry: challenges {challenges.shape} "
                    f"vs responses {responses.shape}"
                )
            return challenges, responses
        except Exception as exc:
            warnings.warn(
                f"discarding unreadable fleet cache entry {path.name} "
                f"({type(exc).__name__}: {exc}); regenerating",
                RuntimeWarning,
                stacklevel=2,
            )
            _incr("fleet_cache.corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def store_fleet(
        self, key: str, challenges: np.ndarray, responses: np.ndarray
    ) -> Path:
        """Persist a fleet response plane under ``key`` (atomic replace)."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.fleet_path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"fleet-{key}-", suffix=".tmp.npz", dir=self.cache_dir
        )
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            np.savez_compressed(
                tmp,
                challenges=np.asarray(challenges, dtype=np.int8),
                responses=np.asarray(responses, dtype=np.int8),
            )
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # only on a failed save/replace
                tmp.unlink()
        return path

    def get_or_generate_fleet(
        self,
        fleet_spec: str,
        seed: object,
        distribution: str,
        tier: str,
        shape: Sequence[int],
        m: int,
        generate: Callable[[], Tuple[np.ndarray, np.ndarray]],
        noisy: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The first ``m`` rows of this fleet plane, generating on miss.

        Prefix reuse works row-wise exactly as for CRP sets: challenge
        draws are sequential, so the first ``m`` rows of a larger cached
        plane equal an ``m``-row generation from the same seed.
        """
        if m <= 0:
            raise ValueError("challenge count must be positive")
        key = fleet_cache_key(fleet_spec, seed, distribution, tier, shape, noisy)
        cached = self.load_fleet(key)
        if cached is not None and cached[0].shape[0] >= m:
            self.hits += 1
            _incr("fleet_cache.hits")
            challenges, responses = cached[0][:m], cached[1][:m]
            # Replayed oracle answers are still adversary queries, per
            # instance (mirrors the CRP hit path above).
            _record(
                "ex",
                queries=m * responses.shape[1],
                examples=m * responses.shape[1],
                challenges=challenges,
                response_bytes=responses.nbytes,
            )
            return challenges, responses
        self.misses += 1
        _incr("fleet_cache.misses")
        challenges, responses = generate()
        if challenges.shape[0] < m:
            raise ValueError(
                f"generator produced {challenges.shape[0]} rows, "
                f"fewer than requested {m}"
            )
        self.store_fleet(key, challenges, responses)
        return challenges[:m], responses[:m]

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete all cached sets; returns how many files were removed.

        Sweeps CRP entries, fleet entries, and ``*.tmp.npz`` staging
        orphans left by writers killed between ``mkstemp`` and
        ``os.replace``.
        """
        removed = 0
        if self.cache_dir.exists():
            for pattern in ("crps-*.npz", "fleet-*.npz"):
                for path in self.cache_dir.glob(pattern):
                    path.unlink()
                    removed += 1
        return removed

    def __repr__(self) -> str:
        return (
            f"CRPCache(dir={str(self.cache_dir)!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )

"""The parallel trial runner.

A *trial* is one independent repetition of an experiment: build a fresh
PUF instance, draw CRPs, fit a learner, score it.  Table I assessments,
the BR PUF Chow/LTF experiments, learning curves and noise-tolerance
ablations are all loops of such trials, so this one abstraction is the
scaling point for the whole reproduction.

Determinism contract
--------------------
``TrialRunner.run(fn, num_trials, master_seed)`` yields *bit-identical*
results for any ``workers`` setting: every trial's randomness comes from
its own :class:`~numpy.random.SeedSequence` child (see
:mod:`repro.runtime.seeding`), results are re-ordered by trial index, and
nothing a trial computes may depend on shared mutable state.  Trial
functions must be picklable (module-level) to run on the pool; closures
and lambdas silently degrade to the serial path with a warning.

Failure semantics
-----------------
Failures split into two disjoint classes with opposite handling:

*Trial errors* — the trial function itself raised.  The exception is a
deterministic function of ``(master_seed, index)``, so it is **never
retried**: it is captured *inside* the worker as a structured
:class:`TrialError` (exception type, message, traceback, seed identity)
and returned as a failed :class:`TrialResult`, leaving every other trial
untouched.  Serial and pooled runs produce identical trial errors.

*Infrastructure failures* — the machinery around the trial broke: a
worker died (``BrokenProcessPool``), a worker hung past ``trial_timeout``
(the pool is killed and rebuilt), or the function/arguments could not be
pickled.  Worker death and hangs are transient, so the affected trials
are resubmitted under a :class:`RetryPolicy` (capped exponential backoff
whose jitter derives from the trial's own seed, keeping reruns
deterministic); pickling failures are deterministic, so the runner falls
back to in-process serial execution instead.  A trial whose retry budget
is exhausted is recorded as a ``category="infra"`` / ``"timeout"``
:class:`TrialError` rather than crashing the run.

With a ledger attached, each record is appended as its trial completes
(parent-side), so a killed run can be restarted with
``run(..., resume_from=ledger)``: completed trials replay bit-identically
from the ledger and only the missing (or infrastructure-failed) indices
re-execute.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import traceback as _traceback
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.runtime.seeding import SeedLike, as_seed_sequence, fan_out
from repro.telemetry.meter import QueryMeter, metered
from repro.telemetry.spans import SpanRecorder, recording

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.telemetry.ledger import RunLedger


@dataclasses.dataclass
class TrialContext:
    """What a trial function receives: its index and its private stream."""

    index: int
    seed: np.random.SeedSequence

    def __post_init__(self) -> None:
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        """The trial's Generator (created once, then reused)."""
        if self._rng is None:
            self._rng = np.random.default_rng(self.seed)
        return self._rng

    def spawn_rngs(self, k: int) -> List[np.random.Generator]:
        """``k`` further independent Generators (e.g. one per learner)."""
        return [np.random.default_rng(s) for s in self.seed.spawn(k)]


#: A trial function: (context, **kwargs) -> any picklable result.
TrialFn = Callable[..., Any]

#: Maximum traceback characters kept on a TrialError (ledger size guard).
_TRACEBACK_LIMIT = 16_384

#: spawn_key domain separating retry-backoff jitter from trial streams.
_RETRY_JITTER_DOMAIN = 0x52455452  # "RETR"


@dataclasses.dataclass
class TrialError:
    """Structured record of one failed trial.

    ``category`` states which failure class produced it:

    * ``"trial"`` — the trial function raised; deterministic, never
      retried, replayed as-is on resume;
    * ``"timeout"`` — the trial exceeded ``trial_timeout`` and its worker
      was killed; re-executed on resume;
    * ``"infra"`` — the worker died and the retry budget ran out;
      re-executed on resume.

    ``entropy``/``spawn_key`` identify the trial's SeedSequence so the
    failure can be reproduced in isolation with
    ``np.random.SeedSequence(int(entropy), spawn_key=spawn_key)``.
    """

    exc_type: str
    message: str
    traceback: str = ""
    category: str = "trial"
    entropy: Optional[str] = None
    spawn_key: Tuple[int, ...] = ()

    @classmethod
    def from_exception(
        cls, exc: BaseException, seed: Optional[np.random.SeedSequence] = None
    ) -> "TrialError":
        """Capture a raised exception as a deterministic trial error."""
        tb = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return cls(
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback=tb[-_TRACEBACK_LIMIT:],
            category="trial",
            **_seed_identity(seed),
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (JSON-ready, ledger record form)."""
        record = dataclasses.asdict(self)
        record["spawn_key"] = list(self.spawn_key)
        return record

    def summary(self) -> str:
        """One-line digest: ``ValueError (trial): message``."""
        return f"{self.exc_type} ({self.category}): {self.message}"


def _seed_identity(seed: Optional[np.random.SeedSequence]) -> Dict[str, object]:
    """The TrialError fields that pin down a trial's SeedSequence."""
    if seed is None:
        return {"entropy": None, "spawn_key": ()}
    return {"entropy": str(seed.entropy), "spawn_key": tuple(seed.spawn_key)}


def _canonical_seed(seed: SeedLike) -> Tuple[object, Tuple[int, ...]]:
    """A seed's ``(entropy, spawn_key)`` identity, for cross-run comparison.

    Canonicalising through :class:`~numpy.random.SeedSequence` lets an
    ``int``, an entropy sequence, and an equivalent ``SeedSequence``
    compare equal regardless of which form each run was launched with.
    """
    sequence = as_seed_sequence(seed)
    entropy = sequence.entropy
    if isinstance(entropy, (list, tuple, np.ndarray)):
        entropy = tuple(int(word) for word in entropy)
    return entropy, tuple(sequence.spawn_key)


def _seed_mismatch(current: SeedLike, recorded: object) -> bool:
    """Whether a recorded master seed disagrees with the current one.

    An unintelligible recorded seed counts as a mismatch — resuming is
    refused rather than guessed at.
    """
    try:
        return _canonical_seed(current) != _canonical_seed(recorded)
    except Exception:
        return True


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff for *infrastructure* failures only.

    Deterministic trial exceptions are never retried — re-running a pure
    function of ``(master_seed, index)`` re-raises the same error and
    re-bills every oracle query it made.  Retries apply to worker death
    (``BrokenProcessPool``) and per-trial timeouts, where a second
    attempt can genuinely succeed.

    ``max_attempts`` counts total executions (1 = no retry).  Backoff for
    attempt ``a`` is ``min(max_delay, base_delay * 2**(a-1))`` stretched
    by up to ``jitter`` (a fraction), with the jitter drawn from a stream
    derived from the trial's own SeedSequence under a fixed domain tag —
    so delays are reproducible and never perturb the trial's results.
    """

    max_attempts: int = 3
    base_delay: float = 0.25
    max_delay: float = 8.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, seed: np.random.SeedSequence) -> float:
        """Seconds to back off after ``attempt`` completed executions."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if base <= 0 or self.jitter <= 0:
            return base
        jitter_seed = np.random.SeedSequence(
            seed.entropy,
            spawn_key=tuple(seed.spawn_key) + (_RETRY_JITTER_DOMAIN, attempt),
        )
        u = float(np.random.default_rng(jitter_seed).random())
        return base * (1.0 + self.jitter * u)


@dataclasses.dataclass
class TrialResult:
    """One trial's outcome plus its in-worker timing and telemetry.

    ``seconds`` is in-worker wall time, ``cpu_seconds`` in-worker process
    CPU time, and ``queue_wait`` the delay between submission in the
    parent and execution start in the worker (0 on the serial path).
    ``telemetry`` is ``{"queries": <QueryMeter snapshot>, "spans": <span
    summary>}`` — picklable dicts, so pool workers ship them back intact.
    A failed trial carries its :class:`TrialError` in ``error`` (and
    ``value`` is None); ``attempts`` counts executions including retries,
    and ``replayed`` marks results reconstructed from a resume ledger
    rather than executed.
    """

    index: int
    value: Any
    seconds: float
    cpu_seconds: float = 0.0
    queue_wait: float = 0.0
    telemetry: Optional[Dict[str, Any]] = None
    error: Optional[TrialError] = None
    attempts: int = 1
    replayed: bool = False

    @property
    def ok(self) -> bool:
        """Whether the trial completed without error."""
        return self.error is None


@dataclasses.dataclass
class TrialReport:
    """All trial results (ordered by index) plus timing aggregates.

    ``cancelled`` marks a run stopped early through the ``cancel`` event
    of :meth:`TrialRunner.run`: the results list then holds only the
    trials that completed (or replayed) before the stop was observed,
    and a later ``resume_from`` run picks up exactly the missing ones.
    """

    results: List[TrialResult]
    workers: int
    wall_seconds: float
    executor: str  # "serial", "process-pool", "mixed" or "replay"
    cancelled: bool = False

    def values(self) -> List[Any]:
        """Trial values in index order (None for failed trials)."""
        return [r.value for r in self.results]

    def failures(self) -> List[TrialResult]:
        """The failed trials, in index order."""
        return [r for r in self.results if not r.ok]

    @property
    def replayed_count(self) -> int:
        """How many results were replayed from a resume ledger."""
        return sum(1 for r in self.results if r.replayed)

    @property
    def retried_count(self) -> int:
        """How many trials needed more than one execution attempt."""
        return sum(1 for r in self.results if r.attempts > 1)

    def raise_failures(self) -> "TrialReport":
        """Raise ``TrialFailure`` if any trial failed; else return self.

        For callers (learning-curve averaging, table builders) whose
        downstream math cannot represent a missing trial — the structured
        errors become one exception instead of NaN-poisoned aggregates.
        """
        failed = self.failures()
        if failed:
            raise TrialFailure(failed)
        return self

    def trial_seconds(self) -> np.ndarray:
        """Per-trial in-worker durations, index order."""
        return np.array([r.seconds for r in self.results])

    @property
    def total_trial_seconds(self) -> float:
        """Sum of per-trial durations (the serial-equivalent work)."""
        return float(np.sum(self.trial_seconds()))

    def summary(self) -> str:
        """One-line digest: trial count, workers, wall clock, per-trial stats."""
        if not self.results:
            return (
                f"0 trials on {self.workers} worker(s) [{self.executor}]: "
                f"wall {self.wall_seconds:.2f}s"
                + (", cancelled" if self.cancelled else "")
            )
        secs = self.trial_seconds()
        base = (
            f"{len(self.results)} trials on {self.workers} worker(s) "
            f"[{self.executor}]: wall {self.wall_seconds:.2f}s, "
            f"per-trial mean {np.mean(secs):.3f}s "
            f"(min {np.min(secs):.3f}s, max {np.max(secs):.3f}s)"
        )
        extras = []
        if self.cancelled:
            extras.append("cancelled")
        if self.failures():
            extras.append(f"{len(self.failures())} failed")
        if self.retried_count:
            extras.append(f"{self.retried_count} retried")
        if self.replayed_count:
            extras.append(f"{self.replayed_count} replayed")
        return base + (", " + ", ".join(extras) if extras else "")


class TrialFailure(RuntimeError):
    """Raised by :meth:`TrialReport.raise_failures` when trials failed."""

    def __init__(self, failures: List[TrialResult]) -> None:
        self.failures = failures
        first = failures[0]
        detail = first.error.summary() if first.error else "unknown error"
        super().__init__(
            f"{len(failures)} of the trials failed; "
            f"first: trial {first.index} — {detail}"
        )


# ----------------------------------------------------------------------
# Ledger record round-trip (crash-safe resume).
# ----------------------------------------------------------------------
def trial_record(result: TrialResult) -> Dict[str, object]:
    """The JSONL ledger record for one trial result.

    ``value_meta`` preserves ndarray dtype/shape so a replayed value is
    bit-identical to the executed one (JSON floats round-trip exactly).
    """
    value, value_meta = result.value, None
    if isinstance(value, np.ndarray):
        value_meta = {"dtype": str(value.dtype), "shape": list(value.shape)}
        value = value.tolist()
    record: Dict[str, object] = {
        "index": result.index,
        "status": "ok" if result.ok else "error",
        "attempts": result.attempts,
        "seconds": result.seconds,
        "cpu_seconds": result.cpu_seconds,
        "queue_wait": result.queue_wait,
        "telemetry": result.telemetry,
        "value": value,
    }
    if value_meta is not None:
        record["value_meta"] = value_meta
    if result.error is not None:
        record["error"] = result.error.as_dict()
    return record


def result_from_record(record: Dict[str, object]) -> TrialResult:
    """Reconstruct a replayed :class:`TrialResult` from a ledger record."""
    value = record.get("value")
    meta = record.get("value_meta")
    if meta is not None and value is not None:
        value = np.asarray(value, dtype=meta["dtype"]).reshape(meta["shape"])
    error = None
    raw_error = record.get("error")
    if raw_error:
        error = TrialError(
            exc_type=str(raw_error.get("exc_type", "Exception")),
            message=str(raw_error.get("message", "")),
            traceback=str(raw_error.get("traceback", "")),
            category=str(raw_error.get("category", "trial")),
            entropy=raw_error.get("entropy"),
            spawn_key=tuple(raw_error.get("spawn_key", ())),
        )
    return TrialResult(
        index=int(record["index"]),
        value=value,
        seconds=float(record.get("seconds", 0.0)),
        cpu_seconds=float(record.get("cpu_seconds", 0.0)),
        queue_wait=float(record.get("queue_wait", 0.0)),
        telemetry=record.get("telemetry"),
        error=error,
        attempts=int(record.get("attempts", 1)),
        replayed=True,
    )


# ----------------------------------------------------------------------
# Worker-side execution (module-level for pool pickling).
# ----------------------------------------------------------------------
def _execute_trial(
    trial_fn: TrialFn,
    index: int,
    seed: np.random.SeedSequence,
    kwargs: Dict[str, Any],
    submitted_at: Optional[float] = None,
    attempts: int = 1,
) -> TrialResult:
    """Run one trial, metered and timed; exceptions become TrialErrors.

    Installs a fresh :class:`QueryMeter` and :class:`SpanRecorder` around
    the trial, so every oracle draw and kernel span inside lands on this
    trial's telemetry — in the worker process under the pool, or inline on
    the serial fallback; either way the snapshot returns in the result.
    An exception raised by ``trial_fn`` is deterministic (the trial is a
    pure function of its seed), so it is captured as a ``category="trial"``
    :class:`TrialError` — with the telemetry spent up to the raise, which
    is real adversary spend — instead of escaping to the pool machinery.
    ``submitted_at`` is a ``time.time()`` stamp from the parent (wall
    clock, comparable across processes), giving the queue-wait estimate.
    """
    queue_wait = 0.0 if submitted_at is None else max(0.0, time.time() - submitted_at)
    meter = QueryMeter()
    spans = SpanRecorder()
    value: Any = None
    error: Optional[TrialError] = None
    start = time.perf_counter()
    cpu_start = time.process_time()
    with metered(meter), recording(spans):
        try:
            value = trial_fn(TrialContext(index, seed), **kwargs)
        except Exception as exc:
            error = TrialError.from_exception(exc, seed)
    return TrialResult(
        index=index,
        value=value,
        seconds=time.perf_counter() - start,
        cpu_seconds=time.process_time() - cpu_start,
        queue_wait=queue_wait,
        telemetry={"queries": meter.snapshot(), "spans": spans.summary()},
        error=error,
        attempts=attempts,
    )


def _execute_chunk(
    trial_fn: TrialFn,
    items: List[Tuple[int, np.random.SeedSequence]],
    kwargs: Dict[str, Any],
    submitted_at: Optional[float],
    attempts: int,
) -> List[TrialResult]:
    """Run one pool task's worth of trials (module-level for pickling)."""
    return [
        _execute_trial(trial_fn, index, seed, kwargs, submitted_at, attempts)
        for index, seed in items
    ]


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: kill the workers, then join the machinery.

    Used when a worker hung past its deadline (a cooperative shutdown
    would block on it forever) or after the pool broke; the executor
    object is discarded afterwards.  The workers are killed *first* so
    the executor's manager thread — still in its normal wait, watching
    the worker sentinels — observes their death and exits through its
    broken-pool path; shutting down before killing can instead park the
    manager in a wait nothing will ever wake, which then deadlocks
    interpreter exit (concurrent.futures joins manager threads atexit).
    """
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead worker
            pass
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:  # pragma: no cover - shutdown on a broken pool
        pass


def _failed_results(
    items: List[Tuple[int, np.random.SeedSequence]],
    attempts: int,
    category: str,
    exc_type: str,
    message: str,
    seconds: float = 0.0,
) -> List[TrialResult]:
    """Parent-side TrialError results for trials the pool lost."""
    return [
        TrialResult(
            index=index,
            value=None,
            seconds=seconds,
            telemetry=None,
            error=TrialError(
                exc_type=exc_type,
                message=message,
                category=category,
                **_seed_identity(seed),
            ),
            attempts=attempts,
        )
        for index, seed in items
    ]


class TrialRunner:
    """Fan independent trials out over a process pool, deterministically.

    Parameters
    ----------
    workers:
        Number of worker processes (per shard, when ``shards > 1``).
        ``1`` (the default) with ``shards=1`` runs serially in the
        current process — no pool, no pickling requirements.
    chunk_size:
        Trials submitted per pool task.  Defaults to
        ``ceil(num_trials / (4 * workers))``, which keeps every worker
        busy while amortising inter-process overhead.  Retry and timeout
        act at chunk granularity: a smaller ``chunk_size`` narrows the
        blast radius of a dead or hung worker.  At most ``workers``
        chunks are in flight at once (the rest wait in a parent-side
        backlog), so a chunk's ``trial_timeout`` deadline starts when it
        starts executing, not when the run was launched.
    shards:
        Number of independent process pools.  ``1`` (the default) keeps
        the single-pool path; more runs the work-stealing sharded
        executor (:mod:`repro.runtime.sharding`): each shard drives its
        own pool of ``workers`` processes, idle shards steal queued
        trials from the tail of busy ones, and with a ledger attached
        each shard appends to its own ``ledger-shardNN.jsonl``.  Results
        stay bit-identical to the serial path for any shard count.
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        shards: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.shards = shards

    # ------------------------------------------------------------------
    def run(
        self,
        trial_fn: TrialFn,
        num_trials: int,
        master_seed: SeedLike = 0,
        trial_kwargs: Optional[Dict[str, Any]] = None,
        ledger: Optional["RunLedger"] = None,
        resume_from: Optional[Union[str, Path, "RunLedger"]] = None,
        retry: Optional[RetryPolicy] = None,
        trial_timeout: Optional[float] = None,
        on_result: Optional[Callable[[TrialResult], None]] = None,
        cancel: Optional[threading.Event] = None,
    ) -> TrialReport:
        """Run ``num_trials`` independent trials of ``trial_fn``.

        ``trial_fn`` is called as ``trial_fn(ctx, **trial_kwargs)`` where
        ``ctx`` is a :class:`TrialContext`; it must draw all randomness
        from ``ctx.rng`` / ``ctx.spawn_rngs`` for the determinism
        contract to hold.  Results are returned in trial-index order and
        are bit-identical for every ``workers`` value.

        With ``ledger`` set, one JSONL record per trial is appended *as
        that trial completes* (written here in the parent, never
        concurrently from workers), so a killed run leaves every finished
        trial on disk.  ``resume_from`` — a run directory, ledger path,
        or :class:`RunLedger` — replays the recorded results for
        already-completed trial indices bit-identically and executes only
        the missing ones (infrastructure/timeout failures re-execute;
        deterministic trial errors replay).  ``retry`` (default
        :class:`RetryPolicy`) governs resubmission after worker death,
        and ``trial_timeout`` (seconds per trial; pool path only) kills
        and rebuilds the pool when a worker hangs.

        ``on_result`` is called in the parent process as each trial
        completes — replayed results first (in index order), then
        executed ones in completion order — which is the progress hook
        the assessment service streams WebSocket events from.  On the
        sharded path it fires from shard driver threads, so the callback
        must be thread-safe (the service marshals onto its event loop
        with ``call_soon_threadsafe``).  ``cancel`` is a cooperative
        stop: once the event is set no further trials start, in-flight
        pool chunks finish and are recorded, and the report comes back
        with ``cancelled=True`` holding only the completed results —
        a later ``resume_from`` run finishes exactly the missing trials.
        """
        if trial_timeout is not None and trial_timeout <= 0:
            raise ValueError(f"trial_timeout must be positive, got {trial_timeout}")
        kwargs = dict(trial_kwargs or {})
        retry = RetryPolicy() if retry is None else retry
        seeds = fan_out(master_seed, num_trials)
        start = time.perf_counter()

        replayed: Dict[int, TrialResult] = {}
        if resume_from is not None:
            replayed = self._load_resume(resume_from, num_trials, master_seed)
        items = [
            (index, seed)
            for index, seed in enumerate(seeds)
            if index not in replayed
        ]
        if on_result is not None:
            for index in sorted(replayed):
                on_result(replayed[index])

        def emit(result: TrialResult) -> None:
            if ledger is not None:
                ledger.append(trial_record(result))
            if on_result is not None:
                on_result(result)

        pooled: List[TrialResult] = []
        serial: List[TrialResult] = []
        if not items:
            executor = "replay"
        elif cancel is not None and cancel.is_set():
            executor = "replay" if replayed else "serial"
        elif self.shards > 1:
            pooled, executor = self._run_sharded(
                trial_fn, items, kwargs, retry, trial_timeout, ledger,
                on_result=on_result, cancel=cancel,
            )
        elif self.workers == 1:
            serial = self._run_serial(trial_fn, items, kwargs, emit, cancel)
            executor = "serial"
        else:
            pooled, leftover, fallback = self._run_pool(
                trial_fn, items, kwargs, retry, trial_timeout, emit, cancel
            )
            if fallback is None:
                executor = "process-pool"
            else:
                warnings.warn(
                    f"process pool unavailable ({fallback}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                serial = self._run_serial(trial_fn, leftover, kwargs, emit, cancel)
                executor = "mixed" if pooled else "serial"

        results = pooled + serial + list(replayed.values())
        results.sort(key=lambda r: r.index)
        return TrialReport(
            results=results,
            workers=self.workers,
            wall_seconds=time.perf_counter() - start,
            executor=executor,
            cancelled=bool(
                cancel is not None
                and cancel.is_set()
                and len(results) < num_trials
            ),
        )

    # ------------------------------------------------------------------
    def _run_sharded(
        self,
        trial_fn: TrialFn,
        items: List[Tuple[int, np.random.SeedSequence]],
        kwargs: Dict[str, Any],
        retry: RetryPolicy,
        trial_timeout: Optional[float],
        ledger: Optional["RunLedger"],
        on_result: Optional[Callable[[TrialResult], None]] = None,
        cancel: Optional[threading.Event] = None,
    ) -> "tuple[List[TrialResult], str]":
        """The work-stealing multi-pool path (``shards > 1``).

        Ledger writes go to per-shard files inside :func:`run_sharded`
        (the main handle's ``read_latest`` merges them), so the
        single-file ``emit`` used by the other paths is bypassed.  A
        shard that loses its pool to a pickling failure drains serially
        and is reported with a warning, mirroring the single-pool
        fallback.
        """
        from repro.runtime.sharding import run_sharded

        results, scheduler, fallbacks = run_sharded(
            trial_fn,
            items,
            kwargs,
            shards=self.shards,
            workers=self.workers,
            chunk_size=self.chunk_size,
            retry=retry,
            trial_timeout=trial_timeout,
            ledger=ledger,
            on_result=on_result,
            cancel=cancel,
        )
        broken = [f for f in fallbacks if f is not None]
        if broken:
            warnings.warn(
                f"{len(broken)} of {self.shards} shard pool(s) unavailable "
                f"({broken[0]}); affected shards drained serially",
                RuntimeWarning,
                stacklevel=3,
            )
        executor = f"sharded({self.shards}x{self.workers}"
        if any(scheduler.steals):
            executor += f", steals={sum(scheduler.steals)}"
        executor += ")"
        if broken:
            executor += "-mixed"
        return results, executor

    # ------------------------------------------------------------------
    @staticmethod
    def _load_resume(
        resume_from: Union[str, Path, "RunLedger"],
        num_trials: int,
        master_seed: SeedLike,
    ) -> Dict[int, TrialResult]:
        """Replayable results from a prior run's ledger, keyed by index.

        Accepts a run directory, a ``ledger.jsonl`` path, or an open
        :class:`RunLedger`; a directory with no ledger yet resumes to an
        empty replay set, so passing ``resume_from`` unconditionally is
        safe for idempotent launchers.  Raises ``ValueError`` when the
        ledger's recorded ``master_seed`` disagrees with this run's
        (compared canonically, so an int and an equivalent SeedSequence
        match) and warns when the recorded trial count differs.
        """
        from repro.telemetry.ledger import LEDGER_NAME, RunLedger

        if isinstance(resume_from, RunLedger):
            ledger = resume_from
        else:
            path = Path(resume_from)
            if path.name == LEDGER_NAME:
                path = path.parent
            ledger = RunLedger(path)
        meta = ledger.read_meta() or {}
        recorded_seed = meta.get("master_seed")
        if recorded_seed is not None and _seed_mismatch(master_seed, recorded_seed):
            raise ValueError(
                f"cannot resume from {ledger.run_dir}: ledger was written "
                f"with master_seed={recorded_seed!r}, this run uses "
                f"master_seed={master_seed!r}"
            )
        recorded_trials = meta.get("trials")
        if isinstance(recorded_trials, int) and recorded_trials != num_trials:
            warnings.warn(
                f"resuming {ledger.run_dir} with num_trials={num_trials} "
                f"but its ledger was written for trials={recorded_trials}; "
                "only overlapping indices replay",
                RuntimeWarning,
                stacklevel=3,
            )
        replayed: Dict[int, TrialResult] = {}
        for index, record in ledger.read_latest().items():
            if not 0 <= index < num_trials:
                continue
            result = result_from_record(record)
            if result.error is not None and result.error.category != "trial":
                continue  # infra/timeout failures get a fresh execution
            replayed[index] = result
        return replayed

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        trial_fn: TrialFn,
        items: List[Tuple[int, np.random.SeedSequence]],
        kwargs: Dict[str, Any],
        emit: Callable[[TrialResult], None],
        cancel: Optional[threading.Event] = None,
    ) -> List[TrialResult]:
        results = []
        for index, seed in items:
            if cancel is not None and cancel.is_set():
                break
            result = _execute_trial(trial_fn, index, seed, kwargs)
            emit(result)
            results.append(result)
        return results

    def _run_pool(
        self,
        trial_fn: TrialFn,
        items: List[Tuple[int, np.random.SeedSequence]],
        kwargs: Dict[str, Any],
        retry: RetryPolicy,
        trial_timeout: Optional[float],
        emit: Callable[[TrialResult], None],
        cancel: Optional[threading.Event] = None,
    ) -> "tuple[List[TrialResult], List[Tuple[int, np.random.SeedSequence]], Optional[str]]":
        """The fault-tolerant pool path.

        Returns ``(results, leftover_items, fallback_reason)``; a non-None
        ``fallback_reason`` means the pool is unusable for the leftover
        items (unpicklable function, no OS semaphores, ...) and the caller
        should finish them serially.  A set ``cancel`` event stops new
        chunk submissions; chunks already in flight run to completion and
        are recorded normally.
        """
        chunk = self.chunk_size or max(1, -(-len(items) // (4 * self.workers)))
        chunks = [items[i : i + chunk] for i in range(0, len(items), chunk)]
        results: List[TrialResult] = []
        outstanding = set(range(len(chunks)))
        attempts: Dict[int, int] = {}
        pending: Dict[Future, int] = {}
        deadlines: Dict[Future, float] = {}
        backlog = deque(range(len(chunks)))

        try:
            pool = ProcessPoolExecutor(max_workers=self.workers)
        except Exception as exc:  # no POSIX semaphores, fork failure, ...
            return results, items, f"{type(exc).__name__}: {exc}"

        def submit(ci: int, charge: bool = True) -> None:
            if charge:
                attempts[ci] = attempts.get(ci, 0) + 1
            future = pool.submit(
                _execute_chunk, trial_fn, chunks[ci], kwargs, time.time(), attempts[ci]
            )
            pending[future] = ci
            if trial_timeout is not None:
                deadlines[future] = (
                    time.monotonic() + trial_timeout * len(chunks[ci])
                )

        def pump() -> None:
            # At most `workers` chunks are in flight at once, so a
            # submitted chunk starts executing immediately and its
            # timeout deadline (armed at submit) measures execution, not
            # time spent queued behind other chunks — queued chunks wait
            # here in the backlog with no deadline running.
            if cancel is not None and cancel.is_set():
                backlog.clear()
                return
            while backlog and len(pending) < self.workers:
                submit(backlog.popleft())

        def rebuild() -> None:
            nonlocal pool
            _stop_pool(pool)
            pending.clear()
            deadlines.clear()
            pool = ProcessPoolExecutor(max_workers=self.workers)

        def finish_chunk(ci: int, chunk_results: List[TrialResult]) -> None:
            outstanding.discard(ci)
            for result in chunk_results:
                emit(result)
            results.extend(chunk_results)

        def backoff(ci: int) -> None:
            delay = retry.delay(attempts[ci], chunks[ci][0][1])
            if delay > 0:
                time.sleep(delay)

        fallback: Optional[str] = None
        while (pending or backlog) and fallback is None:
            pump()
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - time.monotonic())
            done, _ = wait(set(pending), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                now = time.monotonic()
                overdue = {
                    pending[f] for f, d in deadlines.items() if d <= now
                }
                if not overdue:
                    continue
                # A worker hung past its deadline.  Everything in flight
                # dies with the pool; innocents are resubmitted without
                # being charged an attempt.
                victims = sorted(set(pending.values()))
                rebuild()
                for vi in victims:
                    if vi not in overdue:
                        submit(vi, charge=False)
                    elif attempts[vi] >= retry.max_attempts:
                        finish_chunk(
                            vi,
                            _failed_results(
                                chunks[vi],
                                attempts[vi],
                                category="timeout",
                                exc_type="TimeoutError",
                                message=(
                                    f"trial exceeded trial_timeout="
                                    f"{trial_timeout}s on every one of "
                                    f"{attempts[vi]} attempt(s); worker killed"
                                ),
                                seconds=float(trial_timeout),
                            ),
                        )
                    else:
                        warnings.warn(
                            f"worker hung past {trial_timeout}s on trials "
                            f"{[i for i, _ in chunks[vi]]}; pool rebuilt, "
                            f"retrying (attempt {attempts[vi] + 1})",
                            RuntimeWarning,
                        )
                        backoff(vi)
                        submit(vi)
                continue
            for future in done:
                ci = pending.pop(future, None)
                if ci is None:
                    continue  # belonged to a pool torn down this round
                deadlines.pop(future, None)
                try:
                    chunk_results = future.result()
                except BrokenProcessPool:
                    # A worker died (SIGKILL, OOM, segfault) and the pool
                    # is unusable.  Chunks whose futures already hold a
                    # successful result are harvested first — only the
                    # chunks genuinely lost with the pool are charged an
                    # attempt and resubmitted.
                    victims = {ci}
                    for other, oi in list(pending.items()):
                        harvest = None
                        if other.done():
                            try:
                                harvest = other.result()
                            except Exception:
                                harvest = None
                        if harvest is None:
                            victims.add(oi)
                        else:
                            pending.pop(other)
                            deadlines.pop(other, None)
                            finish_chunk(oi, harvest)
                    victims = sorted(victims)
                    rebuild()
                    for vi in victims:
                        if attempts[vi] >= retry.max_attempts:
                            finish_chunk(
                                vi,
                                _failed_results(
                                    chunks[vi],
                                    attempts[vi],
                                    category="infra",
                                    exc_type="BrokenProcessPool",
                                    message=(
                                        "worker process died; retry budget "
                                        f"exhausted after {attempts[vi]} "
                                        "attempt(s)"
                                    ),
                                ),
                            )
                        else:
                            warnings.warn(
                                "worker process died; pool rebuilt, retrying "
                                f"trials {[i for i, _ in chunks[vi]]} "
                                f"(attempt {attempts[vi] + 1})",
                                RuntimeWarning,
                            )
                            backoff(vi)
                            submit(vi)
                    break  # remaining futures in `done` died with the pool
                except Exception as exc:
                    # Deterministic plumbing failure (the function, kwargs
                    # or result can't cross the process boundary): retrying
                    # cannot help, finish in-process instead.
                    fallback = f"{type(exc).__name__}: {exc}"
                    break
                else:
                    finish_chunk(ci, chunk_results)

        if fallback is not None:
            _stop_pool(pool)
        else:
            pool.shutdown()
        if fallback is None:
            leftover = []
        else:
            leftover = [item for ci in sorted(outstanding) for item in chunks[ci]]
        return results, leftover, fallback

"""The parallel trial runner.

A *trial* is one independent repetition of an experiment: build a fresh
PUF instance, draw CRPs, fit a learner, score it.  Table I assessments,
the BR PUF Chow/LTF experiments, learning curves and noise-tolerance
ablations are all loops of such trials, so this one abstraction is the
scaling point for the whole reproduction.

Determinism contract
--------------------
``TrialRunner.run(fn, num_trials, master_seed)`` yields *bit-identical*
results for any ``workers`` setting: every trial's randomness comes from
its own :class:`~numpy.random.SeedSequence` child (see
:mod:`repro.runtime.seeding`), results are re-ordered by trial index, and
nothing a trial computes may depend on shared mutable state.  Trial
functions must be picklable (module-level) to run on the pool; closures
and lambdas silently degrade to the serial path with a warning.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.runtime.seeding import SeedLike, fan_out


@dataclasses.dataclass
class TrialContext:
    """What a trial function receives: its index and its private stream."""

    index: int
    seed: np.random.SeedSequence

    def __post_init__(self) -> None:
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        """The trial's Generator (created once, then reused)."""
        if self._rng is None:
            self._rng = np.random.default_rng(self.seed)
        return self._rng

    def spawn_rngs(self, k: int) -> List[np.random.Generator]:
        """``k`` further independent Generators (e.g. one per learner)."""
        return [np.random.default_rng(s) for s in self.seed.spawn(k)]


#: A trial function: (context, **kwargs) -> any picklable result.
TrialFn = Callable[..., Any]


@dataclasses.dataclass
class TrialResult:
    """One trial's outcome plus its in-worker wall-clock time."""

    index: int
    value: Any
    seconds: float


@dataclasses.dataclass
class TrialReport:
    """All trial results (ordered by index) plus timing aggregates."""

    results: List[TrialResult]
    workers: int
    wall_seconds: float
    executor: str  # "serial" or "process-pool"

    def values(self) -> List[Any]:
        """Trial values in index order."""
        return [r.value for r in self.results]

    def trial_seconds(self) -> np.ndarray:
        """Per-trial in-worker durations, index order."""
        return np.array([r.seconds for r in self.results])

    @property
    def total_trial_seconds(self) -> float:
        """Sum of per-trial durations (the serial-equivalent work)."""
        return float(np.sum(self.trial_seconds()))

    def summary(self) -> str:
        secs = self.trial_seconds()
        return (
            f"{len(self.results)} trials on {self.workers} worker(s) "
            f"[{self.executor}]: wall {self.wall_seconds:.2f}s, "
            f"per-trial mean {np.mean(secs):.3f}s "
            f"(min {np.min(secs):.3f}s, max {np.max(secs):.3f}s)"
        )


def _execute_trial(
    trial_fn: TrialFn,
    index: int,
    seed: np.random.SeedSequence,
    kwargs: Dict[str, Any],
) -> TrialResult:
    """Run one trial and time it (module-level so the pool can pickle it)."""
    start = time.perf_counter()
    value = trial_fn(TrialContext(index, seed), **kwargs)
    return TrialResult(index=index, value=value, seconds=time.perf_counter() - start)


class TrialRunner:
    """Fan independent trials out over a process pool, deterministically.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs serially in
        the current process — no pool, no pickling requirements.
    chunk_size:
        Trials submitted per pool task.  Defaults to
        ``ceil(num_trials / (4 * workers))``, which keeps every worker
        busy while amortising inter-process overhead.
    """

    def __init__(self, workers: int = 1, chunk_size: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    def run(
        self,
        trial_fn: TrialFn,
        num_trials: int,
        master_seed: SeedLike = 0,
        trial_kwargs: Optional[Dict[str, Any]] = None,
    ) -> TrialReport:
        """Run ``num_trials`` independent trials of ``trial_fn``.

        ``trial_fn`` is called as ``trial_fn(ctx, **trial_kwargs)`` where
        ``ctx`` is a :class:`TrialContext`; it must draw all randomness
        from ``ctx.rng`` / ``ctx.spawn_rngs`` for the determinism
        contract to hold.  Results are returned in trial-index order and
        are bit-identical for every ``workers`` value.
        """
        kwargs = dict(trial_kwargs or {})
        seeds = fan_out(master_seed, num_trials)
        start = time.perf_counter()

        if self.workers == 1:
            results = self._run_serial(trial_fn, seeds, kwargs)
            executor = "serial"
        else:
            try:
                results = self._run_pool(trial_fn, seeds, kwargs)
                executor = "process-pool"
            except Exception as exc:  # unpicklable fn, broken pool, no sem …
                warnings.warn(
                    f"process pool unavailable ({type(exc).__name__}: {exc}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                results = self._run_serial(trial_fn, seeds, kwargs)
                executor = "serial"

        results.sort(key=lambda r: r.index)
        return TrialReport(
            results=results,
            workers=self.workers,
            wall_seconds=time.perf_counter() - start,
            executor=executor,
        )

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        trial_fn: TrialFn,
        seeds: List[np.random.SeedSequence],
        kwargs: Dict[str, Any],
    ) -> List[TrialResult]:
        return [
            _execute_trial(trial_fn, i, seed, kwargs)
            for i, seed in enumerate(seeds)
        ]

    def _run_pool(
        self,
        trial_fn: TrialFn,
        seeds: List[np.random.SeedSequence],
        kwargs: Dict[str, Any],
    ) -> List[TrialResult]:
        num_trials = len(seeds)
        chunk = self.chunk_size or max(1, -(-num_trials // (4 * self.workers)))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(
                pool.map(
                    _execute_trial,
                    [trial_fn] * num_trials,
                    range(num_trials),
                    seeds,
                    [kwargs] * num_trials,
                    chunksize=chunk,
                )
            )

"""The parallel trial runner.

A *trial* is one independent repetition of an experiment: build a fresh
PUF instance, draw CRPs, fit a learner, score it.  Table I assessments,
the BR PUF Chow/LTF experiments, learning curves and noise-tolerance
ablations are all loops of such trials, so this one abstraction is the
scaling point for the whole reproduction.

Determinism contract
--------------------
``TrialRunner.run(fn, num_trials, master_seed)`` yields *bit-identical*
results for any ``workers`` setting: every trial's randomness comes from
its own :class:`~numpy.random.SeedSequence` child (see
:mod:`repro.runtime.seeding`), results are re-ordered by trial index, and
nothing a trial computes may depend on shared mutable state.  Trial
functions must be picklable (module-level) to run on the pool; closures
and lambdas silently degrade to the serial path with a warning.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.runtime.seeding import SeedLike, fan_out
from repro.telemetry.meter import QueryMeter, metered
from repro.telemetry.spans import SpanRecorder, recording

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.telemetry.ledger import RunLedger


@dataclasses.dataclass
class TrialContext:
    """What a trial function receives: its index and its private stream."""

    index: int
    seed: np.random.SeedSequence

    def __post_init__(self) -> None:
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        """The trial's Generator (created once, then reused)."""
        if self._rng is None:
            self._rng = np.random.default_rng(self.seed)
        return self._rng

    def spawn_rngs(self, k: int) -> List[np.random.Generator]:
        """``k`` further independent Generators (e.g. one per learner)."""
        return [np.random.default_rng(s) for s in self.seed.spawn(k)]


#: A trial function: (context, **kwargs) -> any picklable result.
TrialFn = Callable[..., Any]


@dataclasses.dataclass
class TrialResult:
    """One trial's outcome plus its in-worker timing and telemetry.

    ``seconds`` is in-worker wall time, ``cpu_seconds`` in-worker process
    CPU time, and ``queue_wait`` the delay between submission in the
    parent and execution start in the worker (0 on the serial path).
    ``telemetry`` is ``{"queries": <QueryMeter snapshot>, "spans": <span
    summary>}`` — picklable dicts, so pool workers ship them back intact.
    """

    index: int
    value: Any
    seconds: float
    cpu_seconds: float = 0.0
    queue_wait: float = 0.0
    telemetry: Optional[Dict[str, Any]] = None


@dataclasses.dataclass
class TrialReport:
    """All trial results (ordered by index) plus timing aggregates."""

    results: List[TrialResult]
    workers: int
    wall_seconds: float
    executor: str  # "serial" or "process-pool"

    def values(self) -> List[Any]:
        """Trial values in index order."""
        return [r.value for r in self.results]

    def trial_seconds(self) -> np.ndarray:
        """Per-trial in-worker durations, index order."""
        return np.array([r.seconds for r in self.results])

    @property
    def total_trial_seconds(self) -> float:
        """Sum of per-trial durations (the serial-equivalent work)."""
        return float(np.sum(self.trial_seconds()))

    def summary(self) -> str:
        """One-line digest: trial count, workers, wall clock, per-trial stats."""
        secs = self.trial_seconds()
        return (
            f"{len(self.results)} trials on {self.workers} worker(s) "
            f"[{self.executor}]: wall {self.wall_seconds:.2f}s, "
            f"per-trial mean {np.mean(secs):.3f}s "
            f"(min {np.min(secs):.3f}s, max {np.max(secs):.3f}s)"
        )


def _execute_trial(
    trial_fn: TrialFn,
    index: int,
    seed: np.random.SeedSequence,
    kwargs: Dict[str, Any],
    submitted_at: Optional[float] = None,
) -> TrialResult:
    """Run one trial, metered and timed (module-level for pool pickling).

    Installs a fresh :class:`QueryMeter` and :class:`SpanRecorder` around
    the trial, so every oracle draw and kernel span inside lands on this
    trial's telemetry — in the worker process under the pool, or inline on
    the serial fallback; either way the snapshot returns in the result.
    ``submitted_at`` is a ``time.time()`` stamp from the parent (wall
    clock, comparable across processes), giving the queue-wait estimate.
    """
    queue_wait = 0.0 if submitted_at is None else max(0.0, time.time() - submitted_at)
    meter = QueryMeter()
    spans = SpanRecorder()
    start = time.perf_counter()
    cpu_start = time.process_time()
    with metered(meter), recording(spans):
        value = trial_fn(TrialContext(index, seed), **kwargs)
    return TrialResult(
        index=index,
        value=value,
        seconds=time.perf_counter() - start,
        cpu_seconds=time.process_time() - cpu_start,
        queue_wait=queue_wait,
        telemetry={"queries": meter.snapshot(), "spans": spans.summary()},
    )


class TrialRunner:
    """Fan independent trials out over a process pool, deterministically.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs serially in
        the current process — no pool, no pickling requirements.
    chunk_size:
        Trials submitted per pool task.  Defaults to
        ``ceil(num_trials / (4 * workers))``, which keeps every worker
        busy while amortising inter-process overhead.
    """

    def __init__(self, workers: int = 1, chunk_size: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    def run(
        self,
        trial_fn: TrialFn,
        num_trials: int,
        master_seed: SeedLike = 0,
        trial_kwargs: Optional[Dict[str, Any]] = None,
        ledger: Optional["RunLedger"] = None,
    ) -> TrialReport:
        """Run ``num_trials`` independent trials of ``trial_fn``.

        ``trial_fn`` is called as ``trial_fn(ctx, **trial_kwargs)`` where
        ``ctx`` is a :class:`TrialContext`; it must draw all randomness
        from ``ctx.rng`` / ``ctx.spawn_rngs`` for the determinism
        contract to hold.  Results are returned in trial-index order and
        are bit-identical for every ``workers`` value.

        With ``ledger`` set, one JSONL record per trial (index, timings,
        telemetry snapshot, value) is appended after all trials finish —
        written here in the parent, never concurrently from workers.
        """
        kwargs = dict(trial_kwargs or {})
        seeds = fan_out(master_seed, num_trials)
        start = time.perf_counter()

        if self.workers == 1:
            results = self._run_serial(trial_fn, seeds, kwargs)
            executor = "serial"
        else:
            try:
                results = self._run_pool(trial_fn, seeds, kwargs)
                executor = "process-pool"
            except Exception as exc:  # unpicklable fn, broken pool, no sem …
                warnings.warn(
                    f"process pool unavailable ({type(exc).__name__}: {exc}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                results = self._run_serial(trial_fn, seeds, kwargs)
                executor = "serial"

        results.sort(key=lambda r: r.index)
        report = TrialReport(
            results=results,
            workers=self.workers,
            wall_seconds=time.perf_counter() - start,
            executor=executor,
        )
        if ledger is not None:
            ledger.append_many(
                {
                    "index": r.index,
                    "seconds": r.seconds,
                    "cpu_seconds": r.cpu_seconds,
                    "queue_wait": r.queue_wait,
                    "telemetry": r.telemetry,
                    "value": r.value,
                }
                for r in results
            )
        return report

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        trial_fn: TrialFn,
        seeds: List[np.random.SeedSequence],
        kwargs: Dict[str, Any],
    ) -> List[TrialResult]:
        return [
            _execute_trial(trial_fn, i, seed, kwargs)
            for i, seed in enumerate(seeds)
        ]

    def _run_pool(
        self,
        trial_fn: TrialFn,
        seeds: List[np.random.SeedSequence],
        kwargs: Dict[str, Any],
    ) -> List[TrialResult]:
        num_trials = len(seeds)
        chunk = self.chunk_size or max(1, -(-num_trials // (4 * self.workers)))
        submitted_at = time.time()
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(
                pool.map(
                    _execute_trial,
                    [trial_fn] * num_trials,
                    range(num_trials),
                    seeds,
                    [kwargs] * num_trials,
                    [submitted_at] * num_trials,
                    chunksize=chunk,
                )
            )

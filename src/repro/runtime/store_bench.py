"""Artifact-store and sharding benchmarks behind ``python -m repro bench-store``.

Two case families, matching the two halves of the store/scheduler layer:

* **Warm start** — run a generation-heavy fleet sweep twice against one
  :class:`~repro.runtime.store.ArtifactStore`: the cold pass pays full
  BR-PUF response-plane generation, the warm pass replays the memoised
  ``.npz`` entries.  Reports the wall-clock speedup and checks the two
  passes' trial values are bit-identical (the store hit path consumes no
  randomness, so they must be).
* **Sharding** — run a skewed sleep-bound trial mix (all slow trials
  clustered at the front, the adversarial case for static partitioning)
  on one pool and on four work-stealing shards, and report the scaling.
  Sleeps overlap across pools regardless of core count, so the case is
  meaningful on single-CPU CI hosts too.  Values must again be
  bit-identical across shard counts.

Results serialise to ``benchmarks/results/BENCH_store.json`` and render
into ``docs/BENCHMARKS.md`` via ``python -m repro docs-bench``.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.runtime.runner import TrialReport, TrialRunner
from repro.runtime.store import ArtifactStore
from repro.runtime.workloads import (
    FleetEvalSpec,
    SkewedSleepSpec,
    fleet_eval_trial,
    skewed_sleep_trial,
)


@dataclasses.dataclass(frozen=True)
class WarmStartCase:
    """One cold-vs-warm fleet sweep against a fresh artifact store."""

    name: str
    trials: int = 6
    n: int = 64
    size: int = 192
    m: int = 3000
    seed: int = 11


@dataclasses.dataclass(frozen=True)
class ShardingCase:
    """One 1-pool-vs-4-shard run of the skewed sleep mix."""

    name: str
    trials: int = 16
    slow_count: int = 4
    slow_seconds: float = 0.5
    fast_seconds: float = 0.01
    shards: int = 4
    seed: int = 12


def default_cases() -> List[object]:
    """The full benchmark matrix (sweep-scale generation costs)."""
    return [
        WarmStartCase(name="warm_start_fleet_br"),
        ShardingCase(
            name="sharded_skewed_sleep",
            trials=16,
            slow_count=4,
            slow_seconds=0.5,
            fast_seconds=0.01,
        ),
    ]


def smoke_cases() -> List[object]:
    """Seconds-fast subset for CI: asserts equivalence and speedup >= 1."""
    return [
        WarmStartCase(name="warm_start_fleet_br_smoke", trials=3, n=32, size=48, m=600),
        ShardingCase(
            name="sharded_skewed_sleep_smoke",
            trials=8,
            slow_count=2,
            slow_seconds=0.25,
            fast_seconds=0.01,
            shards=2,
        ),
    ]


def _values_identical(a: TrialReport, b: TrialReport) -> bool:
    """Whether two reports carry bit-identical per-trial values."""
    return len(a.results) == len(b.results) and all(
        ra.ok and rb.ok and bool(np.array_equal(ra.value, rb.value))
        for ra, rb in zip(a.results, b.results)
    )


def run_warm_start_case(case: WarmStartCase) -> Dict[str, object]:
    """Time the cold and warm passes of one cached fleet sweep.

    The BR family is the generation-heavy one (its response plane needs
    a settled-state evaluation per challenge), so the cold pass is
    dominated by exactly the work the store memoises; ``noise_sigma=0``
    keeps the trial deterministic given the store (reliability needs no
    fresh noisy draws).
    """
    spec = FleetEvalSpec(
        family="br",
        n=case.n,
        size=case.size,
        m=case.m,
        noise_sigma=0.0,
        repetitions=1,
    )
    runner = TrialRunner(workers=1)
    store_dir = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        kwargs = {"spec": spec, "cache_dir": str(store_dir)}
        t0 = time.perf_counter()
        cold = runner.run(fleet_eval_trial, case.trials, case.seed, kwargs)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = runner.run(fleet_eval_trial, case.trials, case.seed, kwargs)
        warm_s = time.perf_counter() - t0
        stats = ArtifactStore(store_dir).stats()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    cold.raise_failures()
    warm.raise_failures()
    identical = _values_identical(cold, warm)
    return {
        "name": case.name,
        "params": {
            "trials": case.trials,
            "family": "br",
            "n": case.n,
            "size": case.size,
            "m": case.m,
        },
        "warm_start": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / max(warm_s, 1e-12),
        },
        "store": {
            "entries": stats["entries"],
            "total_bytes": stats["total_bytes"],
        },
        "bit_identical": identical,
        "equivalent": identical,
    }


def run_sharding_case(case: ShardingCase) -> Dict[str, object]:
    """Time the skewed sleep mix on one pool vs ``case.shards`` shards.

    ``chunk_size=1`` gives the scheduler trial-level stealing
    granularity — the whole point of the skewed mix is that shard 0
    starts owning every slow trial and the others must steal them.
    """
    spec = SkewedSleepSpec(
        slow_count=case.slow_count,
        slow_seconds=case.slow_seconds,
        fast_seconds=case.fast_seconds,
    )
    kwargs = {"spec": spec}
    t0 = time.perf_counter()
    single = TrialRunner(workers=1).run(
        skewed_sleep_trial, case.trials, case.seed, kwargs
    )
    single_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded = TrialRunner(workers=1, shards=case.shards, chunk_size=1).run(
        skewed_sleep_trial, case.trials, case.seed, kwargs
    )
    sharded_s = time.perf_counter() - t0
    single.raise_failures()
    sharded.raise_failures()
    identical = _values_identical(single, sharded)
    return {
        "name": case.name,
        "params": {
            "trials": case.trials,
            "slow_count": case.slow_count,
            "slow_seconds": case.slow_seconds,
            "fast_seconds": case.fast_seconds,
            "shards": case.shards,
        },
        "sharding": {
            "shards1_s": single_s,
            "shardsN_s": sharded_s,
            "speedup": single_s / max(sharded_s, 1e-12),
        },
        "executor": sharded.executor,
        "bit_identical": identical,
        "equivalent": identical,
    }


def run_store_bench(
    cases: Optional[Sequence[object]] = None,
) -> Dict[str, object]:
    """Run a case list and assemble the serialisable payload."""
    cases = default_cases() if cases is None else list(cases)
    records = []
    for case in cases:
        if isinstance(case, WarmStartCase):
            records.append(run_warm_start_case(case))
        elif isinstance(case, ShardingCase):
            records.append(run_sharding_case(case))
        else:
            raise TypeError(f"unknown bench case type {type(case).__name__}")
    return {
        "generated_by": "python -m repro bench-store",
        "numpy": np.__version__,
        "cases": records,
    }


def render_table(payload: Dict[str, object]) -> str:
    """Human-readable summary of a store benchmark payload."""
    from repro.analysis.tables import TableBuilder

    table = TableBuilder(
        ["case", "kind", "baseline [s]", "new [s]", "speedup", "identical"],
        title="artifact store + sharding (cold-vs-warm, 1-pool-vs-sharded)",
    )
    for rec in payload["cases"]:
        if "warm_start" in rec:
            kind, timing = "warm-start", rec["warm_start"]
            old_s, new_s = timing["cold_s"], timing["warm_s"]
        else:
            kind, timing = "sharding", rec["sharding"]
            old_s, new_s = timing["shards1_s"], timing["shardsN_s"]
        table.add_row(
            rec["name"],
            kind,
            f"{old_s:.3f}",
            f"{new_s:.3f}",
            f"{timing['speedup']:.1f}",
            "yes" if rec["equivalent"] else "NO",
        )
    return table.render()


def write_results(payload: Dict[str, object], path: Path) -> None:
    """Write the benchmark payload as indented JSON, creating parents."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")

"""Auditing security-claim transfers between adversary models.

The paper's pitfalls all have one shape: a result proved in adversary
model M is quoted as if it held in model M'.  Whether that quotation is
sound is a mechanical question about the freedom order
(:func:`repro.pac.adversary.dominates`):

* an **attack** (feasibility) result transfers *upward*: if the attacker
  of M succeeds, any model granting at least M's freedom also succeeds;
* a **resistance** (infeasibility) result transfers *downward*: if even
  M's attacker fails, any attacker with at most M's freedom fails too;
* everything else — in particular quoting a resistance bound against a
  model with *more* freedom on any axis — is exactly the pitfall.

``audit_transfer`` encodes this rule; ``audit_assessments`` applies it to
a batch of Table-I-style assessments and lists every unsound quotation.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, List

from repro.pac.adversary import AdversaryModel, dominates


class ClaimKind(enum.Enum):
    """What the original result established."""

    ATTACK = "attack"  # the primitive is broken under the model
    RESISTANCE = "resistance"  # the primitive resists under the model


class TransferVerdict(enum.Enum):
    SOUND = "sound"
    UNSOUND = "unsound"


@dataclasses.dataclass
class TransferAudit:
    """Outcome of auditing one quotation."""

    kind: ClaimKind
    proved_in: AdversaryModel
    quoted_in: AdversaryModel
    verdict: TransferVerdict
    reason: str

    def summary(self) -> str:
        return (
            f"{self.kind.value} proved in [{self.proved_in.name}] quoted in "
            f"[{self.quoted_in.name}]: {self.verdict.value} — {self.reason}"
        )


def audit_transfer(
    kind: ClaimKind,
    proved_in: AdversaryModel,
    quoted_in: AdversaryModel,
) -> TransferAudit:
    """Is quoting this result in that model sound?"""
    if proved_in == quoted_in:
        return TransferAudit(
            kind, proved_in, quoted_in, TransferVerdict.SOUND,
            "same adversary model",
        )
    if kind is ClaimKind.ATTACK:
        if dominates(quoted_in, proved_in):
            return TransferAudit(
                kind, proved_in, quoted_in, TransferVerdict.SOUND,
                "feasibility transfers to models with at least as much freedom",
            )
        return TransferAudit(
            kind, proved_in, quoted_in, TransferVerdict.UNSOUND,
            "the quoting model lacks some freedom the attack used",
        )
    if kind is ClaimKind.RESISTANCE:
        if dominates(proved_in, quoted_in):
            return TransferAudit(
                kind, proved_in, quoted_in, TransferVerdict.SOUND,
                "infeasibility transfers to models with at most as much freedom",
            )
        return TransferAudit(
            kind, proved_in, quoted_in, TransferVerdict.UNSOUND,
            "the quoting model grants freedom the proof never considered "
            "— the paper's pitfall",
        )
    raise ValueError(f"unknown claim kind {kind!r}")


def audit_assessments(assessments: Iterable) -> List[TransferAudit]:
    """Cross-audit a batch of assessments (e.g. the Table I rows).

    For every pair (A proved, B quoted): if A's verdict is feasible the
    claim kind is ATTACK, if infeasible RESISTANCE; borderline rows are
    skipped.  Returns only the *unsound* transfers — the quotations the
    batch does not license.
    """
    from repro.pac.assessment import Verdict

    rows = list(assessments)
    unsound: List[TransferAudit] = []
    for src in rows:
        if src.verdict is Verdict.FEASIBLE:
            kind = ClaimKind.ATTACK
        elif src.verdict is Verdict.INFEASIBLE:
            kind = ClaimKind.RESISTANCE
        else:
            continue
        for dst in rows:
            if dst.adversary == src.adversary:
                continue
            audit = audit_transfer(kind, src.adversary, dst.adversary)
            if audit.verdict is TransferVerdict.UNSOUND:
                unsound.append(audit)
    return unsound

"""The four CRP upper bounds of Table I, as closed-form functions.

=============  ===========================================================
Row            Bound on the number of CRPs
=============  ===========================================================
[9]            O((n+1)^k / eps^3 + ln(1/delta)/eps)        (Perceptron)
General        O((k(n+1)(1+ln(kn+k)) ln(1/eps) + ln(1/delta)) / eps)
Corollary 1    O(n^{k^2/eps^2} ln(1/delta))                (LMN)
Corollary 2    poly(n, k, 1/eps, log(1/delta))             (LearnPoly)
=============  ===========================================================

Bounds grow astronomically in parts of the parameter space (that is the
point), so every bound also has a log10 form that never overflows.
"""

from __future__ import annotations

import math

from repro.pac.framework import PACParameters

#: Human-readable registry of the four Table I settings, keyed by row name.
TABLE1_SETTINGS = {
    "[9] (Perceptron)": {
        "distribution": "arbitrary",
        "algorithm": "Perceptron",
        "access": "random examples",
    },
    "General (VC)": {
        "distribution": "uniform",
        "algorithm": "independent",
        "access": "uniformly-distributed examples",
    },
    "Corollary 1 (LMN)": {
        "distribution": "uniform",
        "algorithm": "LMN",
        "access": "uniformly-distributed examples",
    },
    "Corollary 2 (LearnPoly)": {
        "distribution": "uniform",
        "algorithm": "LearnPoly",
        "access": "membership queries",
    },
}


def _check(n: int, k: int) -> None:
    if n <= 0:
        raise ValueError(f"challenge length n must be positive, got {n}")
    if k <= 0:
        raise ValueError(f"chain count k must be positive, got {k}")


# ----------------------------------------------------------------------
# Row 1: the bound of [9], built on the Perceptron mistake bound.
# ----------------------------------------------------------------------
def perceptron_bound(n: int, k: int, params: PACParameters) -> float:
    """CRP bound of [9]: (n+1)^k / eps^3 + ln(1/delta)/eps.

    Note (footnote a of Table I): this does *not* go through the VC
    dimension — it converts the Perceptron's mistake bound, which for the
    LTF representing a k-XOR Arbiter PUF grows like (n+1)^k.
    """
    _check(n, k)
    eps, delta = params.eps, params.delta
    return float((n + 1) ** k / eps**3 + math.log(1.0 / delta) / eps)


def perceptron_bound_log10(n: int, k: int, params: PACParameters) -> float:
    """log10 of :func:`perceptron_bound` (no overflow for huge k)."""
    _check(n, k)
    eps, delta = params.eps, params.delta
    main = k * math.log10(n + 1) - 3 * math.log10(eps)
    other = math.log10(max(math.log(1.0 / delta) / eps, 1e-300))
    return _log10_add(main, other)


# ----------------------------------------------------------------------
# Row 2: algorithm-independent bound via the VC dimension.
# ----------------------------------------------------------------------
def vc_dim_xor_arbiter(n: int, k: int) -> float:
    """VC-dimension upper bound for k-XOR of (n+1)-weight LTFs, cf. [17].

    VC = O(k (n+1) (1 + log(kn + k))): an XOR of k halfspaces over the
    (n+1)-dimensional feature space.
    """
    _check(n, k)
    return k * (n + 1) * (1.0 + math.log(k * n + k))


def general_vc_bound(n: int, k: int, params: PACParameters) -> float:
    """Algorithm-independent uniform-PAC bound (Table I row 2).

    (k(n+1)(1 + ln(kn+k)) ln(1/eps) + ln(1/delta)) / eps — the [12]-style
    bound instantiated with the XOR Arbiter PUF VC dimension.
    """
    _check(n, k)
    eps, delta = params.eps, params.delta
    vc = vc_dim_xor_arbiter(n, k)
    return float((vc * math.log(1.0 / eps) + math.log(1.0 / delta)) / eps)


def general_vc_bound_log10(n: int, k: int, params: PACParameters) -> float:
    """log10 of :func:`general_vc_bound`."""
    return math.log10(general_vc_bound(n, k, params))


# ----------------------------------------------------------------------
# Row 3: Corollary 1 — the LMN bound.
# ----------------------------------------------------------------------
def lmn_degree(k: int, eps: float) -> float:
    """m = 2.32 k^2 / eps^2 (the noise-sensitivity-derived cut-off)."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    return 2.32 * k * k / (eps * eps)


def lmn_bound_log10(n: int, k: int, params: PACParameters) -> float:
    """log10 of the Corollary 1 bound n^{2.32 k^2/eps^2} ln(1/delta)."""
    _check(n, k)
    eps, delta = params.eps, params.delta
    return lmn_degree(k, eps) * math.log10(n) + math.log10(
        max(math.log(1.0 / delta), 1e-300)
    )


def lmn_bound(n: int, k: int, params: PACParameters) -> float:
    """The Corollary 1 bound; returns math.inf when it overflows a float.

    The overflow *is* informative: it is the k >> sqrt(ln n) infeasibility
    regime.
    """
    log10_value = lmn_bound_log10(n, k, params)
    if log10_value > 308:
        return math.inf
    return 10.0**log10_value


def lmn_feasible(n: int, k: int) -> bool:
    """The Corollary 1 feasibility frontier: k = O(sqrt(ln n)).

    Concretely, LMN needs n^{Theta(k^2)} examples, which is polynomial in n
    only while k^2 = O(1) and super-polynomial once k >> sqrt(ln n).
    """
    _check(n, k)
    return k * k <= max(1.0, math.log(n))


# ----------------------------------------------------------------------
# Row 4: Corollary 2 — LearnPoly with membership queries.
# ----------------------------------------------------------------------
def bourgain_junta_size(eps: float, constant: float = 1.0) -> int:
    """Bourgain's theorem [23]: every LTF is eps-close to an
    O(eps^{-3/2})-junta.  ``constant`` exposes the hidden constant."""
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0, 1)")
    if constant <= 0:
        raise ValueError("constant must be positive")
    return max(1, math.ceil(constant * eps ** (-1.5)))


def learnpoly_sparsity(k: int, r: int) -> float:
    """Monomial count O(2^r k) of the combined k-chain polynomial."""
    if k <= 0 or r < 0:
        raise ValueError("need k >= 1 and r >= 0")
    return k * 2.0**r


def learnpoly_bound(
    n: int,
    k: int,
    params: PACParameters,
    junta_size: int | None = None,
) -> float:
    """Concrete poly(n, k, 1/eps, log(1/delta)) query bound of Corollary 2.

    Each chain is close to an r-junta (r from Bourgain's theorem unless
    given), the XOR is an s = k 2^r sparse polynomial of degree r, and
    LearnPoly costs O(n s r) membership queries per counterexample round,
    at most s rounds, plus the simulated-EQ examples
    (s/eps)(ln(1/delta) + s ln 2):

        m = n s^2 r + (s/eps)(ln(1/delta) + s ln 2).

    For the paper's regime k = log2(n) and constant eps this is poly(n).
    """
    _check(n, k)
    eps, delta = params.eps, params.delta
    r = bourgain_junta_size(eps) if junta_size is None else junta_size
    if r < 0:
        raise ValueError("junta_size must be non-negative")
    s = learnpoly_sparsity(k, r)
    mq = n * s * s * max(r, 1)
    eq_examples = (s / eps) * (math.log(1.0 / delta) + s * math.log(2.0))
    return float(mq + eq_examples)


def learnpoly_bound_log10(
    n: int, k: int, params: PACParameters, junta_size: int | None = None
) -> float:
    """log10 of :func:`learnpoly_bound`."""
    return math.log10(learnpoly_bound(n, k, params, junta_size))


# ----------------------------------------------------------------------
# Measured-query companions: concrete per-algorithm budgets the telemetry
# report (python -m repro report) checks trial meters against.  Each is
# the structural worst case of the implementation in repro.learning, so a
# measured count above it is a bug, not bad luck.
# ----------------------------------------------------------------------
def km_query_bound(
    n: int,
    theta: float,
    bucket_samples: int,
    coefficient_samples: int,
    max_buckets: int | None = None,
) -> float:
    """Membership-query upper bound for Kushilevitz-Mansour at arity n.

    The access-model companion of Table I row 4: with membership queries,
    locating every coefficient above ``theta`` is poly(n, 1/theta).
    Structurally (matching :class:`repro.learning.KushilevitzMansour`):
    each level keeps at most ``max_buckets`` buckets (default, via
    Parseval, ``ceil(8/theta^2)``), expands each into two candidates, and
    estimates each candidate's weight with ``2 * bucket_samples`` queries;
    a pruning pass may re-estimate every candidate once more; there are at
    most ``n`` levels, plus one *shared* final sample of
    ``coefficient_samples`` queries for all surviving coefficients.
    """
    _check(n, 1)
    if not 0 < theta <= 1:
        raise ValueError("theta must be in (0, 1]")
    if bucket_samples < 1 or coefficient_samples < 1:
        raise ValueError("sample counts must be positive")
    if max_buckets is None:
        max_buckets = math.ceil(8.0 / theta**2)
    if max_buckets < 1:
        raise ValueError("max_buckets must be positive")
    per_level = 8 * max_buckets * bucket_samples
    return float(n * per_level + coefficient_samples)


def sq_chow_query_count(n: int) -> int:
    """Exact SQ cost of Chow-parameter learning: n + 1 correlational queries.

    The noise-tolerant access model: :class:`repro.learning.SQChowLearner`
    asks exactly one query per Chow parameter, so a meter reading above
    ``n + 1`` is a bug and below is impossible.
    """
    _check(n, 1)
    return n + 1


def sq_chow_example_bound(n: int, tau: float) -> float:
    """Examples a sampling-mode SQ oracle spends answering the Chow queries.

    Each of the ``n + 1`` queries is answered from
    ``max(ceil(4 / tau^2), 16)`` fresh examples (the oracle's sampling
    rule), so the total example cost is exactly this bound.
    """
    _check(n, 1)
    if not 0 < tau < 1:
        raise ValueError("tau must be in (0, 1)")
    return float((n + 1) * max(math.ceil(4.0 / tau**2), 16))


# ----------------------------------------------------------------------
# Classification noise (the paper's footnote-1 "attribute noise", seen by
# the learner as label noise after stabilisation).
# ----------------------------------------------------------------------
def noisy_sample_inflation(eta: float) -> float:
    """Sample-size multiplier under classification noise of rate eta.

    The standard 1/(1-2 eta)^2 factor: every correlation/coefficient
    estimate shrinks by (1-2 eta), so variance-limited estimators need the
    squared inverse in extra examples.  eta -> 1/2 (pure noise) diverges.
    """
    if not 0.0 <= eta < 0.5:
        raise ValueError("noise rate must be in [0, 0.5)")
    return 1.0 / (1.0 - 2.0 * eta) ** 2


def bound_with_noise(bound_value: float, eta: float) -> float:
    """Inflate any CRP bound for classification noise of rate eta."""
    if bound_value <= 0:
        raise ValueError("bound_value must be positive")
    return bound_value * noisy_sample_inflation(eta)


def _log10_add(a: float, b: float) -> float:
    """log10(10^a + 10^b) without overflow."""
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log10(1.0 + 10.0 ** (lo - hi))

"""PAC-learnability bounds for circuit classes (Section III's LL thread).

The paper's first worked pitfall is about logic locking: the class AC^0 of
poly(n)-size depth-d circuits is

* essentially unlearnable in the *distribution-free* model — no algorithm
  beats 2^{n - n^{Omega(1/d)}} time (Servedio-Tan [15]); yet
* quasi-polynomially learnable under the *uniform* distribution — the LMN
  theorem gives n^{O(log^d(size/eps))} examples/time [16].

So when the locking literature analyses "random" input/output pairs it is
silently living in the uniform model (the paper's point); these functions
make both bounds computable so the gap can be tabulated per circuit.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.pac.framework import PACParameters


def ac0_distribution_free_time_log10(
    n: int, depth: int, hidden_constant: float = 1.0
) -> float:
    """log10 of the distribution-free lower bound 2^{n - n^{c/d}} [15].

    ``hidden_constant`` instantiates the Omega(1/d) exponent as
    ``hidden_constant / depth``.
    """
    if n <= 0 or depth <= 0:
        raise ValueError("n and depth must be positive")
    if hidden_constant <= 0:
        raise ValueError("hidden_constant must be positive")
    exponent = n - n ** min(1.0, hidden_constant / depth)
    return exponent * math.log10(2.0)


def ac0_uniform_lmn_sample_log10(
    n: int,
    depth: int,
    size: int,
    params: PACParameters,
) -> float:
    """log10 of the uniform-distribution LMN bound n^{O(log^d(size/eps))}.

    Uses the concrete exponent ``(20 log2(size/eps))^depth`` shape of the
    LMN/Hastad analysis with the leading constant set to 1 (we compare
    *growth*, not constants, exactly as the paper does).
    """
    if n <= 1 or depth <= 0 or size <= 0:
        raise ValueError("need n > 1, depth > 0, size > 0")
    t = math.log2(max(2.0, size / params.eps)) ** depth
    return t * math.log10(n) + math.log10(
        max(math.log(1.0 / params.delta), 1e-300)
    )


@dataclasses.dataclass
class CircuitClassAssessment:
    """Both bounds for one circuit, with the headline gap."""

    n: int
    depth: int
    size: int
    distribution_free_log10: float
    uniform_lmn_log10: float

    @property
    def uniform_is_cheaper(self) -> bool:
        return self.uniform_lmn_log10 < self.distribution_free_log10

    def summary(self) -> str:
        return (
            f"n={self.n}, depth={self.depth}, size={self.size}: "
            f"distribution-free >= 10^{self.distribution_free_log10:.1f} time, "
            f"uniform LMN ~ 10^{self.uniform_lmn_log10:.1f} examples "
            f"({'uniform wins' if self.uniform_is_cheaper else 'no gap here'})"
        )


def assess_circuit_learnability(
    n: int,
    depth: int,
    size: int,
    params: Optional[PACParameters] = None,
) -> CircuitClassAssessment:
    """Evaluate both Section III bounds for given circuit parameters."""
    params = PACParameters(0.05, 0.05) if params is None else params
    return CircuitClassAssessment(
        n=n,
        depth=depth,
        size=size,
        distribution_free_log10=ac0_distribution_free_time_log10(n, depth),
        uniform_lmn_log10=ac0_uniform_lmn_sample_log10(n, depth, size, params),
    )


def assess_netlist_learnability(
    netlist, params: Optional[PACParameters] = None
) -> CircuitClassAssessment:
    """Section III assessment straight from a gate-level netlist.

    Uses the netlist's measured depth and size.  Note the model caveat:
    AC^0 permits unbounded fan-in, so treating a fan-in-2 netlist's depth
    as d is generous to the *distribution-free* lower bound and the
    comparison remains conservative.
    """
    return assess_circuit_learnability(
        n=netlist.num_inputs,
        depth=netlist.depth(),
        size=netlist.size(),
        params=params,
    )

"""The assessment engine: adversary model in, feasibility verdict out.

This is where the paper's "pitfall" becomes executable: the same XOR
Arbiter PUF is assessed under the four Table I adversary models and the
verdicts *disagree* — secure against one model, broken under another.
A designer who quotes only one row has made an implicit (and possibly
wrong) adversary assumption.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import List, Optional

from repro.pac.adversary import (
    TABLE1_ADVERSARIES,
    AdversaryModel,
    GENERAL_UNIFORM_ADVERSARY,
    LEARNPOLY_ADVERSARY,
    LMN_ADVERSARY,
    PERCEPTRON_ADVERSARY,
)
from repro.pac.bounds import (
    general_vc_bound,
    general_vc_bound_log10,
    learnpoly_bound,
    learnpoly_bound_log10,
    lmn_bound,
    lmn_bound_log10,
    lmn_feasible,
    perceptron_bound,
    perceptron_bound_log10,
)
from repro.pac.framework import PACParameters


@dataclasses.dataclass(frozen=True)
class XorArbiterSpec:
    """The primitive under assessment: an n-bit, k-chain XOR Arbiter PUF."""

    n: int
    k: int

    def __post_init__(self) -> None:
        if self.n <= 0 or self.k <= 0:
            raise ValueError("n and k must be positive")


class Verdict(enum.Enum):
    """Feasibility of the attack under the given adversary model."""

    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    BORDERLINE = "borderline"


#: Above this many CRPs we call the attack practically infeasible.  2^64
#: challenges is more than any device can ever serve.
PRACTICAL_CRP_LIMIT_LOG10 = math.log10(2.0**64)


@dataclasses.dataclass
class Assessment:
    """Result of assessing one primitive under one adversary model."""

    spec: XorArbiterSpec
    adversary: AdversaryModel
    params: PACParameters
    crp_bound: float  # may be math.inf
    crp_bound_log10: float
    verdict: Verdict
    rationale: str

    def summary(self) -> str:
        bound = (
            f"10^{self.crp_bound_log10:.1f}"
            if not math.isfinite(self.crp_bound)
            else f"{self.crp_bound:.3g}"
        )
        return (
            f"{self.adversary.name}: {self.verdict.value} "
            f"(~{bound} CRPs) — {self.rationale}"
        )


def assess_xor_arbiter(
    spec: XorArbiterSpec,
    adversary: AdversaryModel,
    params: PACParameters,
    junta_size: Optional[int] = None,
) -> Assessment:
    """Assess a k-XOR Arbiter PUF under one adversary model.

    The verdict compares the CRP bound against the practical limit and, for
    the LMN row, the k-vs-sqrt(ln n) frontier of Corollary 1.
    """
    n, k = spec.n, spec.k
    if adversary is PERCEPTRON_ADVERSARY or adversary.name == PERCEPTRON_ADVERSARY.name:
        bound = perceptron_bound(n, k, params)
        log10b = perceptron_bound_log10(n, k, params)
        rationale = "mistake-bound grows as (n+1)^k: exponential in the chain count"
    elif adversary.name == GENERAL_UNIFORM_ADVERSARY.name:
        bound = general_vc_bound(n, k, params)
        log10b = general_vc_bound_log10(n, k, params)
        rationale = (
            "VC dimension is O(k n log(kn)): polynomially many examples "
            "suffice for *some* (unspecified) algorithm"
        )
    elif adversary.name == LMN_ADVERSARY.name:
        bound = lmn_bound(n, k, params)
        log10b = lmn_bound_log10(n, k, params)
        if lmn_feasible(n, k):
            rationale = "k = O(sqrt(ln n)): the n^{2.32 k^2/eps^2} bound stays polynomial"
        else:
            rationale = "k >> sqrt(ln n): the n^{2.32 k^2/eps^2} bound is super-polynomial"
    elif adversary.name == LEARNPOLY_ADVERSARY.name:
        bound = learnpoly_bound(n, k, params, junta_size)
        log10b = learnpoly_bound_log10(n, k, params, junta_size)
        if k <= max(1.0, math.log2(n)):
            rationale = (
                "k <= log n with membership queries: poly(n, k, 1/eps, log(1/delta)) "
                "queries suffice (Corollary 2)"
            )
        else:
            rationale = (
                "k > log n: beyond the regime Corollary 2 addresses; the "
                "2^r k-monomial representation still prices the attack at "
                "the shown query cost"
            )
    else:
        raise ValueError(f"no bound registered for adversary {adversary.name!r}")

    if log10b > PRACTICAL_CRP_LIMIT_LOG10:
        verdict = Verdict.INFEASIBLE
    elif log10b > PRACTICAL_CRP_LIMIT_LOG10 - 3:
        verdict = Verdict.BORDERLINE
    else:
        verdict = Verdict.FEASIBLE
    return Assessment(
        spec=spec,
        adversary=adversary,
        params=params,
        crp_bound=bound,
        crp_bound_log10=log10b,
        verdict=verdict,
        rationale=rationale,
    )


def table1_rows(
    spec: XorArbiterSpec,
    params: PACParameters,
    junta_size: Optional[int] = None,
) -> List[Assessment]:
    """All four Table I assessments for one (n, k, eps, delta) setting."""
    return [
        assess_xor_arbiter(spec, adversary, params, junta_size)
        for adversary in TABLE1_ADVERSARIES
    ]


def verdicts_disagree(assessments: List[Assessment]) -> bool:
    """True when at least two adversary models reach different verdicts.

    This predicate *is* the paper's headline claim in executable form: for
    a wide range of (n, k), security depends on the adversary model chosen.
    """
    return len({a.verdict for a in assessments}) > 1

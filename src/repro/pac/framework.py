"""Core PAC-learning framework objects (Definition 1 of the paper).

A PAC learner must, for any target in the concept class, produce with
probability 1 - delta a hypothesis that is an eps-approximator, from
polynomially many examples.  The *axes* along which this definition is
instantiated — distribution, access type, hypothesis class — are the
enums below; they are what an :class:`repro.pac.adversary.AdversaryModel`
is made of.
"""

from __future__ import annotations

import dataclasses
import enum
import math


@dataclasses.dataclass(frozen=True)
class PACParameters:
    """Accuracy/confidence pair (eps, delta) of Definition 1."""

    eps: float
    delta: float

    def __post_init__(self) -> None:
        if not 0.0 < self.eps < 1.0:
            raise ValueError(f"eps must be in (0, 1), got {self.eps}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")


class Distribution(enum.Enum):
    """The example distribution the learner must cope with (Section III).

    ARBITRARY is Valiant's original distribution-free requirement; UNIFORM
    is the relaxation common in complexity/cryptography — and, as the paper
    stresses, the one silently used by the logic-locking literature when it
    says "random" input/output pairs.
    """

    ARBITRARY = "arbitrary"
    UNIFORM = "uniform"


class AccessType(enum.Enum):
    """What the attacker may ask (Section IV)."""

    RANDOM_EXAMPLES = "random examples"
    UNIFORM_EXAMPLES = "uniformly-distributed examples"
    MEMBERSHIP_QUERIES = "membership queries"
    MEMBERSHIP_AND_EQUIVALENCE = "membership + equivalence queries"


class HypothesisClass(enum.Enum):
    """What the learner may output (Section V-B).

    PROPER learners must output a member of the concept class's own
    representation (e.g. an LTF); IMPROPER learners may output anything
    evaluable — and are strictly more powerful, the paper's "ironically,
    although being called improper" point.
    """

    PROPER_LTF = "proper (LTF)"
    PROPER_DFA = "proper (DFA)"
    PROPER_POLYNOMIAL = "proper (sparse F2 polynomial)"
    IMPROPER = "improper (unrestricted)"


def blumer_sample_bound(vc_dim: float, params: PACParameters) -> float:
    """The classic distribution-free sample-complexity upper bound [12].

    m = (4/eps) * (vc_dim * log2(13/eps) + log2(2/delta)); any consistent
    learner with this many examples is a PAC learner.
    """
    if vc_dim <= 0:
        raise ValueError("VC dimension must be positive")
    eps, delta = params.eps, params.delta
    return (4.0 / eps) * (vc_dim * math.log2(13.0 / eps) + math.log2(2.0 / delta))

"""The PAC adversary-model framework — the paper's primary contribution.

The paper's thesis is that an ML-based security claim about a hardware
primitive is only meaningful relative to an explicit adversary model with
three axes:

1. the **distribution** the learning examples come from (Section III),
2. the attacker's **access** to the device (Section IV), and
3. the **representations** of concept and hypothesis (Section V).

This package makes the model a first-class, machine-checkable object
(:class:`AdversaryModel`), provides the four closed-form sample-complexity
bounds of Table I (:mod:`repro.pac.bounds`), and an assessment engine
(:mod:`repro.pac.assessment`) that derives feasibility verdicts for XOR
Arbiter PUFs under each model — the verdicts the paper shows to disagree
when the model is changed, which is exactly the "pitfall".
"""

from repro.pac.framework import (
    PACParameters,
    Distribution,
    AccessType,
    HypothesisClass,
    blumer_sample_bound,
)
from repro.pac.bounds import (
    vc_dim_xor_arbiter,
    perceptron_bound,
    general_vc_bound,
    lmn_bound_log10,
    lmn_bound,
    learnpoly_bound,
    bourgain_junta_size,
    TABLE1_SETTINGS,
)
from repro.pac.adversary import (
    AdversaryModel,
    PERCEPTRON_ADVERSARY,
    GENERAL_UNIFORM_ADVERSARY,
    LMN_ADVERSARY,
    LEARNPOLY_ADVERSARY,
    comparable,
    dominates,
)
from repro.pac.audit import (
    ClaimKind,
    TransferAudit,
    TransferVerdict,
    audit_assessments,
    audit_transfer,
)
from repro.pac.bounds import (
    bound_with_noise,
    km_query_bound,
    noisy_sample_inflation,
    sq_chow_example_bound,
    sq_chow_query_count,
)
from repro.pac.circuit_bounds import (
    CircuitClassAssessment,
    ac0_distribution_free_time_log10,
    ac0_uniform_lmn_sample_log10,
    assess_circuit_learnability,
    assess_netlist_learnability,
)
from repro.pac.assessment import (
    XorArbiterSpec,
    Assessment,
    Verdict,
    assess_xor_arbiter,
    table1_rows,
)

__all__ = [
    "PACParameters",
    "Distribution",
    "AccessType",
    "HypothesisClass",
    "blumer_sample_bound",
    "vc_dim_xor_arbiter",
    "perceptron_bound",
    "general_vc_bound",
    "lmn_bound_log10",
    "lmn_bound",
    "learnpoly_bound",
    "bourgain_junta_size",
    "TABLE1_SETTINGS",
    "AdversaryModel",
    "comparable",
    "dominates",
    "ClaimKind",
    "TransferAudit",
    "TransferVerdict",
    "audit_transfer",
    "audit_assessments",
    "bound_with_noise",
    "km_query_bound",
    "noisy_sample_inflation",
    "sq_chow_example_bound",
    "sq_chow_query_count",
    "CircuitClassAssessment",
    "ac0_distribution_free_time_log10",
    "ac0_uniform_lmn_sample_log10",
    "assess_circuit_learnability",
    "assess_netlist_learnability",
    "PERCEPTRON_ADVERSARY",
    "GENERAL_UNIFORM_ADVERSARY",
    "LMN_ADVERSARY",
    "LEARNPOLY_ADVERSARY",
    "XorArbiterSpec",
    "Assessment",
    "Verdict",
    "assess_xor_arbiter",
    "table1_rows",
]

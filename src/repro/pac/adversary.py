"""Adversary models as first-class objects.

An :class:`AdversaryModel` pins down all three axes the paper identifies —
distribution, access, hypothesis representation — plus the concrete
algorithm.  Security claims ("this PUF resists ML attacks") are then
statements *about a model*, and the assessment engine makes the model an
explicit input instead of an unstated assumption.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.pac.framework import AccessType, Distribution, HypothesisClass


@dataclasses.dataclass(frozen=True)
class AdversaryModel:
    """One row of the paper's taxonomy.

    Attributes
    ----------
    name:
        Human-readable label (used in reports and tables).
    distribution:
        Which example distributions the learner must handle.
    access:
        What the attacker may ask of the device.
    hypothesis_class:
        What the learner may output (proper vs improper — Section V-B).
    algorithm:
        The concrete algorithm, or None for algorithm-independent bounds.
    """

    name: str
    distribution: Distribution
    access: AccessType
    hypothesis_class: HypothesisClass
    algorithm: Optional[str] = None

    def describe(self) -> str:
        """A one-line description matching Table I's Setting columns."""
        algo = self.algorithm or "independent"
        return (
            f"{self.name}: distribution={self.distribution.value}, "
            f"algorithm={algo}, access={self.access.value}, "
            f"hypothesis={self.hypothesis_class.value}"
        )


#: Partial orders on the three axes: larger = more attacker freedom.
_DISTRIBUTION_RANK = {
    # Distribution-free learners must handle everything, so an attacker who
    # only needs uniform examples is *easier to satisfy*: a scheme broken
    # under the uniform model is broken under any stronger claim.
    Distribution.ARBITRARY: 0,
    Distribution.UNIFORM: 1,
}
_ACCESS_RANK = {
    AccessType.RANDOM_EXAMPLES: 0,
    AccessType.UNIFORM_EXAMPLES: 0,
    AccessType.MEMBERSHIP_QUERIES: 1,
    AccessType.MEMBERSHIP_AND_EQUIVALENCE: 2,
}
_HYPOTHESIS_RANK = {
    HypothesisClass.PROPER_LTF: 0,
    HypothesisClass.PROPER_DFA: 0,
    HypothesisClass.PROPER_POLYNOMIAL: 0,
    HypothesisClass.IMPROPER: 1,
}


def dominates(stronger: "AdversaryModel", weaker: "AdversaryModel") -> bool:
    """True when ``stronger`` has at least as much freedom on every axis.

    If a primitive falls to ``weaker`` it falls to every model dominating
    it; conversely, an infeasibility proof under ``stronger`` carries down.
    Using a result proved in one model as if it lived in an incomparable
    one is exactly the paper's pitfall, so this predicate is the sanity
    check to run before quoting a bound.
    """
    return (
        _DISTRIBUTION_RANK[stronger.distribution]
        >= _DISTRIBUTION_RANK[weaker.distribution]
        and _ACCESS_RANK[stronger.access] >= _ACCESS_RANK[weaker.access]
        and _HYPOTHESIS_RANK[stronger.hypothesis_class]
        >= _HYPOTHESIS_RANK[weaker.hypothesis_class]
    )


def comparable(a: "AdversaryModel", b: "AdversaryModel") -> bool:
    """True when the two models are ordered either way."""
    return dominates(a, b) or dominates(b, a)


#: Row 1 of Table I — the bound of [9].
PERCEPTRON_ADVERSARY = AdversaryModel(
    name="[9] (Perceptron)",
    distribution=Distribution.ARBITRARY,
    access=AccessType.RANDOM_EXAMPLES,
    hypothesis_class=HypothesisClass.PROPER_LTF,
    algorithm="Perceptron",
)

#: Row 2 — algorithm-independent, uniform distribution.
GENERAL_UNIFORM_ADVERSARY = AdversaryModel(
    name="General (VC)",
    distribution=Distribution.UNIFORM,
    access=AccessType.UNIFORM_EXAMPLES,
    hypothesis_class=HypothesisClass.PROPER_LTF,
    algorithm=None,
)

#: Row 3 — Corollary 1, the LMN algorithm (improper!).
LMN_ADVERSARY = AdversaryModel(
    name="Corollary 1 (LMN)",
    distribution=Distribution.UNIFORM,
    access=AccessType.UNIFORM_EXAMPLES,
    hypothesis_class=HypothesisClass.IMPROPER,
    algorithm="LMN",
)

#: Row 4 — Corollary 2, LearnPoly with membership queries.
LEARNPOLY_ADVERSARY = AdversaryModel(
    name="Corollary 2 (LearnPoly)",
    distribution=Distribution.UNIFORM,
    access=AccessType.MEMBERSHIP_QUERIES,
    hypothesis_class=HypothesisClass.IMPROPER,
    algorithm="LearnPoly",
)

#: All Table I rows in paper order.
TABLE1_ADVERSARIES = (
    PERCEPTRON_ADVERSARY,
    GENERAL_UNIFORM_ADVERSARY,
    LMN_ADVERSARY,
    LEARNPOLY_ADVERSARY,
)

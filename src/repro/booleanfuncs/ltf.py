"""Linear threshold functions (halfspaces) and Chow parameters.

An LTF is ``f(c) = sgn(w . c - theta)`` (Section III-A).  Chow's theorem
says a +/-1 LTF is uniquely determined by its n+1 degree-0/1 Fourier
coefficients (the *Chow parameters*); De-Diakonikolas-Feldman-Servedio [25]
give an efficient algorithm to reconstruct a close LTF from approximate Chow
parameters.  This module implements the LTF class, Chow-parameter
computation/estimation, the reconstruction used by Table II, and the
low-weight integer approximation.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.booleanfuncs.encoding import random_pm1
from repro.booleanfuncs.function import BooleanFunction


class LTF(BooleanFunction):
    """A linear threshold function sgn(w . x - theta) with sgn(0) := +1."""

    def __init__(
        self, weights: np.ndarray, threshold: float = 0.0, name: str = "ltf"
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError("weights must be a 1-D vector")
        self.weights = weights
        self.threshold = float(threshold)

        def evaluate(x: np.ndarray) -> np.ndarray:
            margin = x @ self.weights - self.threshold
            return np.where(margin >= 0, 1, -1).astype(np.int8)

        super().__init__(weights.size, evaluate, name=name)

    @classmethod
    def random(
        cls,
        n: int,
        rng: Optional[np.random.Generator] = None,
        sigma: float = 1.0,
        threshold: float = 0.0,
    ) -> "LTF":
        """A random LTF with i.i.d. Gaussian weights (a 'typical' halfspace)."""
        rng = np.random.default_rng() if rng is None else rng
        return cls(rng.normal(0.0, sigma, size=n), threshold, name="random_ltf")

    def margin(self, x: np.ndarray) -> np.ndarray:
        """The real-valued margin w . x - theta (no sign taken)."""
        x = np.asarray(x)
        return x @ self.weights - self.threshold

    def normalised(self) -> "LTF":
        """Same halfspace with unit-norm weights."""
        norm = float(np.linalg.norm(self.weights))
        if norm == 0.0:
            raise ValueError("cannot normalise the zero weight vector")
        return LTF(self.weights / norm, self.threshold / norm, name=self.name)

    def __repr__(self) -> str:
        return f"LTF(n={self.n}, theta={self.threshold:g})"


def chow_parameters_exact(f: BooleanFunction) -> np.ndarray:
    """Exact Chow parameters (fhat(empty), fhat({1}), ..., fhat({n})).

    Computed by brute force over the cube; small n only.
    """
    from repro.booleanfuncs.encoding import enumerate_cube

    cube = enumerate_cube(f.n)
    values = f.truth_table().astype(np.float64)
    chow = np.empty(f.n + 1)
    chow[0] = values.mean()
    chow[1:] = (cube * values[:, None]).mean(axis=0)
    return chow


def estimate_chow_parameters(
    x: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Empirical Chow parameters from labelled examples (challenges, +/-1 labels).

    ``chow[0] = mean(y)`` and ``chow[i] = mean(y * x_i)``.  This is exactly
    the estimator run on the BR PUF CRPs in Section V-A of the paper.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
        raise ValueError("x must be (m, n) and y length m")
    if x.shape[0] == 0:
        raise ValueError("need at least one example")
    chow = np.empty(x.shape[1] + 1)
    chow[0] = y.mean()
    chow[1:] = (x * y[:, None]).mean(axis=0)
    return chow


def ltf_from_chow_parameters(chow: np.ndarray) -> LTF:
    """Build the LTF f' from (approximate) Chow parameters.

    Uses the classical Chow-parameter heuristic underlying [25]: take the
    degree-1 coefficients as the weight vector and the degree-0 coefficient
    (the bias) as a threshold offset.  For an LTF target this recovers a
    close halfspace; for a non-LTF target (the paper's point for BR PUFs)
    the resulting f' cannot be an arbitrarily good approximator no matter
    how well the Chow parameters are estimated.
    """
    chow = np.asarray(chow, dtype=np.float64)
    if chow.ndim != 1 or chow.size < 2:
        raise ValueError("chow must be a vector (bias, w_1, ..., w_n)")
    weights = chow[1:]
    if np.allclose(weights, 0.0):
        # Degenerate: the function carries no degree-1 signal.  Return the
        # constant best matching the bias.
        weights = np.zeros(chow.size - 1)
        threshold = -math.copysign(1.0, chow[0] if chow[0] != 0 else 1.0)
        return LTF(weights, threshold, name="chow_ltf_degenerate")
    return LTF(weights, -chow[0], name="chow_ltf")


def integer_weight_approximation(
    ltf: LTF, eps: float = 0.01
) -> Tuple[np.ndarray, float]:
    """Low-weight integer approximation of an LTF per De et al. [25].

    Returns integer weights and threshold such that the induced halfspace is
    eps-close to ``ltf`` for typical (anti-concentrated) weights.  We use the
    magnitude bound ``sqrt(n) * (1/eps)^{O(log^2(1/eps))}`` from [25] as a
    cap and the simple scale-and-round construction: with scale
    ``W / max|w_i|`` the rounding error per coordinate is at most 1/2, and
    the total perturbation is small relative to the margin for eps-most
    inputs.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    f = ltf.normalised()
    n = f.n
    log_term = math.log2(1.0 / eps)
    cap = math.sqrt(n) * (1.0 / eps) ** max(1.0, log_term)
    # Scale so the largest weight's magnitude is ~min(cap, enough precision).
    max_w = float(np.max(np.abs(f.weights)))
    if max_w == 0.0:
        return np.zeros(n, dtype=np.int64), round(f.threshold)
    target = min(cap, max(8.0, 4.0 * math.sqrt(n) / eps))
    scale = target / max_w
    int_weights = np.round(f.weights * scale).astype(np.int64)
    int_threshold = float(np.round(f.threshold * scale))
    return int_weights, int_threshold


def regularity(ltf: LTF) -> float:
    """The regularity parameter max_i |w_i| / ||w||_2.

    Small regularity ("no dominant coordinate") is the condition under which
    Chow-parameter reconstruction and low-weight approximation behave well
    (Section V-A, item 1).
    """
    norm = float(np.linalg.norm(ltf.weights))
    if norm == 0.0:
        return 0.0
    return float(np.max(np.abs(ltf.weights))) / norm


def empirical_distance(
    f: BooleanFunction,
    g: BooleanFunction,
    m: int = 20_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo estimate of Pr_u[f(u) != g(u)] for any arity."""
    rng = np.random.default_rng() if rng is None else rng
    x = random_pm1(f.n, m, rng)
    return float(np.mean(f(x) != g(x)))

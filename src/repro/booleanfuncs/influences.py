"""Variable influences and junta structure.

The influence of variable ``i`` on ``f`` is ``Inf_i(f) = Pr[f(x) != f(x^i)]``
(flip coordinate i).  By Fourier duality ``Inf_i(f) = sum_{S ∋ i} fhat(S)^2``.
Bourgain's theorem (used in the proof of Corollary 2) says every LTF is
close to a junta on ``O(eps^{-3/2})`` coordinates; the helpers here find
such coordinate sets empirically.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.booleanfuncs.encoding import random_pm1
from repro.booleanfuncs.fourier import index_to_subset, walsh_hadamard
from repro.booleanfuncs.function import BooleanFunction


def influences_exact(f: BooleanFunction) -> np.ndarray:
    """All n influences, exactly, via the spectrum (small n)."""
    coeffs = walsh_hadamard(f.truth_table())
    n = f.n
    inf = np.zeros(n)
    for s, value in enumerate(coeffs):
        if value == 0.0:
            continue
        for i in index_to_subset(s, n):
            inf[i] += value * value
    return inf


def influence_exact(f: BooleanFunction, i: int) -> float:
    """Exact influence of variable ``i`` (small n)."""
    if not 0 <= i < f.n:
        raise ValueError(f"variable index {i} out of range")
    return float(influences_exact(f)[i])


def total_influence_exact(f: BooleanFunction) -> float:
    """Total influence (average sensitivity) I[f] = sum_i Inf_i(f)."""
    return float(np.sum(influences_exact(f)))


def influence_mc(
    f: BooleanFunction,
    i: int,
    m: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo influence estimate: flip coordinate i on m uniform points."""
    if not 0 <= i < f.n:
        raise ValueError(f"variable index {i} out of range")
    rng = np.random.default_rng() if rng is None else rng
    x = random_pm1(f.n, m, rng)
    x_flipped = x.copy()
    x_flipped[:, i] = -x_flipped[:, i]
    return float(np.mean(f(x) != f(x_flipped)))


def junta_coordinates(
    f: BooleanFunction,
    tau: float = 1e-9,
    m: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[int]:
    """Coordinates with influence above ``tau``.

    With ``m`` unset the influences are computed exactly (small n only);
    otherwise each influence is estimated from ``m`` samples.  The returned
    set is the candidate junta an MQ learner would zoom into.
    """
    if m is None:
        inf = influences_exact(f)
    else:
        inf = np.array([influence_mc(f, i, m, rng) for i in range(f.n)])
    return [int(i) for i in np.nonzero(inf > tau)[0]]


def is_junta_on(f: BooleanFunction, coords: List[int]) -> bool:
    """True iff ``f`` depends only on ``coords`` (exact check, small n).

    Verified via the spectrum: every non-zero coefficient's subset must be
    contained in ``coords``.
    """
    allowed = set(coords)
    coeffs = walsh_hadamard(f.truth_table())
    for s, value in enumerate(coeffs):
        if abs(value) > 1e-12 and not set(index_to_subset(s, f.n)) <= allowed:
            return False
    return True

"""Sparse multivariate polynomials over GF(2) and XOR-of-terms forms.

The proof of Corollary 2 walks through a chain of representations:

    LTF  ->  O(eps^{-3/2})-junta (Bourgain)  ->  r-XT (XOR of terms of size
    <= r)  ->  sparse multivariate polynomial of degree r over F2,

and then applies Schapire-Sellie's LearnPoly.  This module implements the
representations and the conversions between them.

A *term* is a conjunction (AND) of variables; a monomial over F2 is a
product of variables.  In the 0/1 domain AND and product coincide, so an
XOR of terms *is* an F2 polynomial — the classes below share a monomial
set representation but differ in how they evaluate and print.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Tuple

import numpy as np

from repro.booleanfuncs.function import BooleanFunction

Monomial = FrozenSet[int]


class SparseF2Polynomial:
    """A multivariate polynomial over GF(2), stored as a set of monomials.

    ``p(x) = XOR over monomials M of (AND_{i in M} x_i)`` for x in {0,1}^n.
    The empty monomial is the constant 1.  Addition over F2 is symmetric
    difference of the monomial sets.
    """

    def __init__(self, n: int, monomials: Iterable[Iterable[int]] = ()) -> None:
        if n < 0:
            raise ValueError("arity must be non-negative")
        self.n = n
        mons: Set[Monomial] = set()
        for m in monomials:
            mono = frozenset(int(i) for i in m)
            if mono and (min(mono) < 0 or max(mono) >= n):
                raise ValueError(f"monomial {sorted(mono)} out of range for n={n}")
            mons.symmetric_difference_update({mono})
        self.monomials: FrozenSet[Monomial] = frozenset(mons)

    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree of the polynomial (0 for the zero/constant polynomial)."""
        if not self.monomials:
            return 0
        return max(len(m) for m in self.monomials)

    @property
    def sparsity(self) -> int:
        """Number of monomials."""
        return len(self.monomials)

    def is_zero(self) -> bool:
        return not self.monomials

    # ------------------------------------------------------------------
    def evaluate_bits(self, x: np.ndarray) -> np.ndarray:
        """Evaluate on 0/1 inputs.  ``x`` is ``(m, n)`` or ``(n,)``; output 0/1."""
        x = np.asarray(x)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != self.n:
            raise ValueError(f"expected width {self.n}, got {x.shape[1]}")
        out = np.zeros(x.shape[0], dtype=np.int8)
        for mono in self.monomials:
            if mono:
                term = np.all(x[:, sorted(mono)] == 1, axis=1).astype(np.int8)
            else:
                term = np.ones(x.shape[0], dtype=np.int8)
            out ^= term
        return out[0] if single else out

    def to_boolean_function(self) -> BooleanFunction:
        """As a +/-1 BooleanFunction on +/-1 inputs (chi(0)=+1, chi(1)=-1)."""

        def evaluate(x_pm1: np.ndarray) -> np.ndarray:
            bits = ((1 - x_pm1) // 2).astype(np.int8)
            vals = self.evaluate_bits(bits)
            return (1 - 2 * vals).astype(np.int8)

        return BooleanFunction(self.n, evaluate, name=f"f2poly_{self.sparsity}mon")

    # ------------------------------------------------------------------
    def __add__(self, other: "SparseF2Polynomial") -> "SparseF2Polynomial":
        """Sum over F2 (XOR): symmetric difference of monomial sets."""
        if self.n != other.n:
            raise ValueError("arity mismatch")
        return SparseF2Polynomial(
            self.n, self.monomials.symmetric_difference(other.monomials)
        )

    __xor__ = __add__

    def __mul__(self, other: "SparseF2Polynomial") -> "SparseF2Polynomial":
        """Product over F2 (with x_i^2 = x_i, i.e. union of monomials)."""
        if self.n != other.n:
            raise ValueError("arity mismatch")
        out: Set[Monomial] = set()
        for a in self.monomials:
            for b in other.monomials:
                out.symmetric_difference_update({a | b})
        return SparseF2Polynomial(self.n, out)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SparseF2Polynomial)
            and self.n == other.n
            and self.monomials == other.monomials
        )

    def __hash__(self) -> int:
        return hash((self.n, self.monomials))

    def __repr__(self) -> str:
        if not self.monomials:
            return "SparseF2Polynomial(0)"
        parts = []
        for mono in sorted(self.monomials, key=lambda m: (len(m), sorted(m))):
            parts.append("1" if not mono else "*".join(f"x{i}" for i in sorted(mono)))
        return f"SparseF2Polynomial({' + '.join(parts)})"

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        n: int,
        sparsity: int,
        max_degree: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "SparseF2Polynomial":
        """A random polynomial with ~``sparsity`` monomials of degree <= max_degree."""
        rng = np.random.default_rng() if rng is None else rng
        mons: Set[Monomial] = set()
        attempts = 0
        while len(mons) < sparsity and attempts < 50 * sparsity:
            attempts += 1
            size = int(rng.integers(1, max_degree + 1))
            mono = frozenset(rng.choice(n, size=min(size, n), replace=False).tolist())
            mons.add(mono)
        return cls(n, mons)

    @classmethod
    def parity(cls, n: int, subset: Iterable[int]) -> "SparseF2Polynomial":
        """The parity x_{i1} + ... + x_{ik} over F2."""
        return cls(n, [{i} for i in subset])


class XorOfTerms:
    """An r-XT function: T_1 + T_2 + ... + T_s over F2, |T_i| <= r.

    This is exactly a sparse F2 polynomial of degree <= r; the class exists
    to mirror the paper's terminology (Section IV-B) and to enforce the term
    size bound at construction time.
    """

    def __init__(self, n: int, terms: Iterable[Iterable[int]], r: int) -> None:
        if r < 0:
            raise ValueError("term size bound r must be non-negative")
        self.r = r
        term_list: Tuple[Monomial, ...] = tuple(
            frozenset(int(i) for i in t) for t in terms
        )
        for t in term_list:
            if len(t) > r:
                raise ValueError(
                    f"term of size {len(t)} exceeds the bound r={r}"
                )
        self.polynomial = SparseF2Polynomial(n, term_list)
        self.n = n

    @property
    def num_terms(self) -> int:
        return self.polynomial.sparsity

    def evaluate_bits(self, x: np.ndarray) -> np.ndarray:
        return self.polynomial.evaluate_bits(x)

    def to_boolean_function(self) -> BooleanFunction:
        return self.polynomial.to_boolean_function()

    def __repr__(self) -> str:
        return f"XorOfTerms(n={self.n}, r={self.r}, terms={self.num_terms})"


def monomial_count_bound(k: int, r: int) -> int:
    """The O(2^r k) monomial bound from the proof of Corollary 2.

    XORing k functions, each an O(1)-term r-XT, yields a polynomial with at
    most ``k * 2^r`` monomials of degree <= r over F2 (each term expands to
    at most 2^r monomials when rewritten as a polynomial).
    """
    if k <= 0 or r < 0:
        raise ValueError("need k >= 1 and r >= 0")
    return k * (2**r)

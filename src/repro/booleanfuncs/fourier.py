"""Fourier analysis of Boolean functions.

The Fourier expansion (Section III-A of the paper) writes every
f : {-1,+1}^n -> R uniquely as

    f(c) = sum_{S subseteq [n]} fhat(S) * chi_S(c),

with fhat(S) = E_{c~U}[f(c) chi_S(c)].  For small ``n`` the full spectrum is
computed exactly with a fast Walsh-Hadamard transform; for large ``n``
individual coefficients are estimated from uniform samples (which is exactly
what the LMN algorithm does).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.booleanfuncs.encoding import chi
from repro.booleanfuncs.function import BooleanFunction


def walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """Normalised fast Walsh-Hadamard transform.

    Input is a length-``2^n`` vector of function values in truth-table order
    (the value on the all-(+1) point first).  Output index ``s`` holds
    fhat(S) where the binary expansion of ``s`` (MSB = variable 0) gives the
    membership of each variable in ``S``.

    The transform is an involution up to the 1/2^n normalisation applied
    here, so ``inverse_walsh_hadamard(walsh_hadamard(v)) == v``.
    """
    v = np.asarray(values, dtype=np.float64).copy()
    m = v.size
    if m == 0 or m & (m - 1):
        raise ValueError("input length must be a power of two")
    h = 1
    while h < m:
        v = v.reshape(-1, 2, h)
        a = v[:, 0, :].copy()
        b = v[:, 1, :].copy()
        v[:, 0, :] = a + b
        v[:, 1, :] = a - b
        v = v.reshape(m)
        h *= 2
    return v / m


def inverse_walsh_hadamard(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`walsh_hadamard` (spectrum back to values)."""
    c = np.asarray(coeffs, dtype=np.float64)
    m = c.size
    if m == 0 or m & (m - 1):
        raise ValueError("input length must be a power of two")
    return walsh_hadamard(c) * m


def index_to_subset(s: int, n: int) -> Tuple[int, ...]:
    """Spectrum index -> subset of variable indices (MSB-first convention)."""
    return tuple(i for i in range(n) if (s >> (n - 1 - i)) & 1)


def subset_to_index(subset: Iterable[int], n: int) -> int:
    """Subset of variable indices -> spectrum index (MSB-first convention)."""
    s = 0
    for i in subset:
        if not 0 <= i < n:
            raise ValueError(f"variable index {i} out of range for n={n}")
        s |= 1 << (n - 1 - i)
    return s


def fourier_spectrum(
    f: BooleanFunction, threshold: float = 0.0
) -> Dict[Tuple[int, ...], float]:
    """Exact Fourier spectrum of ``f`` as ``{subset: coefficient}``.

    Coefficients with absolute value <= ``threshold`` are omitted (the
    default keeps everything non-zero).  Requires small ``n``.
    """
    coeffs = walsh_hadamard(f.truth_table())
    spectrum = {}
    for s, value in enumerate(coeffs):
        if abs(value) > threshold:
            spectrum[index_to_subset(s, f.n)] = float(value)
    return spectrum


def estimate_fourier_coefficient(
    f: BooleanFunction,
    subset: Iterable[int],
    m: int,
    rng: Optional[np.random.Generator] = None,
    samples: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> float:
    """Estimate fhat(S) = E[f(c) chi_S(c)] from uniform samples.

    Either draws ``m`` fresh uniform challenges and queries ``f``, or reuses
    a fixed sample ``(X, y)`` passed via ``samples`` — the latter is how the
    LMN algorithm shares one example set across all coefficients.
    """
    if samples is not None:
        x, y = samples
    else:
        rng = np.random.default_rng() if rng is None else rng
        x = (1 - 2 * rng.integers(0, 2, size=(m, f.n))).astype(np.int8)
        y = f(x)
    return float(np.mean(y * chi(subset, x)))


def spectral_weight_by_degree(f: BooleanFunction) -> np.ndarray:
    """W^k[f] = sum_{|S|=k} fhat(S)^2 for k = 0..n (exact, small n).

    For a +/-1-valued f the entries sum to 1 (Parseval).
    """
    coeffs = walsh_hadamard(f.truth_table())
    n = f.n
    weights = np.zeros(n + 1)
    sizes = np.array(
        [bin(s).count("1") for s in range(coeffs.size)], dtype=np.int64
    )
    np.add.at(weights, sizes, coeffs**2)
    return weights


def low_degree_projection(
    f: BooleanFunction, degree: int
) -> Dict[Tuple[int, ...], float]:
    """The exact spectrum restricted to |S| <= degree (small n).

    This is the target the LMN algorithm approximates; keeping only these
    coefficients and taking the sign yields the best degree-``degree``
    approximator in L2.
    """
    spectrum = fourier_spectrum(f)
    return {s: v for s, v in spectrum.items() if len(s) <= degree}


def sign_of_expansion(
    n: int, spectrum: Dict[Tuple[int, ...], float]
) -> BooleanFunction:
    """The Boolean function sign(sum_S fhat(S) chi_S(x)).

    Zero values of the inner sum are mapped to +1 so the output is always
    +/-1 (the measure-zero tie-break is irrelevant for approximation).
    """
    items = [(tuple(s), v) for s, v in spectrum.items()]

    def evaluate(x: np.ndarray) -> np.ndarray:
        acc = np.zeros(x.shape[0])
        for subset, coeff in items:
            acc += coeff * chi(subset, x)
        return np.where(acc >= 0, 1, -1).astype(np.int8)

    return BooleanFunction(n, evaluate, name="sign_of_expansion")

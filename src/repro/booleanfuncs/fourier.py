"""Fourier analysis of Boolean functions.

The Fourier expansion (Section III-A of the paper) writes every
f : {-1,+1}^n -> R uniquely as

    f(c) = sum_{S subseteq [n]} fhat(S) * chi_S(c),

with fhat(S) = E_{c~U}[f(c) chi_S(c)].  For small ``n`` the full spectrum is
computed exactly with a fast Walsh-Hadamard transform; for large ``n``
individual coefficients are estimated from uniform samples (which is exactly
what the LMN algorithm does).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.booleanfuncs.function import BooleanFunction
from repro.kernels import character_column, fwht
from repro.kernels import sign_of_expansion as _kernel_sign_of_expansion


def walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """Normalised fast Walsh-Hadamard transform.

    Input is a length-``2^n`` vector of function values in truth-table order
    (the value on the all-(+1) point first); higher-dimensional inputs are
    transformed batched along the last axis.  Output index ``s`` holds
    fhat(S) where the binary expansion of ``s`` (MSB = variable 0) gives the
    membership of each variable in ``S``.

    The butterfly runs in place on one working copy (see
    :func:`repro.kernels.fwht.fwht_inplace`) — no per-level half-copies.
    The transform is an involution up to the 1/2^n normalisation applied
    here, so ``inverse_walsh_hadamard(walsh_hadamard(v)) == v``.
    """
    return fwht(values)


def inverse_walsh_hadamard(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`walsh_hadamard` (spectrum back to values)."""
    return fwht(coeffs, normalise=False)


def index_to_subset(s: int, n: int) -> Tuple[int, ...]:
    """Spectrum index -> subset of variable indices (MSB-first convention)."""
    return tuple(i for i in range(n) if (s >> (n - 1 - i)) & 1)


def subset_to_index(subset: Iterable[int], n: int) -> int:
    """Subset of variable indices -> spectrum index (MSB-first convention)."""
    s = 0
    for i in subset:
        if not 0 <= i < n:
            raise ValueError(f"variable index {i} out of range for n={n}")
        s |= 1 << (n - 1 - i)
    return s


def fourier_spectrum(
    f: BooleanFunction, threshold: float = 0.0
) -> Dict[Tuple[int, ...], float]:
    """Exact Fourier spectrum of ``f`` as ``{subset: coefficient}``.

    Coefficients with absolute value <= ``threshold`` are omitted (the
    default keeps everything non-zero).  Requires small ``n``.
    """
    coeffs = walsh_hadamard(f.truth_table())
    spectrum = {}
    for s, value in enumerate(coeffs):
        if abs(value) > threshold:
            spectrum[index_to_subset(s, f.n)] = float(value)
    return spectrum


def estimate_fourier_coefficient(
    f: BooleanFunction,
    subset: Iterable[int],
    m: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    samples: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> float:
    """Estimate fhat(S) = E[f(c) chi_S(c)] from uniform samples.

    Either draws ``m`` fresh uniform challenges and queries ``f``, or reuses
    a fixed sample ``(X, y)`` passed via ``samples`` — the latter is how the
    LMN algorithm shares one example set across all coefficients.  The two
    sources are mutually exclusive: with ``samples``, every row is used and
    ``m`` (if given) must equal the sample size; without ``samples``, ``m``
    is required.  Historically a mismatched ``m`` was silently ignored.
    """
    if samples is not None:
        x, y = samples
        x = np.asarray(x)
        if m is not None and m != x.shape[0]:
            raise ValueError(
                f"m={m} contradicts the {x.shape[0]} fixed samples; pass "
                "m only when drawing fresh challenges"
            )
    else:
        if m is None:
            raise ValueError("m is required when no fixed samples are given")
        if m < 1:
            raise ValueError(f"m must be positive, got {m}")
        rng = np.random.default_rng() if rng is None else rng
        x = (1 - 2 * rng.integers(0, 2, size=(m, f.n))).astype(np.int8)
        y = f(x)
    return float(np.mean(y * character_column(x, subset)))


def spectral_weight_by_degree(f: BooleanFunction) -> np.ndarray:
    """W^k[f] = sum_{|S|=k} fhat(S)^2 for k = 0..n (exact, small n).

    For a +/-1-valued f the entries sum to 1 (Parseval).
    """
    coeffs = walsh_hadamard(f.truth_table())
    n = f.n
    weights = np.zeros(n + 1)
    sizes = np.array(
        [bin(s).count("1") for s in range(coeffs.size)], dtype=np.int64
    )
    np.add.at(weights, sizes, coeffs**2)
    return weights


def low_degree_projection(
    f: BooleanFunction, degree: int
) -> Dict[Tuple[int, ...], float]:
    """The exact spectrum restricted to |S| <= degree (small n).

    This is the target the LMN algorithm approximates; keeping only these
    coefficients and taking the sign yields the best degree-``degree``
    approximator in L2.
    """
    coeffs = walsh_hadamard(f.truth_table())
    return {
        index_to_subset(s, f.n): float(v)
        for s, v in enumerate(coeffs)
        if abs(v) > 0 and bin(s).count("1") <= degree
    }


def sign_of_expansion(
    n: int, spectrum: Dict[Tuple[int, ...], float]
) -> BooleanFunction:
    """The Boolean function sign(sum_S fhat(S) chi_S(x)).

    Zero values of the inner sum are mapped to +1 so the output is always
    +/-1 (the measure-zero tie-break is irrelevant for approximation).
    Evaluation is one blocked GEMM per call — see
    :func:`repro.kernels.sign_of_expansion`, the shared implementation
    behind this helper and the LMN and KM hypotheses.
    """
    return _kernel_sign_of_expansion(n, spectrum, name="sign_of_expansion")

"""A uniform abstraction over Boolean functions f : {-1,+1}^n -> {-1,+1}.

Learners, property testers, and PUF simulators all need to treat "a Boolean
function" uniformly whether it is given as a truth table (small n, exact
analysis possible), a weight vector (an LTF), or an opaque oracle (a PUF
under attack).  :class:`BooleanFunction` is that abstraction.

Instances are callable on batches: ``f(X)`` with ``X`` of shape ``(m, n)``
returns a +/-1 vector of length ``m``; a single point of shape ``(n,)`` is
also accepted and returns a scalar.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from repro.booleanfuncs.encoding import enumerate_cube, parity


class BooleanFunction:
    """A Boolean function over the +/-1 hypercube.

    Parameters
    ----------
    n:
        Number of input variables.
    evaluate:
        Vectorised evaluator mapping an ``(m, n)`` +/-1 array to a length-m
        +/-1 vector.
    name:
        Optional human-readable label used in ``repr``.
    """

    def __init__(
        self,
        n: int,
        evaluate: Callable[[np.ndarray], np.ndarray],
        name: str = "f",
    ) -> None:
        if n < 0:
            raise ValueError(f"arity must be non-negative, got {n}")
        self.n = n
        self._evaluate = evaluate
        self.name = name
        self._truth_table: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_truth_table(
        cls, table: Iterable[int], name: str = "f"
    ) -> "BooleanFunction":
        """Build a function from its +/-1 truth table in cube order.

        ``table[i]`` is the value on ``enumerate_cube(n)[i]``; the length
        must be a power of two.
        """
        tab = np.asarray(list(table), dtype=np.int8)
        if tab.size == 0 or tab.size & (tab.size - 1):
            raise ValueError("truth table length must be a power of two")
        if not np.all(np.abs(tab) == 1):
            raise ValueError("truth table entries must be +/-1")
        n = int(tab.size).bit_length() - 1

        def evaluate(x: np.ndarray) -> np.ndarray:
            idx = _rows_to_indices(x)
            return tab[idx]

        f = cls(n, evaluate, name=name)
        f._truth_table = tab
        return f

    @classmethod
    def from_callable(
        cls,
        n: int,
        func: Callable[[np.ndarray], np.ndarray],
        name: str = "f",
        vectorized: bool = True,
    ) -> "BooleanFunction":
        """Wrap an arbitrary evaluator.

        With ``vectorized=False`` the callable is applied row by row.
        """
        if vectorized:
            return cls(n, func, name=name)

        def evaluate(x: np.ndarray) -> np.ndarray:
            return np.asarray([func(row) for row in x], dtype=np.int8)

        return cls(n, evaluate, name=name)

    @classmethod
    def parity_on(cls, n: int, subset: Iterable[int]) -> "BooleanFunction":
        """The character chi_S as a BooleanFunction."""
        idx = sorted(set(subset))
        if idx and (idx[0] < 0 or idx[-1] >= n):
            raise ValueError(f"subset {idx} out of range for n={n}")

        def evaluate(x: np.ndarray) -> np.ndarray:
            if not idx:
                return np.ones(x.shape[0], dtype=np.int8)
            return parity(x[:, idx])

        return cls(n, evaluate, name=f"chi_{tuple(idx)}")

    @classmethod
    def constant(cls, n: int, value: int) -> "BooleanFunction":
        """The constant function +1 or -1 on n variables."""
        if value not in (-1, 1):
            raise ValueError("constant value must be +/-1")

        def evaluate(x: np.ndarray) -> np.ndarray:
            return np.full(x.shape[0], value, dtype=np.int8)

        return cls(n, evaluate, name=f"const_{value:+d}")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != self.n:
            raise ValueError(
                f"{self.name} has arity {self.n}, got inputs of width {x.shape[1]}"
            )
        out = np.asarray(self._evaluate(x), dtype=np.int8)
        return out[0] if single else out

    def truth_table(self) -> np.ndarray:
        """The full +/-1 truth table (cached). Requires n <= 24."""
        if self._truth_table is None:
            cube = enumerate_cube(self.n)
            self._truth_table = np.asarray(self._evaluate(cube), dtype=np.int8)
        return self._truth_table

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def xor(self, other: "BooleanFunction") -> "BooleanFunction":
        """Pointwise XOR (product in the +/-1 domain) of two functions."""
        self._check_same_arity(other)

        def evaluate(x: np.ndarray) -> np.ndarray:
            return (self(x) * other(x)).astype(np.int8)

        return BooleanFunction(
            self.n, evaluate, name=f"({self.name} xor {other.name})"
        )

    def negate(self) -> "BooleanFunction":
        """The pointwise negation -f."""

        def evaluate(x: np.ndarray) -> np.ndarray:
            return (-self(x)).astype(np.int8)

        return BooleanFunction(self.n, evaluate, name=f"not({self.name})")

    @staticmethod
    def xor_many(funcs: Iterable["BooleanFunction"]) -> "BooleanFunction":
        """XOR of several same-arity functions (e.g. an XOR Arbiter PUF)."""
        fs = list(funcs)
        if not fs:
            raise ValueError("xor_many requires at least one function")
        n = fs[0].n
        for f in fs[1:]:
            if f.n != n:
                raise ValueError("all functions must have the same arity")

        def evaluate(x: np.ndarray) -> np.ndarray:
            out = np.ones(x.shape[0], dtype=np.int8)
            for f in fs:
                out = out * f(x)
            return out

        return BooleanFunction(n, evaluate, name=f"xor_of_{len(fs)}")

    def restrict(self, coord: int, value: int) -> "BooleanFunction":
        """The restriction f|_{x_coord = value} as a function of n-1 variables."""
        if not 0 <= coord < self.n:
            raise ValueError(f"coordinate {coord} out of range")
        if value not in (-1, 1):
            raise ValueError("restriction value must be +/-1")

        def evaluate(x: np.ndarray) -> np.ndarray:
            full = np.insert(x, coord, value, axis=1)
            return self(full)

        return BooleanFunction(
            self.n - 1, evaluate, name=f"{self.name}|x{coord}={value:+d}"
        )

    # ------------------------------------------------------------------
    # Comparison / statistics
    # ------------------------------------------------------------------
    def agreement(self, other: "BooleanFunction", x: np.ndarray) -> float:
        """Fraction of rows of ``x`` on which self and other agree."""
        self._check_same_arity(other)
        return float(np.mean(self(x) == other(x)))

    def distance(self, other: "BooleanFunction") -> float:
        """Exact normalised Hamming distance Pr_u[f(u) != g(u)] (small n)."""
        self._check_same_arity(other)
        return float(np.mean(self.truth_table() != other.truth_table()))

    def bias(self) -> float:
        """E[f] over the uniform distribution, computed exactly (small n)."""
        return float(np.mean(self.truth_table()))

    def _check_same_arity(self, other: "BooleanFunction") -> None:
        if self.n != other.n:
            raise ValueError(
                f"arity mismatch: {self.name} has n={self.n}, "
                f"{other.name} has n={other.n}"
            )

    def __repr__(self) -> str:
        return f"BooleanFunction(n={self.n}, name={self.name!r})"


def _rows_to_indices(x: np.ndarray) -> np.ndarray:
    """Map +/-1 rows to their truth-table indices (MSB-first bit order)."""
    bits = (1 - x) // 2
    n = x.shape[1]
    weights = (1 << np.arange(n - 1, -1, -1)).astype(np.int64)
    return bits.astype(np.int64) @ weights

"""Boolean-function analysis substrate.

This package provides the analytical machinery the paper's arguments rest
on: the Fourier expansion of Boolean functions over the Boolean cube, noise
sensitivity and stability, influences and junta structure, linear threshold
functions (LTFs) with their Chow parameters, and sparse multivariate
polynomials over GF(2).

All functions use the +/-1 encoding ``chi(0) = +1``, ``chi(1) = -1`` from
Section III-A of the paper unless stated otherwise.
"""

from repro.booleanfuncs.encoding import (
    bits_to_pm1,
    pm1_to_bits,
    parity,
    chi,
    enumerate_cube,
    random_pm1,
    flip_noise,
)
from repro.booleanfuncs.function import BooleanFunction
from repro.booleanfuncs.fourier import (
    walsh_hadamard,
    inverse_walsh_hadamard,
    fourier_spectrum,
    estimate_fourier_coefficient,
    spectral_weight_by_degree,
    low_degree_projection,
)
from repro.booleanfuncs.noise_sensitivity import (
    noise_sensitivity_exact,
    noise_sensitivity_mc,
    noise_stability_exact,
    ltf_noise_sensitivity_bound,
    xor_of_ltfs_noise_sensitivity_bound,
)
from repro.booleanfuncs.influences import (
    influence_exact,
    influences_exact,
    total_influence_exact,
    influence_mc,
    junta_coordinates,
)
from repro.booleanfuncs.ltf import (
    LTF,
    chow_parameters_exact,
    estimate_chow_parameters,
    ltf_from_chow_parameters,
    integer_weight_approximation,
    regularity,
)
from repro.booleanfuncs.polynomials import SparseF2Polynomial, XorOfTerms
from repro.booleanfuncs.sensitivity import (
    average_sensitivity,
    block_sensitivity,
    block_sensitivity_at,
    max_sensitivity,
    sensitivity_at,
)

__all__ = [
    "BooleanFunction",
    "LTF",
    "SparseF2Polynomial",
    "XorOfTerms",
    "bits_to_pm1",
    "pm1_to_bits",
    "parity",
    "chi",
    "enumerate_cube",
    "random_pm1",
    "flip_noise",
    "walsh_hadamard",
    "inverse_walsh_hadamard",
    "fourier_spectrum",
    "estimate_fourier_coefficient",
    "spectral_weight_by_degree",
    "low_degree_projection",
    "noise_sensitivity_exact",
    "noise_sensitivity_mc",
    "noise_stability_exact",
    "ltf_noise_sensitivity_bound",
    "xor_of_ltfs_noise_sensitivity_bound",
    "influence_exact",
    "influences_exact",
    "total_influence_exact",
    "influence_mc",
    "junta_coordinates",
    "sensitivity_at",
    "max_sensitivity",
    "average_sensitivity",
    "block_sensitivity_at",
    "block_sensitivity",
    "chow_parameters_exact",
    "estimate_chow_parameters",
    "ltf_from_chow_parameters",
    "integer_weight_approximation",
    "regularity",
]

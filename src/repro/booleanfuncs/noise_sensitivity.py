"""Noise sensitivity and noise stability of Boolean functions.

Noise sensitivity is the quantity the paper's Corollary 1 is built on:
``NS_eps(f) = Pr[f(c) != f(c')]`` where ``c`` is uniform and ``c'`` flips
each bit of ``c`` independently with probability ``eps``.

Two classical facts used by the paper:

* for any LTF f, ``NS_eps(f) = O(sqrt(eps))`` (Peres' theorem); and
* for any function of k LTFs, ``NS_eps(h) = O(k sqrt(eps))``
  (Klivans-O'Donnell-Servedio [20]).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.booleanfuncs.encoding import flip_noise, random_pm1
from repro.booleanfuncs.fourier import spectral_weight_by_degree
from repro.booleanfuncs.function import BooleanFunction

#: Constant in Peres' bound NS_eps(LTF) <= PERES_CONSTANT * sqrt(eps).
#: Peres' proof gives a constant below 2; O'Donnell's book gives ~1.32 for
#: the stability form.  We expose it so bound users can tighten it.
PERES_CONSTANT = 2.0


def noise_sensitivity_exact(f: BooleanFunction, eps: float) -> float:
    """Exact NS_eps(f) via the Fourier formula (small n).

    Uses ``NS_eps(f) = 1/2 - 1/2 * sum_k (1-2 eps)^k W^k[f]``.
    """
    if not 0.0 <= eps <= 1.0:
        raise ValueError(f"eps must be in [0, 1], got {eps}")
    weights = spectral_weight_by_degree(f)
    rho = 1.0 - 2.0 * eps
    stability = float(np.sum(weights * rho ** np.arange(weights.size)))
    return 0.5 - 0.5 * stability


def noise_stability_exact(f: BooleanFunction, rho: float) -> float:
    """Exact noise stability Stab_rho(f) = sum_k rho^k W^k[f] (small n)."""
    if not -1.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [-1, 1], got {rho}")
    weights = spectral_weight_by_degree(f)
    return float(np.sum(weights * rho ** np.arange(weights.size)))


def noise_sensitivity_mc(
    f: BooleanFunction,
    eps: float,
    m: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo estimate of NS_eps(f) from ``m`` correlated pairs.

    Works for any arity since it only queries ``f``; this is the estimator
    an attacker with oracle access would use to calibrate the LMN degree.
    """
    if m <= 0:
        raise ValueError("sample count must be positive")
    rng = np.random.default_rng() if rng is None else rng
    x = random_pm1(f.n, m, rng)
    x_noisy = flip_noise(x, eps, rng)
    return float(np.mean(f(x) != f(x_noisy)))


def ltf_noise_sensitivity_bound(eps: float, constant: float = PERES_CONSTANT) -> float:
    """Peres' upper bound ``NS_eps(LTF) <= constant * sqrt(eps)``."""
    if eps < 0:
        raise ValueError("eps must be non-negative")
    return min(0.5, constant * math.sqrt(eps))


def xor_of_ltfs_noise_sensitivity_bound(
    k: int, eps: float, constant: float = PERES_CONSTANT
) -> float:
    """KOS bound ``NS_eps(g(f_1..f_k)) <= constant * k * sqrt(eps)``.

    This is the ``alpha(eps) = k sqrt(eps)`` function fixed in the proof of
    Corollary 1; an XOR Arbiter PUF with k chains is a function of k LTFs.
    """
    if k <= 0:
        raise ValueError("k must be a positive chain count")
    return min(0.5, constant * k * math.sqrt(eps))


def lmn_degree_for_xor_puf(k: int, eps: float) -> int:
    """The low-degree cut-off m = ceil(2.32 k^2 / eps^2) from Corollary 1.

    The LMN machinery needs all coefficients of degree < m where m is
    ``1/alpha^{-1}(eps/2.32)`` with ``alpha(x) = k sqrt(x)``; inverting gives
    m = 2.32 k^2 / eps^2 (up to the paper's rounding).
    """
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if k <= 0:
        raise ValueError("k must be a positive chain count")
    return max(1, math.ceil(2.32 * k * k / (eps * eps)))

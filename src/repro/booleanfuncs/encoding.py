"""Encodings of Boolean values and challenges.

The paper (Section III-A) uses the multiplicative encoding

    chi(0_F2) := +1,    chi(1_F2) := -1,

so that XOR of bits becomes multiplication of +/-1 values.  All learners and
simulators in this repository operate on +/-1 arrays internally; the
conversion helpers here are the single place where the two encodings meet.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, Sequence[int]]


def bits_to_pm1(bits: ArrayLike) -> np.ndarray:
    """Map a {0,1} array to the {+1,-1} encoding (chi(0)=+1, chi(1)=-1).

    Accepts any integer array; values must be 0 or 1.

    >>> bits_to_pm1([0, 1, 0]).tolist()
    [1, -1, 1]
    """
    arr = np.asarray(bits)
    if not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits_to_pm1 expects an array of 0/1 values")
    return 1 - 2 * arr.astype(np.int8)


def pm1_to_bits(pm1: ArrayLike) -> np.ndarray:
    """Map a {+1,-1} array back to {0,1} (inverse of :func:`bits_to_pm1`).

    >>> pm1_to_bits([1, -1, 1]).tolist()
    [0, 1, 0]
    """
    arr = np.asarray(pm1)
    if not np.all((arr == 1) | (arr == -1)):
        raise ValueError("pm1_to_bits expects an array of +/-1 values")
    return ((1 - arr) // 2).astype(np.int8)


def parity(pm1_rows: np.ndarray) -> np.ndarray:
    """Product of +/-1 entries along the last axis (XOR in the bit domain).

    ``parity`` of an ``(m, n)`` array returns a length-``m`` vector of +/-1.
    """
    arr = np.asarray(pm1_rows)
    return np.prod(arr, axis=-1).astype(np.int8)


def chi(subset: Iterable[int], x: np.ndarray) -> np.ndarray:
    """The Fourier character chi_S(x) = prod_{i in S} x_i.

    ``x`` may be a single point of shape ``(n,)`` or a batch ``(m, n)`` of
    +/-1 rows; ``subset`` is an iterable of 0-based coordinate indices.
    The empty subset gives the constant character 1.
    """
    x = np.asarray(x)
    idx = sorted(set(subset))
    if not idx:
        shape = x.shape[:-1] if x.ndim > 1 else ()
        return np.ones(shape, dtype=np.int8) if shape else np.int8(1)
    return np.prod(x[..., idx], axis=-1).astype(np.int8)


def enumerate_cube(n: int, encoding: str = "pm1") -> np.ndarray:
    """All 2^n points of the Boolean cube, in truth-table order.

    Row ``i`` is the binary expansion of ``i`` with the most significant bit
    first, so ``enumerate_cube(n)[i]`` matches index ``i`` of a truth table
    produced by :meth:`repro.booleanfuncs.BooleanFunction.truth_table`.

    Parameters
    ----------
    n:
        Number of variables; must satisfy ``0 <= n <= 24`` (the table has
        ``2^n`` rows).
    encoding:
        ``"pm1"`` (default) for +/-1 rows or ``"bits"`` for 0/1 rows.
    """
    if not 0 <= n <= 24:
        raise ValueError(f"enumerate_cube supports 0 <= n <= 24, got {n}")
    idx = np.arange(2**n, dtype=np.uint32)
    shifts = np.arange(n - 1, -1, -1, dtype=np.uint32)
    bits = ((idx[:, None] >> shifts[None, :]) & 1).astype(np.int8)
    if encoding == "bits":
        return bits
    if encoding == "pm1":
        return 1 - 2 * bits
    raise ValueError(f"unknown encoding {encoding!r}")


def random_pm1(
    n: int, m: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """``m`` uniformly random +/-1 challenge rows of length ``n``."""
    rng = np.random.default_rng() if rng is None else rng
    return (1 - 2 * rng.integers(0, 2, size=(m, n))).astype(np.int8)


def flip_noise(
    x: np.ndarray, eps: float, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Flip each +/-1 entry of ``x`` independently with probability ``eps``.

    This is the noise operator used in the definition of noise sensitivity
    (Section III-A of the paper): given a uniform challenge ``c``, the
    correlated challenge ``c'`` is ``flip_noise(c, eps)``.
    """
    if not 0.0 <= eps <= 1.0:
        raise ValueError(f"flip probability must be in [0, 1], got {eps}")
    rng = np.random.default_rng() if rng is None else rng
    x = np.asarray(x)
    flips = rng.random(x.shape) < eps
    return np.where(flips, -x, x).astype(np.int8)

"""Pointwise and worst-case sensitivity; block sensitivity.

Complexity measures complementing noise sensitivity: s(f, x) counts the
single-bit flips that change f at x; block sensitivity bs(f, x) counts the
maximum number of *disjoint* blocks whose joint flip changes f.  Classical
facts usable as test oracles: s(parity) = n everywhere, s(f) <= bs(f), and
bs(f) <= s(f)^2 for every Boolean f (Nisan) — now superseded by Huang's
sensitivity theorem, but the quadratic bound is what we assert.

All functions here are exact and intended for small n (truth-table scale).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.booleanfuncs.function import BooleanFunction


def sensitivity_at(f: BooleanFunction, x: np.ndarray) -> int:
    """s(f, x): number of coordinates whose flip changes f(x)."""
    x = np.asarray(x, dtype=np.int8)
    if x.shape != (f.n,):
        raise ValueError(f"expected a single point of length {f.n}")
    base = int(f(x))
    flips = np.repeat(x[None, :], f.n, axis=0)
    flips[np.arange(f.n), np.arange(f.n)] *= -1
    return int(np.sum(f(flips) != base))


def max_sensitivity(f: BooleanFunction) -> int:
    """s(f) = max_x s(f, x), exactly (small n)."""
    from repro.booleanfuncs.encoding import enumerate_cube

    cube = enumerate_cube(f.n)
    values = f.truth_table()
    best = 0
    for i in range(cube.shape[0]):
        count = 0
        for j in range(f.n):
            neighbour = i ^ (1 << (f.n - 1 - j))
            count += values[neighbour] != values[i]
        best = max(best, count)
    return best


def average_sensitivity(f: BooleanFunction) -> float:
    """E_x[s(f, x)] — equal to the total influence I[f]."""
    from repro.booleanfuncs.encoding import enumerate_cube

    values = f.truth_table()
    total = 0
    size = values.size
    for i in range(size):
        for j in range(f.n):
            neighbour = i ^ (1 << (f.n - 1 - j))
            total += values[neighbour] != values[i]
    return total / size


def _minimal_sensitive_blocks(
    f: BooleanFunction, x: np.ndarray
) -> List[int]:
    """Bitmask list of minimal blocks B with f(x^B) != f(x) (small n)."""
    n = f.n
    base = int(f(x))
    sensitive: List[int] = []
    # Evaluate all 2^n block flips in one vectorised call.
    masks = np.arange(1, 2**n, dtype=np.uint32)
    shifts = np.arange(n - 1, -1, -1, dtype=np.uint32)
    flip_bits = ((masks[:, None] >> shifts[None, :]) & 1).astype(np.int8)
    points = np.where(flip_bits == 1, -x[None, :], x[None, :]).astype(np.int8)
    changed = f(points) != base
    sensitive_masks = masks[changed]
    sensitive_set = set(int(m) for m in sensitive_masks)
    minimal = []
    for m in sorted(sensitive_set, key=lambda v: bin(v).count("1")):
        if not any(
            (m & other) == other for other in minimal if other != m
        ):
            minimal.append(m)
    return minimal


def block_sensitivity_at(f: BooleanFunction, x: np.ndarray) -> int:
    """bs(f, x): maximum number of disjoint sensitive blocks (exact).

    Computed as maximum set packing over the minimal sensitive blocks via
    memoised DFS — exponential in the worst case, fine at truth-table n.
    """
    x = np.asarray(x, dtype=np.int8)
    if x.shape != (f.n,):
        raise ValueError(f"expected a single point of length {f.n}")
    blocks = _minimal_sensitive_blocks(f, x)
    blocks.sort(key=lambda m: bin(m).count("1"))

    @lru_cache(maxsize=None)
    def pack(used_mask: int, start: int) -> int:
        best = 0
        for idx in range(start, len(blocks)):
            b = blocks[idx]
            if b & used_mask:
                continue
            best = max(best, 1 + pack(used_mask | b, idx + 1))
        return best

    result = pack(0, 0)
    pack.cache_clear()
    return result


def block_sensitivity(f: BooleanFunction) -> int:
    """bs(f) = max_x bs(f, x), exactly (small n only)."""
    from repro.booleanfuncs.encoding import enumerate_cube

    cube = enumerate_cube(f.n)
    return max(block_sensitivity_at(f, cube[i]) for i in range(cube.shape[0]))

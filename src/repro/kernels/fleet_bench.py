"""Fleet-vs-loop benchmark cases behind ``python -m repro bench-fleet``.

Each case evaluates the same fleet two ways on the same challenges —
the per-instance Python loop (one feature build + one gemv per
instance, the pre-fleet hot path) and the stacked
``(M, d) @ (d, N)`` GEMM of :mod:`repro.kernels.fleet` — checks the
response planes are identical, and reports the speedup.  The default
matrix covers the N >= 1024 population sizes ROADMAP item 2 needs plus
the three dtype tiers; ``smoke_cases`` is the seconds-fast subset CI
asserts on (equivalence and speedup >= 1).

Results serialise to ``benchmarks/results/BENCH_fleet.json``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.backend import get_backend
from repro.pufs.crp import uniform_challenges
from repro.pufs.fleet import Fleet, FleetSpec, eval_instance


@dataclasses.dataclass(frozen=True)
class FleetBenchCase:
    """One timed per-instance-loop-vs-stacked-GEMM comparison."""

    name: str
    family: str
    n: int
    size: int
    m: int
    k: int = 1
    correlation: float = 0.0
    tier: str = "float64"
    repeats: int = 3
    seed: int = 4


def default_cases() -> List[FleetBenchCase]:
    """The full benchmark matrix (populations at sweep scale)."""
    return [
        FleetBenchCase(
            name="arbiter_n64_N1024", family="arbiter", n=64, size=1024, m=2000,
        ),
        FleetBenchCase(
            name="arbiter_n64_N4096", family="arbiter", n=64, size=4096, m=1000,
            repeats=2,
        ),
        FleetBenchCase(
            name="arbiter_n64_N1024_f32", family="arbiter", n=64, size=1024,
            m=2000, tier="float32",
        ),
        FleetBenchCase(
            name="arbiter_n64_N1024_i8", family="arbiter", n=64, size=1024,
            m=2000, tier="int8",
        ),
        FleetBenchCase(
            name="xor_n64_k4_N1024", family="xor", n=64, size=1024, m=1000, k=4,
            repeats=2,
        ),
        FleetBenchCase(
            name="br_n64_N256", family="br", n=64, size=256, m=1000, repeats=2,
        ),
    ]


def smoke_cases() -> List[FleetBenchCase]:
    """Seconds-fast subset for CI: asserts equivalence and speedup >= 1."""
    return [
        FleetBenchCase(
            name="arbiter_n32_N128_smoke", family="arbiter", n=32, size=128,
            m=512, repeats=3,
        ),
        FleetBenchCase(
            name="xor_n32_k3_N64_smoke", family="xor", n=32, size=64, m=256,
            k=3, repeats=3,
        ),
        FleetBenchCase(
            name="arbiter_n32_N128_i8_smoke", family="arbiter", n=32, size=128,
            m=512, tier="int8", repeats=3,
        ),
    ]


def _best_time(fn: Callable[[], np.ndarray], repeats: int) -> Tuple[float, np.ndarray]:
    """Best-of-``repeats`` wall time (single-core machines jitter a lot)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_case(case: FleetBenchCase) -> Dict[str, object]:
    """Time one case on both paths and check exact response equality."""
    spec = FleetSpec(
        family=case.family,
        n=case.n,
        size=case.size,
        k=case.k if case.family == "xor" else 1,
        correlation=case.correlation,
        tier=case.tier,
    )
    fleet = Fleet.build(spec, case.seed)
    challenges = uniform_challenges(
        case.m, case.n, np.random.default_rng(case.seed + 1)
    )
    # Comparators are built once, outside the timed region: the loop being
    # displaced evaluates pre-built instances, it does not rebuild them.
    instances = fleet.instances()

    def loop() -> np.ndarray:
        return np.stack(
            [eval_instance(p, challenges) for p in instances], axis=1
        )

    def stacked() -> np.ndarray:
        return fleet.eval(challenges)

    t_old, out_old = _best_time(loop, case.repeats)
    t_new, out_new = _best_time(stacked, case.repeats)
    identical = bool(np.array_equal(out_old, out_new))
    return {
        "name": case.name,
        "params": {
            "family": case.family,
            "n": case.n,
            "size": case.size,
            "m": case.m,
            "k": case.k,
            "tier": case.tier,
            "repeats": case.repeats,
        },
        "eval": {
            "old_s": t_old,
            "new_s": t_new,
            "speedup": t_old / max(t_new, 1e-12),
        },
        "responses_identical": identical,
        "equivalent": identical,
    }


def run_fleet_bench(
    cases: Optional[Sequence[FleetBenchCase]] = None,
) -> Dict[str, object]:
    """Run a case list and assemble the serialisable payload."""
    cases = default_cases() if cases is None else list(cases)
    return {
        "generated_by": "python -m repro bench-fleet",
        "numpy": np.__version__,
        "backend": get_backend().name,
        "cases": [run_case(case) for case in cases],
    }


def render_table(payload: Dict[str, object]) -> str:
    """Human-readable summary of a fleet benchmark payload."""
    from repro.analysis.tables import TableBuilder

    table = TableBuilder(
        ["case", "N", "m", "tier", "loop [s]", "fleet [s]", "speedup",
         "identical"],
        title="fleet speedups (per-instance loop vs stacked GEMM)",
    )
    for rec in payload["cases"]:
        ev = rec["eval"]
        table.add_row(
            rec["name"],
            rec["params"]["size"],
            rec["params"]["m"],
            rec["params"]["tier"],
            f"{ev['old_s']:.4f}",
            f"{ev['new_s']:.4f}",
            f"{ev['speedup']:.1f}",
            "yes" if rec["equivalent"] else "NO",
        )
    return table.render()


def write_results(payload: Dict[str, object], path: Path) -> None:
    """Write the benchmark payload as indented JSON, creating parents."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")

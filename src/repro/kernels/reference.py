"""Frozen pure-python/numpy reference paths, kept for equivalence checks.

Two families live here:

* the historical per-subset loops the character kernel replaced (one
  Python-level iteration per subset, each calling ``np.prod`` over a
  gathered column slice), kept so the property tests can assert the
  kernel is bit-identical to the old behaviour and so
  ``benchmarks/test_kernel_speedup.py`` can time old-path vs kernel-path
  on the same data;
* independent re-implementations of the PUF response paths (parity
  transform, arbiter/XOR/BR margins, LTF margins) and the GF(2) Moebius
  butterfly, written as transparent per-row loops with ``math.fsum``
  accumulation, which the :mod:`repro.conformance` differential
  harnesses drive against the optimised production paths on shared
  seeded inputs.

Do not optimise these.  Their slowness *is* the point: a reference must
stay simple enough to audit by eye.  Integer-valued paths (characters,
FWHT on +/-1 tables, Moebius, parity transform) must agree with the
production code bit for bit; float-margin paths use ``math.fsum`` —
correctly-rounded summation — so the production result must land within
a few ulp-scale tolerances of the reference, with sign agreement
guaranteed outside a tolerance-sized guard band around zero.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

Subset = Tuple[int, ...]


def naive_estimate_coefficients(
    x: np.ndarray, y: np.ndarray, subsets: Sequence[Subset]
) -> np.ndarray:
    """Per-subset ``np.mean(y * np.prod(x[:, S], axis=1))`` loop.

    The pre-kernel body of ``LMNLearner.fit_sample`` (and of KM's
    ``_coefficient``), verbatim: one gathered product per subset.
    """
    x = np.asarray(x)
    xf = x.astype(np.float64)
    yf = np.asarray(y, dtype=np.float64)
    estimates = np.empty(len(subsets))
    for j, subset in enumerate(subsets):
        if subset:
            char = np.prod(xf[:, list(subset)], axis=1)
        else:
            char = np.ones(x.shape[0])
        estimates[j] = float(np.mean(yf * char))
    return estimates


def naive_expansion_values(
    x: np.ndarray, spectrum: Dict[Subset, float]
) -> np.ndarray:
    """Per-subset accumulation of ``sum_S fhat(S) chi_S(x)``.

    The pre-kernel body of ``lmn._expansion_sign`` (sorted-items order),
    verbatim.
    """
    x = np.asarray(x)
    xf = x.astype(np.float64)
    acc = np.zeros(x.shape[0])
    for subset, coeff in sorted(spectrum.items()):
        if subset:
            acc += coeff * np.prod(xf[:, list(subset)], axis=1)
        else:
            acc += coeff
    return acc


def naive_sign_of_expansion(
    x: np.ndarray, spectrum: Dict[Subset, float]
) -> np.ndarray:
    """Sign of :func:`naive_expansion_values`, ties to +1, as int8."""
    values = naive_expansion_values(x, spectrum)
    return np.where(values >= 0, 1, -1).astype(np.int8)


def naive_walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """The pre-kernel copying butterfly (one table, two copies per level)."""
    v = np.asarray(values, dtype=np.float64).copy()
    m = v.size
    if m == 0 or m & (m - 1):
        raise ValueError("input length must be a power of two")
    h = 1
    while h < m:
        v = v.reshape(-1, 2, h)
        a = v[:, 0, :].copy()
        b = v[:, 1, :].copy()
        v[:, 0, :] = a + b
        v[:, 1, :] = a - b
        v = v.reshape(m)
        h *= 2
    return v / m


def naive_mobius_f2(values: np.ndarray) -> np.ndarray:
    """Textbook GF(2) Moebius transform: per-subset submask XOR sums.

    Entry ``s`` of the output is the XOR of input entries over all
    bitwise submasks of ``s`` — the definition, evaluated directly with
    a per-subset Python loop over submasks (``O(3^n)`` total), against
    which the in-place butterfly ``mobius_f2_inplace`` is verified.
    Input and output are 0/1 integer arrays over one length-``2^n`` axis.
    """
    v = np.asarray(values)
    m = v.size
    if m == 0 or m & (m - 1):
        raise ValueError("input length must be a power of two")
    flat = [int(x) & 1 for x in v.reshape(m)]
    out = np.zeros(m, dtype=v.dtype)
    for s in range(m):
        acc = 0
        sub = s
        while True:  # enumerate submasks of s, descending
            acc ^= flat[sub]
            if sub == 0:
                break
            sub = (sub - 1) & s
        out[s] = acc
    return out.reshape(v.shape)


# ----------------------------------------------------------------------
# PUF response reference paths (driven by repro.conformance.differential)
# ----------------------------------------------------------------------
def naive_parity_transform(challenges: np.ndarray) -> np.ndarray:
    """Per-row, per-stage arbiter feature map ``phi_i = prod_{j>=i} c_j``.

    Integer products of +/-1 entries, so the result is exact and must be
    bit-identical to the vectorised ``pufs.arbiter.parity_transform``.
    """
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    m, n = challenges.shape
    phi = np.ones((m, n + 1), dtype=np.float64)
    for row in range(m):
        for i in range(n):
            prod = 1
            for j in range(i, n):
                prod *= int(challenges[row, j])
            phi[row, i] = float(prod)
    return phi


def naive_linear_margin(features: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Per-row correctly-rounded dot products via ``math.fsum``.

    The reference accumulator for every float-margin path: each row's
    margin is the exactly-rounded sum of the per-coordinate products, so
    any production dot product (BLAS gemv/gemm, fused or not) must agree
    to a few ulps of the row scale.
    """
    features = np.asarray(features, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    return np.array(
        [
            math.fsum(float(f) * float(w) for f, w in zip(row, weights))
            for row in features
        ]
    )


def naive_arbiter_margin(weights: np.ndarray, challenges: np.ndarray) -> np.ndarray:
    """Reference arbiter delay margin: fsum over parity-transformed stages."""
    return naive_linear_margin(naive_parity_transform(challenges), weights)


def naive_arbiter_response(weights: np.ndarray, challenges: np.ndarray) -> np.ndarray:
    """Reference arbiter response: sign of the fsum margin, ties to +1."""
    margin = naive_arbiter_margin(weights, challenges)
    return np.where(margin >= 0, 1, -1).astype(np.int8)


def naive_xor_arbiter_response(
    chain_weights: Sequence[np.ndarray], challenges: np.ndarray
) -> np.ndarray:
    """Reference k-XOR response: product of per-chain reference signs."""
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    responses = np.ones(challenges.shape[0], dtype=np.int64)
    for weights in chain_weights:
        responses = responses * naive_arbiter_response(weights, challenges)
    return responses.astype(np.int8)


def naive_cdc_xor_response(
    chain_weights: Sequence[np.ndarray],
    shifts: Sequence[int],
    challenges: np.ndarray,
) -> np.ndarray:
    """Reference CDC k-XOR response: rotate, then per-chain signs.

    Challenge-Driven-Current XOR feeds chain ``i`` the master challenge
    rotated left by ``shifts[i]`` positions (element ``j`` of the
    component challenge is master element ``(j + shift) mod n``).  The
    rotation is built per row with a transparent index loop, then each
    chain's response comes from :func:`naive_arbiter_response`; the
    final response is their product.
    """
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    m, n = challenges.shape
    responses = np.ones(m, dtype=np.int64)
    for weights, shift in zip(chain_weights, shifts):
        shift = int(shift) % n
        rotated = np.empty_like(challenges)
        for row in range(m):
            for j in range(n):
                rotated[row, j] = challenges[row, (j + shift) % n]
        responses = responses * naive_arbiter_response(weights, rotated)
    return responses.astype(np.int8)


def naive_br_margin(
    challenges: np.ndarray,
    bias_terms: np.ndarray,
    linear_weights: np.ndarray,
    global_offset: float,
    pair_indices: np.ndarray,
    pair_weights: np.ndarray,
    triple_indices: np.ndarray,
    triple_weights: np.ndarray,
) -> np.ndarray:
    """Reference Bistable Ring settling margin, one fsum per challenge.

    Accumulates the constant offset, every linear term, and every pair /
    triple interaction term of ``pufs.bistable_ring.BistableRingPUF`` in
    a single correctly-rounded ``math.fsum`` per row.
    """
    challenges = np.asarray(challenges, dtype=np.float64)
    margins = np.empty(challenges.shape[0])
    constant = [float(global_offset)] + [float(a) for a in bias_terms]
    for row in range(challenges.shape[0]):
        c = challenges[row]
        terms = list(constant)
        terms.extend(float(w) * float(c[i]) for i, w in enumerate(linear_weights))
        terms.extend(
            float(w) * float(c[i]) * float(c[j])
            for (i, j), w in zip(pair_indices, pair_weights)
        )
        terms.extend(
            float(w) * float(c[i]) * float(c[j]) * float(c[l])
            for (i, j, l), w in zip(triple_indices, triple_weights)
        )
        margins[row] = math.fsum(terms)
    return margins


def naive_ltf_margin(
    weights: np.ndarray, threshold: float, x: np.ndarray
) -> np.ndarray:
    """Reference LTF margin ``w . x - theta`` with fsum accumulation."""
    x = np.asarray(x, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    return np.array(
        [
            math.fsum(
                [float(v) * float(w) for v, w in zip(row, weights)]
                + [-float(threshold)]
            )
            for row in x
        ]
    )

"""Frozen per-subset reference loops, kept for equivalence and benchmarks.

These are the historical implementations the character kernel replaced:
one Python-level iteration per subset, each calling ``np.prod`` over a
gathered column slice.  They are deliberately *not* used by any learner —
they exist so the property tests can assert the kernel is bit-identical
to the old behaviour, and so ``benchmarks/test_kernel_speedup.py`` can
time old-path vs kernel-path on the same data.

Do not optimise these.  Their slowness is the baseline being measured.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

Subset = Tuple[int, ...]


def naive_estimate_coefficients(
    x: np.ndarray, y: np.ndarray, subsets: Sequence[Subset]
) -> np.ndarray:
    """Per-subset ``np.mean(y * np.prod(x[:, S], axis=1))`` loop.

    The pre-kernel body of ``LMNLearner.fit_sample`` (and of KM's
    ``_coefficient``), verbatim: one gathered product per subset.
    """
    x = np.asarray(x)
    xf = x.astype(np.float64)
    yf = np.asarray(y, dtype=np.float64)
    estimates = np.empty(len(subsets))
    for j, subset in enumerate(subsets):
        if subset:
            char = np.prod(xf[:, list(subset)], axis=1)
        else:
            char = np.ones(x.shape[0])
        estimates[j] = float(np.mean(yf * char))
    return estimates


def naive_expansion_values(
    x: np.ndarray, spectrum: Dict[Subset, float]
) -> np.ndarray:
    """Per-subset accumulation of ``sum_S fhat(S) chi_S(x)``.

    The pre-kernel body of ``lmn._expansion_sign`` (sorted-items order),
    verbatim.
    """
    x = np.asarray(x)
    xf = x.astype(np.float64)
    acc = np.zeros(x.shape[0])
    for subset, coeff in sorted(spectrum.items()):
        if subset:
            acc += coeff * np.prod(xf[:, list(subset)], axis=1)
        else:
            acc += coeff
    return acc


def naive_sign_of_expansion(
    x: np.ndarray, spectrum: Dict[Subset, float]
) -> np.ndarray:
    """Sign of :func:`naive_expansion_values`, ties to +1, as int8."""
    values = naive_expansion_values(x, spectrum)
    return np.where(values >= 0, 1, -1).astype(np.int8)


def naive_walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """The pre-kernel copying butterfly (one table, two copies per level)."""
    v = np.asarray(values, dtype=np.float64).copy()
    m = v.size
    if m == 0 or m & (m - 1):
        raise ValueError("input length must be a power of two")
    h = 1
    while h < m:
        v = v.reshape(-1, 2, h)
        a = v[:, 0, :].copy()
        b = v[:, 1, :].copy()
        v[:, 0, :] = a + b
        v[:, 1, :] = a - b
        v = v.reshape(m)
        h *= 2
    return v / m

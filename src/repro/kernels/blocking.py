"""Block iteration shared by the character kernel and the CRP runtime.

One implementation of the ``(start, stop)`` block walk serves both the
chunked CRP evaluation in :mod:`repro.runtime.chunking` (which re-exports
these names) and the character-kernel GEMMs in
:mod:`repro.kernels.character`.  The two consumers use different default
block sizes because their working sets differ:

* :data:`DEFAULT_BLOCK_SIZE` — rows per block for CRP generation and PUF
  evaluation, where the per-row working set is one ``(n+1)``-float feature
  vector (8192 x 65 floats ~ 4 MB);
* :data:`DEFAULT_CHARACTER_BLOCK` — columns per block for the character
  matrix, where the working set is ``N`` rows of ``block_size`` floats and
  ``N`` (the number of degree-<=d subsets) can reach the thousands, so a
  smaller block keeps the active rows cache-resident.
"""

from __future__ import annotations

from typing import Iterator, Tuple

#: Default rows per block for CRP work: 8192 challenges x 65 float64
#: features ~ 4 MB, comfortably inside L2/L3 on anything modern.
DEFAULT_BLOCK_SIZE = 8192

#: Default columns per character-matrix block: each character row is then
#: 32 KB, so parent row + x row + output row stay in L1/L2 during the
#: incremental construction.
DEFAULT_CHARACTER_BLOCK = 4096


def iter_blocks(m: int, block_size: int = DEFAULT_BLOCK_SIZE) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` row ranges covering ``range(m)``."""
    if m < 0:
        raise ValueError("m must be non-negative")
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    for start in range(0, m, block_size):
        yield start, min(start + block_size, m)

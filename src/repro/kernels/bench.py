"""Kernel-vs-naive benchmark cases behind ``python -m repro bench-kernels``.

Each case times the frozen per-subset loops from
:mod:`repro.kernels.reference` against the blocked-GEMM kernel on the
same data, checks exact equivalence, and reports speedups.  The default
case list covers the scales the benchmarks actually run at (the E4 LMN
configuration, wider XOR PUFs, the BR-PUF Chow estimation of E11) plus a
batched-FWHT case; ``smoke_cases`` is the small, seconds-fast subset CI
runs on every push.

Results serialise to ``benchmarks/results/BENCH_kernels.json`` — the
machine-readable perf baseline this PR establishes.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import reference
from repro.kernels.character import CharacterBasis
from repro.kernels.fwht import fwht


@dataclasses.dataclass(frozen=True)
class KernelBenchCase:
    """One timed old-path-vs-kernel comparison.

    ``kind`` selects the data source and measured operation:

    * ``"lmn_xor"`` — LMN coefficient estimation + hypothesis evaluation
      on a k-XOR Arbiter PUF over parity features (n = stages = feature
      dim); the ``lmn_xor12_e4`` case is exactly the E4 configuration.
    * ``"km_br"`` — degree-1 (Chow) coefficient estimation + sign
      evaluation on a Bistable Ring PUF, the E11 shape.
    * ``"fwht"`` — a batch of ``2^n`` truth tables through the old
      one-table copying butterfly vs one batched in-place transform.
    """

    name: str
    kind: str
    n: int
    degree: int = 3
    m_fit: int = 25_000
    m_eval: int = 25_000
    k: int = 2
    batch: int = 256  # fwht only
    repeats: int = 3
    seed: int = 4


def default_cases() -> List[KernelBenchCase]:
    """The full benchmark matrix (E4/E11 scales; ~a minute total)."""
    return [
        KernelBenchCase(
            name="lmn_xor12_e4", kind="lmn_xor", n=12, degree=3, k=2,
            m_fit=25_000, m_eval=25_000, repeats=5,
        ),
        KernelBenchCase(
            name="lmn_xor24_deg3", kind="lmn_xor", n=24, degree=3, k=2,
            m_fit=16_384, m_eval=16_384, repeats=2,
        ),
        KernelBenchCase(
            name="lmn_xor64_deg2", kind="lmn_xor", n=64, degree=2, k=2,
            m_fit=16_384, m_eval=16_384, repeats=2,
        ),
        KernelBenchCase(
            name="km_br64_chow", kind="km_br", n=64, degree=1,
            m_fit=32_768, m_eval=32_768, repeats=3,
        ),
        KernelBenchCase(
            name="fwht_n8_batch2048", kind="fwht", n=8, batch=2048, repeats=3,
        ),
    ]


def smoke_cases() -> List[KernelBenchCase]:
    """Seconds-fast subset for CI: asserts equivalence and speedup >= 1."""
    return [
        KernelBenchCase(
            name="lmn_xor10_smoke", kind="lmn_xor", n=10, degree=3, k=2,
            m_fit=8_192, m_eval=8_192, repeats=3,
        ),
        KernelBenchCase(
            name="fwht_n8_smoke", kind="fwht", n=8, batch=64, repeats=3,
        ),
    ]


def _best_time(fn: Callable[[], np.ndarray], repeats: int) -> Tuple[float, np.ndarray]:
    """Best-of-``repeats`` wall time (single-core machines jitter a lot)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _case_data(
    case: KernelBenchCase,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(x_fit, y_fit, x_eval, y_eval) in the +/-1 feature space."""
    rng = np.random.default_rng(case.seed)
    if case.kind == "lmn_xor":
        from repro.pufs.arbiter import parity_transform
        from repro.pufs.xor_arbiter import XORArbiterPUF

        puf = XORArbiterPUF(case.n, case.k, np.random.default_rng(10 + case.k))

        def draw(m: int) -> Tuple[np.ndarray, np.ndarray]:
            c = (1 - 2 * rng.integers(0, 2, size=(m, case.n))).astype(np.int8)
            return parity_transform(c)[:, :-1].astype(np.int8), puf.eval(c)

        x_fit, y_fit = draw(case.m_fit)
        x_eval, y_eval = draw(case.m_eval)
        return x_fit, y_fit, x_eval, y_eval
    if case.kind == "km_br":
        from repro.pufs.bistable_ring import BistableRingPUF

        puf = BistableRingPUF(case.n, np.random.default_rng(11))

        def draw(m: int) -> Tuple[np.ndarray, np.ndarray]:
            c = (1 - 2 * rng.integers(0, 2, size=(m, case.n))).astype(np.int8)
            return c, puf.eval(c)

        x_fit, y_fit = draw(case.m_fit)
        x_eval, y_eval = draw(case.m_eval)
        return x_fit, y_fit, x_eval, y_eval
    raise ValueError(f"no sample data for case kind {case.kind!r}")


def _run_fwht_case(case: KernelBenchCase) -> Dict[str, object]:
    rng = np.random.default_rng(case.seed)
    tables = (1 - 2 * rng.integers(0, 2, size=(case.batch, 2**case.n))).astype(
        np.float64
    )

    def old() -> np.ndarray:
        return np.stack([reference.naive_walsh_hadamard(t) for t in tables])

    def new() -> np.ndarray:
        return fwht(tables)

    t_old, out_old = _best_time(old, case.repeats)
    t_new, out_new = _best_time(new, case.repeats)
    identical = bool(np.array_equal(out_old, out_new))
    return {
        "name": case.name,
        "kind": case.kind,
        "params": {"n": case.n, "batch": case.batch, "repeats": case.repeats},
        "transform": {
            "old_s": t_old,
            "new_s": t_new,
            "speedup": t_old / max(t_new, 1e-12),
        },
        "spectra_identical": identical,
        "equivalent": identical,
    }


def run_case(case: KernelBenchCase) -> Dict[str, object]:
    """Time one case on both paths and check exact equivalence."""
    if case.kind == "fwht":
        return _run_fwht_case(case)

    x_fit, y_fit, x_eval, y_eval = _case_data(case)
    basis = CharacterBasis.low_degree(x_fit.shape[1], case.degree)
    subsets = list(basis.subsets)

    t_fit_old, est_old = _best_time(
        lambda: reference.naive_estimate_coefficients(x_fit, y_fit, subsets),
        case.repeats,
    )
    t_fit_new, est_new = _best_time(
        lambda: basis.estimate_coefficients(x_fit, y_fit), case.repeats
    )
    spectra_identical = bool(np.array_equal(est_old, est_new))

    spectrum = dict(zip(subsets, est_old))
    t_eval_old, pred_old = _best_time(
        lambda: reference.naive_sign_of_expansion(x_eval, spectrum), case.repeats
    )
    t_eval_new, pred_new = _best_time(
        lambda: basis.predict_sign(x_eval, est_new), case.repeats
    )
    predictions_identical = bool(np.array_equal(pred_old, pred_new))

    return {
        "name": case.name,
        "kind": case.kind,
        "params": {
            "n": x_fit.shape[1],
            "degree": case.degree,
            "k": case.k,
            "m_fit": case.m_fit,
            "m_eval": case.m_eval,
            "coefficients": len(subsets),
            "repeats": case.repeats,
        },
        "fit": {
            "old_s": t_fit_old,
            "new_s": t_fit_new,
            "speedup": t_fit_old / max(t_fit_new, 1e-12),
        },
        "eval": {
            "old_s": t_eval_old,
            "new_s": t_eval_new,
            "speedup": t_eval_old / max(t_eval_new, 1e-12),
        },
        "spectra_identical": spectra_identical,
        "predictions_identical": predictions_identical,
        "accuracy_old": float(np.mean(pred_old == y_eval)),
        "accuracy_new": float(np.mean(pred_new == y_eval)),
        "equivalent": spectra_identical and predictions_identical,
    }


def run_kernel_bench(
    cases: Optional[Sequence[KernelBenchCase]] = None,
) -> Dict[str, object]:
    """Run a case list and assemble the serialisable payload."""
    cases = default_cases() if cases is None else list(cases)
    return {
        "generated_by": "python -m repro bench-kernels",
        "numpy": np.__version__,
        "cases": [run_case(case) for case in cases],
    }


def render_table(payload: Dict[str, object]) -> str:
    """Human-readable summary of a benchmark payload."""
    from repro.analysis.tables import TableBuilder

    table = TableBuilder(
        ["case", "N", "fit old [s]", "fit new [s]", "fit x", "eval old [s]",
         "eval new [s]", "eval x", "identical"],
        title="character-kernel speedups (old per-subset loops vs blocked GEMM)",
    )
    for rec in payload["cases"]:
        fit = rec.get("fit") or rec.get("transform")
        ev = rec.get("eval")
        table.add_row(
            rec["name"],
            rec["params"].get("coefficients", rec["params"].get("batch", "")),
            f"{fit['old_s']:.4f}",
            f"{fit['new_s']:.4f}",
            f"{fit['speedup']:.1f}",
            f"{ev['old_s']:.4f}" if ev else "-",
            f"{ev['new_s']:.4f}" if ev else "-",
            f"{ev['speedup']:.1f}" if ev else "-",
            "yes" if rec["equivalent"] else "NO",
        )
    return table.render()


def write_results(payload: Dict[str, object], path: Path) -> None:
    """Write the benchmark payload as indented JSON, creating parents."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")

"""The pluggable kernel-backend seam and the dtype-tier contract.

Every stacked (fleet) GEMM in :mod:`repro.kernels.fleet` is issued
through the backend installed here instead of calling ``np.matmul``
directly.  That one level of indirection buys three things:

* **Swappability** — a numba/C/BLIS backend can drop in later by
  subclassing :class:`KernelBackend` and calling :func:`set_backend`
  (or the scoped :func:`use_backend`), with zero changes to the fleet
  kernels, the ``Fleet`` API, or the workloads built on them.
* **Testability** — a recorded-call fake installed via
  :func:`use_backend` proves that learner/workload code paths really
  route their GEMMs through the seam (see
  ``tests/kernels/test_backend.py``).
* **Thread-level parallelism** — the default :class:`NumpyBackend`
  can tile the row dimension of a stacked GEMM over a thread pool
  *inside* a trial; NumPy releases the GIL in BLAS, so slabs multiply
  concurrently.

Dtype tiers
-----------
Fleet evaluation supports three dtype tiers, selected by name:

``"float64"``
    The reference tier: features and weights in binary64.
``"float32"``
    Features and weights demoted to binary32 — half the memory
    traffic and roughly double BLAS throughput.  *Not* bit-identical
    to float64 for Gaussian weights; the conformance relations check
    it with fsum guard bands, and it is bit-identical whenever all
    weights are integer-valued small enough for exact binary32 sums.
``"int8"``
    Features stay ±1 ``int8`` (8x smaller working set than float64);
    the GEMM upcasts each feature slab to the weight dtype, so results
    are **bit-identical to the float64 tier by construction** — ±1 is
    exact in every float format.  A future integer-GEMM backend can
    exploit the int8 storage directly through this same seam.

The tier governs *storage and GEMM precision* only; responses are
always ±1 ``int8`` and all sign-domain arithmetic (XOR combination,
majority-vote counting, metric Gram matrices) is exact integer work
in every tier.
"""

from __future__ import annotations

import abc
import contextlib
import contextvars
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator, Optional

import numpy as np

#: The supported dtype tiers, fastest-reference-first.
DTYPE_TIERS = ("float64", "float32", "int8")

#: Row count below which thread tiling is never worth the dispatch cost.
_MIN_ROWS_PER_THREAD = 256


def validate_tier(tier: str) -> str:
    """Return ``tier`` unchanged, or raise ``ValueError`` for unknowns."""
    if tier not in DTYPE_TIERS:
        raise ValueError(f"unknown dtype tier {tier!r}; expected one of {DTYPE_TIERS}")
    return tier


def feature_dtype(tier: str) -> np.dtype:
    """Storage dtype for ±1 feature matrices under ``tier``."""
    validate_tier(tier)
    return np.dtype(
        {"float64": np.float64, "float32": np.float32, "int8": np.int8}[tier]
    )


def weight_dtype(tier: str) -> np.dtype:
    """Weight (and margin) dtype under ``tier``.

    The ``int8`` tier keeps weights in float64 — its margins are
    bit-identical to the float64 tier; only the feature storage shrinks.
    """
    validate_tier(tier)
    return np.dtype(np.float32 if tier == "float32" else np.float64)


class KernelBackend(abc.ABC):
    """One GEMM provider behind the fleet kernels.

    Subclasses implement :meth:`gemm`; everything else in the fleet
    layer (feature construction, sign combination, voting, metrics) is
    dtype-exact numpy the backend never needs to replace.
    """

    #: Human-readable backend identifier (recorded in benchmark payloads).
    name: str = "abstract"

    @abc.abstractmethod
    def gemm(self, features: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """``features (M, d) @ weights (d, N)`` in the weights' dtype.

        ``features`` may be any real dtype (int8 feature slabs are
        upcast to ``weights.dtype`` before multiplying, which keeps the
        int8 tier bit-identical to float64).
        """


class NumpyBackend(KernelBackend):
    """The default backend: BLAS ``matmul`` with optional row tiling.

    Parameters
    ----------
    threads:
        Worker threads for row-slab tiling.  ``None`` reads
        ``$REPRO_KERNEL_THREADS`` (default 1).  With ``threads > 1``
        and enough rows, the (M, d) feature matrix is split into
        contiguous row slabs multiplied concurrently; each output row
        is still produced by one ordinary ``matmul`` over the full
        inner dimension, so exact-integer GEMMs stay bit-identical to
        the single-threaded result.
    """

    def __init__(self, threads: Optional[int] = None) -> None:
        if threads is None:
            threads = int(os.environ.get("REPRO_KERNEL_THREADS", "1"))
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.name = f"numpy[threads={threads}]"

    # ------------------------------------------------------------------
    def gemm(self, features: np.ndarray, weights: np.ndarray) -> np.ndarray:
        features = np.asarray(features)
        weights = np.asarray(weights)
        if features.ndim != 2 or weights.ndim != 2:
            raise ValueError(
                f"gemm expects 2-D operands, got {features.shape} @ {weights.shape}"
            )
        if features.shape[1] != weights.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: {features.shape} @ {weights.shape}"
            )
        out_dtype = weights.dtype
        if features.dtype != out_dtype:
            # int8 (or mismatched float) feature slabs upcast to the
            # weight dtype; ±1 is exact in every float format, so the
            # int8 tier reproduces the float64 tier bit for bit.
            cast = features.astype(out_dtype, copy=False)
        else:
            cast = features
        rows = cast.shape[0]
        if self.threads == 1 or rows < _MIN_ROWS_PER_THREAD * 2:
            return cast @ weights
        return self._tiled(cast, weights)

    def _tiled(self, features: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Row-slab tiled matmul over a private thread pool."""
        rows = features.shape[0]
        slabs = min(self.threads, max(1, rows // _MIN_ROWS_PER_THREAD))
        bounds = np.linspace(0, rows, slabs + 1, dtype=np.int64)
        out = np.empty((rows, weights.shape[1]), dtype=weights.dtype)

        def work(lo: int, hi: int) -> None:
            np.matmul(features[lo:hi], weights, out=out[lo:hi])

        with ThreadPoolExecutor(max_workers=slabs) as pool:
            futures = [
                pool.submit(work, int(lo), int(hi))
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
            for future in futures:
                future.result()
        return out


# ----------------------------------------------------------------------
# Ambient installation point (context-local, like the query meter).
# ----------------------------------------------------------------------
_BACKEND: contextvars.ContextVar[Optional[KernelBackend]] = contextvars.ContextVar(
    "repro_kernel_backend", default=None
)
_DEFAULT = NumpyBackend()


def get_backend() -> KernelBackend:
    """The installed backend, defaulting to a single-thread NumpyBackend."""
    backend = _BACKEND.get()
    return _DEFAULT if backend is None else backend


def set_backend(backend: Optional[KernelBackend]) -> None:
    """Install ``backend`` process-wide (``None`` restores the default)."""
    if backend is not None and not isinstance(backend, KernelBackend):
        raise TypeError(f"expected a KernelBackend, got {type(backend).__name__}")
    _BACKEND.set(backend)


@contextlib.contextmanager
def use_backend(backend: KernelBackend) -> Iterator[KernelBackend]:
    """Temporarily install ``backend`` for the enclosed block."""
    if not isinstance(backend, KernelBackend):
        raise TypeError(f"expected a KernelBackend, got {type(backend).__name__}")
    token = _BACKEND.set(backend)
    try:
        yield backend
    finally:
        _BACKEND.reset(token)

"""Stacked-GEMM kernels for evaluating fleets of PUF instances at once.

The per-instance hot paths in this repo all look like
``[puf.eval(challenges) for puf in pufs]`` — one BLAS ``gemv`` (or worse,
one Python-level feature build) per instance.  The sweeps the paper's
Section IV argument needs run *populations*: thousands of instances per
cell.  These kernels restructure that work as one GEMM:

* build the ±1 feature matrix for the challenge batch **once** —
  ``(M, d)`` instead of N times;
* stack the N instances' weight vectors into a ``(d, N)`` matrix;
* one ``(M, d) @ (d, N)`` multiply yields every margin of every
  instance.

Sign-domain post-processing (XOR combination across chains, majority
voting over noisy repetitions) is exact ±1 integer arithmetic and is
batched over the whole ``(M, N)`` plane.

This module is part of the ``repro.kernels`` leaf package: it imports
numpy and :mod:`repro.kernels.backend` and nothing else from ``repro``.
Query metering and the ``Fleet`` object API live in
:mod:`repro.pufs.fleet`, which builds on these kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.backend import KernelBackend, feature_dtype, get_backend

__all__ = [
    "parity_features",
    "linear_features",
    "br_features",
    "fleet_margins",
    "sign_responses",
    "xor_combine",
    "noisy_sign_responses",
    "batched_majority_vote",
]


# ----------------------------------------------------------------------
# Feature construction — done once per challenge batch, not per instance.
# ----------------------------------------------------------------------
def parity_features(challenges: np.ndarray, tier: str = "float64") -> np.ndarray:
    """The arbiter parity transform as an ``(M, n+1)`` tier-dtype matrix.

    Column ``i`` is ``prod_{j >= i} c_j``; the last column is the
    constant 1 multiplying the bias weight.  All entries are ±1, so the
    transform is exact in every tier (int8 cumprod of ±1 cannot
    overflow; ±1 is exact in binary32/binary64) and the int8 tier's
    features are value-identical to float64's.
    """
    dtype = feature_dtype(tier)
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    m, n = challenges.shape
    phi = np.ones((m, n + 1), dtype=dtype)
    flipped = np.ascontiguousarray(challenges[:, ::-1]).astype(dtype, copy=False)
    phi[:, :n] = np.cumprod(flipped, axis=1)[:, ::-1]
    return phi


def linear_features(challenges: np.ndarray, tier: str = "float64") -> np.ndarray:
    """``(M, n+1)`` features for plain LTF fleets: the challenge plus a
    constant column carrying each instance's (negated) threshold."""
    dtype = feature_dtype(tier)
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    m, n = challenges.shape
    feats = np.ones((m, n + 1), dtype=dtype)
    feats[:, :n] = np.ascontiguousarray(challenges).astype(dtype, copy=False)
    return feats


def br_features(
    challenges: np.ndarray,
    pair_indices: np.ndarray,
    triple_indices: np.ndarray,
    tier: str = "float64",
) -> np.ndarray:
    """``(M, 1 + n + P + T)`` monomial features for a BR fleet.

    Layout: ``[1, c_0..c_{n-1}, c_i c_j for (i,j) in pairs,
    c_i c_j c_l for (i,j,l) in triples]``.  Every entry is a ±1
    monomial, exact in all tiers.  The pair/triple index sets are a
    *fleet-level* (design) property shared by all instances so the
    feature matrix can be built once — per-instance manufacturing
    variation lives entirely in the weight columns.
    """
    dtype = feature_dtype(tier)
    challenges = np.asarray(challenges)
    if challenges.ndim == 1:
        challenges = challenges[None, :]
    c = np.ascontiguousarray(challenges).astype(dtype, copy=False)
    m, n = c.shape
    pair_indices = np.asarray(pair_indices, dtype=np.int64).reshape(-1, 2)
    triple_indices = np.asarray(triple_indices, dtype=np.int64).reshape(-1, 3)
    d = 1 + n + len(pair_indices) + len(triple_indices)
    feats = np.ones((m, d), dtype=dtype)
    feats[:, 1 : 1 + n] = c
    lo = 1 + n
    if len(pair_indices):
        pi, pj = pair_indices[:, 0], pair_indices[:, 1]
        feats[:, lo : lo + len(pair_indices)] = c[:, pi] * c[:, pj]
    lo += len(pair_indices)
    if len(triple_indices):
        ti, tj, tl = triple_indices[:, 0], triple_indices[:, 1], triple_indices[:, 2]
        feats[:, lo:] = c[:, ti] * c[:, tj] * c[:, tl]
    return feats


# ----------------------------------------------------------------------
# The stacked GEMM and its sign-domain post-processing.
# ----------------------------------------------------------------------
def fleet_margins(
    features: np.ndarray,
    weights: np.ndarray,
    backend: Optional[KernelBackend] = None,
) -> np.ndarray:
    """``(M, d) @ (d, N)`` margins for N stacked instances (or chains).

    Routed through the installed :class:`KernelBackend` (or the one
    passed explicitly), which owns dtype upcasting and thread tiling.
    """
    backend = get_backend() if backend is None else backend
    return backend.gemm(np.asarray(features), np.asarray(weights))


def sign_responses(margins: np.ndarray) -> np.ndarray:
    """±1 ``int8`` responses with the repo-wide tie rule (0 maps to +1)."""
    return np.where(np.asarray(margins) >= 0, 1, -1).astype(np.int8)


def xor_combine(chain_signs: np.ndarray, chain_offsets: np.ndarray) -> np.ndarray:
    """Combine per-chain signs into per-instance XOR responses.

    ``chain_signs`` is ``(M, total_chains)`` ±1 int8 with instance i's
    chains stored contiguously starting at ``chain_offsets[i]``;
    ``reduceat`` multiplies each instance's slice, supporting a
    *mixed-k* fleet (every instance may have a different chain count)
    without Python loops.  Products of ±1 cannot overflow int8.
    """
    chain_signs = np.asarray(chain_signs)
    chain_offsets = np.asarray(chain_offsets, dtype=np.intp)
    if chain_signs.ndim != 2:
        raise ValueError(f"chain_signs must be 2-D, got shape {chain_signs.shape}")
    return np.multiply.reduceat(chain_signs, chain_offsets, axis=1).astype(np.int8)


def noisy_sign_responses(
    margins: np.ndarray,
    noise: Optional[np.ndarray] = None,
    chain_offsets: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One noisy measurement of the whole fleet from explicit noise.

    ``margins`` is ``(M, K)`` — K instances, or K chains for XOR fleets
    (then ``chain_offsets`` selects the per-instance slices).  ``noise``
    must broadcast against it; passing the noise explicitly is what lets
    the conformance relations feed the *same* tensor to this batched
    path and to the per-instance reference loop and demand bit-identical
    votes.
    """
    margins = np.asarray(margins)
    if noise is not None:
        margins = margins + noise
    signs = sign_responses(margins)
    if chain_offsets is not None:
        signs = xor_combine(signs, chain_offsets)
    return signs


def batched_majority_vote(
    margins: np.ndarray,
    noise_sigma: float,
    repetitions: int,
    rng: np.random.Generator,
    chain_offsets: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Majority vote over ``repetitions`` noisy fleet measurements.

    Only the repetition axis is a Python loop; each iteration draws one
    ``(M, K)`` noise slab and updates an int16 vote accumulator over the
    ``(M, N)`` plane.  Vote counts are bounded by ``repetitions`` so
    int16 is exact up to 32767 repetitions.  Ties (even counts) break
    toward +1, matching :func:`repro.pufs.noise.majority_vote`.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    margins = np.asarray(margins)
    first = noisy_sign_responses(
        margins,
        rng.normal(0.0, noise_sigma, size=margins.shape) if noise_sigma > 0 else None,
        chain_offsets,
    )
    votes = first.astype(np.int16)
    for _ in range(repetitions - 1):
        measurement = noisy_sign_responses(
            margins,
            rng.normal(0.0, noise_sigma, size=margins.shape)
            if noise_sigma > 0
            else None,
            chain_offsets,
        )
        votes += measurement
    return np.where(votes >= 0, 1, -1).astype(np.int8)

"""In-place, allocation-free butterfly transforms.

Two transforms share the same recursive structure over the Boolean cube:

* the fast Walsh-Hadamard transform (real butterfly ``(a, b) -> (a+b,
  a-b)``), which maps a truth table to its unnormalised Fourier spectrum;
* the Moebius/zeta transform over GF(2) (XOR butterfly ``b ^= a``), which
  maps subcube evaluations of an F2 polynomial to its monomial indicator
  — the inner step of the LearnPoly algorithm.

Both operate batched along the last axis and mutate their argument: no
per-level half-copies, no per-table Python loop.  Index convention: entry
``s`` of a length-``2^n`` axis corresponds to the subset whose membership
pattern is the binary expansion of ``s``; the transforms are symmetric in
the bit positions, so MSB-first and LSB-first labellings agree with
:func:`repro.booleanfuncs.fourier.index_to_subset` either way.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.spans import trace

#: Working-set bound for batched butterflies: ~512 KB (64k float64)
#: chunks keep every level's reads and writes inside L2 instead of
#: streaming the full batch through memory once per level.
_CHUNK_FLOATS = 1 << 16


def _check_transform_input(a: np.ndarray, kinds: str, what: str) -> int:
    if not isinstance(a, np.ndarray):
        raise TypeError(f"{what} operates in place and needs an ndarray")
    if a.dtype.kind not in kinds:
        raise TypeError(f"{what} needs dtype kind in {kinds!r}, got {a.dtype}")
    if not a.flags["C_CONTIGUOUS"]:
        raise ValueError(f"{what} needs a C-contiguous array")
    m = a.shape[-1] if a.ndim else 0
    if m == 0 or m & (m - 1):
        raise ValueError("last-axis length must be a power of two")
    return m


def fwht_inplace(a: np.ndarray) -> np.ndarray:
    """Unnormalised fast Walsh-Hadamard transform, in place, batched.

    ``a`` is a float array whose last axis has power-of-two length; every
    slice along that axis is transformed independently.  The butterfly is
    done in place — ``a - b`` is formed as ``(a+b) - 2b``, so no half-copy
    is allocated at any level.  For integer-valued inputs (every +/-1
    truth table) all intermediates are exact; for general floats the
    result agrees with the textbook two-temporary butterfly to one ulp per
    level.  Returns ``a`` itself for chaining.
    """
    m = _check_transform_input(a, "f", "fwht_inplace")
    flat = a.reshape(-1, m)
    # Batches are processed in row chunks small enough to stay
    # cache-resident across all log2(m) levels — one big (rows, m) pass
    # per level would stream the whole batch through memory every level.
    # One span per transform call, never per chunk or level.
    with trace("kernel.fwht", tables=flat.shape[0], length=m):
        rows_per_chunk = max(1, _CHUNK_FLOATS // m)
        for start in range(0, flat.shape[0], rows_per_chunk):
            chunk = flat[start : start + rows_per_chunk]
            h = 1
            while h < m:
                v = chunk.reshape(-1, 2, h)
                top = v[:, 0, :]
                bot = v[:, 1, :]
                top += bot  # top = A + B
                bot *= 2.0  # bot = 2B
                np.subtract(top, bot, out=bot)  # bot = (A + B) - 2B = A - B
                h *= 2
    return a


def fwht(values: np.ndarray, normalise: bool = True) -> np.ndarray:
    """Copying wrapper around :func:`fwht_inplace`, batched.

    With ``normalise=True`` (default) each length-``2^n`` slice is divided
    by ``2^n``, so a +/-1 truth table maps to its Fourier coefficients.
    """
    v = np.array(values, dtype=np.float64, order="C")
    fwht_inplace(v)
    return v / v.shape[-1] if normalise else v


def mobius_f2_inplace(a: np.ndarray) -> np.ndarray:
    """Moebius transform over GF(2), in place, batched along the last axis.

    Entry ``s`` of the output is the XOR of input entries over all bitwise
    submasks of ``s``.  Applied to the 0/1 evaluations of an F2 polynomial
    over a subcube (index bit = variable set to 1), the output is the
    polynomial's monomial indicator over that subcube.  The transform is an
    involution: applying it twice restores the input.  Returns ``a``.
    """
    m = _check_transform_input(a, "iub", "mobius_f2_inplace")
    flat = a.reshape(-1, m)
    h = 1
    while h < m:
        v = flat.reshape(-1, 2, h)
        v[:, 1, :] ^= v[:, 0, :]
        h *= 2
    return a
